//! Lock the whole ISCAS-85/MCNC benchmark suite with Full-Lock and report
//! key sizes and PPA overheads; write the locked netlists as `.bench`
//! files (the interchange format the logic-locking literature uses) under
//! `target/locked/`.
//!
//! ```text
//! cargo run --release --example lock_benchmark_suite
//! ```

use std::error::Error;
use std::fs;
use std::path::Path;

use full_lock::locking::{FullLock, FullLockConfig, LockingScheme};
use full_lock::netlist::{bench_io, benchmarks};
use full_lock::tech::Technology;

fn main() -> Result<(), Box<dyn Error>> {
    let tech = Technology::generic_32nm();
    let out_dir = Path::new("target/locked");
    fs::create_dir_all(out_dir)?;

    println!(
        "{:<8} {:>7} {:>9} {:>9} {:>11} {:>11} {:>9}",
        "circuit", "gates", "locked", "key bits", "area (um2)", "overhead", "file"
    );
    for info in benchmarks::suite() {
        if info.name == "c17" {
            continue; // too small to host a PLR
        }
        let original = benchmarks::load(info.name)?;
        let scheme = FullLock::new(FullLockConfig::single_plr(16));
        let locked = match scheme.lock(&original) {
            Ok(l) => l,
            Err(e) => {
                println!("{:<8} skipped: {e}", info.name);
                continue;
            }
        };
        let base = tech.netlist_ppa(&original)?;
        let after = tech.netlist_ppa(&locked.netlist)?;
        let path = out_dir.join(format!("{}_fulllock.bench", info.name));
        fs::write(&path, bench_io::write(&locked.netlist))?;
        println!(
            "{:<8} {:>7} {:>9} {:>9} {:>11.1} {:>10.1}% {:>9}",
            info.name,
            original.stats().gates,
            locked.netlist.stats().gates,
            locked.key_len(),
            after.area_um2,
            100.0 * (after.area_um2 - base.area_um2) / base.area_um2,
            path.file_name().and_then(|f| f.to_str()).unwrap_or("?"),
        );
    }
    println!("\nlocked netlists written to {}", out_dir.display());
    Ok(())
}
