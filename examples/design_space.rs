//! Design-space exploration for a defender: for each CLN topology and
//! size, how much security (SAT-attack survival, permutation coverage,
//! key bits) does each unit of PPA overhead buy?
//!
//! This is the decision §3.1 of the paper walks through — blocking CLNs
//! are cheaper per input but need to be enormous before they resist;
//! the almost non-blocking `LOG_{N,log2(N)-2,1}` reaches resistance at
//! N=64 for ~2× the per-input cost.
//!
//! ```text
//! cargo run --release --example design_space
//! ```

use std::error::Error;
use std::time::Duration;

use full_lock::attacks::{Attack, SatAttackConfig, SimOracle};
use full_lock::bench::cln_testbed;
use full_lock::locking::{ClnStructure, ClnTopology};
use full_lock::tech::Technology;

fn main() -> Result<(), Box<dyn Error>> {
    let tech = Technology::generic_32nm();
    let budget = Duration::from_secs(3);

    println!(
        "{:<22} {:>4} {:>7} {:>9} {:>11} {:>11} {:>12}",
        "topology", "N", "stages", "key bits", "area (um2)", "perms", "SAT (3s)"
    );
    for topology in [
        ClnTopology::Shuffle,
        ClnTopology::Banyan,
        ClnTopology::AlmostNonBlocking,
        ClnTopology::Benes,
    ] {
        for n in [4usize, 8, 16] {
            let structure = ClnStructure::new(topology, n)?;
            let (host, locked) = cln_testbed(n, topology, 0);
            let ppa = tech.netlist_ppa(&locked.netlist)?;
            let perms = if n <= 8 {
                structure.reachable_permutations().len().to_string()
            } else {
                "-".to_string()
            };
            let oracle = SimOracle::new(&host)?;
            let report = SatAttackConfig {
                timeout: Some(budget),
                ..Default::default()
            }
            .run(&locked, &oracle)?;
            let verdict = if report.outcome.is_broken() {
                format!("{:.2}s", report.elapsed.as_secs_f64())
            } else {
                "TO".to_string()
            };
            println!(
                "{:<22} {:>4} {:>7} {:>9} {:>11.2} {:>11} {:>12}",
                topology.name(),
                n,
                structure.stages(),
                locked.key_len(),
                ppa.area_um2,
                perms,
                verdict,
            );
        }
    }
    println!("\ntrade-off: more stages ⇒ more permutations and a deeper MUX cascade");
    println!("(harder SAT instances), at linearly more area/power. The paper picks");
    println!("LOG_{{N,log2(N)-2,1}} as the knee of this curve.");
    Ok(())
}
