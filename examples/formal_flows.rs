//! Formal-methods companion flows: SAT-based equivalence checking, the
//! logic optimizer, and exhaustive (proof-based) key verification — the
//! tooling around locking that a real hardware-security team runs before
//! trusting a locked tape-out.
//!
//! ```text
//! cargo run --release --example formal_flows
//! ```

use std::error::Error;

use full_lock::locking::{FullLock, FullLockConfig, Key, LockingScheme};
use full_lock::netlist::{benchmarks, opt};
use full_lock::sat::equiv::{self, EquivResult};

fn main() -> Result<(), Box<dyn Error>> {
    let original = benchmarks::load("c880")?;

    // 1. Resynthesis must be provably safe: optimize and check, don't hope.
    let optimized = opt::optimize(&original)?;
    println!(
        "optimizer: {} -> {} gates ({} subexpressions shared)",
        optimized.stats.gates_before, optimized.stats.gates_after, optimized.stats.deduplicated
    );
    let verdict = equiv::check(&original, &optimized.netlist, None)?;
    println!("optimizer equivalence: {}", describe(&verdict));
    assert!(verdict.is_equivalent());

    // 2. Lock, then *prove* the correct key — sampled simulation can miss a
    //    one-input corner (that is SARLock's entire trick), a proof cannot.
    let mut locked = FullLock::new(FullLockConfig::single_plr(16)).lock(&original)?;
    let correct = locked.correct_key.clone();
    println!(
        "locked: {} gates, {} key bits",
        locked.netlist.stats().gates,
        locked.key_len()
    );
    let verdict = locked.prove_key(&correct, &original)?;
    println!("correct-key proof: {}", describe(&verdict));
    assert!(verdict.is_equivalent());

    // 3. A near-miss key (one bit off) is refuted with a concrete witness.
    let mut near_miss = correct.clone();
    near_miss.flip(0);
    match locked.prove_key(&near_miss, &original)? {
        EquivResult::Counterexample(cex) => {
            let pattern: String = cex.iter().map(|&b| if b { '1' } else { '0' }).collect();
            println!("near-miss key refuted; differing input: {pattern}");
        }
        other => println!("near-miss key verdict: {} (key aliasing)", describe(&other)),
    }

    // 4. Optimize the locked netlist and re-prove: resynthesis after
    //    locking (a realistic flow) must not break the key contract.
    let stats = locked.optimize()?;
    println!(
        "post-lock resynthesis: {} -> {} gates",
        stats.gates_before, stats.gates_after
    );
    let verdict = locked.prove_key(&correct, &original)?;
    println!(
        "correct-key proof after resynthesis: {}",
        describe(&verdict)
    );
    assert!(verdict.is_equivalent());

    // 5. Keys are plain bit strings: parse, compare, measure distance.
    let parsed: Key = format!("{correct}").parse()?;
    assert_eq!(parsed, correct);
    println!(
        "key round-trips through its string form ({} bits, hamming(correct, near-miss) = {})",
        parsed.len(),
        correct.hamming_distance(&near_miss)
    );
    Ok(())
}

fn describe(verdict: &EquivResult) -> &'static str {
    match verdict {
        EquivResult::Equivalent => "EQUIVALENT (proven)",
        EquivResult::Counterexample(_) => "NOT equivalent (counterexample found)",
        EquivResult::Unknown => "unknown (resource limit)",
    }
}
