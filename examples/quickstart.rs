//! Quickstart: lock a circuit with Full-Lock, verify the correct key,
//! measure wrong-key corruption, and watch the SAT attack struggle.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use std::error::Error;
use std::time::Duration;

use full_lock::attacks::{Attack, SatAttackConfig, SimOracle};
use full_lock::locking::{corruption, FullLock, FullLockConfig, Key, LockingScheme, Rll};
use full_lock::netlist::{benchmarks, Simulator};

fn main() -> Result<(), Box<dyn Error>> {
    // 1. Load a benchmark circuit (a c432-sized host).
    let original = benchmarks::load("c432")?;
    println!("host: {original}");

    // 2. Lock it with one 16×16 PLR (almost non-blocking CLN + LUTs).
    let scheme = FullLock::new(FullLockConfig::single_plr(16));
    let locked = scheme.lock(&original)?;
    println!(
        "locked with {}: {} key bits, {} gates (was {})",
        scheme.name(),
        locked.key_len(),
        locked.netlist.stats().gates,
        original.stats().gates,
    );

    // 3. The correct key restores the original function.
    let sim = Simulator::new(&original)?;
    let x = vec![true; original.inputs().len()];
    assert_eq!(locked.eval(&x, &locked.correct_key)?, sim.run(&x)?);
    println!("correct key verified on a sample pattern ✓");

    // 4. A wrong key corrupts heavily (unlike SARLock-style schemes).
    let report = corruption::measure(&locked, &original, 8, 32, 0)?;
    println!(
        "wrong-key corruption: {:.1}% of patterns, {:.1}% of output bits",
        100.0 * report.pattern_error_rate(),
        100.0 * report.bit_error_rate(),
    );

    // 5. The SAT attack breaks weak locking fast…
    let weak = Rll::new(16, 0).lock(&original)?;
    let oracle = SimOracle::new(&original)?;
    let weak_report = SatAttackConfig::default().run(&weak, &oracle)?;
    println!(
        "SAT attack vs rll[16]: broken={} in {} iterations, {:?}",
        weak_report.outcome.is_broken(),
        weak_report.iterations,
        weak_report.elapsed,
    );

    // 6. …but times out against the PLR within the same budget.
    let oracle = SimOracle::new(&original)?;
    let strong_report = SatAttackConfig {
        timeout: Some(Duration::from_secs(5)),
        ..Default::default()
    }
    .run(&locked, &oracle)?;
    println!(
        "SAT attack vs {}: broken={} after {} iterations (5 s budget)",
        scheme.name(),
        strong_report.outcome.is_broken(),
        strong_report.iterations,
    );

    // 7. Keys are plain bit vectors; you can supply your own.
    let zero_key = Key::zeros(locked.key_len());
    let corrupted = locked.eval(&x, &zero_key)?;
    println!(
        "all-zero key output matches oracle: {}",
        corrupted == sim.run(&x)?,
    );
    Ok(())
}
