//! Scheme-vs-attack matrix: every locking scheme against the SAT attack,
//! AppSAT, and SPS, on one benchmark — a one-screen summary of the
//! security landscape the paper's related-work section describes.
//!
//! ```text
//! cargo run --release --example attack_comparison
//! ```

use std::error::Error;
use std::time::Duration;

use full_lock::attacks::{
    appsat_attack, attack, double_dip, sps, AppSatConfig, SatAttackConfig, SimOracle,
};
use full_lock::locking::{
    AntiSat, CrossLock, Fll, FullLock, FullLockConfig, LockingScheme, LutLock, Rll, SarLock,
};
use full_lock::netlist::benchmarks;

fn main() -> Result<(), Box<dyn Error>> {
    let original = benchmarks::load("c432")?;
    let budget = Duration::from_secs(5);

    let schemes: Vec<Box<dyn LockingScheme>> = vec![
        Box::new(Rll::new(24, 0)),
        Box::new(Fll::new(24, 0)),
        Box::new(SarLock::new(14, 0)),
        Box::new(AntiSat::new(14, 0)),
        Box::new(LutLock::new(12, 0)),
        Box::new(CrossLock::new(16, 0)),
        Box::new(FullLock::new(FullLockConfig::single_plr(16))),
    ];

    println!(
        "{:<20} {:>10} {:>12} {:>14} {:>12}",
        "scheme", "SAT (5s)", "2-DIP (5s)", "AppSAT", "SPS"
    );
    for scheme in schemes {
        let locked = scheme.lock(&original)?;

        let oracle = SimOracle::new(&original)?;
        let sat = attack(
            &locked,
            &oracle,
            SatAttackConfig {
                timeout: Some(budget),
                ..Default::default()
            },
        )?;
        let sat_cell = if sat.outcome.is_broken() {
            format!("broken/{}", sat.iterations)
        } else {
            "TO".to_string()
        };

        let oracle = SimOracle::new(&original)?;
        let dd = double_dip::attack(
            &locked,
            &oracle,
            SatAttackConfig {
                timeout: Some(budget),
                ..Default::default()
            },
        )?;
        let dd_cell = if dd.outcome.is_broken() {
            format!("broken/{}+{}", dd.iterations, dd.cleanup_iterations)
        } else {
            "TO".to_string()
        };

        let oracle = SimOracle::new(&original)?;
        let app = appsat_attack(
            &locked,
            &oracle,
            AppSatConfig {
                base: SatAttackConfig {
                    timeout: Some(budget),
                    ..Default::default()
                },
                ..Default::default()
            },
        )?;
        let app_cell = if app.settled || app.exact {
            format!("broken (err {:.3})", app.measured_error)
        } else {
            format!("resisted ({:.2})", app.measured_error)
        };

        let sps_cell = match sps::sps_attack(&locked, &original, 0.45, 200, 0) {
            Ok(r) if r.succeeded() => "broken".to_string(),
            Ok(_) => "resisted".to_string(),
            Err(_) => "n/a".to_string(),
        };

        println!(
            "{:<20} {:>10} {:>12} {:>14} {:>12}",
            scheme.name(),
            sat_cell,
            dd_cell,
            app_cell,
            sps_cell
        );
    }
    println!("\nexpected: every baseline falls to at least one attack; Full-Lock");
    println!("resists all three within the budget (the paper's Table 4 / §4.2).");
    Ok(())
}
