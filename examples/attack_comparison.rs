//! Scheme-vs-attack matrix: every locking scheme against the SAT attack,
//! Double-DIP, AppSAT, and SPS, on one benchmark — a one-screen summary
//! of the security landscape the paper's related-work section describes.
//!
//! The whole matrix is driven through the unified [`Attack`] trait: one
//! `Vec<Box<dyn Attack>>`, one loop, one report envelope.
//!
//! ```text
//! cargo run --release --example attack_comparison
//! ```

use std::error::Error;
use std::time::Duration;

use full_lock::attacks::{
    AppSatConfig, Attack, AttackOutcome, DoubleDip, SatAttackConfig, SimOracle, Sps,
};
use full_lock::locking::{
    AntiSat, CrossLock, Fll, FullLock, FullLockConfig, LockingScheme, LutLock, Rll, SarLock,
};
use full_lock::netlist::benchmarks;

/// One table cell: the outcome compressed to a short verdict.
fn cell(outcome: &AttackOutcome, iterations: u64) -> String {
    match outcome {
        AttackOutcome::KeyRecovered { .. } => format!("broken/{iterations}"),
        AttackOutcome::ApproximateKey { measured_error, .. } => {
            format!("broken (err {measured_error:.3})")
        }
        AttackOutcome::Bypassed { exact: true, .. } => "broken".to_string(),
        AttackOutcome::Bypassed { error_rate, .. } => format!("resisted ({error_rate:.2})"),
        AttackOutcome::Defeated { .. } => "resisted".to_string(),
        AttackOutcome::Timeout | AttackOutcome::IterationLimit => "TO".to_string(),
        _ => "n/a".to_string(),
    }
}

fn main() -> Result<(), Box<dyn Error>> {
    let original = benchmarks::load("c432")?;
    let budget = Duration::from_secs(5);

    let schemes: Vec<Box<dyn LockingScheme>> = vec![
        Box::new(Rll::new(24, 0)),
        Box::new(Fll::new(24, 0)),
        Box::new(SarLock::new(14, 0)),
        Box::new(AntiSat::new(14, 0)),
        Box::new(LutLock::new(12, 0)),
        Box::new(CrossLock::new(16, 0)),
        Box::new(FullLock::new(FullLockConfig::single_plr(16))),
    ];

    let base = SatAttackConfig {
        timeout: Some(budget),
        ..Default::default()
    };
    let attacks: Vec<Box<dyn Attack>> = vec![
        Box::new(base),
        Box::new(DoubleDip { base }),
        Box::new(AppSatConfig {
            base,
            ..Default::default()
        }),
        Box::new(Sps::default()),
    ];

    print!("{:<20}", "scheme");
    for attack in &attacks {
        print!(" {:>16}", attack.name());
    }
    println!();
    for scheme in schemes {
        let locked = scheme.lock(&original)?;
        print!("{:<20}", scheme.name());
        for attack in &attacks {
            let oracle = SimOracle::new(&original)?;
            let verdict = match attack.run(&locked, &oracle) {
                Ok(report) => cell(&report.outcome, report.iterations),
                Err(_) => "n/a".to_string(),
            };
            print!(" {verdict:>16}");
        }
        println!();
    }
    println!("\nexpected: every baseline falls to at least one attack; Full-Lock");
    println!("resists all four within the budget (the paper's Table 4 / §4.2).");
    Ok(())
}
