//! CNF encoding of locked circuits with separated data/key variables.

use fulllock_locking::LockedCircuit;
use fulllock_sat::{tseytin, Cnf, Var};

/// One encoded copy of a locked circuit inside a shared CNF.
#[derive(Debug, Clone)]
pub struct LockedEncoding {
    /// Variable of every signal, indexed by
    /// [`SignalId::index`](fulllock_netlist::SignalId::index).
    pub signal_vars: Vec<Var>,
    /// Variables of the primary outputs, in output order.
    pub output_vars: Vec<Var>,
}

/// Encodes `locked` into `cnf`, driving its data inputs from `data_vars`
/// (one per [`LockedCircuit::data_inputs`] slot) and its key inputs from
/// `key_vars` (one per key slot). Gate outputs get fresh variables.
///
/// Encoding two copies with shared `data_vars` and distinct `key_vars` is
/// the miter construction of the SAT attack; encoding one copy and fixing
/// `data_vars` with unit clauses expresses an observed I/O constraint.
///
/// # Panics
///
/// Panics if the variable slices do not match the circuit's interface.
pub fn encode_locked(
    locked: &LockedCircuit,
    cnf: &mut Cnf,
    data_vars: &[Var],
    key_vars: &[Var],
) -> LockedEncoding {
    assert_eq!(
        data_vars.len(),
        locked.data_inputs.len(),
        "one var per data input"
    );
    assert_eq!(
        key_vars.len(),
        locked.key_inputs.len(),
        "one var per key input"
    );
    // Assemble the netlist-input-order variable vector.
    let mut input_vars: Vec<Var> = Vec::with_capacity(locked.netlist.inputs().len());
    for &sig in locked.netlist.inputs() {
        if let Some(slot) = locked.data_inputs.iter().position(|&d| d == sig) {
            input_vars.push(data_vars[slot]);
        } else if let Some(slot) = locked.key_inputs.iter().position(|&k| k == sig) {
            input_vars.push(key_vars[slot]);
        } else {
            // An input that is neither data nor key (never produced by our
            // schemes): give it a free variable.
            input_vars.push(cnf.new_var());
        }
    }
    let signal_vars = tseytin::encode_into(&locked.netlist, cnf, &input_vars);
    let output_vars = locked
        .netlist
        .outputs()
        .iter()
        .map(|o| signal_vars[o.index()])
        .collect();
    LockedEncoding {
        signal_vars,
        output_vars,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fulllock_locking::{LockingScheme, Rll};
    use fulllock_sat::Lit;

    #[test]
    fn encoding_respects_interface_split() {
        let host = fulllock_netlist::benchmarks::load("c17").unwrap();
        let locked = Rll::new(3, 0).lock(&host).unwrap();
        let mut cnf = Cnf::new();
        let data: Vec<Var> = (0..5).map(|_| cnf.new_var()).collect();
        let keys: Vec<Var> = (0..3).map(|_| cnf.new_var()).collect();
        let enc = encode_locked(&locked, &mut cnf, &data, &keys);
        assert_eq!(enc.output_vars.len(), 2);
        // Correct key + an input pattern must be a satisfying scenario:
        // check via the model against direct evaluation.
        let x = [true, false, true, true, false];
        let y = locked.eval(&x, &locked.correct_key).unwrap();
        let mut solver = fulllock_sat::cdcl::Solver::from_cnf(&cnf);
        let mut assumptions: Vec<Lit> = Vec::new();
        for (i, &v) in data.iter().enumerate() {
            assumptions.push(Lit::with_polarity(v, x[i]));
        }
        for (i, &v) in keys.iter().enumerate() {
            assumptions.push(Lit::with_polarity(v, locked.correct_key.bits()[i]));
        }
        for (o, &v) in enc.output_vars.iter().enumerate() {
            assumptions.push(Lit::with_polarity(v, y[o]));
        }
        assert_eq!(
            solver.solve(&assumptions),
            fulllock_sat::cdcl::SolveResult::Sat
        );
        // Flipping an output expectation must be UNSAT.
        let last = assumptions.len() - 1;
        assumptions[last] = !assumptions[last];
        assert_eq!(
            solver.solve(&assumptions),
            fulllock_sat::cdcl::SolveResult::Unsat
        );
    }
}
