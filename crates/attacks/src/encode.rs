//! CNF encoding of locked circuits with separated data/key variables.
//!
//! Two encoders live here:
//!
//! * [`encode_locked`] — the generic Tseytin encoding (one variable per
//!   signal, Table 1 clauses per gate), used for miters over cyclic
//!   netlists and as the reference implementation the property tests
//!   compare against;
//! * [`CircuitEncoder`] — the cone-reduced, structure-aware encoder the
//!   DIP loop uses on acyclic netlists. It constant-propagates known
//!   inputs, aliases single-input gates to (possibly negated) existing
//!   literals instead of allocating variables, and (under
//!   [`EncodeStyle::Structured`]) flattens single-fanout MUX trees into
//!   per-leaf path clauses and links CLN switch-box swap pairs. Signals
//!   outside the key-dependent fanin cone of an observed I/O pair fold to
//!   constants and contribute **zero** clauses — collapsing per-iteration
//!   formula growth from two full circuit copies to the key cone.

use fulllock_locking::LockedCircuit;
use fulllock_netlist::{topo, GateKind, SignalId};
use fulllock_sat::{tseytin, Cnf, Lit, Var};

/// One encoded copy of a locked circuit inside a shared CNF.
#[derive(Debug, Clone)]
pub struct LockedEncoding {
    /// Variable of every signal, indexed by
    /// [`SignalId::index`](fulllock_netlist::SignalId::index).
    pub signal_vars: Vec<Var>,
    /// Variables of the primary outputs, in output order.
    pub output_vars: Vec<Var>,
}

/// What a primary-input slot of the locked netlist is bound to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum InputRole {
    /// Data input: slot index into [`LockedCircuit::data_inputs`].
    Data(usize),
    /// Key input: slot index into [`LockedCircuit::key_inputs`].
    Key(usize),
    /// Neither (never produced by our schemes): left unconstrained.
    Free,
}

/// Precomputed netlist-input-slot → data/key-slot map.
///
/// [`encode_locked`] used to rediscover each input's role with a linear
/// `position()` scan per input (quadratic in the interface width); this
/// map is built once in O(n) and shared by every encoding of the same
/// circuit.
#[derive(Debug, Clone)]
pub struct InterfaceMap {
    roles: Vec<InputRole>,
}

impl InterfaceMap {
    /// Builds the role map for `locked` in one pass.
    pub fn new(locked: &LockedCircuit) -> InterfaceMap {
        let mut by_signal = vec![InputRole::Free; locked.netlist.len()];
        for (slot, &sig) in locked.data_inputs.iter().enumerate() {
            by_signal[sig.index()] = InputRole::Data(slot);
        }
        for (slot, &sig) in locked.key_inputs.iter().enumerate() {
            by_signal[sig.index()] = InputRole::Key(slot);
        }
        InterfaceMap {
            roles: locked
                .netlist
                .inputs()
                .iter()
                .map(|sig| by_signal[sig.index()])
                .collect(),
        }
    }
}

/// Encodes `locked` into `cnf`, driving its data inputs from `data_vars`
/// (one per [`LockedCircuit::data_inputs`] slot) and its key inputs from
/// `key_vars` (one per key slot). Gate outputs get fresh variables.
///
/// Encoding two copies with shared `data_vars` and distinct `key_vars` is
/// the miter construction of the SAT attack; encoding one copy and fixing
/// `data_vars` with unit clauses expresses an observed I/O constraint
/// (the [`CircuitEncoder`] does the latter far more cheaply on acyclic
/// netlists).
///
/// # Panics
///
/// Panics if the variable slices do not match the circuit's interface.
pub fn encode_locked(
    locked: &LockedCircuit,
    cnf: &mut Cnf,
    data_vars: &[Var],
    key_vars: &[Var],
) -> LockedEncoding {
    assert_eq!(
        data_vars.len(),
        locked.data_inputs.len(),
        "one var per data input"
    );
    assert_eq!(
        key_vars.len(),
        locked.key_inputs.len(),
        "one var per key input"
    );
    let imap = InterfaceMap::new(locked);
    // Assemble the netlist-input-order variable vector via the slot map.
    let input_vars: Vec<Var> = imap
        .roles
        .iter()
        .map(|role| match role {
            InputRole::Data(slot) => data_vars[*slot],
            InputRole::Key(slot) => key_vars[*slot],
            InputRole::Free => cnf.new_var(),
        })
        .collect();
    let signal_vars = tseytin::encode_into(&locked.netlist, cnf, &input_vars);
    let output_vars = locked
        .netlist
        .outputs()
        .iter()
        .map(|o| signal_vars[o.index()])
        .collect();
    LockedEncoding {
        signal_vars,
        output_vars,
    }
}

/// Which clause shapes the [`CircuitEncoder`] emits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EncodeStyle {
    /// Per-gate Table 1 clauses (still with constant folding and literal
    /// aliasing — those are what make cone reduction work).
    Generic,
    /// Additionally flatten single-fanout MUX trees (LUT select trees,
    /// routing chains) into per-leaf path clauses without auxiliary
    /// variables, emit redundant agreement clauses on MUX leaves, and
    /// link CLN switch-box swap pairs (`s1 ⊕ s2 → o1 = o2`).
    #[default]
    Structured,
}

/// The value a signal takes inside one encoding: a known constant (the
/// signal is outside the key cone of the fixed inputs) or a CNF literal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SigVal {
    /// The signal is constant under the given input bindings.
    Const(bool),
    /// The signal equals this (possibly negated, possibly shared) literal.
    L(Lit),
}

impl SigVal {
    fn negate(self) -> SigVal {
        match self {
            SigVal::Const(c) => SigVal::Const(!c),
            SigVal::L(l) => SigVal::L(!l),
        }
    }
}

/// What drives each data-input slot of one encoded copy.
#[derive(Debug, Clone, Copy)]
pub enum DataBinding {
    /// A shared CNF variable (miter copies share their `X` variables).
    Var(Var),
    /// A known constant (observed-DIP assertions fix the inputs).
    Const(bool),
}

/// MUX trees deeper than this are split (2^6 = 64 leaves per flattened
/// tree), bounding path-clause width.
const MAX_TREE_DEPTH: usize = 6;
/// Redundant all-leaves-agree clauses are emitted for flattened trees
/// with at most this many leaves.
const MAX_REDUNDANT_LEAVES: usize = 8;

/// The cone-reduced, structure-aware encoder (see the module docs).
/// Built once per attack — the topological order, fanout census, interface
/// map, deferral flags, and swap-pair table are all input-independent —
/// then replayed cheaply for every miter copy and observed I/O pair.
#[derive(Debug)]
pub struct CircuitEncoder<'a> {
    locked: &'a LockedCircuit,
    imap: InterfaceMap,
    /// Gates in topological order.
    order: Vec<SignalId>,
    style: EncodeStyle,
    /// Per signal: this MUX's clauses are deferred and flattened into its
    /// unique consuming MUX tree (only honored under `Structured`).
    defer: Vec<bool>,
    /// CLN switch-box swap pairs `(m1, m2)` with `m1 = Mux(s1, a, b)` and
    /// `m2 = Mux(s2, b, a)`.
    swap_pairs: Vec<(SignalId, SignalId)>,
}

impl<'a> CircuitEncoder<'a> {
    /// Analyses `locked` for encoding. Returns `None` for cyclic netlists
    /// (callers fall back to [`encode_locked`] plus CycSAT clauses).
    pub fn new(locked: &'a LockedCircuit, style: EncodeStyle) -> Option<CircuitEncoder<'a>> {
        let netlist = &locked.netlist;
        let order: Vec<SignalId> = topo::topo_order(netlist)
            .ok()?
            .into_iter()
            .filter(|&s| netlist.node(s).gate_kind().is_some())
            .collect();
        let n = netlist.len();
        // Fanout census with unique-consumer tracking.
        let mut fanout = vec![0u32; n];
        let mut consumer: Vec<Option<(SignalId, usize)>> = vec![None; n];
        for &g in &order {
            for (pos, &f) in netlist.node(g).fanins().iter().enumerate() {
                fanout[f.index()] += 1;
                consumer[f.index()] = Some((g, pos));
            }
        }
        for &o in netlist.outputs() {
            fanout[o.index()] += 1;
        }
        // Swap-pair detection: two MUXes over the same data wires in
        // swapped order. Greedy 1:1 matching on (lo, hi, orientation).
        let mut swap_pairs = Vec::new();
        let mut in_pair = vec![false; n];
        let mut open: std::collections::HashMap<(usize, usize), [Vec<SignalId>; 2]> =
            std::collections::HashMap::new();
        for &g in &order {
            let node = netlist.node(g);
            if node.gate_kind() != Some(GateKind::Mux) {
                continue;
            }
            let (a, b) = (node.fanins()[1], node.fanins()[2]);
            if a == b {
                continue;
            }
            let lo = a.index().min(b.index());
            let hi = a.index().max(b.index());
            let orient = usize::from(a.index() > b.index());
            let slots = open.entry((lo, hi)).or_default();
            if let Some(partner) = slots[1 - orient].pop() {
                swap_pairs.push((partner, g));
                in_pair[partner.index()] = true;
                in_pair[g.index()] = true;
            } else {
                slots[orient].push(g);
            }
        }
        // Deferral: a MUX consumed exactly once, as the data input of
        // another MUX, melts into that consumer's flattened tree. Swap-pair
        // members stay materialized so their linking clauses apply.
        let mut defer = vec![false; n];
        for &g in &order {
            let node = netlist.node(g);
            if node.gate_kind() != Some(GateKind::Mux)
                || fanout[g.index()] != 1
                || in_pair[g.index()]
            {
                continue;
            }
            if let Some((t, pos)) = consumer[g.index()] {
                if netlist.node(t).gate_kind() == Some(GateKind::Mux) && (pos == 1 || pos == 2) {
                    defer[g.index()] = true;
                }
            }
        }
        Some(CircuitEncoder {
            locked,
            imap: InterfaceMap::new(locked),
            order,
            style,
            defer,
            swap_pairs,
        })
    }

    /// Encodes one circuit copy with symbolic data inputs (a miter half).
    /// Returns the per-output [`SigVal`]s; a key-independent output folds
    /// to the shared input literal (or a constant) and its miter XOR
    /// vanishes.
    ///
    /// # Panics
    ///
    /// Panics if the variable slices do not match the circuit interface.
    pub fn encode_copy(&self, cnf: &mut Cnf, x_vars: &[Var], key_vars: &[Var]) -> Vec<SigVal> {
        let data: Vec<DataBinding> = x_vars.iter().map(|&v| DataBinding::Var(v)).collect();
        let vals = self.run(cnf, &data, key_vars);
        self.outputs(&vals)
    }

    /// Encodes one observed I/O pair for one key copy: the known `inputs`
    /// are constant-propagated, only the key-dependent fanin cone emits
    /// clauses, and the observed `outputs` become unit clauses (or an
    /// immediate contradiction if a key-independent output disagrees with
    /// the observation).
    ///
    /// # Panics
    ///
    /// Panics if the slice lengths do not match the circuit interface.
    pub fn encode_observation(
        &self,
        cnf: &mut Cnf,
        inputs: &[bool],
        outputs: &[bool],
        key_vars: &[Var],
    ) {
        let data: Vec<DataBinding> = inputs.iter().map(|&b| DataBinding::Const(b)).collect();
        let vals = self.run(cnf, &data, key_vars);
        for (slot, val) in self.outputs(&vals).into_iter().enumerate() {
            match val {
                SigVal::Const(c) => {
                    if c != outputs[slot] {
                        // A key-independent output contradicting the
                        // observation: no key is consistent.
                        cnf.add_clause(std::iter::empty());
                    }
                }
                SigVal::L(l) => {
                    cnf.add_clause([if outputs[slot] { l } else { !l }]);
                }
            }
        }
    }

    fn outputs(&self, vals: &[Option<SigVal>]) -> Vec<SigVal> {
        self.locked
            .netlist
            .outputs()
            .iter()
            .map(|o| vals[o.index()].expect("outputs are never deferred"))
            .collect()
    }

    /// The shared forward pass: bind inputs, walk gates topologically,
    /// then link swap pairs.
    fn run(&self, cnf: &mut Cnf, data: &[DataBinding], key_vars: &[Var]) -> Vec<Option<SigVal>> {
        assert_eq!(data.len(), self.locked.data_inputs.len(), "data width");
        assert_eq!(key_vars.len(), self.locked.key_inputs.len(), "key width");
        let netlist = &self.locked.netlist;
        let mut vals: Vec<Option<SigVal>> = vec![None; netlist.len()];
        for (&sig, role) in netlist.inputs().iter().zip(&self.imap.roles) {
            vals[sig.index()] = Some(match role {
                InputRole::Data(slot) => match data[*slot] {
                    DataBinding::Var(v) => SigVal::L(Lit::positive(v)),
                    DataBinding::Const(c) => SigVal::Const(c),
                },
                InputRole::Key(slot) => SigVal::L(Lit::positive(key_vars[*slot])),
                InputRole::Free => SigVal::L(Lit::positive(cnf.new_var())),
            });
        }
        let structured = self.style == EncodeStyle::Structured;
        for &g in &self.order {
            if vals[g.index()].is_some() || (structured && self.defer[g.index()]) {
                continue;
            }
            let val = self.emit_gate(g, cnf, &mut vals);
            vals[g.index()] = Some(val);
        }
        if structured {
            for &(m1, m2) in &self.swap_pairs {
                self.link_swap_pair(cnf, netlist, &vals, m1, m2);
            }
        }
        vals
    }

    /// `s1 ⊕ s2 → o1 = o2` for a materialized swap pair (skipped when any
    /// of the four signals folded to a constant — the link is then either
    /// vacuous or subsumed by cheaper unit reasoning).
    fn link_swap_pair(
        &self,
        cnf: &mut Cnf,
        netlist: &fulllock_netlist::Netlist,
        vals: &[Option<SigVal>],
        m1: SignalId,
        m2: SignalId,
    ) {
        let lit = |sig: SignalId| match vals[sig.index()] {
            Some(SigVal::L(l)) => Some(l),
            _ => None,
        };
        let (Some(s1), Some(o1)) = (lit(netlist.node(m1).fanins()[0]), lit(m1)) else {
            return;
        };
        let (Some(s2), Some(o2)) = (lit(netlist.node(m2).fanins()[0]), lit(m2)) else {
            return;
        };
        tseytin::encode_swap_link(cnf, s1, o1, s2, o2);
    }

    fn emit_gate(&self, g: SignalId, cnf: &mut Cnf, vals: &mut Vec<Option<SigVal>>) -> SigVal {
        let node = self.locked.netlist.node(g);
        let kind = node.gate_kind().expect("order holds only gates");
        if kind == GateKind::Mux {
            return self.emit_mux_root(g, cnf, vals);
        }
        let ins: Vec<SigVal> = node
            .fanins()
            .iter()
            .map(|f| vals[f.index()].expect("non-MUX fanins are never deferred"))
            .collect();
        match kind {
            GateKind::Const0 => SigVal::Const(false),
            GateKind::Const1 => SigVal::Const(true),
            GateKind::Buf => ins[0],
            GateKind::Not => ins[0].negate(),
            GateKind::And => and_val(cnf, &ins, false),
            GateKind::Nand => and_val(cnf, &ins, true),
            GateKind::Or => or_val(cnf, &ins, false),
            GateKind::Nor => or_val(cnf, &ins, true),
            GateKind::Xor => xor_val(cnf, &ins, false),
            GateKind::Xnor => xor_val(cnf, &ins, true),
            GateKind::Mux => unreachable!("handled above"),
        }
    }

    /// Encodes a MUX that is not melted into a larger tree: collect its
    /// (possibly flattened) leaves, fold trivial shapes to aliases, else
    /// allocate an output variable and emit per-leaf path clauses.
    fn emit_mux_root(&self, g: SignalId, cnf: &mut Cnf, vals: &mut Vec<Option<SigVal>>) -> SigVal {
        let mut leaves: Vec<(Vec<Lit>, SigVal)> = Vec::new();
        let mut path = Vec::new();
        self.collect_leaves(g, cnf, vals, &mut path, &mut leaves);
        debug_assert!(!leaves.is_empty());
        // Every leaf agrees (includes the const-select single-leaf case):
        // the output IS that value, no variable and no clauses needed.
        if leaves.iter().all(|(_, v)| *v == leaves[0].1) {
            return leaves[0].1;
        }
        let o = Lit::positive(cnf.new_var());
        for (path, leaf) in &leaves {
            match leaf {
                SigVal::Const(true) => {
                    let mut up: Vec<Lit> = path.iter().map(|&l| !l).collect();
                    up.push(o);
                    cnf.add_clause(up);
                }
                SigVal::Const(false) => {
                    let mut down: Vec<Lit> = path.iter().map(|&l| !l).collect();
                    down.push(!o);
                    cnf.add_clause(down);
                }
                SigVal::L(l) => tseytin::encode_mux_path(cnf, o, path, *l),
            }
        }
        if self.style == EncodeStyle::Structured && leaves.len() <= MAX_REDUNDANT_LEAVES {
            let lits: Vec<Lit> = leaves
                .iter()
                .filter_map(|(_, v)| match v {
                    SigVal::L(l) => Some(*l),
                    SigVal::Const(_) => None,
                })
                .collect();
            if lits.len() == leaves.len() {
                // All leaves agree → output agrees (any select value).
                let mut up: Vec<Lit> = lits.iter().map(|&l| !l).collect();
                up.push(o);
                cnf.add_clause(up);
                let mut down = lits;
                down.push(!o);
                cnf.add_clause(down);
            }
        }
        SigVal::L(o)
    }

    /// Walks the (deferred-child) MUX tree under `g`, pruning branches
    /// with constant selects and recording `(path condition, leaf)` pairs.
    fn collect_leaves(
        &self,
        g: SignalId,
        cnf: &mut Cnf,
        vals: &mut Vec<Option<SigVal>>,
        path: &mut Vec<Lit>,
        leaves: &mut Vec<(Vec<Lit>, SigVal)>,
    ) {
        let fanins = self.locked.netlist.node(g).fanins();
        let (s, a, b) = (fanins[0], fanins[1], fanins[2]);
        let select = vals[s.index()].expect("selects are never deferred");
        match select {
            // S = 1 selects B (Table 1's C = A·S̄ + B·S).
            SigVal::Const(c) => {
                self.descend(if c { b } else { a }, cnf, vals, path, leaves);
            }
            SigVal::L(ls) => {
                path.push(!ls);
                self.descend(a, cnf, vals, path, leaves);
                path.pop();
                path.push(ls);
                self.descend(b, cnf, vals, path, leaves);
                path.pop();
            }
        }
    }

    fn descend(
        &self,
        child: SignalId,
        cnf: &mut Cnf,
        vals: &mut Vec<Option<SigVal>>,
        path: &mut Vec<Lit>,
        leaves: &mut Vec<(Vec<Lit>, SigVal)>,
    ) {
        if vals[child.index()].is_none() && path.len() < MAX_TREE_DEPTH {
            // A deferred MUX with room left in the tree: keep flattening.
            self.collect_leaves(child, cnf, vals, path, leaves);
            return;
        }
        let val = match vals[child.index()] {
            Some(v) => v,
            None => {
                // Deferred but the tree is full: materialize the child as
                // its own (sub-)root.
                let v = self.emit_mux_root(child, cnf, vals);
                vals[child.index()] = Some(v);
                v
            }
        };
        leaves.push((path.clone(), val));
    }
}

/// `out ↔ ∧ ins` (negated for NAND) with constant folding and aliasing.
fn and_val(cnf: &mut Cnf, ins: &[SigVal], negate: bool) -> SigVal {
    let mut lits: Vec<Lit> = Vec::with_capacity(ins.len());
    for v in ins {
        match v {
            SigVal::Const(false) => return SigVal::Const(negate),
            SigVal::Const(true) => {}
            SigVal::L(l) => {
                if lits.contains(&!*l) {
                    return SigVal::Const(negate);
                }
                if !lits.contains(l) {
                    lits.push(*l);
                }
            }
        }
    }
    match lits.len() {
        0 => SigVal::Const(!negate),
        1 => SigVal::L(if negate { !lits[0] } else { lits[0] }),
        _ => {
            let o = Lit::with_polarity(cnf.new_var(), !negate);
            tseytin::encode_and_lits(cnf, o, &lits);
            SigVal::L(Lit::positive(o.var()))
        }
    }
}

/// `out ↔ ∨ ins` (negated for NOR) with constant folding and aliasing.
fn or_val(cnf: &mut Cnf, ins: &[SigVal], negate: bool) -> SigVal {
    let mut lits: Vec<Lit> = Vec::with_capacity(ins.len());
    for v in ins {
        match v {
            SigVal::Const(true) => return SigVal::Const(!negate),
            SigVal::Const(false) => {}
            SigVal::L(l) => {
                if lits.contains(&!*l) {
                    return SigVal::Const(!negate);
                }
                if !lits.contains(l) {
                    lits.push(*l);
                }
            }
        }
    }
    match lits.len() {
        0 => SigVal::Const(negate),
        1 => SigVal::L(if negate { !lits[0] } else { lits[0] }),
        _ => {
            let o = Lit::with_polarity(cnf.new_var(), !negate);
            tseytin::encode_or_lits(cnf, o, &lits);
            SigVal::L(Lit::positive(o.var()))
        }
    }
}

/// `out ↔ ⊕ ins` (inverted for XNOR): constants fold into the parity,
/// equal/opposite literal pairs cancel, the rest chain through auxiliary
/// variables exactly like the generic encoder.
fn xor_val(cnf: &mut Cnf, ins: &[SigVal], invert: bool) -> SigVal {
    let mut parity = invert;
    let mut acc: Option<Lit> = None;
    for v in ins {
        let l = match v {
            SigVal::Const(c) => {
                parity ^= c;
                continue;
            }
            SigVal::L(l) => *l,
        };
        acc = match acc {
            None => Some(l),
            Some(a) if a == l => None,
            Some(a) if a == !l => {
                parity = !parity;
                None
            }
            Some(a) => {
                let x = Lit::positive(cnf.new_var());
                tseytin::encode_xor2_lits(cnf, x, a, l);
                Some(x)
            }
        };
    }
    match acc {
        None => SigVal::Const(parity),
        Some(a) => SigVal::L(if parity { !a } else { a }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fulllock_locking::{LockingScheme, LutLock, Rll};
    use fulllock_sat::cdcl::{SolveResult, Solver};

    #[test]
    fn encoding_respects_interface_split() {
        let host = fulllock_netlist::benchmarks::load("c17").unwrap();
        let locked = Rll::new(3, 0).lock(&host).unwrap();
        let mut cnf = Cnf::new();
        let data: Vec<Var> = (0..5).map(|_| cnf.new_var()).collect();
        let keys: Vec<Var> = (0..3).map(|_| cnf.new_var()).collect();
        let enc = encode_locked(&locked, &mut cnf, &data, &keys);
        assert_eq!(enc.output_vars.len(), 2);
        // Correct key + an input pattern must be a satisfying scenario:
        // check via the model against direct evaluation.
        let x = [true, false, true, true, false];
        let y = locked.eval(&x, &locked.correct_key).unwrap();
        let mut solver = Solver::from_cnf(&cnf);
        let mut assumptions: Vec<Lit> = Vec::new();
        for (i, &v) in data.iter().enumerate() {
            assumptions.push(Lit::with_polarity(v, x[i]));
        }
        for (i, &v) in keys.iter().enumerate() {
            assumptions.push(Lit::with_polarity(v, locked.correct_key.bits()[i]));
        }
        for (o, &v) in enc.output_vars.iter().enumerate() {
            assumptions.push(Lit::with_polarity(v, y[o]));
        }
        assert_eq!(solver.solve(&assumptions), SolveResult::Sat);
        // Flipping an output expectation must be UNSAT.
        let last = assumptions.len() - 1;
        assumptions[last] = !assumptions[last];
        assert_eq!(solver.solve(&assumptions), SolveResult::Unsat);
    }

    /// The cone-reduced observation encoding must admit exactly the keys
    /// whose evaluation reproduces the observation.
    #[test]
    fn observation_cone_accepts_exactly_consistent_keys() {
        let host = fulllock_netlist::benchmarks::load("c17").unwrap();
        for style in [EncodeStyle::Generic, EncodeStyle::Structured] {
            let locked = LutLock::new(2, 7).lock(&host).unwrap();
            let encoder = CircuitEncoder::new(&locked, style).unwrap();
            let x = [true, false, false, true, true];
            let y = locked.eval(&x, &locked.correct_key).unwrap();
            let mut cnf = Cnf::new();
            let key_vars: Vec<Var> = locked.key_inputs.iter().map(|_| cnf.new_var()).collect();
            encoder.encode_observation(&mut cnf, &x, &y, &key_vars);
            let mut solver = Solver::from_cnf(&cnf);
            // Every possible key: SAT iff eval matches the observation.
            for bits in 0..1u32 << key_vars.len() {
                let key: Vec<bool> = (0..key_vars.len()).map(|i| bits >> i & 1 == 1).collect();
                let assumptions: Vec<Lit> = key_vars
                    .iter()
                    .zip(&key)
                    .map(|(&v, &b)| Lit::with_polarity(v, b))
                    .collect();
                let consistent = locked
                    .eval(&x, &fulllock_locking::Key::from_bits(key.clone()))
                    .unwrap()
                    == y;
                assert_eq!(
                    solver.solve(&assumptions) == SolveResult::Sat,
                    consistent,
                    "style {style:?} key {bits:b}"
                );
            }
        }
    }

    /// Cone reduction must shrink the observation formula versus a full
    /// circuit copy.
    #[test]
    fn cone_is_smaller_than_full_copy() {
        let host = fulllock_netlist::benchmarks::load("c432").unwrap();
        let locked = LutLock::new(4, 3).lock(&host).unwrap();
        let x: Vec<bool> = (0..locked.data_inputs.len()).map(|i| i % 3 == 0).collect();
        let y = locked.eval(&x, &locked.correct_key).unwrap();

        let mut full = Cnf::new();
        let data: Vec<Var> = locked.data_inputs.iter().map(|_| full.new_var()).collect();
        let keys: Vec<Var> = locked.key_inputs.iter().map(|_| full.new_var()).collect();
        encode_locked(&locked, &mut full, &data, &keys);

        let mut cone = Cnf::new();
        let keys2: Vec<Var> = locked.key_inputs.iter().map(|_| cone.new_var()).collect();
        let encoder = CircuitEncoder::new(&locked, EncodeStyle::Structured).unwrap();
        encoder.encode_observation(&mut cone, &x, &y, &keys2);

        assert!(
            cone.num_clauses() * 4 < full.num_clauses(),
            "cone {} vs full {}",
            cone.num_clauses(),
            full.num_clauses()
        );
    }
}
