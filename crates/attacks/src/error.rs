use std::fmt;

/// Errors produced by the attack implementations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum AttackError {
    /// The locked circuit and oracle disagree on interface width.
    InterfaceMismatch {
        /// Data inputs of the locked circuit.
        locked_inputs: usize,
        /// Inputs of the oracle.
        oracle_inputs: usize,
    },
    /// An attack precondition failed (e.g. SPS on a cyclic netlist).
    Unsupported(String),
    /// Propagated netlist error.
    Netlist(fulllock_netlist::NetlistError),
    /// Propagated locking-layer error.
    Lock(fulllock_locking::LockError),
    /// A checkpoint file could not be read or written.
    CheckpointIo {
        /// Checkpoint path.
        path: std::path::PathBuf,
        /// Underlying I/O failure.
        message: String,
    },
    /// A checkpoint file parsed but its contents are invalid or
    /// incompatible with the attack / circuit being resumed.
    CheckpointFormat {
        /// Checkpoint path (empty when the text never came from a file).
        path: std::path::PathBuf,
        /// What is wrong.
        message: String,
    },
    /// A solver answer failed its certification check (a claimed model
    /// does not satisfy the formula, an UNSAT proof does not verify, or
    /// portfolio workers disagreed). The run aborts rather than returning
    /// a result built on an uncertified answer.
    Certification(fulllock_sat::CertifyError),
    /// The solver reported SAT but its model has no value for a variable
    /// the attack needs (a DIP bit or key bit). Silently substituting a
    /// default would fabricate oracle queries and keys; the run aborts.
    IncompleteModel {
        /// Index of the variable missing from the model.
        var: usize,
    },
    /// A wire-format attack report failed to decode (malformed JSON, a
    /// missing field, or an unsupported schema version).
    ReportFormat {
        /// What is wrong.
        message: String,
    },
    /// The activated-chip oracle failed to answer a query even after the
    /// configured retry / deadline budget (a persistently dead harness,
    /// not a one-off glitch — those are absorbed by the resilient layer).
    Oracle(crate::OracleError),
}

impl fmt::Display for AttackError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttackError::InterfaceMismatch {
                locked_inputs,
                oracle_inputs,
            } => write!(
                f,
                "locked circuit has {locked_inputs} data inputs but the oracle has {oracle_inputs}"
            ),
            AttackError::Unsupported(msg) => write!(f, "unsupported attack input: {msg}"),
            AttackError::Netlist(e) => write!(f, "netlist error: {e}"),
            AttackError::Lock(e) => write!(f, "locking error: {e}"),
            AttackError::CheckpointIo { path, message } => {
                write!(f, "checkpoint I/O error at {}: {message}", path.display())
            }
            AttackError::CheckpointFormat { path, message } => {
                if path.as_os_str().is_empty() {
                    write!(f, "invalid checkpoint: {message}")
                } else {
                    write!(f, "invalid checkpoint {}: {message}", path.display())
                }
            }
            AttackError::Certification(e) => write!(f, "solver answer failed certification: {e}"),
            AttackError::IncompleteModel { var } => {
                write!(f, "solver model has no value for variable {var}")
            }
            AttackError::ReportFormat { message } => {
                write!(f, "invalid attack report: {message}")
            }
            AttackError::Oracle(e) => write!(f, "oracle failure: {e}"),
        }
    }
}

impl std::error::Error for AttackError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AttackError::Netlist(e) => Some(e),
            AttackError::Lock(e) => Some(e),
            AttackError::Certification(e) => Some(e),
            AttackError::Oracle(e) => Some(e),
            _ => None,
        }
    }
}

impl From<fulllock_sat::CertifyError> for AttackError {
    fn from(e: fulllock_sat::CertifyError) -> Self {
        AttackError::Certification(e)
    }
}

impl From<crate::OracleError> for AttackError {
    fn from(e: crate::OracleError) -> Self {
        AttackError::Oracle(e)
    }
}

impl From<fulllock_netlist::NetlistError> for AttackError {
    fn from(e: fulllock_netlist::NetlistError) -> Self {
        AttackError::Netlist(e)
    }
}

impl From<fulllock_locking::LockError> for AttackError {
    fn from(e: fulllock_locking::LockError) -> Self {
        AttackError::Lock(e)
    }
}
