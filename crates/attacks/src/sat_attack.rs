//! The oracle-guided SAT attack (Subramanyan et al., HOST 2015).
//!
//! The attack maintains a *miter*: two copies of the locked circuit sharing
//! the data inputs `X` but carrying independent keys `K1`, `K2`, with the
//! constraint that some output differs. A model of the miter yields a
//! *Discriminating Input Pattern* (DIP): an input on which at least two
//! candidate keys disagree, so the oracle's answer on it rules at least one
//! of them out. The observed I/O pair is asserted for both key copies and
//! the loop repeats; when the miter goes UNSAT, no input distinguishes the
//! remaining keys and any key satisfying the accumulated constraints is
//! functionally correct.
//!
//! The instrumentation mirrors what the paper reports: iteration counts
//! (Tables 2 and 4), wall-clock time with a timeout, and the
//! clause/variable ratio of the growing formula (Fig 7).

use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use fulllock_locking::{Key, LockedCircuit};
use fulllock_netlist::topo;
use fulllock_sat::backend::{BackendSpec, SolveBackend};
use fulllock_sat::cdcl::{SolveLimits, SolveResult, SolverStats};
use fulllock_sat::{CertifyError, CertifyLevel, Cnf, Lit, Var};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::checkpoint::{AttackCheckpoint, IoPair};
use crate::encode::{encode_locked, CircuitEncoder, EncodeStyle, SigVal};
use crate::oracle::{Oracle, OracleResilience, ResilientOracle};
use crate::report::{Attack, AttackDetails, AttackReport, RunResilience};
use crate::{cycsat, AttackError, Result};

pub use crate::report::AttackOutcome;

/// Configuration of a SAT attack run.
#[derive(Debug, Clone, Copy)]
pub struct SatAttackConfig {
    /// Wall-clock budget; `None` runs to completion. (The paper's testbed
    /// used 2×10⁶ s; scaled-down budgets reproduce the same TO patterns.)
    pub timeout: Option<Duration>,
    /// Iteration budget; `None` is unlimited.
    pub max_iterations: Option<u64>,
    /// Add CycSAT no-structural-cycle clauses even for acyclic netlists
    /// (they are generated automatically whenever the netlist is cyclic).
    pub force_cycsat: bool,
    /// Which SAT engine answers the miter queries: one sequential solver
    /// or a racing portfolio.
    pub backend: BackendSpec,
    /// How much to trust the solver's answers (see
    /// [`CertifyLevel`]); a failed check aborts the run with
    /// [`AttackError::Certification`] instead of returning a result built
    /// on an uncertified answer.
    pub certify: CertifyLevel,
    /// Encode observed I/O pairs by constant-propagating the known DIP
    /// inputs and asserting only the key-dependent fanin cone, instead of
    /// appending two full circuit copies per iteration. Only applies to
    /// acyclic locked netlists (cyclic ones keep the full-copy + CycSAT
    /// path).
    pub cone_reduce: bool,
    /// Clause shapes the encoder emits (see [`EncodeStyle`]).
    pub encode_style: EncodeStyle,
    /// How the run survives a noisy, flaky, or rate-limited oracle:
    /// retry/vote/rate policy for every query, plus an UNSAT-diagnosis
    /// pass (a one-shot selector-gated re-solve over the recorded pairs)
    /// that quarantines poisoned answers instead of corrupting the
    /// verdict (see [`OracleResilience`]).
    pub resilience: OracleResilience,
}

impl Default for SatAttackConfig {
    /// The default reads [`CertifyLevel::from_env`] and
    /// [`OracleResilience::from_env`], so `FULLLOCK_CERTIFY=model` or
    /// `FULLLOCK_ORACLE_VOTES=3` configures a whole campaign without
    /// touching any call site.
    fn default() -> SatAttackConfig {
        SatAttackConfig {
            timeout: None,
            max_iterations: None,
            force_cycsat: false,
            backend: BackendSpec::default(),
            certify: CertifyLevel::from_env(),
            cone_reduce: true,
            encode_style: EncodeStyle::default(),
            resilience: OracleResilience::from_env(),
        }
    }
}

/// Result and instrumentation of a SAT attack run.
#[derive(Debug, Clone)]
pub struct SatAttackReport {
    /// Why the run ended.
    pub outcome: AttackOutcome,
    /// Completed DIP iterations.
    pub iterations: u64,
    /// Wall-clock time spent.
    pub elapsed: Duration,
    /// Oracle queries issued.
    pub oracle_queries: u64,
    /// Mean clause/variable ratio of the attack formula over iterations
    /// (Fig 7's metric).
    pub mean_clause_var_ratio: f64,
    /// Final formula size (variables, clauses).
    pub formula: (usize, usize),
    /// Solver statistics counters accumulated over the run.
    pub solver: SolverStats,
}

/// One step of the DIP loop (exposed for AppSAT).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Step {
    /// A DIP was found, queried, and asserted.
    Dip(Vec<bool>),
    /// No DIP remains: the key space is functionally collapsed.
    NoMoreDips,
    /// A resource limit was hit.
    Budget,
}

/// The incremental SAT-attack engine. [`Attack::run`] on
/// [`SatAttackConfig`] is the one-call version; instantiate this
/// directly to drive the loop yourself (AppSAT does).
pub struct SatAttack<'a> {
    locked: &'a LockedCircuit,
    oracle: &'a dyn Oracle,
    /// The oracle behind the resilience decorator: every DIP query goes
    /// through retry / rate-limit / majority-vote per the configured
    /// [`OracleResilience`] policy.
    resilient: ResilientOracle<&'a dyn Oracle>,
    config: SatAttackConfig,
    solver: Box<dyn SolveBackend>,
    cnf: Cnf,
    /// The cone-reduced structure-aware encoder; `None` for cyclic
    /// netlists (and under `force_cycsat`), which keep the legacy
    /// full-copy encoding.
    encoder: Option<CircuitEncoder<'a>>,
    transferred: usize,
    x_vars: Vec<Var>,
    k1_vars: Vec<Var>,
    k2_vars: Vec<Var>,
    act: Lit,
    start: Instant,
    deadline: Option<Instant>,
    iterations: u64,
    ratio_sum: f64,
    ratio_samples: u64,
    /// Every asserted I/O pair, in order — the semantic state a checkpoint
    /// persists (the CNF is re-derived from these on resume, and again by
    /// [`rebuild_solver`](Self::rebuild_solver) after a quarantine).
    /// Quarantined pairs stay in the log as evidence but are never
    /// encoded.
    io_log: Vec<IoPair>,
    /// Suspect I/O pairs re-queried under majority vote while healing.
    oracle_requeries: u64,
    /// Transient errors absorbed by ad-hoc re-query probes (folded into
    /// the main resilient wrapper's counter when reporting).
    extra_retries: u64,
    /// Where to write snapshots after each DIP; `None` disables
    /// checkpointing.
    checkpoint_path: Option<PathBuf>,
    checkpoints_written: u64,
    checkpoint_failures: u64,
    /// Best candidate key known so far (set by AppSAT's probes; persisted
    /// in checkpoints).
    candidate_key: Option<Key>,
    /// Attack name written into (and required of) checkpoints: `"sat"`
    /// unless a wrapping attack (AppSAT) relabels the engine.
    checkpoint_label: &'static str,
    /// Instrumentation restored from a checkpoint: the pre-crash run's
    /// elapsed time, oracle queries, and solver counters, folded into
    /// reports.
    prior_elapsed: Duration,
    prior_oracle_queries: u64,
    prior_solver: SolverStats,
    /// Worker failures reported by backends discarded in a
    /// [`rebuild_solver`](Self::rebuild_solver) (the live backend only
    /// knows its own).
    prior_worker_failures: Vec<String>,
    /// Oracle query count at engine construction — the shared oracle may
    /// have served earlier runs in this process.
    oracle_baseline: u64,
    resumed_from: Option<u64>,
    /// First certification failure observed on any solve; sticky — once
    /// set, the run's result cannot be trusted and the envelope aborts.
    certify_failure: Option<CertifyError>,
}

impl std::fmt::Debug for SatAttack<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SatAttack")
            .field("iterations", &self.iterations)
            .field("formula_vars", &self.cnf.num_vars())
            .field("formula_clauses", &self.cnf.num_clauses())
            .finish_non_exhaustive()
    }
}

/// The part of the engine state that [`SatAttack::rebuild_solver`]
/// replaces wholesale: the base formula (miter + CycSAT constraints),
/// the cone encoder, the interface variables, the activation literal,
/// and a fresh backend with the interface frozen.
struct EngineBase<'a> {
    cnf: Cnf,
    encoder: Option<CircuitEncoder<'a>>,
    x_vars: Vec<Var>,
    k1_vars: Vec<Var>,
    k2_vars: Vec<Var>,
    act: Lit,
    solver: Box<dyn SolveBackend>,
}

impl<'a> SatAttack<'a> {
    /// Builds the base formula and solver shared by [`new`](Self::new)
    /// and [`rebuild_solver`](Self::rebuild_solver): miter construction
    /// plus (for cyclic locked netlists) CycSAT no-cycle constraints on
    /// both key copies.
    fn build_base(locked: &'a LockedCircuit, config: &SatAttackConfig) -> EngineBase<'a> {
        let mut cnf = Cnf::new();
        let x_vars: Vec<Var> = locked.data_inputs.iter().map(|_| cnf.new_var()).collect();
        let k1_vars: Vec<Var> = locked.key_inputs.iter().map(|_| cnf.new_var()).collect();
        let k2_vars: Vec<Var> = locked.key_inputs.iter().map(|_| cnf.new_var()).collect();
        let needs_cycsat = config.force_cycsat || topo::is_cyclic(&locked.netlist);
        let encoder = if needs_cycsat {
            None
        } else {
            CircuitEncoder::new(locked, config.encode_style)
        };

        // Miter: OR over per-output XORs, gated by the activation literal
        // so key extraction can switch the miter off with an assumption.
        let diff_lits = if let Some(enc) = &encoder {
            let out1 = enc.encode_copy(&mut cnf, &x_vars, &k1_vars);
            let out2 = enc.encode_copy(&mut cnf, &x_vars, &k2_vars);
            miter_diff_lits(&mut cnf, &out1, &out2)
        } else {
            let copy1 = encode_locked(locked, &mut cnf, &x_vars, &k1_vars);
            let copy2 = encode_locked(locked, &mut cnf, &x_vars, &k2_vars);
            let mut diff_lits = Vec::with_capacity(copy1.output_vars.len());
            for (&a, &b) in copy1.output_vars.iter().zip(&copy2.output_vars) {
                let d = cnf.new_var();
                fulllock_sat::tseytin::encode_gate(
                    &mut cnf,
                    fulllock_netlist::GateKind::Xor,
                    d,
                    &[a, b],
                );
                diff_lits.push(Lit::positive(d));
            }
            diff_lits
        };
        let act = Lit::positive(cnf.new_var());
        let mut miter_clause = vec![!act];
        miter_clause.extend(diff_lits);
        cnf.add_clause(miter_clause);

        if needs_cycsat {
            cycsat::add_no_cycle_clauses(locked, &mut cnf, &k1_vars);
            cycsat::add_no_cycle_clauses(locked, &mut cnf, &k2_vars);
        }

        // The interface variables stay live across every incremental
        // solve: freeze them so inprocessing never eliminates them.
        let mut solver = config.backend.create_certified(config.certify);
        for &v in x_vars.iter().chain(&k1_vars).chain(&k2_vars) {
            solver.freeze_var(v);
        }
        solver.freeze_var(act.var());

        EngineBase {
            cnf,
            encoder,
            x_vars,
            k1_vars,
            k2_vars,
            act,
            solver,
        }
    }

    /// Builds the attack engine: miter construction plus (for cyclic locked
    /// netlists) CycSAT no-cycle constraints on both key copies.
    ///
    /// # Errors
    ///
    /// Returns [`AttackError::InterfaceMismatch`] if the oracle's width
    /// differs from the locked circuit's data interface.
    pub fn new(
        locked: &'a LockedCircuit,
        oracle: &'a dyn Oracle,
        config: SatAttackConfig,
    ) -> Result<SatAttack<'a>> {
        if oracle.num_inputs() != locked.data_inputs.len() {
            return Err(AttackError::InterfaceMismatch {
                locked_inputs: locked.data_inputs.len(),
                oracle_inputs: oracle.num_inputs(),
            });
        }
        let base = Self::build_base(locked, &config);

        let start = Instant::now();
        let mut attack = SatAttack {
            locked,
            oracle,
            resilient: ResilientOracle::new(oracle, config.resilience),
            config,
            solver: base.solver,
            cnf: base.cnf,
            encoder: base.encoder,
            transferred: 0,
            x_vars: base.x_vars,
            k1_vars: base.k1_vars,
            k2_vars: base.k2_vars,
            act: base.act,
            start,
            deadline: config.timeout.map(|t| start + t),
            iterations: 0,
            ratio_sum: 0.0,
            ratio_samples: 0,
            io_log: Vec::new(),
            oracle_requeries: 0,
            extra_retries: 0,
            checkpoint_path: None,
            checkpoints_written: 0,
            checkpoint_failures: 0,
            candidate_key: None,
            checkpoint_label: "sat",
            prior_elapsed: Duration::ZERO,
            prior_oracle_queries: 0,
            prior_solver: SolverStats::default(),
            prior_worker_failures: Vec::new(),
            oracle_baseline: oracle.queries(),
            resumed_from: None,
            certify_failure: None,
        };
        attack.transfer_clauses();
        Ok(attack)
    }

    /// Builds the engine and restores a previously saved checkpoint: the
    /// recorded I/O pairs are re-asserted (re-deriving the constraint
    /// formula without a single oracle query) and the iteration counters
    /// and cumulative instrumentation pick up where the snapshot left
    /// off. The engine keeps checkpointing to the same path.
    ///
    /// # Errors
    ///
    /// Everything [`new`](Self::new) returns, plus
    /// [`AttackError::CheckpointIo`] / [`AttackError::CheckpointFormat`]
    /// for an unreadable or incompatible checkpoint file.
    pub fn resume(
        locked: &'a LockedCircuit,
        oracle: &'a dyn Oracle,
        config: SatAttackConfig,
        path: &Path,
    ) -> Result<SatAttack<'a>> {
        let snapshot = AttackCheckpoint::load(path)?;
        let mut engine = SatAttack::new(locked, oracle, config)?;
        engine.restore(&snapshot)?;
        engine.set_checkpoint(path);
        Ok(engine)
    }

    /// Enables crash-safe checkpointing: after every completed DIP a
    /// snapshot is written atomically to `path` (best effort — a failed
    /// write is counted, not fatal).
    pub fn set_checkpoint(&mut self, path: impl Into<PathBuf>) {
        self.checkpoint_path = Some(path.into());
    }

    /// Relabels the attack name written into (and required of)
    /// checkpoints. A wrapping attack that drives this engine (AppSAT)
    /// sets its own name so its checkpoints never resume a different
    /// attack. Must be called before [`restore`](Self::restore).
    pub fn set_checkpoint_label(&mut self, label: &'static str) {
        self.checkpoint_label = label;
    }

    /// Restores a loaded snapshot into this (fresh) engine. Validates the
    /// attack name and interface widths, replays the recorded I/O pairs
    /// through [`assert_io`](Self::assert_io) (no oracle queries), and
    /// adopts the snapshot's counters.
    ///
    /// # Errors
    ///
    /// Returns [`AttackError::CheckpointFormat`] for an incompatible
    /// snapshot.
    pub fn restore(&mut self, snapshot: &AttackCheckpoint) -> Result<()> {
        snapshot.validate_for(
            self.checkpoint_label,
            self.locked.data_inputs.len(),
            self.locked.key_inputs.len(),
        )?;
        for pair in &snapshot.io_pairs {
            self.assert_pair(pair.clone());
        }
        self.iterations = snapshot.iterations;
        self.ratio_sum = snapshot.ratio_sum;
        self.ratio_samples = snapshot.ratio_samples;
        self.prior_elapsed = snapshot.elapsed;
        self.prior_oracle_queries = snapshot.oracle_queries;
        self.prior_solver = snapshot.solver;
        self.candidate_key = snapshot.candidate_key.clone();
        self.resumed_from = Some(snapshot.iterations);
        Ok(())
    }

    /// Completed DIP iterations so far (including iterations restored from
    /// a checkpoint).
    pub fn iterations(&self) -> u64 {
        self.iterations
    }

    /// Elapsed wall-clock time, including time restored from a checkpoint.
    pub fn elapsed(&self) -> Duration {
        self.prior_elapsed + self.start.elapsed()
    }

    /// Oracle queries attributable to this run: queries issued since
    /// construction plus queries restored from a checkpoint.
    pub fn oracle_queries(&self) -> u64 {
        self.prior_oracle_queries + (self.oracle.queries() - self.oracle_baseline)
    }

    /// The iteration count this engine resumed from, if it was restored
    /// from a checkpoint.
    pub fn resumed_from(&self) -> Option<u64> {
        self.resumed_from
    }

    /// Records the best candidate key known so far (persisted in
    /// checkpoints; AppSAT updates it after each settlement probe).
    pub fn set_candidate_key(&mut self, key: Key) {
        self.candidate_key = Some(key);
    }

    /// The best candidate key known so far (possibly restored from a
    /// checkpoint).
    pub fn candidate_key(&self) -> Option<&Key> {
        self.candidate_key.as_ref()
    }

    /// Builds a resumable snapshot of the current loop state.
    pub fn snapshot(&self) -> AttackCheckpoint {
        let mut cp = AttackCheckpoint::new(
            self.checkpoint_label,
            self.locked.data_inputs.len(),
            self.locked.key_inputs.len(),
        );
        cp.iterations = self.iterations;
        cp.candidate_key = self.candidate_key.clone();
        cp.ratio_sum = self.ratio_sum;
        cp.ratio_samples = self.ratio_samples;
        cp.elapsed = self.elapsed();
        cp.oracle_queries = self.oracle_queries();
        cp.solver = self.solver_stats();
        cp.io_pairs = self.io_log.clone();
        cp
    }

    /// Writes a snapshot to the configured checkpoint path now (no-op
    /// without [`set_checkpoint`](Self::set_checkpoint)). Best effort: a
    /// failed write increments the failure counter and the run continues —
    /// losing a snapshot must never kill an attack that is making
    /// progress.
    pub fn checkpoint_now(&mut self) {
        let Some(path) = self.checkpoint_path.clone() else {
            return;
        };
        match self.snapshot().save(&path) {
            Ok(()) => self.checkpoints_written += 1,
            Err(_) => self.checkpoint_failures += 1,
        }
    }

    /// Fault-tolerance record of the run so far: isolated worker panics,
    /// checkpoint activity, and the resume origin.
    pub fn resilience(&self) -> RunResilience {
        RunResilience {
            worker_panics: self.solver_stats().worker_panics,
            worker_failures: {
                let mut failures = self.prior_worker_failures.clone();
                failures.extend(self.solver.worker_failures());
                failures
            },
            resumed_from: self.resumed_from,
            checkpoints_written: self.checkpoints_written,
            checkpoint_failures: self.checkpoint_failures,
            oracle_retries: self.resilient.retries_absorbed() + self.extra_retries,
            oracle_requeries: self.oracle_requeries,
            quarantined_pairs: self.io_log.iter().filter(|p| p.quarantined).count() as u64,
        }
    }

    fn transfer_clauses(&mut self) {
        self.solver.ensure_vars(self.cnf.num_vars());
        for clause in &self.cnf.clauses()[self.transferred..] {
            self.solver.add_clause(clause);
        }
        self.transferred = self.cnf.num_clauses();
    }

    fn limits(&self) -> SolveLimits {
        let mut builder = SolveLimits::builder();
        if let Some(deadline) = self.deadline {
            builder = builder.deadline(deadline);
        }
        builder.build()
    }

    fn out_of_budget(&self) -> bool {
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                return true;
            }
        }
        if let Some(max) = self.config.max_iterations {
            if self.iterations >= max {
                return true;
            }
        }
        false
    }

    /// The last model's value for `var`.
    ///
    /// # Errors
    ///
    /// Returns [`AttackError::IncompleteModel`] if the model has no value
    /// for `var` — fabricating a default would silently corrupt DIPs and
    /// keys.
    fn model_bit(&self, var: Var) -> Result<bool> {
        self.solver
            .model_value(var)
            .ok_or(AttackError::IncompleteModel { var: var.index() })
    }

    /// Runs one DIP iteration: search, oracle query, constraint assertion.
    /// The oracle query goes through the resilient layer (retry, rate
    /// limit, majority vote per the configured policy).
    ///
    /// # Errors
    ///
    /// Returns [`AttackError::IncompleteModel`] if the solver claimed SAT
    /// with an incomplete model, and [`AttackError::Oracle`] if the
    /// oracle failed past the retry / deadline budget.
    pub fn step(&mut self) -> Result<Step> {
        if self.out_of_budget() {
            return Ok(Step::Budget);
        }
        match self.solver.solve_limited(&[self.act], self.limits()) {
            SolveResult::Unknown => {
                self.note_certify_failure();
                Ok(Step::Budget)
            }
            SolveResult::Unsat => Ok(Step::NoMoreDips),
            SolveResult::Sat => {
                let dip: Vec<bool> = self
                    .x_vars
                    .iter()
                    .map(|&v| self.model_bit(v))
                    .collect::<Result<_>>()?;
                let (response, votes) = self
                    .resilient
                    .query_voted(&dip)
                    .map_err(AttackError::Oracle)?;
                let mut pair = IoPair::new(dip.clone(), response);
                pair.votes = u64::from(votes);
                self.assert_pair(pair);
                self.iterations += 1;
                self.ratio_sum += self.cnf.clause_to_variable_ratio();
                self.ratio_samples += 1;
                self.checkpoint_now();
                Ok(Step::Dip(dip))
            }
        }
    }

    /// Asserts an observed I/O pair for both key copies (also used by
    /// AppSAT for its random-query reinforcement). Every pair is recorded
    /// in the checkpoint I/O log.
    ///
    /// On acyclic netlists (with [`SatAttackConfig::cone_reduce`] on, the
    /// default) the known inputs are constant-propagated and only the
    /// key-dependent fanin cone is encoded; otherwise two full circuit
    /// copies are appended as in the original attack.
    pub fn assert_io(&mut self, inputs: &[bool], outputs: &[bool]) {
        self.assert_pair(IoPair::new(inputs.to_vec(), outputs.to_vec()));
    }

    /// Asserts a recorded pair. Quarantined pairs (restored from a
    /// checkpoint or disabled by [`heal_unsat`](Self::heal_unsat)) stay
    /// in the log as evidence but are never encoded — so a `--resume`
    /// can never resurrect a poisoned constraint. The constraints go in
    /// ungated (identical to the historical trust-everything encoding,
    /// so guarding costs the DIP loop nothing); disabling a pair later
    /// is done by [`rebuild_solver`](Self::rebuild_solver).
    fn assert_pair(&mut self, pair: IoPair) {
        if pair.quarantined {
            self.io_log.push(pair);
            return;
        }
        {
            let SatAttack {
                locked,
                cnf,
                encoder,
                k1_vars,
                k2_vars,
                config,
                ..
            } = self;
            let inputs = &pair.inputs;
            let outputs = &pair.outputs;
            let cone = config.cone_reduce && encoder.is_some();
            if cone {
                let enc = encoder.as_ref().expect("cone implies encoder");
                for key_vars in [&*k1_vars, &*k2_vars] {
                    enc.encode_observation(cnf, inputs, outputs, key_vars);
                }
            } else {
                for key_vars in [&*k1_vars, &*k2_vars] {
                    let data_vars: Vec<Var> = inputs.iter().map(|_| cnf.new_var()).collect();
                    let enc = encode_locked(locked, cnf, &data_vars, key_vars);
                    for (slot, &v) in data_vars.iter().enumerate() {
                        cnf.add_clause([Lit::with_polarity(v, inputs[slot])]);
                    }
                    for (o, &v) in enc.output_vars.iter().enumerate() {
                        cnf.add_clause([Lit::with_polarity(v, outputs[o])]);
                    }
                }
            }
        }
        self.io_log.push(pair);
        self.transfer_clauses();
    }

    /// Extracts a key consistent with every constraint asserted so far
    /// (the miter is switched off via the activation literal). Returns
    /// `None` if the budget ran out or the constraints are unsatisfiable.
    ///
    /// # Errors
    ///
    /// Returns [`AttackError::IncompleteModel`] if the solver claimed SAT
    /// with an incomplete model.
    pub fn extract_key(&mut self) -> Result<Option<Key>> {
        self.solve_key().map(|(_, key)| key)
    }

    /// The key-extraction solve, also reporting the raw solver verdict so
    /// the self-healing loop can tell a genuine UNSAT (inconsistent
    /// constraints — an oracle lied) from a budget-induced Unknown.
    fn solve_key(&mut self) -> Result<(SolveResult, Option<Key>)> {
        let result = self.solver.solve_limited(&[!self.act], self.limits());
        match result {
            SolveResult::Sat => {
                let mut bits = Vec::with_capacity(self.k1_vars.len());
                for i in 0..self.k1_vars.len() {
                    bits.push(self.model_bit(self.k1_vars[i])?);
                }
                Ok((result, Some(Key::from_bits(bits))))
            }
            _ => {
                self.note_certify_failure();
                Ok((result, None))
            }
        }
    }

    /// Re-queries a stimulus under a boosted majority vote (at least
    /// three repetitions) — the trusted probe the healing paths use to
    /// decide whether a recorded answer was poison.
    ///
    /// # Errors
    ///
    /// Returns [`AttackError::Oracle`] if the oracle failed past its
    /// retry / deadline budget.
    fn requery(&mut self, inputs: &[bool]) -> Result<(Vec<bool>, u32)> {
        let mut policy = self.config.resilience;
        policy.votes = policy.votes.max(3) | 1;
        let probe = ResilientOracle::new(self.oracle, policy);
        let answer = probe.query_voted(inputs).map_err(AttackError::Oracle);
        self.extra_retries += probe.retries_absorbed();
        answer
    }

    /// Rebuilds the incremental solver from the surviving ledger: a fresh
    /// base formula plus every non-quarantined recorded pair, re-derived
    /// without a single oracle query (the same replay a checkpoint resume
    /// performs). Quarantine needs this because the hot-path constraints
    /// are asserted ungated and cannot be retracted from an incremental
    /// solver. Solver counters accumulate across rebuilds.
    fn rebuild_solver(&mut self) {
        self.prior_solver.merge(&self.solver.stats());
        self.prior_worker_failures
            .extend(self.solver.worker_failures());
        let base = Self::build_base(self.locked, &self.config);
        self.cnf = base.cnf;
        self.encoder = base.encoder;
        self.x_vars = base.x_vars;
        self.k1_vars = base.k1_vars;
        self.k2_vars = base.k2_vars;
        self.act = base.act;
        self.solver = base.solver;
        self.transferred = 0;
        self.transfer_clauses();
        for pair in std::mem::take(&mut self.io_log) {
            self.assert_pair(pair);
        }
    }

    /// Finds which recorded pairs make the key space unsatisfiable, via a
    /// one-shot diagnosis solve: every active pair's constraint is encoded
    /// over a single key copy and gated behind a fresh selector literal,
    /// and the formula is solved assuming every selector. The solver's
    /// [failed-assumption core](SolveBackend::final_assumption_core) then
    /// names the conflicting subset. Falls back to suspecting every
    /// active pair when no usable core comes back (a backend without core
    /// support, or a budget-induced Unknown).
    ///
    /// The diagnosis formula is built on demand precisely so the DIP
    /// loop's own encoding stays selector-free (and therefore as fast as
    /// the unguarded attack): the gating cost is paid only when an UNSAT
    /// key space actually needs explaining.
    fn diagnose_suspects(&mut self) -> Vec<usize> {
        let mut cnf = Cnf::new();
        let k_vars: Vec<Var> = self
            .locked
            .key_inputs
            .iter()
            .map(|_| cnf.new_var())
            .collect();
        let needs_cycsat = self.config.force_cycsat || topo::is_cyclic(&self.locked.netlist);
        if needs_cycsat {
            cycsat::add_no_cycle_clauses(self.locked, &mut cnf, &k_vars);
        }
        let cone = self.config.cone_reduce && self.encoder.is_some();
        let mut gated: Vec<(usize, Lit)> = Vec::new();
        for (i, pair) in self.io_log.iter().enumerate() {
            if pair.quarantined {
                continue;
            }
            let sel = Lit::positive(cnf.new_var());
            let start = cnf.num_clauses();
            if cone {
                let enc = self.encoder.as_ref().expect("cone implies encoder");
                enc.encode_observation(&mut cnf, &pair.inputs, &pair.outputs, &k_vars);
            } else {
                let data_vars: Vec<Var> = pair.inputs.iter().map(|_| cnf.new_var()).collect();
                let enc = encode_locked(self.locked, &mut cnf, &data_vars, &k_vars);
                for (slot, &v) in data_vars.iter().enumerate() {
                    cnf.add_clause([Lit::with_polarity(v, pair.inputs[slot])]);
                }
                for (o, &v) in enc.output_vars.iter().enumerate() {
                    cnf.add_clause([Lit::with_polarity(v, pair.outputs[o])]);
                }
            }
            cnf.gate_clauses_from(start, !sel);
            gated.push((i, sel));
        }
        let mut solver = self.config.backend.create_certified(self.config.certify);
        for &v in &k_vars {
            solver.freeze_var(v);
        }
        for &(_, sel) in &gated {
            solver.freeze_var(sel.var());
        }
        solver.ensure_vars(cnf.num_vars());
        for clause in cnf.clauses() {
            solver.add_clause(clause);
        }
        let assumps: Vec<Lit> = gated.iter().map(|&(_, sel)| sel).collect();
        let verdict = solver.solve_limited(&assumps, self.limits());
        if self.certify_failure.is_none() {
            self.certify_failure = solver.certify_failure();
        }
        if matches!(verdict, SolveResult::Unsat) {
            let core = solver.final_assumption_core();
            let suspects: Vec<usize> = gated
                .iter()
                .filter(|(_, sel)| core.contains(sel))
                .map(|&(i, _)| i)
                .collect();
            if !suspects.is_empty() {
                return suspects;
            }
        }
        gated.iter().map(|&(i, _)| i).collect()
    }

    /// Attempts to heal an UNSAT key space: diagnoses the conflicting
    /// pair subset ([`diagnose_suspects`](Self::diagnose_suspects)),
    /// re-queries each suspect under majority vote, quarantines every
    /// pair whose answer changed, rebuilds the solver from the surviving
    /// ledger, and re-asserts the trusted consensus in the poison's
    /// place. Returns whether anything changed (if not, the constraints
    /// are genuinely inconsistent and the run must report
    /// [`AttackOutcome::Inconclusive`]).
    fn heal_unsat(&mut self) -> Result<bool> {
        let suspects = self.diagnose_suspects();
        let mut changed = false;
        let mut replacements: Vec<IoPair> = Vec::new();
        for i in suspects {
            let inputs = self.io_log[i].inputs.clone();
            let (consensus, votes) = self.requery(&inputs)?;
            self.oracle_requeries += 1;
            if consensus == self.io_log[i].outputs {
                self.io_log[i].votes = self.io_log[i].votes.max(u64::from(votes));
                continue;
            }
            // The answer changed under majority vote: the recorded pair
            // was poison. Quarantine it and queue the trusted consensus
            // as a fresh pair.
            self.io_log[i].quarantined = true;
            changed = true;
            let mut replacement = IoPair::new(inputs, consensus);
            replacement.votes = u64::from(votes);
            replacements.push(replacement);
        }
        if changed {
            self.rebuild_solver();
            for replacement in replacements {
                self.assert_pair(replacement);
            }
            self.checkpoint_now();
        }
        Ok(changed)
    }

    /// Searches for a verification counterexample: a pattern where the
    /// locked circuit under `key` disagrees with the oracle. With
    /// guarding on, the oracle answers are taken under a boosted majority
    /// vote so a transient flip cannot fake (or mask) a mismatch; the
    /// returned response is therefore trusted enough to re-assert.
    fn find_mismatch(
        &mut self,
        key: &Key,
        samples: usize,
        seed: u64,
    ) -> Result<Option<(Vec<bool>, Vec<bool>)>> {
        let mut rng = StdRng::seed_from_u64(seed);
        let width = self.locked.data_inputs.len();
        let cyclic = topo::is_cyclic(&self.locked.netlist);
        let mut patterns: Vec<Vec<bool>> = vec![vec![false; width], vec![true; width]];
        patterns.extend((0..samples).map(|_| (0..width).map(|_| rng.gen_bool(0.5)).collect()));
        for x in patterns {
            let want = if self.config.resilience.guard {
                self.requery(&x)?.0
            } else {
                self.oracle.query(&x)
            };
            let ok = if cyclic {
                match self.locked.eval_cyclic(&x, key) {
                    Ok(eval) => {
                        eval.all_outputs_known()
                            && eval
                                .outputs
                                .iter()
                                .zip(&want)
                                .all(|(t, w)| t.to_bool() == Some(*w))
                    }
                    Err(_) => false,
                }
            } else {
                self.locked
                    .eval(&x, key)
                    .map(|got| got == want)
                    .unwrap_or(false)
            };
            if !ok {
                return Ok(Some((x, want)));
            }
        }
        Ok(None)
    }

    /// Records the backend's certification failure, if any (sticky: the
    /// first failure wins). Called after every solve that can yield
    /// `Unknown`.
    fn note_certify_failure(&mut self) {
        if self.certify_failure.is_none() {
            self.certify_failure = self.solver.certify_failure();
        }
    }

    /// The certification failure that poisoned this run, if any.
    pub fn certify_failure(&self) -> Option<&CertifyError> {
        self.certify_failure.as_ref()
    }

    /// Verifies a candidate key against the oracle on random patterns
    /// (plus the all-zeros / all-ones corners). For cyclic locked netlists
    /// the outputs must settle *and* match.
    pub fn verify_key(&self, key: &Key, samples: usize, seed: u64) -> bool {
        let mut rng = StdRng::seed_from_u64(seed);
        let width = self.locked.data_inputs.len();
        let cyclic = topo::is_cyclic(&self.locked.netlist);
        let mut patterns: Vec<Vec<bool>> = vec![vec![false; width], vec![true; width]];
        patterns.extend((0..samples).map(|_| (0..width).map(|_| rng.gen_bool(0.5)).collect()));
        for x in patterns {
            let want = self.oracle.query(&x);
            let ok = if cyclic {
                match self.locked.eval_cyclic(&x, key) {
                    Ok(eval) => {
                        eval.all_outputs_known()
                            && eval
                                .outputs
                                .iter()
                                .zip(&want)
                                .all(|(t, w)| t.to_bool() == Some(*w))
                    }
                    Err(_) => false,
                }
            } else {
                self.locked
                    .eval(&x, key)
                    .map(|got| got == want)
                    .unwrap_or(false)
            };
            if !ok {
                return false;
            }
        }
        true
    }

    /// Lifetime SAT-solver counters (merged across portfolio workers when
    /// the backend is a portfolio, and including counters restored from a
    /// checkpoint).
    pub fn solver_stats(&self) -> SolverStats {
        let mut stats = self.prior_solver;
        stats.merge(&self.solver.stats());
        stats
    }

    /// Runs the DIP loop to completion (or budget) and reports.
    ///
    /// With oracle guarding on (the default), the loop self-heals instead
    /// of trusting a poisoned ledger: a recovered key that fails
    /// verification triggers a trusted re-query reinforcement, and an
    /// UNSAT key space triggers assumption-core suspect extraction and
    /// quarantine ([`heal_unsat`](Self::heal_unsat)) — the run continues
    /// on the surviving constraints rather than silently reporting a
    /// wrong key or a spurious [`AttackOutcome::Inconclusive`].
    ///
    /// # Errors
    ///
    /// Returns [`AttackError::IncompleteModel`] if the solver ever claimed
    /// SAT with an incomplete model, and [`AttackError::Oracle`] if the
    /// oracle failed past its retry / deadline budget.
    pub fn run(&mut self) -> Result<SatAttackReport> {
        /// Upper bound on healing attempts: each UNSAT heal quarantines
        /// at least one pair (else the loop breaks), so this only guards
        /// against an oracle whose answers never stabilize.
        const MAX_HEALING_ROUNDS: u32 = 32;
        let mut healing_rounds = 0u32;
        let outcome = loop {
            match self.step()? {
                Step::Dip(_) => continue,
                Step::NoMoreDips => {
                    let (result, key) = self.solve_key()?;
                    match key {
                        Some(key) => match self.find_mismatch(&key, 32, 0xF17)? {
                            None => {
                                break AttackOutcome::KeyRecovered {
                                    key,
                                    verified: true,
                                }
                            }
                            Some((x, y)) => {
                                if self.config.resilience.guard
                                    && healing_rounds < MAX_HEALING_ROUNDS
                                {
                                    // The candidate is wrong on a trusted
                                    // observation: some asserted answer was
                                    // poison. Reinforce with the trusted
                                    // pair and keep iterating — the next
                                    // pass either finds a better key or
                                    // goes UNSAT and quarantines.
                                    healing_rounds += 1;
                                    self.oracle_requeries += 1;
                                    self.assert_pair(IoPair::new(x, y));
                                    self.checkpoint_now();
                                    continue;
                                }
                                break AttackOutcome::KeyRecovered {
                                    key,
                                    verified: false,
                                };
                            }
                        },
                        None => {
                            // Distinguish budget exhaustion from
                            // inconsistency.
                            if self.out_of_budget() {
                                break AttackOutcome::Timeout;
                            }
                            if matches!(result, SolveResult::Unsat)
                                && self.config.resilience.guard
                                && healing_rounds < MAX_HEALING_ROUNDS
                            {
                                healing_rounds += 1;
                                if self.heal_unsat()? {
                                    continue;
                                }
                            }
                            break AttackOutcome::Inconclusive;
                        }
                    }
                }
                Step::Budget => {
                    if self
                        .config
                        .max_iterations
                        .is_some_and(|m| self.iterations >= m)
                    {
                        break AttackOutcome::IterationLimit;
                    }
                    break AttackOutcome::Timeout;
                }
            }
        };
        Ok(self.report(outcome))
    }

    /// Builds a report for the given outcome using current instrumentation.
    pub fn report(&self, outcome: AttackOutcome) -> SatAttackReport {
        SatAttackReport {
            outcome,
            iterations: self.iterations,
            elapsed: self.elapsed(),
            oracle_queries: self.oracle_queries(),
            mean_clause_var_ratio: if self.ratio_samples == 0 {
                self.cnf.clause_to_variable_ratio()
            } else {
                self.ratio_sum / self.ratio_samples as f64
            },
            formula: (self.cnf.num_vars(), self.cnf.num_clauses()),
            solver: self.solver_stats(),
        }
    }
}

impl Attack for SatAttackConfig {
    fn name(&self) -> &'static str {
        "sat"
    }

    fn run(&self, locked: &LockedCircuit, oracle: &dyn Oracle) -> Result<AttackReport> {
        let mut engine = SatAttack::new(locked, oracle, *self)?;
        envelope(&mut engine)
    }

    fn run_checkpointed(
        &self,
        locked: &LockedCircuit,
        oracle: &dyn Oracle,
        checkpoint: &Path,
        resume: bool,
    ) -> Result<AttackReport> {
        let mut engine = if resume && checkpoint.exists() {
            SatAttack::resume(locked, oracle, *self, checkpoint)?
        } else {
            let mut engine = SatAttack::new(locked, oracle, *self)?;
            engine.set_checkpoint(checkpoint);
            engine
        };
        envelope(&mut engine)
    }
}

/// Runs the engine's DIP loop and folds the result into the common
/// envelope, capturing the fault-tolerance record and certifying any
/// recovered key with independent simulation + formal equivalence.
///
/// A certification failure on any solve aborts with
/// [`AttackError::Certification`] — an uncertified answer never becomes
/// a report.
fn envelope(engine: &mut SatAttack<'_>) -> Result<AttackReport> {
    let report = engine.run()?;
    if let Some(failure) = engine.certify_failure() {
        return Err(AttackError::Certification(failure.clone()));
    }
    let key_certificate = match &report.outcome {
        AttackOutcome::KeyRecovered { key, .. } => Some(crate::certificate::certify_key(
            engine.locked,
            engine.oracle,
            key,
            64,
            0xCE87,
        )),
        _ => None,
    };
    Ok(AttackReport {
        attack: "sat",
        outcome: report.outcome.clone(),
        iterations: report.iterations,
        elapsed: report.elapsed,
        oracle_queries: report.oracle_queries,
        solver: report.solver,
        resilience: engine.resilience(),
        key_certificate,
        details: AttackDetails::Sat(report),
    })
}

/// Builds the miter difference literals from two output encodings
/// (SigVal-level, so constant-folded copies shrink the miter):
///
/// * identical values (equal constants or the same literal) contribute
///   nothing — that output cannot distinguish keys;
/// * a constant against a literal contributes the literal with the
///   polarity that makes it "differs";
/// * opposite values (differing constants or `l` vs `!l`) are always
///   different, encoded as a unit-true variable so the miter clause is
///   trivially satisfied;
/// * two independent literals get a fresh XOR-defined difference variable.
fn miter_diff_lits(cnf: &mut Cnf, out1: &[SigVal], out2: &[SigVal]) -> Vec<Lit> {
    let mut diff_lits = Vec::with_capacity(out1.len());
    let always_different = |cnf: &mut Cnf, diff_lits: &mut Vec<Lit>| {
        let t = Lit::positive(cnf.new_var());
        cnf.add_clause([t]);
        diff_lits.push(t);
    };
    for (&a, &b) in out1.iter().zip(out2) {
        match (a, b) {
            (SigVal::Const(ca), SigVal::Const(cb)) => {
                if ca != cb {
                    always_different(cnf, &mut diff_lits);
                }
            }
            (SigVal::Const(c), SigVal::L(l)) | (SigVal::L(l), SigVal::Const(c)) => {
                // Differs exactly when the literal disagrees with the
                // constant.
                diff_lits.push(if c { !l } else { l });
            }
            (SigVal::L(la), SigVal::L(lb)) => {
                if la == lb {
                    continue;
                }
                if la == !lb {
                    always_different(cnf, &mut diff_lits);
                    continue;
                }
                let d = cnf.new_var();
                fulllock_sat::tseytin::encode_xor2_lits(cnf, Lit::positive(d), la, lb);
                diff_lits.push(Lit::positive(d));
            }
        }
    }
    diff_lits
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SimOracle;
    use fulllock_locking::{
        FullLock, FullLockConfig, LockingScheme, LutLock, PlrSpec, Rll, SarLock, WireSelection,
    };
    use fulllock_netlist::random::{generate, RandomCircuitConfig};
    use fulllock_netlist::{Netlist, Simulator};

    fn run_sat(
        locked: &fulllock_locking::LockedCircuit,
        oracle: &dyn Oracle,
        config: SatAttackConfig,
    ) -> SatAttackReport {
        SatAttack::new(locked, oracle, config)
            .unwrap()
            .run()
            .unwrap()
    }

    fn host(gates: usize, seed: u64) -> Netlist {
        generate(RandomCircuitConfig {
            inputs: 12,
            outputs: 6,
            gates,
            max_fanin: 3,
            seed,
        })
        .unwrap()
    }

    /// The recovered key must make the locked circuit equivalent to the
    /// oracle (not necessarily equal to the inserted key).
    fn assert_functionally_correct(
        original: &Netlist,
        locked: &fulllock_locking::LockedCircuit,
        key: &Key,
    ) {
        let sim = Simulator::new(original).unwrap();
        let mut rng = StdRng::seed_from_u64(77);
        for _ in 0..64 {
            let x: Vec<bool> = (0..original.inputs().len())
                .map(|_| rng.gen_bool(0.5))
                .collect();
            assert_eq!(locked.eval(&x, key).unwrap(), sim.run(&x).unwrap());
        }
    }

    #[test]
    fn breaks_rll() {
        let original = host(120, 1);
        let locked = Rll::new(12, 3).lock(&original).unwrap();
        let oracle = SimOracle::new(&original).unwrap();
        let report = run_sat(&locked, &oracle, SatAttackConfig::default());
        match report.outcome {
            AttackOutcome::KeyRecovered { key, verified } => {
                assert!(verified);
                assert_functionally_correct(&original, &locked, &key);
            }
            other => panic!("expected key recovery, got {other:?}"),
        }
        assert!(report.iterations >= 1);
        assert!(report.oracle_queries >= report.iterations);
    }

    #[test]
    fn breaks_lutlock() {
        let original = host(120, 2);
        let locked = LutLock::new(6, 1).lock(&original).unwrap();
        let oracle = SimOracle::new(&original).unwrap();
        let report = run_sat(&locked, &oracle, SatAttackConfig::default());
        match report.outcome {
            AttackOutcome::KeyRecovered { key, verified } => {
                assert!(verified);
                assert_functionally_correct(&original, &locked, &key);
            }
            other => panic!("expected key recovery, got {other:?}"),
        }
    }

    #[test]
    fn breaks_small_fulllock() {
        // A 4×4 PLR is within easy reach of the attack — the paper's point
        // is the growth rate, not impossibility at toy sizes.
        let original = host(150, 3);
        let config = FullLockConfig {
            plrs: vec![PlrSpec::new(4)],
            selection: WireSelection::Acyclic,
            twist_probability: 0.5,
            seed: 4,
        };
        let locked = FullLock::new(config).lock(&original).unwrap();
        let oracle = SimOracle::new(&original).unwrap();
        let report = run_sat(&locked, &oracle, SatAttackConfig::default());
        match report.outcome {
            AttackOutcome::KeyRecovered { key, verified } => {
                assert!(verified);
                assert_functionally_correct(&original, &locked, &key);
            }
            other => panic!("expected key recovery, got {other:?}"),
        }
    }

    #[test]
    fn sarlock_needs_an_iteration_per_key() {
        // SARLock over m bits forces ~2^m iterations: with m = 4 the
        // attack should need on the order of 15 DIPs.
        let original = host(100, 5);
        let locked = SarLock::new(4, 2).lock(&original).unwrap();
        let oracle = SimOracle::new(&original).unwrap();
        let report = run_sat(&locked, &oracle, SatAttackConfig::default());
        assert!(report.outcome.is_broken());
        assert!(
            report.iterations >= 10,
            "SARLock fell in {} iterations",
            report.iterations
        );
    }

    #[test]
    fn timeout_reports_timeout() {
        let original = generate(RandomCircuitConfig {
            inputs: 16,
            outputs: 8,
            gates: 500,
            max_fanin: 3,
            seed: 6,
        })
        .unwrap();
        let config = FullLockConfig {
            plrs: vec![PlrSpec::new(16)],
            selection: WireSelection::Acyclic,
            twist_probability: 0.5,
            seed: 7,
        };
        let locked = FullLock::new(config).lock(&original).unwrap();
        let oracle = SimOracle::new(&original).unwrap();
        let report = run_sat(
            &locked,
            &oracle,
            SatAttackConfig {
                timeout: Some(Duration::from_millis(50)),
                ..Default::default()
            },
        );
        assert_eq!(report.outcome, AttackOutcome::Timeout);
    }

    #[test]
    fn iteration_limit_reports_limit() {
        let original = host(100, 8);
        let locked = SarLock::new(8, 3).lock(&original).unwrap();
        let oracle = SimOracle::new(&original).unwrap();
        let report = run_sat(
            &locked,
            &oracle,
            SatAttackConfig {
                max_iterations: Some(3),
                ..Default::default()
            },
        );
        assert_eq!(report.outcome, AttackOutcome::IterationLimit);
        assert_eq!(report.iterations, 3);
    }

    #[test]
    fn interface_mismatch_detected() {
        let original = host(100, 9);
        let other = host(100, 10);
        let locked = Rll::new(4, 0).lock(&original).unwrap();
        let bigger = generate(RandomCircuitConfig {
            inputs: 20,
            outputs: 6,
            gates: 100,
            max_fanin: 3,
            seed: 11,
        })
        .unwrap();
        let oracle = SimOracle::new(&bigger).unwrap();
        assert!(matches!(
            SatAttack::new(&locked, &oracle, SatAttackConfig::default()),
            Err(AttackError::InterfaceMismatch { .. })
        ));
        let _ = other;
    }

    #[test]
    fn ratio_instrumentation_is_populated() {
        let original = host(120, 12);
        let locked = Rll::new(8, 4).lock(&original).unwrap();
        let oracle = SimOracle::new(&original).unwrap();
        let report = run_sat(&locked, &oracle, SatAttackConfig::default());
        assert!(report.mean_clause_var_ratio > 1.0);
        assert!(report.formula.0 > 0 && report.formula.1 > 0);
    }
}
