//! Removal attacks: excising the locking block and re-wiring around it.
//!
//! Against pure interconnect locking, an attacker who identifies the
//! routing block can cut it out and guess (or recover, e.g. from layout
//! proximity) the permutation it implemented. §4.2.2 of the paper argues
//! Full-Lock survives this *even in the attacker's best case* — perfect
//! recovery of the CLN's permutation — because the gates leading the CLN
//! were negated ("twisted") and only the CLN's key-configurable inverters
//! compensate.
//!
//! [`excise_cln`] models exactly that best case using the locker's own
//! insertion trace; [`RemovalStudy`] quantifies the residual error.

use fulllock_locking::{FullLockTrace, LockedCircuit};
use fulllock_netlist::{Netlist, SignalId, Simulator};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::oracle::Oracle;
use crate::report::{Attack, AttackDetails, AttackOutcome, AttackReport};
use crate::Result;

/// Outcome of a removal attempt.
#[derive(Debug, Clone)]
pub struct RemovalStudy {
    /// The bypassed netlist (CLN cut out, wires reconnected with the
    /// *correct* permutation — the attacker's best case).
    pub bypassed: Netlist,
    /// Fraction of sampled input patterns with any wrong output.
    pub error_rate: f64,
    /// Whether the bypass is exact on every sampled pattern (removal
    /// succeeded).
    pub recovered: bool,
}

/// Cuts every CLN out of a Full-Lock-ed netlist, reconnecting each routed
/// wire directly to its source **with the correct permutation** (perfect
/// routing recovery). Key inputs remain as dangling ports; LUTs, if any,
/// keep their (unknown-key) MUX trees in place.
///
/// The result is what an ideal removal attacker obtains; its functional
/// error against the oracle is Full-Lock's removal resistance.
pub fn excise_cln(locked: &LockedCircuit, trace: &FullLockTrace) -> Netlist {
    let mut nl = locked.netlist.clone();
    for plr in &trace.plrs {
        for (token, &source) in plr.sources.iter().enumerate() {
            let cln_output = plr.cln_outputs[plr.permutation[token]];
            // Readers of the CLN output now read the (possibly negated)
            // source wire directly.
            nl.redirect_fanouts(cln_output, source, &[])
                .expect("trace signals are valid in the locked netlist");
        }
    }
    let (swept, _) = nl.sweep();
    swept
}

/// Runs the best-case removal attack against a Full-Lock circuit and
/// measures the residual functional error on `samples` random patterns,
/// with the reference function taken from any [`Oracle`] (an activated
/// chip).
///
/// `key_guess_zero`: the dangling key inputs of the bypassed netlist (LUT
/// keys, if LUTs were enabled) are driven with zeros — the attacker has no
/// better information once the CLN is gone.
///
/// # Example
///
/// ```no_run
/// use fulllock_attacks::{removal, SimOracle};
/// use fulllock_locking::{FullLock, FullLockConfig};
/// use fulllock_netlist::benchmarks;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let original = benchmarks::load("c432")?;
/// let (locked, trace) =
///     FullLock::new(FullLockConfig::single_plr(16)).lock_with_trace(&original)?;
/// let oracle = SimOracle::new(&original)?;
/// let study = removal::study_with_oracle(&locked, &trace, &oracle, 500, 0)?;
/// assert!(!study.recovered); // twisting defeats even perfect routing recovery
/// # Ok(())
/// # }
/// ```
///
/// # Errors
///
/// Propagates simulation errors (the bypassed netlist of an acyclic lock
/// is acyclic).
pub fn study_with_oracle(
    locked: &LockedCircuit,
    trace: &FullLockTrace,
    oracle: &dyn Oracle,
    samples: usize,
    seed: u64,
) -> Result<RemovalStudy> {
    let bypassed = excise_cln(locked, trace);
    let sim = Simulator::new(&bypassed)?;

    // Bypassed inputs = data inputs + (dangling) key inputs, in the same
    // positions as the locked netlist (sweep preserves input order).
    let mut rng = StdRng::seed_from_u64(seed);
    let data_positions: Vec<usize> = locked
        .data_inputs
        .iter()
        .map(|&d| {
            locked
                .netlist
                .inputs()
                .iter()
                .position(|&i| i == d)
                .expect("data inputs are primary inputs")
        })
        .collect();
    let mut wrong = 0usize;
    for _ in 0..samples {
        let x: Vec<bool> = (0..oracle.num_inputs())
            .map(|_| rng.gen_bool(0.5))
            .collect();
        let mut full = vec![false; bypassed.inputs().len()];
        for (slot, &pos) in data_positions.iter().enumerate() {
            full[pos] = x[slot];
        }
        if sim.run(&full)? != oracle.query(&x) {
            wrong += 1;
        }
    }
    let error_rate = wrong as f64 / samples.max(1) as f64;
    Ok(RemovalStudy {
        bypassed,
        error_rate,
        recovered: wrong == 0,
    })
}

/// The best-case removal attack as an [`Attack`] object. Carries the
/// locker's insertion trace (the attacker's assumed perfect structural
/// knowledge) plus sampling parameters.
#[derive(Debug, Clone)]
pub struct Removal {
    /// The locker's insertion trace — models perfect identification and
    /// routing recovery of every CLN.
    pub trace: FullLockTrace,
    /// Random patterns for the residual-error measurement.
    pub samples: usize,
    /// RNG seed for those patterns.
    pub seed: u64,
}

impl Removal {
    /// A removal attack with the default sampling budget (500 patterns).
    pub fn new(trace: FullLockTrace) -> Removal {
        Removal {
            trace,
            samples: 500,
            seed: 0,
        }
    }
}

impl Attack for Removal {
    fn name(&self) -> &'static str {
        "removal"
    }

    fn run(&self, locked: &LockedCircuit, oracle: &dyn Oracle) -> Result<AttackReport> {
        let start = std::time::Instant::now();
        let study = study_with_oracle(locked, &self.trace, oracle, self.samples, self.seed)?;
        Ok(AttackReport {
            attack: "removal",
            outcome: AttackOutcome::Bypassed {
                error_rate: study.error_rate,
                exact: study.recovered,
            },
            iterations: 0,
            elapsed: start.elapsed(),
            oracle_queries: oracle.queries(),
            solver: Default::default(),
            resilience: Default::default(),
            key_certificate: None,
            details: AttackDetails::Removal(study),
        })
    }
}

/// Counts the gates an attacker can structurally identify as key logic
/// (the fan-out cone of the key inputs) — the identification step every
/// removal attack starts from.
pub fn key_logic_cone(locked: &LockedCircuit) -> Vec<SignalId> {
    let fanouts = locked.netlist.fanouts();
    let mut tainted = vec![false; locked.netlist.len()];
    let mut stack: Vec<SignalId> = locked.key_inputs.clone();
    for &k in &locked.key_inputs {
        tainted[k.index()] = true;
    }
    while let Some(s) = stack.pop() {
        for &g in &fanouts[s.index()] {
            if !tainted[g.index()] {
                tainted[g.index()] = true;
                stack.push(g);
            }
        }
    }
    locked
        .netlist
        .signals()
        .filter(|s| tainted[s.index()] && !locked.key_inputs.contains(s))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SimOracle;
    use fulllock_locking::{FullLock, FullLockConfig, PlrSpec, WireSelection};
    use fulllock_netlist::random::{generate, RandomCircuitConfig};

    fn host(seed: u64) -> Netlist {
        generate(RandomCircuitConfig {
            inputs: 12,
            outputs: 6,
            gates: 150,
            max_fanin: 3,
            seed,
        })
        .unwrap()
    }

    fn lock_config(twist: f64, luts: bool) -> FullLockConfig {
        FullLockConfig {
            plrs: vec![PlrSpec {
                cln_size: 8,
                topology: fulllock_locking::ClnTopology::AlmostNonBlocking,
                with_luts: luts,
                with_inverters: true,
            }],
            selection: WireSelection::Acyclic,
            twist_probability: twist,
            seed: 21,
        }
    }

    #[test]
    fn untwisted_cln_only_lock_falls_to_removal() {
        // Without twisting (and without LUTs), perfect routing recovery
        // restores the original function exactly — pure interconnect
        // locking is removable.
        let original = host(1);
        let (locked, trace) = FullLock::new(lock_config(0.0, false))
            .lock_with_trace(&original)
            .unwrap();
        let study = study_with_oracle(&locked, &trace, &SimOracle::new(&original).unwrap(), 200, 3)
            .unwrap();
        assert!(study.recovered, "error rate {}", study.error_rate);
    }

    #[test]
    fn twisted_fulllock_survives_removal() {
        // With twisting, the same best-case removal leaves negated gates
        // uncompensated: the bypassed circuit is functionally wrong.
        let original = host(2);
        let (locked, trace) = FullLock::new(lock_config(1.0, false))
            .lock_with_trace(&original)
            .unwrap();
        let study = study_with_oracle(&locked, &trace, &SimOracle::new(&original).unwrap(), 200, 4)
            .unwrap();
        assert!(!study.recovered);
        assert!(
            study.error_rate > 0.1,
            "twisting should corrupt the bypass: {}",
            study.error_rate
        );
    }

    #[test]
    fn luts_also_defeat_removal() {
        // Even untwisted, LUT replacement leaves unknown logic behind when
        // the CLN is cut out (keys guessed as zero).
        let original = host(3);
        let (locked, trace) = FullLock::new(lock_config(0.0, true))
            .lock_with_trace(&original)
            .unwrap();
        let study = study_with_oracle(&locked, &trace, &SimOracle::new(&original).unwrap(), 200, 5)
            .unwrap();
        assert!(!study.recovered);
    }

    #[test]
    fn key_cone_covers_the_plr() {
        let original = host(4);
        let (locked, _) = FullLock::new(lock_config(0.5, true))
            .lock_with_trace(&original)
            .unwrap();
        let cone = key_logic_cone(&locked);
        // The CLN alone has stages · (N MUXes + N XORs) gates; the cone
        // must at least cover them.
        assert!(cone.len() > 50, "cone only {} gates", cone.len());
    }
}
