//! The versioned wire encoding of [`AttackReport`] — one stable JSON
//! schema shared by the serve protocol, the CLI `--json` output, and the
//! checkpoint files (which reuse the [`SolverStats`] codec here).
//!
//! Three consumers used to grow three ad-hoc encodings; this module is
//! the single one. Every document carries a `schema_version` field
//! ([`WIRE_VERSION`]); decoding any other version fails with a typed
//! [`AttackError::ReportFormat`] rather than guessing.
//!
//! Two deliberate asymmetries keep the format small and stable:
//!
//! * **Details are summarized.** [`AttackDetails`] payloads hold
//!   process-local data (the removal study's entire bypassed netlist,
//!   for one) that has no business on a wire. Encoding emits a compact
//!   per-attack summary object; decoding yields
//!   [`AttackDetails::Wire`] holding that summary verbatim. Re-encoding
//!   a decoded report therefore reproduces the same bytes — the
//!   canonical round-trip property the proptests pin down.
//! * **Unknown trailing fields are ignored**, so a newer writer's extra
//!   fields do not break an older reader; a *missing* required field or
//!   a wrong type is always an error.
//!
//! ```
//! use fulllock_attacks::AttackReport;
//!
//! # fn demo(report: &AttackReport) -> Result<(), fulllock_attacks::AttackError> {
//! let text = report.to_json();
//! let back = AttackReport::from_json(&text)?;
//! assert_eq!(back.to_json(), text); // canonical round trip
//! # Ok(())
//! # }
//! ```

use std::time::Duration;

use fulllock_locking::Key;
use fulllock_sat::cdcl::SolverStats;

use crate::json::Json;
use crate::report::{
    AttackDetails, AttackOutcome, AttackReport, FormalVerdict, KeyCertificate, RunResilience,
};
use crate::{AttackError, Result};

/// Schema version written into every wire document. Bump on any change
/// that an old reader would misinterpret silently.
pub const WIRE_VERSION: u64 = 1;

/// The attack names [`AttackReport::from_json`] accepts, interned so the
/// decoded report can keep the `&'static str` field.
const KNOWN_ATTACKS: [&str; 5] = ["sat", "appsat", "double-dip", "removal", "sps"];

fn err(message: impl Into<String>) -> AttackError {
    AttackError::ReportFormat {
        message: message.into(),
    }
}

/// Encodes solver counters as a JSON object — the one [`SolverStats`]
/// codec, shared between wire reports and attack checkpoints.
pub fn solver_stats_to_json(stats: &SolverStats) -> Json {
    Json::Object(vec![
        ("decisions".into(), Json::Int(stats.decisions)),
        ("propagations".into(), Json::Int(stats.propagations)),
        ("conflicts".into(), Json::Int(stats.conflicts)),
        ("restarts".into(), Json::Int(stats.restarts)),
        ("deleted_learnts".into(), Json::Int(stats.deleted_learnts)),
        (
            "minimized_literals".into(),
            Json::Int(stats.minimized_literals),
        ),
        ("reductions".into(), Json::Int(stats.reductions)),
        (
            "lbd_histogram".into(),
            Json::Array(stats.lbd_histogram.iter().map(|&n| Json::Int(n)).collect()),
        ),
        ("propagate_ns".into(), Json::Int(stats.propagate_ns)),
        ("analyze_ns".into(), Json::Int(stats.analyze_ns)),
        ("worker_panics".into(), Json::Int(stats.worker_panics)),
        ("exchange_rejects".into(), Json::Int(stats.exchange_rejects)),
        ("certified_models".into(), Json::Int(stats.certified_models)),
        ("solves".into(), Json::Int(stats.solves)),
        ("learnts_carried".into(), Json::Int(stats.learnts_carried)),
        ("inprocessings".into(), Json::Int(stats.inprocessings)),
        ("vars_eliminated".into(), Json::Int(stats.vars_eliminated)),
        ("clauses_subsumed".into(), Json::Int(stats.clauses_subsumed)),
        (
            "clauses_strengthened".into(),
            Json::Int(stats.clauses_strengthened),
        ),
        (
            "vivification_shrinks".into(),
            Json::Int(stats.vivification_shrinks),
        ),
    ])
}

/// Decodes solver counters from [`solver_stats_to_json`]'s object form.
/// Counters added after the format first shipped default to zero when
/// absent, so older files keep loading.
///
/// # Errors
///
/// Returns a description of the first malformed core field.
pub fn solver_stats_from_json(json: &Json) -> std::result::Result<SolverStats, String> {
    let stat = |name: &str| {
        json.get(name)
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("solver field {name:?} must be an unsigned integer"))
    };
    let late_stat = |name: &str| json.get(name).and_then(Json::as_u64).unwrap_or(0);
    let mut lbd_histogram = [0u64; 8];
    let hist = json
        .get("lbd_histogram")
        .and_then(Json::as_array)
        .ok_or("solver field \"lbd_histogram\" must be an array")?;
    if hist.len() != lbd_histogram.len() {
        return Err(format!(
            "solver field \"lbd_histogram\" must have {} buckets",
            lbd_histogram.len()
        ));
    }
    for (bucket, value) in lbd_histogram.iter_mut().zip(hist) {
        *bucket = value
            .as_u64()
            .ok_or("lbd_histogram buckets must be unsigned integers")?;
    }
    Ok(SolverStats {
        decisions: stat("decisions")?,
        propagations: stat("propagations")?,
        conflicts: stat("conflicts")?,
        restarts: stat("restarts")?,
        deleted_learnts: stat("deleted_learnts")?,
        minimized_literals: stat("minimized_literals")?,
        reductions: stat("reductions")?,
        lbd_histogram,
        propagate_ns: stat("propagate_ns")?,
        analyze_ns: stat("analyze_ns")?,
        worker_panics: stat("worker_panics")?,
        // Fields added after the first on-disk files shipped; absent in
        // older documents, so default to zero rather than rejecting them.
        exchange_rejects: late_stat("exchange_rejects"),
        certified_models: late_stat("certified_models"),
        solves: late_stat("solves"),
        learnts_carried: late_stat("learnts_carried"),
        inprocessings: late_stat("inprocessings"),
        vars_eliminated: late_stat("vars_eliminated"),
        clauses_subsumed: late_stat("clauses_subsumed"),
        clauses_strengthened: late_stat("clauses_strengthened"),
        vivification_shrinks: late_stat("vivification_shrinks"),
    })
}

fn key_to_json(key: &Key) -> Json {
    Json::Str(key.to_string())
}

fn key_from_json(json: &Json, context: &str) -> Result<Key> {
    json.as_str()
        .ok_or_else(|| err(format!("{context} must be a bit string")))?
        .parse::<Key>()
        .map_err(|e| err(format!("{context}: {e}")))
}

/// Encodes an outcome as a `kind`-tagged object.
pub fn outcome_to_json(outcome: &AttackOutcome) -> Json {
    let kind = |k: &str| ("kind".to_string(), Json::Str(k.to_string()));
    match outcome {
        AttackOutcome::KeyRecovered { key, verified } => Json::Object(vec![
            kind("key_recovered"),
            ("key".into(), key_to_json(key)),
            ("verified".into(), Json::Bool(*verified)),
        ]),
        AttackOutcome::ApproximateKey {
            key,
            measured_error,
        } => Json::Object(vec![
            kind("approximate_key"),
            ("key".into(), key_to_json(key)),
            ("measured_error".into(), Json::Float(*measured_error)),
        ]),
        AttackOutcome::Bypassed { error_rate, exact } => Json::Object(vec![
            kind("bypassed"),
            ("error_rate".into(), Json::Float(*error_rate)),
            ("exact".into(), Json::Bool(*exact)),
        ]),
        AttackOutcome::Defeated { reason } => Json::Object(vec![
            kind("defeated"),
            ("reason".into(), Json::Str(reason.clone())),
        ]),
        AttackOutcome::Timeout => Json::Object(vec![kind("timeout")]),
        AttackOutcome::IterationLimit => Json::Object(vec![kind("iteration_limit")]),
        AttackOutcome::Inconclusive => Json::Object(vec![kind("inconclusive")]),
    }
}

/// Decodes an outcome from its `kind`-tagged object form.
///
/// # Errors
///
/// Returns [`AttackError::ReportFormat`] on a missing/unknown `kind` or
/// malformed payload fields.
pub fn outcome_from_json(json: &Json) -> Result<AttackOutcome> {
    let kind = json
        .get("kind")
        .and_then(Json::as_str)
        .ok_or_else(|| err("outcome must be an object with a \"kind\" string"))?;
    let float = |name: &str| {
        json.get(name)
            .and_then(Json::as_f64)
            .ok_or_else(|| err(format!("outcome field {name:?} must be a number")))
    };
    let boolean = |name: &str| {
        json.get(name)
            .and_then(Json::as_bool)
            .ok_or_else(|| err(format!("outcome field {name:?} must be a boolean")))
    };
    match kind {
        "key_recovered" => Ok(AttackOutcome::KeyRecovered {
            key: key_from_json(
                json.get("key").ok_or_else(|| err("missing outcome key"))?,
                "outcome field \"key\"",
            )?,
            verified: boolean("verified")?,
        }),
        "approximate_key" => Ok(AttackOutcome::ApproximateKey {
            key: key_from_json(
                json.get("key").ok_or_else(|| err("missing outcome key"))?,
                "outcome field \"key\"",
            )?,
            measured_error: float("measured_error")?,
        }),
        "bypassed" => Ok(AttackOutcome::Bypassed {
            error_rate: float("error_rate")?,
            exact: boolean("exact")?,
        }),
        "defeated" => Ok(AttackOutcome::Defeated {
            reason: json
                .get("reason")
                .and_then(Json::as_str)
                .ok_or_else(|| err("outcome field \"reason\" must be a string"))?
                .to_string(),
        }),
        "timeout" => Ok(AttackOutcome::Timeout),
        "iteration_limit" => Ok(AttackOutcome::IterationLimit),
        "inconclusive" => Ok(AttackOutcome::Inconclusive),
        other => Err(err(format!("unknown outcome kind {other:?}"))),
    }
}

/// Encodes the resilience record.
pub fn resilience_to_json(r: &RunResilience) -> Json {
    Json::Object(vec![
        ("worker_panics".into(), Json::Int(r.worker_panics)),
        (
            "worker_failures".into(),
            Json::Array(
                r.worker_failures
                    .iter()
                    .map(|s| Json::Str(s.clone()))
                    .collect(),
            ),
        ),
        (
            "resumed_from".into(),
            match r.resumed_from {
                Some(n) => Json::Int(n),
                None => Json::Null,
            },
        ),
        (
            "checkpoints_written".into(),
            Json::Int(r.checkpoints_written),
        ),
        (
            "checkpoint_failures".into(),
            Json::Int(r.checkpoint_failures),
        ),
        ("oracle_retries".into(), Json::Int(r.oracle_retries)),
        ("oracle_requeries".into(), Json::Int(r.oracle_requeries)),
        ("quarantined_pairs".into(), Json::Int(r.quarantined_pairs)),
    ])
}

/// Decodes the resilience record.
///
/// # Errors
///
/// Returns [`AttackError::ReportFormat`] on malformed fields.
pub fn resilience_from_json(json: &Json) -> Result<RunResilience> {
    let int = |name: &str| {
        json.get(name).and_then(Json::as_u64).ok_or_else(|| {
            err(format!(
                "resilience field {name:?} must be an unsigned integer"
            ))
        })
    };
    let failures = json
        .get("worker_failures")
        .and_then(Json::as_array)
        .ok_or_else(|| err("resilience field \"worker_failures\" must be an array"))?
        .iter()
        .map(|v| {
            v.as_str()
                .map(str::to_string)
                .ok_or_else(|| err("worker_failures entries must be strings"))
        })
        .collect::<Result<Vec<_>>>()?;
    let resumed_from =
        match json.get("resumed_from") {
            None | Some(Json::Null) => None,
            Some(v) => Some(v.as_u64().ok_or_else(|| {
                err("resilience field \"resumed_from\" must be an integer or null")
            })?),
        };
    // Oracle-resilience counters postdate the first wire documents;
    // absent fields default to zero so older reports keep decoding.
    let late_int = |name: &str| json.get(name).and_then(Json::as_u64).unwrap_or(0);
    Ok(RunResilience {
        worker_panics: int("worker_panics")?,
        worker_failures: failures,
        resumed_from,
        checkpoints_written: int("checkpoints_written")?,
        checkpoint_failures: int("checkpoint_failures")?,
        oracle_retries: late_int("oracle_retries"),
        oracle_requeries: late_int("oracle_requeries"),
        quarantined_pairs: late_int("quarantined_pairs"),
    })
}

fn verdict_to_json(verdict: &FormalVerdict) -> Json {
    match verdict {
        FormalVerdict::Equivalent => Json::Str("equivalent".into()),
        FormalVerdict::NotEquivalent => Json::Str("not_equivalent".into()),
        FormalVerdict::Unknown => Json::Str("unknown".into()),
        FormalVerdict::Unavailable(reason) => {
            Json::Object(vec![("unavailable".to_string(), Json::Str(reason.clone()))])
        }
    }
}

fn verdict_from_json(json: &Json) -> Result<FormalVerdict> {
    if let Some(s) = json.as_str() {
        return match s {
            "equivalent" => Ok(FormalVerdict::Equivalent),
            "not_equivalent" => Ok(FormalVerdict::NotEquivalent),
            "unknown" => Ok(FormalVerdict::Unknown),
            other => Err(err(format!("unknown formal verdict {other:?}"))),
        };
    }
    json.get("unavailable")
        .and_then(Json::as_str)
        .map(|reason| FormalVerdict::Unavailable(reason.to_string()))
        .ok_or_else(|| err("formal verdict must be a string or an {\"unavailable\": ...} object"))
}

/// Encodes a key certificate.
pub fn certificate_to_json(cert: &KeyCertificate) -> Json {
    Json::Object(vec![
        ("samples".into(), Json::Int(cert.samples)),
        ("mismatches".into(), Json::Int(cert.mismatches)),
        ("formal".into(), verdict_to_json(&cert.formal)),
    ])
}

/// Decodes a key certificate.
///
/// # Errors
///
/// Returns [`AttackError::ReportFormat`] on malformed fields.
pub fn certificate_from_json(json: &Json) -> Result<KeyCertificate> {
    let int = |name: &str| {
        json.get(name).and_then(Json::as_u64).ok_or_else(|| {
            err(format!(
                "certificate field {name:?} must be an unsigned integer"
            ))
        })
    };
    Ok(KeyCertificate {
        samples: int("samples")?,
        mismatches: int("mismatches")?,
        formal: verdict_from_json(
            json.get("formal")
                .ok_or_else(|| err("certificate is missing field \"formal\""))?,
        )?,
    })
}

/// Summarizes attack-specific details for the wire: a `type`-tagged
/// object of the scalar fields worth reading off a remote report. The
/// heavy process-local payloads (netlists, keys already present in the
/// outcome) stay behind; a decoded [`AttackDetails::Wire`] re-emits its
/// summary verbatim.
pub fn details_to_json(details: &AttackDetails) -> Json {
    let tag = |t: &str| ("type".to_string(), Json::Str(t.to_string()));
    match details {
        AttackDetails::Sat(r) => Json::Object(vec![
            tag("sat"),
            (
                "mean_clause_var_ratio".into(),
                Json::Float(r.mean_clause_var_ratio),
            ),
            ("formula_vars".into(), Json::Int(r.formula.0 as u64)),
            ("formula_clauses".into(), Json::Int(r.formula.1 as u64)),
        ]),
        AttackDetails::AppSat(r) => Json::Object(vec![
            tag("appsat"),
            ("measured_error".into(), Json::Float(r.measured_error)),
            ("settled".into(), Json::Bool(r.settled)),
            ("exact".into(), Json::Bool(r.exact)),
        ]),
        AttackDetails::DoubleDip(r) => Json::Object(vec![
            tag("double-dip"),
            ("cleanup_iterations".into(), Json::Int(r.cleanup_iterations)),
        ]),
        AttackDetails::Removal(r) => Json::Object(vec![
            tag("removal"),
            ("error_rate".into(), Json::Float(r.error_rate)),
            ("recovered".into(), Json::Bool(r.recovered)),
        ]),
        AttackDetails::Sps(r) => Json::Object(vec![
            tag("sps"),
            ("skew".into(), Json::Float(r.skew)),
            ("found_suspect".into(), Json::Bool(r.suspect.is_some())),
            (
                "error_rate".into(),
                match r.error_rate {
                    Some(e) => Json::Float(e),
                    None => Json::Null,
                },
            ),
        ]),
        AttackDetails::Wire(summary) => summary.clone(),
        // `AttackDetails` is non-exhaustive; summarize future variants
        // minimally rather than failing to encode.
        #[allow(unreachable_patterns)]
        _ => Json::Object(vec![tag("unknown")]),
    }
}

impl AttackReport {
    /// Serializes the report to the versioned wire JSON — the encoding
    /// shared by `fulllock serve`, the CLI `--json` flag, and remote
    /// result files.
    pub fn to_json(&self) -> String {
        Json::Object(vec![
            ("schema_version".into(), Json::Int(WIRE_VERSION)),
            ("attack".into(), Json::Str(self.attack.to_string())),
            ("outcome".into(), outcome_to_json(&self.outcome)),
            ("iterations".into(), Json::Int(self.iterations)),
            (
                "elapsed_secs".into(),
                Json::Float(self.elapsed.as_secs_f64()),
            ),
            ("oracle_queries".into(), Json::Int(self.oracle_queries)),
            ("solver".into(), solver_stats_to_json(&self.solver)),
            ("resilience".into(), resilience_to_json(&self.resilience)),
            (
                "key_certificate".into(),
                match &self.key_certificate {
                    Some(cert) => certificate_to_json(cert),
                    None => Json::Null,
                },
            ),
            ("details".into(), details_to_json(&self.details)),
        ])
        .to_text()
    }

    /// Parses a wire-format report produced by [`to_json`](Self::to_json)
    /// (by this build or a compatible one). The details come back as
    /// [`AttackDetails::Wire`]; re-encoding reproduces the input
    /// canonically.
    ///
    /// # Errors
    ///
    /// Returns [`AttackError::ReportFormat`] on malformed JSON, a
    /// missing or mistyped field, an unknown attack name, or a
    /// `schema_version` other than [`WIRE_VERSION`].
    pub fn from_json(text: &str) -> Result<AttackReport> {
        let root = Json::parse(text).map_err(err)?;
        let field = |name: &str| {
            root.get(name)
                .ok_or_else(|| err(format!("missing field {name:?}")))
        };
        let int = |name: &str| {
            field(name)?
                .as_u64()
                .ok_or_else(|| err(format!("field {name:?} must be an unsigned integer")))
        };
        let version = int("schema_version")?;
        if version != WIRE_VERSION {
            return Err(err(format!(
                "unsupported schema_version {version} (this build reads version {WIRE_VERSION})"
            )));
        }
        let name = field("attack")?
            .as_str()
            .ok_or_else(|| err("field \"attack\" must be a string"))?;
        let attack = KNOWN_ATTACKS
            .iter()
            .find(|&&known| known == name)
            .copied()
            .ok_or_else(|| err(format!("unknown attack name {name:?}")))?;
        let elapsed_secs = field("elapsed_secs")?
            .as_f64()
            .ok_or_else(|| err("field \"elapsed_secs\" must be a number"))?;
        if !elapsed_secs.is_finite() || elapsed_secs < 0.0 {
            return Err(err(format!(
                "field \"elapsed_secs\" out of range: {elapsed_secs}"
            )));
        }
        let key_certificate = match field("key_certificate")? {
            Json::Null => None,
            cert => Some(certificate_from_json(cert)?),
        };
        Ok(AttackReport {
            attack,
            outcome: outcome_from_json(field("outcome")?)?,
            iterations: int("iterations")?,
            elapsed: Duration::from_secs_f64(elapsed_secs),
            oracle_queries: int("oracle_queries")?,
            solver: solver_stats_from_json(field("solver")?).map_err(err)?,
            resilience: resilience_from_json(field("resilience")?)?,
            key_certificate,
            details: AttackDetails::Wire(field("details")?.clone()),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> AttackReport {
        let mut solver = SolverStats {
            decisions: 100,
            conflicts: 42,
            ..SolverStats::default()
        };
        solver.lbd_histogram[3] = 9;
        AttackReport {
            attack: "sat",
            outcome: AttackOutcome::KeyRecovered {
                key: Key::from_bits([true, false, true, true]),
                verified: true,
            },
            iterations: 12,
            elapsed: Duration::from_millis(3375),
            oracle_queries: 14,
            solver,
            resilience: RunResilience {
                worker_panics: 1,
                worker_failures: vec!["worker 0 panicked".to_string()],
                resumed_from: Some(5),
                checkpoints_written: 7,
                checkpoint_failures: 0,
                oracle_retries: 3,
                oracle_requeries: 2,
                quarantined_pairs: 1,
            },
            key_certificate: Some(KeyCertificate {
                samples: 512,
                mismatches: 0,
                formal: FormalVerdict::Equivalent,
            }),
            details: AttackDetails::Wire(Json::Object(vec![(
                "type".to_string(),
                Json::Str("sat".to_string()),
            )])),
        }
    }

    #[test]
    fn canonical_round_trip() {
        let report = sample_report();
        let text = report.to_json();
        let back = AttackReport::from_json(&text).expect("round trip");
        assert_eq!(back.to_json(), text);
        assert_eq!(back.attack, "sat");
        assert_eq!(back.iterations, 12);
        assert_eq!(back.solver.conflicts, 42);
        assert_eq!(back.resilience.resumed_from, Some(5));
    }

    #[test]
    fn every_outcome_round_trips() {
        let outcomes = [
            AttackOutcome::KeyRecovered {
                key: Key::from_bits([false, true]),
                verified: false,
            },
            AttackOutcome::ApproximateKey {
                key: Key::from_bits([true]),
                measured_error: 0.125,
            },
            AttackOutcome::Bypassed {
                error_rate: 0.5,
                exact: false,
            },
            AttackOutcome::Defeated {
                reason: "no skewed wire".to_string(),
            },
            AttackOutcome::Timeout,
            AttackOutcome::IterationLimit,
            AttackOutcome::Inconclusive,
        ];
        for outcome in outcomes {
            let back = outcome_from_json(&outcome_to_json(&outcome)).expect("round trip");
            assert_eq!(back, outcome);
        }
    }

    #[test]
    fn every_verdict_round_trips() {
        for verdict in [
            FormalVerdict::Equivalent,
            FormalVerdict::NotEquivalent,
            FormalVerdict::Unknown,
            FormalVerdict::Unavailable("cyclic netlist".to_string()),
        ] {
            let cert = KeyCertificate {
                samples: 1,
                mismatches: 0,
                formal: verdict.clone(),
            };
            let back = certificate_from_json(&certificate_to_json(&cert)).expect("round trip");
            assert_eq!(back.formal, verdict);
        }
    }

    #[test]
    fn absent_oracle_resilience_fields_default_to_zero() {
        // Reports written before the resilient oracle layer carry no
        // oracle counters.
        let text = sample_report()
            .to_json()
            .replace(",\"oracle_retries\":3", "")
            .replace(",\"oracle_requeries\":2", "")
            .replace(",\"quarantined_pairs\":1", "");
        assert!(!text.contains("oracle_retries"), "fields really removed");
        let back = AttackReport::from_json(&text).expect("old-format parse");
        assert_eq!(back.resilience.oracle_retries, 0);
        assert_eq!(back.resilience.oracle_requeries, 0);
        assert_eq!(back.resilience.quarantined_pairs, 0);
    }

    #[test]
    fn version_mismatch_is_rejected() {
        let text = sample_report()
            .to_json()
            .replace("\"schema_version\":1", "\"schema_version\":9");
        let e = AttackReport::from_json(&text).expect_err("must reject");
        assert!(matches!(e, AttackError::ReportFormat { .. }), "{e}");
        assert!(e.to_string().contains("schema_version 9"), "{e}");
    }

    #[test]
    fn unknown_attack_name_is_rejected() {
        let text = sample_report()
            .to_json()
            .replace("\"attack\":\"sat\"", "\"attack\":\"quantum\"");
        let e = AttackReport::from_json(&text).expect_err("must reject");
        assert!(e.to_string().contains("quantum"), "{e}");
    }

    #[test]
    fn malformed_documents_are_typed_errors() {
        for bad in ["", "not json", "{}", "{\"schema_version\":1}", "[1,2]"] {
            let e = AttackReport::from_json(bad).expect_err(bad);
            assert!(matches!(e, AttackError::ReportFormat { .. }), "{bad}: {e}");
        }
    }

    #[test]
    fn details_summaries_are_tagged() {
        let json = details_to_json(&AttackDetails::Sps(crate::sps::SpsReport {
            suspect: None,
            skew: 0.25,
            error_rate: None,
        }));
        assert_eq!(json.get("type").and_then(Json::as_str), Some("sps"));
        assert_eq!(
            json.get("found_suspect").and_then(Json::as_bool),
            Some(false)
        );
    }
}
