//! The activated-chip oracle of the SAT-attack threat model.
//!
//! The attacker owns the locked (reverse-engineered) netlist *and* one
//! unlocked chip they can stimulate freely: apply any input, observe the
//! outputs. [`Oracle`] abstracts that chip; [`SimOracle`] realizes it by
//! simulating the original netlist (our stand-in for the authors' working
//! silicon).

use std::cell::Cell;

use fulllock_netlist::{Netlist, Result, Simulator};

/// A black-box functional oracle (an activated chip).
pub trait Oracle {
    /// Number of (data) inputs.
    fn num_inputs(&self) -> usize;

    /// Number of outputs.
    fn num_outputs(&self) -> usize;

    /// Applies one input pattern and observes the outputs.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `inputs.len() != self.num_inputs()`.
    fn query(&self, inputs: &[bool]) -> Vec<bool>;

    /// How many queries have been issued (the attack-cost metric the
    /// literature reports alongside iterations).
    fn queries(&self) -> u64;

    /// The reference netlist behind the oracle, if it can expose one.
    ///
    /// A real activated chip cannot (the default `None`), but the
    /// simulation stand-in can — and key certification uses it for a
    /// formal equivalence proof instead of settling for sampled evidence.
    fn netlist(&self) -> Option<&Netlist> {
        None
    }
}

/// An [`Oracle`] backed by simulation of the original netlist.
///
/// # Example
///
/// ```
/// use fulllock_attacks::{Oracle, SimOracle};
/// use fulllock_netlist::benchmarks;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let original = benchmarks::load("c17")?;
/// let oracle = SimOracle::new(&original)?;
/// let y = oracle.query(&[true; 5]);
/// assert_eq!(y.len(), 2);
/// assert_eq!(oracle.queries(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct SimOracle<'a> {
    sim: Simulator<'a>,
    count: Cell<u64>,
}

impl<'a> SimOracle<'a> {
    /// Wraps an original (unlocked) netlist as an oracle.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::Cyclic`](fulllock_netlist::NetlistError::Cyclic)
    /// if the netlist is cyclic (originals never are).
    pub fn new(original: &'a Netlist) -> Result<SimOracle<'a>> {
        Ok(SimOracle {
            sim: Simulator::new(original)?,
            count: Cell::new(0),
        })
    }
}

impl Oracle for SimOracle<'_> {
    fn num_inputs(&self) -> usize {
        self.sim.netlist().inputs().len()
    }

    fn num_outputs(&self) -> usize {
        self.sim.netlist().outputs().len()
    }

    fn query(&self, inputs: &[bool]) -> Vec<bool> {
        self.count.set(self.count.get() + 1);
        self.sim
            .run(inputs)
            .expect("oracle query with the declared input width")
    }

    fn queries(&self) -> u64 {
        self.count.get()
    }

    fn netlist(&self) -> Option<&Netlist> {
        Some(self.sim.netlist())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oracle_counts_queries() {
        let nl = fulllock_netlist::benchmarks::load("c17").unwrap();
        let oracle = SimOracle::new(&nl).unwrap();
        assert_eq!(oracle.queries(), 0);
        oracle.query(&[false; 5]);
        oracle.query(&[true; 5]);
        assert_eq!(oracle.queries(), 2);
        assert_eq!(oracle.num_inputs(), 5);
        assert_eq!(oracle.num_outputs(), 2);
    }

    #[test]
    fn oracle_matches_simulation() {
        let nl = fulllock_netlist::benchmarks::load("c17").unwrap();
        let oracle = SimOracle::new(&nl).unwrap();
        let sim = Simulator::new(&nl).unwrap();
        for row in 0..32u32 {
            let x: Vec<bool> = (0..5).map(|i| row >> i & 1 == 1).collect();
            assert_eq!(oracle.query(&x), sim.run(&x).unwrap());
        }
    }
}
