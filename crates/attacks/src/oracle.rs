//! The activated-chip oracle of the SAT-attack threat model.
//!
//! The attacker owns the locked (reverse-engineered) netlist *and* one
//! unlocked chip they can stimulate freely: apply any input, observe the
//! outputs. [`Oracle`] abstracts that chip; [`SimOracle`] realizes it by
//! simulating the original netlist (our stand-in for the authors' working
//! silicon).
//!
//! # The oracle is an untrusted boundary
//!
//! A physical chip answers through a test harness that can drop responses,
//! answer late, or flip a marginal output bit — and one flipped bit
//! silently poisons every constraint the DIP loop accumulates afterwards.
//! This module therefore provides two layers:
//!
//! * [`Oracle::try_query`] — the fallible path with typed
//!   [`OracleError`]s (transient, timeout, width mismatch) instead of the
//!   historical panic;
//! * [`ResilientOracle`] — a decorator adding bounded retry with backoff,
//!   a per-query deadline, token-bucket rate limiting (real chips cap
//!   stimulus frequency), and k-of-n majority voting, configured by an
//!   [`OracleResilience`] policy.
//!
//! Chaos builds inject oracle faults at
//! [`faults::site::ORACLE_QUERY`](fulllock_sat::faults::site::ORACLE_QUERY)
//! inside [`SimOracle::try_query`] — *below* the resilient wrapper, so an
//! unguarded attack sees the poison directly while a guarded one can vote
//! it away.

use std::cell::{Cell, RefCell};
use std::fmt;
use std::time::{Duration, Instant};

use fulllock_netlist::{Netlist, Result, Simulator};
use fulllock_sat::ambient::{ORACLE_QPS_ENV, ORACLE_RETRIES_ENV, ORACLE_VOTES_ENV};
use fulllock_sat::faults::{self, site, FaultAction};

/// A typed oracle failure: why a query produced no usable answer.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum OracleError {
    /// A transient failure (lost response, glitched harness); retrying the
    /// same stimulus may succeed.
    Transient(String),
    /// The per-query deadline expired before a usable answer arrived.
    Timeout {
        /// How long the query (including retries) had been running.
        elapsed: Duration,
    },
    /// The stimulus width does not match the chip's declared input count.
    WidthMismatch {
        /// The chip's input count.
        expected: usize,
        /// The stimulus width actually applied.
        got: usize,
    },
}

impl fmt::Display for OracleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OracleError::Transient(why) => write!(f, "transient oracle failure: {why}"),
            OracleError::Timeout { elapsed } => {
                write!(f, "oracle query deadline expired after {elapsed:?}")
            }
            OracleError::WidthMismatch { expected, got } => {
                write!(
                    f,
                    "oracle stimulus width mismatch: chip has {expected} inputs, got {got}"
                )
            }
        }
    }
}

impl std::error::Error for OracleError {}

/// A black-box functional oracle (an activated chip).
pub trait Oracle {
    /// Number of (data) inputs.
    fn num_inputs(&self) -> usize;

    /// Number of outputs.
    fn num_outputs(&self) -> usize;

    /// Applies one input pattern and observes the outputs.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `inputs.len() != self.num_inputs()`.
    fn query(&self, inputs: &[bool]) -> Vec<bool>;

    /// The fallible query path: like [`query`](Oracle::query), but a
    /// malformed stimulus or a flaky harness yields a typed
    /// [`OracleError`] instead of a panic. The default implementation
    /// checks the width and delegates to `query`.
    ///
    /// # Errors
    ///
    /// [`OracleError::WidthMismatch`] when the stimulus width is wrong;
    /// implementations backed by real harnesses may also return
    /// [`OracleError::Transient`] and [`OracleError::Timeout`].
    fn try_query(&self, inputs: &[bool]) -> std::result::Result<Vec<bool>, OracleError> {
        if inputs.len() != self.num_inputs() {
            return Err(OracleError::WidthMismatch {
                expected: self.num_inputs(),
                got: inputs.len(),
            });
        }
        Ok(self.query(inputs))
    }

    /// How many queries have been issued (the attack-cost metric the
    /// literature reports alongside iterations).
    fn queries(&self) -> u64;

    /// The reference netlist behind the oracle, if it can expose one.
    ///
    /// A real activated chip cannot (the default `None`), but the
    /// simulation stand-in can — and key certification uses it for a
    /// formal equivalence proof instead of settling for sampled evidence.
    fn netlist(&self) -> Option<&Netlist> {
        None
    }
}

impl<T: Oracle + ?Sized> Oracle for &T {
    fn num_inputs(&self) -> usize {
        (**self).num_inputs()
    }

    fn num_outputs(&self) -> usize {
        (**self).num_outputs()
    }

    fn query(&self, inputs: &[bool]) -> Vec<bool> {
        (**self).query(inputs)
    }

    fn try_query(&self, inputs: &[bool]) -> std::result::Result<Vec<bool>, OracleError> {
        (**self).try_query(inputs)
    }

    fn queries(&self) -> u64 {
        (**self).queries()
    }

    fn netlist(&self) -> Option<&Netlist> {
        (**self).netlist()
    }
}

/// An [`Oracle`] backed by simulation of the original netlist.
///
/// In chaos builds (the `failpoints` feature), [`SimOracle::try_query`]
/// evaluates the [`site::ORACLE_QUERY`] failpoint with the query index:
/// `flip` inverts one output bit of this response only, `stuck` forces
/// output bit 0 to a constant, `drop` loses the response (a transient
/// error), `delay:<ms>` models a slow harness.
///
/// # Example
///
/// ```
/// use fulllock_attacks::{Oracle, SimOracle};
/// use fulllock_netlist::benchmarks;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let original = benchmarks::load("c17")?;
/// let oracle = SimOracle::new(&original)?;
/// let y = oracle.query(&[true; 5]);
/// assert_eq!(y.len(), 2);
/// assert_eq!(oracle.queries(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct SimOracle<'a> {
    sim: Simulator<'a>,
    count: Cell<u64>,
}

impl<'a> SimOracle<'a> {
    /// Wraps an original (unlocked) netlist as an oracle.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::Cyclic`](fulllock_netlist::NetlistError::Cyclic)
    /// if the netlist is cyclic (originals never are).
    pub fn new(original: &'a Netlist) -> Result<SimOracle<'a>> {
        Ok(SimOracle {
            sim: Simulator::new(original)?,
            count: Cell::new(0),
        })
    }
}

impl Oracle for SimOracle<'_> {
    fn num_inputs(&self) -> usize {
        self.sim.netlist().inputs().len()
    }

    fn num_outputs(&self) -> usize {
        self.sim.netlist().outputs().len()
    }

    fn query(&self, inputs: &[bool]) -> Vec<bool> {
        self.try_query(inputs)
            .expect("oracle query with the declared input width")
    }

    fn try_query(&self, inputs: &[bool]) -> std::result::Result<Vec<bool>, OracleError> {
        let index = self.count.get();
        self.count.set(index + 1);
        let injected = faults::evaluate(site::ORACLE_QUERY, index as usize);
        match injected {
            Some(FaultAction::Drop) => {
                return Err(OracleError::Transient(format!(
                    "injected failpoint: {} drop at query {index}",
                    site::ORACLE_QUERY
                )))
            }
            Some(delay @ FaultAction::DelayMs(_)) => faults::apply_delay(delay),
            _ => {}
        }
        if inputs.len() != self.num_inputs() {
            return Err(OracleError::WidthMismatch {
                expected: self.num_inputs(),
                got: inputs.len(),
            });
        }
        let mut outputs = self
            .sim
            .run(inputs)
            .map_err(|e| OracleError::Transient(e.to_string()))?;
        if !outputs.is_empty() {
            match injected {
                // A transient upset: only this response carries the flip, a
                // re-query answers correctly. Rotating the bit with the
                // query index spreads flips over the output word.
                Some(FaultAction::Flip) => {
                    let bit = index as usize % outputs.len();
                    outputs[bit] = !outputs[bit];
                }
                // A stuck-at-1 fault on output bit 0: every re-query keeps
                // answering the same wrong way when the true value is 0.
                Some(FaultAction::Stuck) => outputs[0] = true,
                _ => {}
            }
        }
        Ok(outputs)
    }

    fn queries(&self) -> u64 {
        self.count.get()
    }

    fn netlist(&self) -> Option<&Netlist> {
        Some(self.sim.netlist())
    }
}

/// The resilience policy of a [`ResilientOracle`]: how hard the attack
/// works to extract a trustworthy answer from a flaky chip.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OracleResilience {
    /// On an UNSAT key space, diagnose the conflicting pairs with a
    /// one-shot selector-gated re-solve of the recorded ledger, re-query
    /// the suspects under majority vote, quarantine the ones whose
    /// answer changed, and rebuild the constraints from the survivors
    /// (the self-healing DIP loop). The hot path stays selector-free, so
    /// guarding costs nothing until an answer actually conflicts. Off
    /// reproduces the historical trust-everything behaviour.
    pub guard: bool,
    /// Majority-vote repetitions per query (odd, ≥ 1; 1 = no voting).
    pub votes: u32,
    /// Transient-error retries per vote before giving up.
    pub retries: u32,
    /// Token-bucket rate limit in queries per second (`None` = unlimited).
    pub qps: Option<f64>,
    /// Per-query deadline across retries (`None` = no deadline).
    pub deadline: Option<Duration>,
}

impl Default for OracleResilience {
    fn default() -> OracleResilience {
        OracleResilience {
            guard: true,
            votes: 1,
            retries: 3,
            qps: None,
            deadline: None,
        }
    }
}

impl OracleResilience {
    /// The default policy with the ambient `FULLLOCK_ORACLE_*` overrides
    /// applied (unset or unparsable variables keep the defaults — a typo
    /// must never crash a campaign job; `AmbientConfig` is where strict
    /// validation lives).
    pub fn from_env() -> OracleResilience {
        let mut policy = OracleResilience::default();
        if let Some(votes) = env_parse::<u32>(ORACLE_VOTES_ENV) {
            if votes >= 1 && votes % 2 == 1 {
                policy.votes = votes;
            }
        }
        if let Some(retries) = env_parse::<u32>(ORACLE_RETRIES_ENV) {
            policy.retries = retries;
        }
        if let Some(qps) = env_parse::<f64>(ORACLE_QPS_ENV) {
            if qps.is_finite() && qps > 0.0 {
                policy.qps = Some(qps);
            }
        }
        policy
    }

    /// The trust-everything policy: no guarding, no voting, no retries —
    /// the unguarded baseline the resilience bench compares against.
    pub fn off() -> OracleResilience {
        OracleResilience {
            guard: false,
            votes: 1,
            retries: 0,
            qps: None,
            deadline: None,
        }
    }
}

fn env_parse<T: std::str::FromStr>(var: &str) -> Option<T> {
    std::env::var(var).ok()?.trim().parse().ok()
}

/// A token bucket: `qps` tokens per second refill, bursts up to
/// `capacity`, and [`TokenBucket::acquire`] sleeps until a token is due.
#[derive(Debug)]
struct TokenBucket {
    qps: f64,
    capacity: f64,
    tokens: f64,
    last_refill: Instant,
}

impl TokenBucket {
    fn new(qps: f64) -> TokenBucket {
        // A one-second burst window keeps steady-state throughput at `qps`
        // without pacing every single query when the oracle is idle.
        let capacity = qps.max(1.0);
        TokenBucket {
            qps,
            capacity,
            tokens: capacity,
            last_refill: Instant::now(),
        }
    }

    fn refill(&mut self) {
        let now = Instant::now();
        let elapsed = now.duration_since(self.last_refill).as_secs_f64();
        self.tokens = (self.tokens + elapsed * self.qps).min(self.capacity);
        self.last_refill = now;
    }

    fn acquire(&mut self) {
        self.refill();
        if self.tokens < 1.0 {
            let wait = (1.0 - self.tokens) / self.qps;
            std::thread::sleep(Duration::from_secs_f64(wait));
            self.refill();
        }
        self.tokens -= 1.0;
    }
}

/// An [`Oracle`] decorator that survives flaky chips: bounded retry with
/// exponential backoff on [`OracleError::Transient`], a per-query deadline,
/// token-bucket rate limiting, and k-of-n majority voting — all per the
/// wrapped [`OracleResilience`] policy.
///
/// [`Oracle::queries`] still reports the *inner* oracle's query count, so
/// the attack-cost metric keeps counting real chip stimuli (votes and
/// retries inflate it honestly).
#[derive(Debug)]
pub struct ResilientOracle<O> {
    inner: O,
    policy: OracleResilience,
    bucket: RefCell<Option<TokenBucket>>,
    retries_absorbed: Cell<u64>,
}

impl<O: Oracle> ResilientOracle<O> {
    /// Wraps an oracle under a resilience policy.
    pub fn new(inner: O, policy: OracleResilience) -> ResilientOracle<O> {
        ResilientOracle {
            inner,
            policy,
            bucket: RefCell::new(policy.qps.map(TokenBucket::new)),
            retries_absorbed: Cell::new(0),
        }
    }

    /// The wrapped oracle.
    pub fn inner(&self) -> &O {
        &self.inner
    }

    /// The active resilience policy.
    pub fn policy(&self) -> &OracleResilience {
        &self.policy
    }

    /// Transient errors absorbed by retrying since construction.
    pub fn retries_absorbed(&self) -> u64 {
        self.retries_absorbed.get()
    }

    /// One rate-limited, deadline-bounded, retried query (no voting).
    fn query_once(
        &self,
        inputs: &[bool],
        started: Instant,
    ) -> std::result::Result<Vec<bool>, OracleError> {
        let mut attempt = 0u32;
        loop {
            if let Some(deadline) = self.policy.deadline {
                let elapsed = started.elapsed();
                if elapsed >= deadline {
                    return Err(OracleError::Timeout { elapsed });
                }
            }
            if let Some(bucket) = self.bucket.borrow_mut().as_mut() {
                bucket.acquire();
            }
            match self.inner.try_query(inputs) {
                Ok(outputs) => return Ok(outputs),
                Err(err @ OracleError::Transient(_)) => {
                    if attempt >= self.policy.retries {
                        return Err(err);
                    }
                    self.retries_absorbed.set(self.retries_absorbed.get() + 1);
                    // Exponential backoff, capped: 1, 2, 4, … 64 ms.
                    let backoff = Duration::from_millis(1u64 << attempt.min(6));
                    std::thread::sleep(backoff);
                    attempt += 1;
                }
                Err(other) => return Err(other),
            }
        }
    }

    /// Queries under the policy's k-of-n majority vote and returns the
    /// consensus answer plus how many of the repetitions agreed with it
    /// exactly (the per-pair confidence the checkpoint records).
    ///
    /// # Errors
    ///
    /// Propagates the first non-transient error, or the transient error
    /// that exhausted the retry budget of any single vote.
    pub fn query_voted(
        &self,
        inputs: &[bool],
    ) -> std::result::Result<(Vec<bool>, u32), OracleError> {
        let started = Instant::now();
        let votes = self.policy.votes.max(1);
        if votes == 1 {
            return self.query_once(inputs, started).map(|y| (y, 1));
        }
        let mut responses: Vec<Vec<bool>> = Vec::with_capacity(votes as usize);
        for _ in 0..votes {
            responses.push(self.query_once(inputs, started)?);
        }
        let width = responses[0].len();
        let mut consensus = Vec::with_capacity(width);
        for bit in 0..width {
            let ones = responses
                .iter()
                .filter(|r| r.get(bit).copied().unwrap_or(false))
                .count();
            consensus.push(2 * ones > responses.len());
        }
        let agreeing = responses.iter().filter(|r| **r == consensus).count() as u32;
        Ok((consensus, agreeing))
    }
}

impl<O: Oracle> Oracle for ResilientOracle<O> {
    fn num_inputs(&self) -> usize {
        self.inner.num_inputs()
    }

    fn num_outputs(&self) -> usize {
        self.inner.num_outputs()
    }

    fn query(&self, inputs: &[bool]) -> Vec<bool> {
        self.try_query(inputs)
            .expect("oracle query with the declared input width")
    }

    fn try_query(&self, inputs: &[bool]) -> std::result::Result<Vec<bool>, OracleError> {
        self.query_voted(inputs).map(|(outputs, _)| outputs)
    }

    fn queries(&self) -> u64 {
        self.inner.queries()
    }

    fn netlist(&self) -> Option<&Netlist> {
        self.inner.netlist()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oracle_counts_queries() {
        let nl = fulllock_netlist::benchmarks::load("c17").unwrap();
        let oracle = SimOracle::new(&nl).unwrap();
        assert_eq!(oracle.queries(), 0);
        oracle.query(&[false; 5]);
        oracle.query(&[true; 5]);
        assert_eq!(oracle.queries(), 2);
        assert_eq!(oracle.num_inputs(), 5);
        assert_eq!(oracle.num_outputs(), 2);
    }

    #[test]
    fn oracle_matches_simulation() {
        let nl = fulllock_netlist::benchmarks::load("c17").unwrap();
        let oracle = SimOracle::new(&nl).unwrap();
        let sim = Simulator::new(&nl).unwrap();
        for row in 0..32u32 {
            let x: Vec<bool> = (0..5).map(|i| row >> i & 1 == 1).collect();
            assert_eq!(oracle.query(&x), sim.run(&x).unwrap());
        }
    }

    #[test]
    fn width_mismatch_is_a_typed_error_not_a_panic() {
        let nl = fulllock_netlist::benchmarks::load("c17").unwrap();
        let oracle = SimOracle::new(&nl).unwrap();
        // Too narrow and too wide both refuse with the typed error.
        for width in [0usize, 3, 9] {
            match oracle.try_query(&vec![true; width]) {
                Err(OracleError::WidthMismatch { expected: 5, got }) => assert_eq!(got, width),
                other => panic!("width {width}: expected WidthMismatch, got {other:?}"),
            }
        }
        // The malformed attempts still counted as issued queries, and the
        // oracle remains usable afterwards.
        assert_eq!(oracle.queries(), 3);
        assert_eq!(oracle.try_query(&[true; 5]).unwrap().len(), 2);
    }

    #[test]
    #[should_panic(expected = "declared input width")]
    fn infallible_query_keeps_its_documented_panic() {
        let nl = fulllock_netlist::benchmarks::load("c17").unwrap();
        let oracle = SimOracle::new(&nl).unwrap();
        let _ = oracle.query(&[true; 3]);
    }

    #[test]
    fn resilient_wrapper_is_transparent_on_a_clean_oracle() {
        let nl = fulllock_netlist::benchmarks::load("c17").unwrap();
        let oracle = SimOracle::new(&nl).unwrap();
        let resilient = ResilientOracle::new(&oracle, OracleResilience::default());
        let x = [true, false, true, false, true];
        assert_eq!(resilient.query(&x), oracle.query(&x));
        assert_eq!(resilient.num_inputs(), 5);
        assert_eq!(resilient.num_outputs(), 2);
        assert!(resilient.netlist().is_some());
        assert_eq!(resilient.retries_absorbed(), 0);
        // queries() reports the inner chip's stimuli (2 so far).
        assert_eq!(resilient.queries(), 2);
    }

    #[test]
    fn majority_vote_multiplies_query_cost_and_reports_agreement() {
        let nl = fulllock_netlist::benchmarks::load("c17").unwrap();
        let oracle = SimOracle::new(&nl).unwrap();
        let policy = OracleResilience {
            votes: 3,
            ..OracleResilience::default()
        };
        let resilient = ResilientOracle::new(&oracle, policy);
        let (answer, agreeing) = resilient.query_voted(&[false; 5]).unwrap();
        assert_eq!(answer.len(), 2);
        assert_eq!(agreeing, 3, "a clean oracle answers unanimously");
        assert_eq!(oracle.queries(), 3);
    }

    /// An oracle that fails transiently `failures` times before answering.
    struct FlakyOracle {
        failures: Cell<u32>,
        count: Cell<u64>,
    }

    impl Oracle for FlakyOracle {
        fn num_inputs(&self) -> usize {
            2
        }
        fn num_outputs(&self) -> usize {
            1
        }
        fn query(&self, inputs: &[bool]) -> Vec<bool> {
            self.try_query(inputs).expect("flaky oracle exhausted")
        }
        fn try_query(&self, inputs: &[bool]) -> std::result::Result<Vec<bool>, OracleError> {
            self.count.set(self.count.get() + 1);
            if self.failures.get() > 0 {
                self.failures.set(self.failures.get() - 1);
                return Err(OracleError::Transient("lost response".into()));
            }
            Ok(vec![inputs[0] ^ inputs[1]])
        }
        fn queries(&self) -> u64 {
            self.count.get()
        }
    }

    #[test]
    fn transient_errors_are_retried_within_budget() {
        let flaky = FlakyOracle {
            failures: Cell::new(2),
            count: Cell::new(0),
        };
        let resilient = ResilientOracle::new(&flaky, OracleResilience::default());
        assert_eq!(resilient.try_query(&[true, false]).unwrap(), vec![true]);
        assert_eq!(resilient.retries_absorbed(), 2);

        // A budget smaller than the failure streak surfaces the error.
        let flaky = FlakyOracle {
            failures: Cell::new(5),
            count: Cell::new(0),
        };
        let strict = ResilientOracle::new(
            &flaky,
            OracleResilience {
                retries: 1,
                ..OracleResilience::default()
            },
        );
        assert!(matches!(
            strict.try_query(&[true, false]),
            Err(OracleError::Transient(_))
        ));
    }

    #[test]
    fn deadline_turns_persistent_transients_into_timeout() {
        let flaky = FlakyOracle {
            failures: Cell::new(u32::MAX),
            count: Cell::new(0),
        };
        let resilient = ResilientOracle::new(
            &flaky,
            OracleResilience {
                retries: u32::MAX,
                deadline: Some(Duration::from_millis(20)),
                ..OracleResilience::default()
            },
        );
        match resilient.try_query(&[true, true]) {
            Err(OracleError::Timeout { elapsed }) => {
                assert!(elapsed >= Duration::from_millis(20));
            }
            other => panic!("expected Timeout, got {other:?}"),
        }
    }

    #[test]
    fn rate_limit_paces_query_bursts() {
        let nl = fulllock_netlist::benchmarks::load("c17").unwrap();
        let oracle = SimOracle::new(&nl).unwrap();
        // Capacity ≈ 1 token with 1 qps… too slow for a test; use a high
        // rate and just verify the bucket path executes and stays correct.
        let resilient = ResilientOracle::new(
            &oracle,
            OracleResilience {
                qps: Some(10_000.0),
                ..OracleResilience::default()
            },
        );
        for _ in 0..32 {
            assert_eq!(resilient.try_query(&[false; 5]).unwrap().len(), 2);
        }
        assert_eq!(oracle.queries(), 32);
    }

    #[test]
    fn token_bucket_enforces_the_rate() {
        let mut bucket = TokenBucket::new(100.0);
        bucket.tokens = 0.0; // burst spent
        let start = Instant::now();
        bucket.acquire();
        // One token at 100 qps is due in ~10ms.
        assert!(start.elapsed() >= Duration::from_millis(5));
    }

    #[test]
    fn off_policy_disables_everything() {
        let policy = OracleResilience::off();
        assert!(!policy.guard);
        assert_eq!(policy.votes, 1);
        assert_eq!(policy.retries, 0);
        assert_eq!(policy.qps, None);
        assert!(OracleResilience::default().guard);
    }

    #[cfg(feature = "failpoints")]
    mod chaos {
        use super::*;
        use fulllock_sat::faults::{Failpoint, FaultPlan};
        use std::sync::{Mutex, OnceLock};

        fn chaos_lock() -> std::sync::MutexGuard<'static, ()> {
            static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
            LOCK.get_or_init(|| Mutex::new(()))
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
        }

        #[test]
        fn injected_flip_is_transient_and_voted_away() {
            let _guard = chaos_lock();
            let nl = fulllock_netlist::benchmarks::load("c17").unwrap();
            let oracle = SimOracle::new(&nl).unwrap();
            let clean = oracle.try_query(&[true; 5]).unwrap();

            // Flip exactly the next response: unguarded sees the poison…
            faults::install(FaultPlan::new().with(Failpoint::new(
                site::ORACLE_QUERY,
                None,
                FaultAction::Flip,
            )));
            let flipped = oracle.try_query(&[true; 5]).unwrap();
            assert_ne!(flipped, clean, "the flip must corrupt one bit");
            faults::clear();

            // …while a 3-vote majority with one flip among the votes still
            // answers correctly.
            faults::install(
                FaultPlan::new()
                    .with(Failpoint::new(site::ORACLE_QUERY, None, FaultAction::Flip).times(1)),
            );
            let resilient = ResilientOracle::new(
                &oracle,
                OracleResilience {
                    votes: 3,
                    ..OracleResilience::default()
                },
            );
            let (answer, agreeing) = resilient.query_voted(&[true; 5]).unwrap();
            assert_eq!(answer, clean);
            assert_eq!(agreeing, 2, "one of three votes was flipped");
            faults::clear();
        }

        #[test]
        fn injected_drop_is_retried() {
            let _guard = chaos_lock();
            let nl = fulllock_netlist::benchmarks::load("c17").unwrap();
            let oracle = SimOracle::new(&nl).unwrap();
            faults::install(
                FaultPlan::new()
                    .with(Failpoint::new(site::ORACLE_QUERY, None, FaultAction::Drop).times(2)),
            );
            let resilient = ResilientOracle::new(&oracle, OracleResilience::default());
            assert_eq!(resilient.try_query(&[false; 5]).unwrap().len(), 2);
            assert_eq!(resilient.retries_absorbed(), 2);
            faults::clear();
        }

        #[test]
        fn injected_stuck_survives_re_queries() {
            let _guard = chaos_lock();
            let nl = fulllock_netlist::benchmarks::load("c17").unwrap();
            let oracle = SimOracle::new(&nl).unwrap();
            // Find a stimulus whose true output bit 0 is false, so stuck-at-1
            // is actually wrong.
            let mut stimulus = None;
            for row in 0..32u32 {
                let x: Vec<bool> = (0..5).map(|i| row >> i & 1 == 1).collect();
                if !oracle.try_query(&x).unwrap()[0] {
                    stimulus = Some(x);
                    break;
                }
            }
            let x = stimulus.expect("c17 has a 0-output pattern");
            faults::install(FaultPlan::new().with(Failpoint::new(
                site::ORACLE_QUERY,
                None,
                FaultAction::Stuck,
            )));
            let first = oracle.try_query(&x).unwrap();
            let second = oracle.try_query(&x).unwrap();
            assert!(first[0] && second[0], "stuck-at-1 persists across queries");
            faults::clear();
        }
    }
}
