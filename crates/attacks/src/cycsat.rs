//! CycSAT: cycle-aware preprocessing for the SAT attack (Zhou et al.,
//! ICCAD 2017).
//!
//! Cyclic locking (Full-Lock's cyclic insertion mode, Fig 6(c)) breaks the
//! plain SAT attack: the Tseytin CNF of a cyclic netlist admits "floating"
//! assignments on the loops, so the attack can return keys that oscillate
//! in hardware. CycSAT computes, for a feedback edge set, *no-structural-
//! cycle* (NC) conditions over the key bits — a cycle is structurally open
//! when some key-controlled MUX along it selects its other leg — and
//! conjoins `¬cycle` clauses before the DIP loop.
//!
//! This implementation is CycSAT-I: path conditions are computed on the
//! graph with all feedback edges removed (the standard formulation, exact
//! for MUX-routed locking like CLNs and crossbars, where every cycle is
//! gated by key-input MUX selects).

use std::collections::{HashMap, HashSet};

use fulllock_locking::LockedCircuit;
use fulllock_netlist::{topo, GateKind, Netlist, SignalId};
use fulllock_sat::{Cnf, Lit, Var};

/// A partially-constant condition (constant folding keeps the NC formula
/// small).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Cond {
    True,
    False,
    Is(Lit),
}

fn and2(cnf: &mut Cnf, a: Cond, b: Cond) -> Cond {
    match (a, b) {
        (Cond::False, _) | (_, Cond::False) => Cond::False,
        (Cond::True, x) | (x, Cond::True) => x,
        (Cond::Is(la), Cond::Is(lb)) => {
            if la == lb {
                return Cond::Is(la);
            }
            if la == !lb {
                return Cond::False;
            }
            let v = Lit::positive(cnf.new_var());
            cnf.add_clause([!v, la]);
            cnf.add_clause([!v, lb]);
            cnf.add_clause([v, !la, !lb]);
            Cond::Is(v)
        }
    }
}

fn or_list(cnf: &mut Cnf, terms: &[Cond]) -> Cond {
    if terms.contains(&Cond::True) {
        return Cond::True;
    }
    let lits: Vec<Lit> = terms
        .iter()
        .filter_map(|t| match t {
            Cond::Is(l) => Some(*l),
            _ => None,
        })
        .collect();
    match lits.len() {
        0 => Cond::False,
        1 => Cond::Is(lits[0]),
        _ => {
            let v = Lit::positive(cnf.new_var());
            for &l in &lits {
                cnf.add_clause([!l, v]);
            }
            let mut long = vec![!v];
            long.extend(lits);
            cnf.add_clause(long);
            Cond::Is(v)
        }
    }
}

/// The key-dependent condition under which the edge `fanin[slot] → gate`
/// structurally exists: a key-selected MUX leg exists only when the select
/// picks it; every other edge always exists.
fn edge_condition(
    netlist: &Netlist,
    gate: SignalId,
    slot: usize,
    key_slot_of: &HashMap<SignalId, usize>,
    key_vars: &[Var],
) -> Cond {
    let node = netlist.node(gate);
    if node.gate_kind() == Some(GateKind::Mux) {
        let select = node.fanins()[0];
        if let Some(&ks) = key_slot_of.get(&select) {
            let k = Lit::positive(key_vars[ks]);
            // MUX fan-ins are [S, A, B]: S=0 selects A (slot 1), S=1
            // selects B (slot 2).
            match slot {
                1 => return Cond::Is(!k),
                2 => return Cond::Is(k),
                _ => {}
            }
        }
    }
    Cond::True
}

/// Conjoins NC ("no structural cycle") clauses over `key_vars` for every
/// feedback edge of the locked netlist. Returns the number of feedback
/// edges constrained. Acyclic netlists get no clauses.
///
/// The SAT attack calls this for both of its key copies whenever the
/// locked netlist is cyclic.
pub fn add_no_cycle_clauses(locked: &LockedCircuit, cnf: &mut Cnf, key_vars: &[Var]) -> usize {
    let netlist = &locked.netlist;
    let feedback: HashSet<(SignalId, usize)> = topo::feedback_edges(netlist).into_iter().collect();
    if feedback.is_empty() {
        return 0;
    }
    let key_slot_of: HashMap<SignalId, usize> = locked
        .key_inputs
        .iter()
        .enumerate()
        .map(|(slot, &sig)| (sig, slot))
        .collect();

    // DAG adjacency (fan-out direction) with feedback edges removed:
    // dag_out[i] = (gate, slot) pairs reading signal i.
    let mut dag_out: Vec<Vec<(SignalId, usize)>> = vec![Vec::new(); netlist.len()];
    for g in netlist.signals() {
        for (slot, &f) in netlist.node(g).fanins().iter().enumerate() {
            if !feedback.contains(&(g, slot)) {
                dag_out[f.index()].push((g, slot));
            }
        }
    }
    // Topological order of the DAG (Kahn over the filtered edges).
    let mut indegree = vec![0usize; netlist.len()];
    for outs in &dag_out {
        for &(g, _) in outs {
            indegree[g.index()] += 1;
        }
    }
    let mut ready: Vec<SignalId> = netlist
        .signals()
        .filter(|s| indegree[s.index()] == 0)
        .collect();
    let mut order = Vec::with_capacity(netlist.len());
    while let Some(s) = ready.pop() {
        order.push(s);
        for &(g, _) in &dag_out[s.index()] {
            indegree[g.index()] -= 1;
            if indegree[g.index()] == 0 {
                ready.push(g);
            }
        }
    }
    debug_assert_eq!(
        order.len(),
        netlist.len(),
        "feedback removal must break all cycles"
    );

    for &(head, head_slot) in &feedback {
        let tail = netlist.node(head).fanins()[head_slot];
        // Path condition from `head` (the gate the feedback edge enters)
        // forward to `tail` (the wire that would close the loop).
        let mut reach: Vec<Option<Cond>> = vec![None; netlist.len()];
        reach[head.index()] = Some(Cond::True);
        for &j in &order {
            if j == head {
                continue;
            }
            let mut terms: Vec<Cond> = Vec::new();
            for (slot, &i) in netlist.node(j).fanins().iter().enumerate() {
                if feedback.contains(&(j, slot)) {
                    continue;
                }
                if let Some(c) = reach[i.index()] {
                    let e = edge_condition(netlist, j, slot, &key_slot_of, key_vars);
                    let t = and2(cnf, c, e);
                    if t != Cond::False {
                        terms.push(t);
                    }
                }
            }
            if !terms.is_empty() {
                reach[j.index()] = Some(or_list(cnf, &terms));
            }
        }
        let Some(path) = reach[tail.index()] else {
            continue; // tail unreachable: this feedback edge closes no loop
        };
        let closing = edge_condition(netlist, head, head_slot, &key_slot_of, key_vars);
        match and2(cnf, path, closing) {
            Cond::False => {}
            Cond::True => {
                // Structurally unavoidable cycle: no key opens it. Assert
                // falsity honestly (the formula becomes UNSAT, surfacing
                // the modelling problem rather than hiding it).
                cnf.add_clause([]);
            }
            Cond::Is(l) => cnf.add_clause([!l]),
        }
    }
    feedback.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fulllock_locking::{FullLock, FullLockConfig, LockingScheme, PlrSpec, WireSelection};
    use fulllock_netlist::random::{generate, RandomCircuitConfig};
    use fulllock_sat::cdcl::{SolveResult, Solver};

    fn cyclic_locked() -> (fulllock_netlist::Netlist, LockedCircuit) {
        let original = generate(RandomCircuitConfig {
            inputs: 12,
            outputs: 6,
            gates: 150,
            max_fanin: 3,
            seed: 31,
        })
        .unwrap();
        let config = FullLockConfig {
            plrs: vec![PlrSpec::new(8)],
            selection: WireSelection::Cyclic,
            twist_probability: 0.5,
            seed: 17,
        };
        let locked = FullLock::new(config).lock(&original).unwrap();
        (original, locked)
    }

    #[test]
    fn acyclic_netlists_get_no_clauses() {
        let original = generate(RandomCircuitConfig::default()).unwrap();
        let locked = fulllock_locking::Rll::new(4, 0).lock(&original).unwrap();
        let mut cnf = Cnf::new();
        let key_vars: Vec<Var> = (0..4).map(|_| cnf.new_var()).collect();
        assert_eq!(add_no_cycle_clauses(&locked, &mut cnf, &key_vars), 0);
        assert_eq!(cnf.num_clauses(), 0);
    }

    #[test]
    fn correct_key_satisfies_nc_clauses() {
        let (_, locked) = cyclic_locked();
        assert!(fulllock_netlist::topo::is_cyclic(&locked.netlist));
        let mut cnf = Cnf::new();
        let key_vars: Vec<Var> = locked.key_inputs.iter().map(|_| cnf.new_var()).collect();
        let fb = add_no_cycle_clauses(&locked, &mut cnf, &key_vars);
        assert!(fb > 0, "cyclic insertion must produce feedback edges");
        assert!(cnf.num_clauses() > 0);
        let mut solver = Solver::from_cnf(&cnf);
        let assumptions: Vec<Lit> = key_vars
            .iter()
            .zip(locked.correct_key.bits())
            .map(|(&v, &b)| Lit::with_polarity(v, b))
            .collect();
        assert_eq!(solver.solve(&assumptions), SolveResult::Sat);
    }

    #[test]
    fn some_key_violates_nc_clauses() {
        // The NC constraints must actually exclude part of the key space
        // (otherwise they constrain nothing).
        let (_, locked) = cyclic_locked();
        let mut cnf = Cnf::new();
        let key_vars: Vec<Var> = locked.key_inputs.iter().map(|_| cnf.new_var()).collect();
        add_no_cycle_clauses(&locked, &mut cnf, &key_vars);
        let mut solver = Solver::from_cnf(&cnf);
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let mut excluded = 0;
        for _ in 0..50 {
            let assumptions: Vec<Lit> = key_vars
                .iter()
                .map(|&v| Lit::with_polarity(v, rng.gen_bool(0.5)))
                .collect();
            if solver.solve(&assumptions) == SolveResult::Unsat {
                excluded += 1;
            }
        }
        assert!(excluded > 0, "NC clauses excluded no random key");
    }

    #[test]
    fn cond_helpers_fold_constants() {
        let mut cnf = Cnf::new();
        assert_eq!(and2(&mut cnf, Cond::True, Cond::False), Cond::False);
        assert_eq!(and2(&mut cnf, Cond::True, Cond::True), Cond::True);
        let v = Lit::positive(cnf.new_var());
        assert_eq!(and2(&mut cnf, Cond::True, Cond::Is(v)), Cond::Is(v));
        assert_eq!(and2(&mut cnf, Cond::Is(v), Cond::Is(!v)), Cond::False);
        assert_eq!(or_list(&mut cnf, &[]), Cond::False);
        assert_eq!(or_list(&mut cnf, &[Cond::True, Cond::Is(v)]), Cond::True);
        assert_eq!(or_list(&mut cnf, &[Cond::Is(v)]), Cond::Is(v));
    }
}
