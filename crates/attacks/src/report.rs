//! The unified attack interface: the [`Attack`] trait and the common
//! [`AttackReport`] envelope every attack returns.
//!
//! The five attacks of the evaluation suite (SAT, AppSAT, Double-DIP,
//! removal, SPS) historically exposed five free functions with five
//! bespoke report types. The [`Attack`] trait unifies them behind one
//! `run(locked, oracle)` call returning one envelope, so benchmark tables
//! and comparison studies can iterate over `Vec<Box<dyn Attack>>` without
//! caring which attack produced which row. The attack-specific reports
//! survive intact inside [`AttackDetails`].

use std::path::Path;
use std::time::Duration;

use fulllock_locking::{Key, LockedCircuit};
use fulllock_sat::cdcl::SolverStats;

use crate::oracle::Oracle;
use crate::{AttackError, Result};

/// Why an attack run ended — the cross-attack outcome vocabulary.
///
/// The SAT-family attacks produce the exact-key variants
/// ([`KeyRecovered`](AttackOutcome::KeyRecovered), budget exhaustion);
/// AppSAT adds [`ApproximateKey`](AttackOutcome::ApproximateKey); the
/// structural attacks (removal, SPS) report
/// [`Bypassed`](AttackOutcome::Bypassed) or
/// [`Defeated`](AttackOutcome::Defeated).
#[derive(Debug, Clone, PartialEq)]
pub enum AttackOutcome {
    /// The attack converged and extracted an exact key.
    KeyRecovered {
        /// The extracted key.
        key: Key,
        /// Whether the key matched the oracle on every verification
        /// pattern.
        verified: bool,
    },
    /// The attack settled for a key below its error threshold (AppSAT).
    ApproximateKey {
        /// The best key found.
        key: Key,
        /// Its measured error rate (fraction of sampled patterns with any
        /// wrong output).
        measured_error: f64,
    },
    /// A structural attack produced a key-free circuit (removal / SPS).
    Bypassed {
        /// Residual functional error of the bypassed circuit vs the
        /// oracle.
        error_rate: f64,
        /// Whether the bypass was exact on every sampled pattern.
        exact: bool,
    },
    /// The attack found no handle on this scheme (e.g. SPS on a circuit
    /// without a skewed wire).
    Defeated {
        /// Human-readable explanation.
        reason: String,
    },
    /// The wall-clock budget expired first (the paper's `TO`).
    Timeout,
    /// The iteration budget expired first.
    IterationLimit,
    /// The constraint system became unsatisfiable even without the miter —
    /// only possible if the oracle is inconsistent with the locked circuit.
    Inconclusive,
}

impl AttackOutcome {
    /// Whether an exact key was recovered.
    pub fn is_broken(&self) -> bool {
        matches!(self, AttackOutcome::KeyRecovered { .. })
    }

    /// Whether the scheme lost in *any* sense: exact key, settled
    /// approximate key, or exact bypass.
    pub fn is_compromised(&self) -> bool {
        match self {
            AttackOutcome::KeyRecovered { .. } | AttackOutcome::ApproximateKey { .. } => true,
            AttackOutcome::Bypassed { exact, .. } => *exact,
            _ => false,
        }
    }
}

/// Attack-specific report payloads, preserved inside the common envelope.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub enum AttackDetails {
    /// The SAT attack's full instrumentation.
    Sat(crate::sat_attack::SatAttackReport),
    /// AppSAT's settlement data.
    AppSat(crate::appsat::AppSatReport),
    /// Double-DIP's phase split.
    DoubleDip(crate::double_dip::DoubleDipReport),
    /// The removal study (includes the bypassed netlist).
    Removal(crate::removal::RemovalStudy),
    /// The SPS scan.
    Sps(crate::sps::SpsReport),
    /// A details *summary* decoded from the wire format
    /// ([`AttackReport::from_json`](crate::AttackReport::from_json)).
    /// The full in-process payloads (bypassed netlists, per-phase data)
    /// never cross the wire; re-encoding this variant reproduces the
    /// summary verbatim, so wire round trips are lossless.
    Wire(fulllock_harness::json::Json),
}

/// The formal half of a [`KeyCertificate`]: what SAT-based equivalence
/// checking concluded about the recovered key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FormalVerdict {
    /// The locked circuit under the key is provably equivalent to the
    /// reference netlist (miter UNSAT).
    Equivalent,
    /// A counterexample input exists: the key is wrong.
    NotEquivalent,
    /// The equivalence solve hit its resource limit.
    Unknown,
    /// The check could not run (no reference netlist on the oracle, a
    /// cyclic locked netlist, interleaved inputs); the reason is recorded.
    Unavailable(String),
}

/// Independent evidence that a recovered key is correct, produced *after*
/// the attack by re-checking the key against the oracle — never by
/// trusting the solver that found it.
///
/// Two complementary checks: bit-parallel random simulation against the
/// oracle (cheap, catches gross mistakes across many patterns) and a
/// formal miter-UNSAT equivalence proof against the oracle's reference
/// netlist when one is available (exhaustive, but may be unavailable or
/// time out).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KeyCertificate {
    /// Input patterns simulated (requested samples plus the all-zeros and
    /// all-ones corners).
    pub samples: u64,
    /// Patterns where the unlocked circuit disagreed with the oracle.
    /// Non-zero means the key is demonstrably wrong.
    pub mismatches: u64,
    /// The formal equivalence verdict.
    pub formal: FormalVerdict,
}

impl KeyCertificate {
    /// Whether nothing contradicts the key: no simulation mismatch and no
    /// formal counterexample. (A clean certificate with
    /// [`FormalVerdict::Equivalent`] is a *proof*; with
    /// [`Unknown`](FormalVerdict::Unknown) or
    /// [`Unavailable`](FormalVerdict::Unavailable) it is sampled evidence
    /// only.)
    pub fn is_clean(&self) -> bool {
        self.mismatches == 0 && self.formal != FormalVerdict::NotEquivalent
    }

    /// Whether the key is formally proven correct.
    pub fn is_proven(&self) -> bool {
        self.mismatches == 0 && self.formal == FormalVerdict::Equivalent
    }
}

/// How a run weathered faults and interruptions: worker drop-outs the
/// solver isolated, and checkpoint activity when the run was
/// checkpointed. All-zeros ([`Default`]) for an undisturbed,
/// un-checkpointed run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RunResilience {
    /// Portfolio workers that panicked and were isolated while the run's
    /// solves were in flight (the race continued on the survivors).
    pub worker_panics: u64,
    /// Human-readable worker drop-out records (panics, stalls, memory-cap
    /// retirements), in observation order.
    pub worker_failures: Vec<String>,
    /// Iteration count restored from a checkpoint, when the run resumed
    /// (`None` for a fresh run).
    pub resumed_from: Option<u64>,
    /// Checkpoint snapshots successfully written during the run.
    pub checkpoints_written: u64,
    /// Best-effort checkpoint writes that failed; the run continued, so a
    /// non-zero value means the on-disk snapshot lags the reported
    /// progress.
    pub checkpoint_failures: u64,
    /// Transient oracle failures (dropped responses) absorbed by the
    /// resilient oracle layer's retry loop.
    pub oracle_retries: u64,
    /// Suspect I/O pairs re-queried under majority vote during
    /// self-healing (after an UNSAT key space or a failed verification).
    pub oracle_requeries: u64,
    /// I/O pairs quarantined because their answer changed on re-query —
    /// their constraints were disabled and the run continued without them.
    pub quarantined_pairs: u64,
}

impl RunResilience {
    /// Whether anything noteworthy happened (a fault was absorbed or a
    /// checkpoint was involved).
    pub fn is_eventful(&self) -> bool {
        *self != RunResilience::default()
    }
}

/// The common result envelope every [`Attack`] returns.
#[derive(Debug, Clone)]
pub struct AttackReport {
    /// Short attack name (`"sat"`, `"appsat"`, `"double-dip"`,
    /// `"removal"`, `"sps"`).
    pub attack: &'static str,
    /// Why the run ended.
    pub outcome: AttackOutcome,
    /// Attack iterations completed (DIPs for the SAT family, 0 for
    /// structural attacks).
    pub iterations: u64,
    /// Wall-clock time spent.
    pub elapsed: Duration,
    /// Oracle queries issued.
    pub oracle_queries: u64,
    /// SAT solver counters accumulated over the run
    /// ([merged](SolverStats::merge) across portfolio workers; zeroed for
    /// attacks that never touch a solver).
    pub solver: SolverStats,
    /// Fault-tolerance record of the run (worker drop-outs, checkpoint
    /// activity).
    pub resilience: RunResilience,
    /// Independent post-attack evidence for the recovered key
    /// ([`certify_key`](crate::certificate::certify_key)); `None` when the
    /// attack recovered no key (structural attacks, timeouts).
    pub key_certificate: Option<KeyCertificate>,
    /// The attack-specific report.
    pub details: AttackDetails,
}

/// One attack of the evaluation suite, runnable against any locked
/// circuit + oracle pair.
///
/// Implemented by [`SatAttackConfig`](crate::SatAttackConfig),
/// [`AppSatConfig`](crate::AppSatConfig),
/// [`DoubleDip`](crate::double_dip::DoubleDip),
/// [`Removal`](crate::removal::Removal), and [`Sps`](crate::sps::Sps) —
/// each configuration struct *is* the attack object.
pub trait Attack {
    /// Short stable name for tables and logs.
    fn name(&self) -> &'static str;

    /// Runs the attack against a locked circuit with oracle access.
    ///
    /// # Errors
    ///
    /// Returns [`AttackError`](crate::AttackError) for interface
    /// mismatches or structural preconditions the attack cannot handle
    /// (e.g. SPS on a cyclic netlist).
    fn run(&self, locked: &LockedCircuit, oracle: &dyn Oracle) -> Result<AttackReport>;

    /// Runs the attack with crash-safe checkpointing: after each completed
    /// iteration a snapshot is written atomically to `checkpoint` (see
    /// [`AttackCheckpoint`](crate::checkpoint::AttackCheckpoint)). With
    /// `resume` set and an existing checkpoint file, the run restores the
    /// snapshot first — re-deriving its constraints without repeating the
    /// completed iterations' oracle queries; with `resume` set and no file
    /// present, the run starts fresh (so a restart script can always pass
    /// `resume = true`).
    ///
    /// The default implementation rejects the call: only the oracle-guided
    /// DIP-loop attacks (SAT, AppSAT, Double-DIP) override it.
    ///
    /// # Errors
    ///
    /// Everything [`run`](Attack::run) returns, plus
    /// [`AttackError::CheckpointIo`] /
    /// [`AttackError::CheckpointFormat`] for unreadable or incompatible
    /// checkpoints, and [`AttackError::Unsupported`] from attacks without
    /// checkpoint support.
    fn run_checkpointed(
        &self,
        locked: &LockedCircuit,
        oracle: &dyn Oracle,
        checkpoint: &Path,
        resume: bool,
    ) -> Result<AttackReport> {
        let _ = (locked, oracle, checkpoint, resume);
        Err(AttackError::Unsupported(format!(
            "attack {:?} does not support checkpointing",
            self.name()
        )))
    }

    /// Resumes a previously checkpointed run from `checkpoint` (shorthand
    /// for [`run_checkpointed`](Attack::run_checkpointed) with
    /// `resume = true`).
    ///
    /// # Errors
    ///
    /// See [`run_checkpointed`](Attack::run_checkpointed).
    fn resume(
        &self,
        locked: &LockedCircuit,
        oracle: &dyn Oracle,
        checkpoint: &Path,
    ) -> Result<AttackReport> {
        self.run_checkpointed(locked, oracle, checkpoint, true)
    }
}
