//! The unified attack interface: the [`Attack`] trait and the common
//! [`AttackReport`] envelope every attack returns.
//!
//! The five attacks of the evaluation suite (SAT, AppSAT, Double-DIP,
//! removal, SPS) historically exposed five free functions with five
//! bespoke report types. The [`Attack`] trait unifies them behind one
//! `run(locked, oracle)` call returning one envelope, so benchmark tables
//! and comparison studies can iterate over `Vec<Box<dyn Attack>>` without
//! caring which attack produced which row. The attack-specific reports
//! survive intact inside [`AttackDetails`].

use std::time::Duration;

use fulllock_locking::{Key, LockedCircuit};
use fulllock_sat::cdcl::SolverStats;

use crate::oracle::Oracle;
use crate::Result;

/// Why an attack run ended — the cross-attack outcome vocabulary.
///
/// The SAT-family attacks produce the exact-key variants
/// ([`KeyRecovered`](AttackOutcome::KeyRecovered), budget exhaustion);
/// AppSAT adds [`ApproximateKey`](AttackOutcome::ApproximateKey); the
/// structural attacks (removal, SPS) report
/// [`Bypassed`](AttackOutcome::Bypassed) or
/// [`Defeated`](AttackOutcome::Defeated).
#[derive(Debug, Clone, PartialEq)]
pub enum AttackOutcome {
    /// The attack converged and extracted an exact key.
    KeyRecovered {
        /// The extracted key.
        key: Key,
        /// Whether the key matched the oracle on every verification
        /// pattern.
        verified: bool,
    },
    /// The attack settled for a key below its error threshold (AppSAT).
    ApproximateKey {
        /// The best key found.
        key: Key,
        /// Its measured error rate (fraction of sampled patterns with any
        /// wrong output).
        measured_error: f64,
    },
    /// A structural attack produced a key-free circuit (removal / SPS).
    Bypassed {
        /// Residual functional error of the bypassed circuit vs the
        /// oracle.
        error_rate: f64,
        /// Whether the bypass was exact on every sampled pattern.
        exact: bool,
    },
    /// The attack found no handle on this scheme (e.g. SPS on a circuit
    /// without a skewed wire).
    Defeated {
        /// Human-readable explanation.
        reason: String,
    },
    /// The wall-clock budget expired first (the paper's `TO`).
    Timeout,
    /// The iteration budget expired first.
    IterationLimit,
    /// The constraint system became unsatisfiable even without the miter —
    /// only possible if the oracle is inconsistent with the locked circuit.
    Inconclusive,
}

impl AttackOutcome {
    /// Whether an exact key was recovered.
    pub fn is_broken(&self) -> bool {
        matches!(self, AttackOutcome::KeyRecovered { .. })
    }

    /// Whether the scheme lost in *any* sense: exact key, settled
    /// approximate key, or exact bypass.
    pub fn is_compromised(&self) -> bool {
        match self {
            AttackOutcome::KeyRecovered { .. } | AttackOutcome::ApproximateKey { .. } => true,
            AttackOutcome::Bypassed { exact, .. } => *exact,
            _ => false,
        }
    }
}

/// Attack-specific report payloads, preserved inside the common envelope.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub enum AttackDetails {
    /// The SAT attack's full instrumentation.
    Sat(crate::sat_attack::SatAttackReport),
    /// AppSAT's settlement data.
    AppSat(crate::appsat::AppSatReport),
    /// Double-DIP's phase split.
    DoubleDip(crate::double_dip::DoubleDipReport),
    /// The removal study (includes the bypassed netlist).
    Removal(crate::removal::RemovalStudy),
    /// The SPS scan.
    Sps(crate::sps::SpsReport),
}

/// The common result envelope every [`Attack`] returns.
#[derive(Debug, Clone)]
pub struct AttackReport {
    /// Short attack name (`"sat"`, `"appsat"`, `"double-dip"`,
    /// `"removal"`, `"sps"`).
    pub attack: &'static str,
    /// Why the run ended.
    pub outcome: AttackOutcome,
    /// Attack iterations completed (DIPs for the SAT family, 0 for
    /// structural attacks).
    pub iterations: u64,
    /// Wall-clock time spent.
    pub elapsed: Duration,
    /// Oracle queries issued.
    pub oracle_queries: u64,
    /// SAT solver counters accumulated over the run
    /// ([merged](SolverStats::merge) across portfolio workers; zeroed for
    /// attacks that never touch a solver).
    pub solver: SolverStats,
    /// The attack-specific report.
    pub details: AttackDetails,
}

/// One attack of the evaluation suite, runnable against any locked
/// circuit + oracle pair.
///
/// Implemented by [`SatAttackConfig`](crate::SatAttackConfig),
/// [`AppSatConfig`](crate::AppSatConfig),
/// [`DoubleDip`](crate::double_dip::DoubleDip),
/// [`Removal`](crate::removal::Removal), and [`Sps`](crate::sps::Sps) —
/// each configuration struct *is* the attack object.
pub trait Attack {
    /// Short stable name for tables and logs.
    fn name(&self) -> &'static str;

    /// Runs the attack against a locked circuit with oracle access.
    ///
    /// # Errors
    ///
    /// Returns [`AttackError`](crate::AttackError) for interface
    /// mismatches or structural preconditions the attack cannot handle
    /// (e.g. SPS on a cyclic netlist).
    fn run(&self, locked: &LockedCircuit, oracle: &dyn Oracle) -> Result<AttackReport>;
}
