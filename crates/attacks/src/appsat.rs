//! AppSAT: the approximate SAT attack (Shamsi et al., HOST 2017).
//!
//! Against point-function schemes (SARLock, Anti-SAT) the exact SAT attack
//! needs `2^m` iterations, but almost every key is *almost* correct —
//! AppSAT exploits this by interleaving DIP iterations with random-query
//! probing and settling for a key whose measured error rate is below a
//! threshold. Against high-corruption schemes like Full-Lock, an
//! approximate key is as useless as a random one, which is exactly the
//! property §4.2 claims (and [`AppSatConfig`]'s reports quantify —
//! run it through the [`Attack`] trait).

use std::time::Duration;

use fulllock_locking::{Key, LockedCircuit};
use fulllock_netlist::topo;
use fulllock_sat::cdcl::SolverStats;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::oracle::Oracle;
use crate::report::{Attack, AttackDetails, AttackOutcome, AttackReport};
use crate::sat_attack::{SatAttack, SatAttackConfig, Step};
use crate::Result;

/// Configuration of an AppSAT run.
#[derive(Debug, Clone, Copy)]
pub struct AppSatConfig {
    /// DIP iterations between settlement probes.
    pub probe_interval: u64,
    /// Random patterns per probe.
    pub probe_samples: usize,
    /// Settle when the measured error rate is ≤ this threshold.
    pub error_threshold: f64,
    /// Base SAT attack limits (timeout / iteration cap).
    pub base: SatAttackConfig,
    /// RNG seed for probing.
    pub seed: u64,
}

impl Default for AppSatConfig {
    fn default() -> Self {
        AppSatConfig {
            probe_interval: 4,
            probe_samples: 64,
            error_threshold: 0.01,
            base: SatAttackConfig {
                timeout: Some(Duration::from_secs(60)),
                ..Default::default()
            },
            seed: 0,
        }
    }
}

/// Result of an AppSAT run.
#[derive(Debug, Clone)]
pub struct AppSatReport {
    /// The best (possibly approximate) key found, if any.
    pub key: Option<Key>,
    /// Error rate of that key measured on the final probe (fraction of
    /// sampled patterns with any wrong output).
    pub measured_error: f64,
    /// Whether the attack settled below the threshold (approximate
    /// success) rather than running out of budget.
    pub settled: bool,
    /// Whether the DIP loop actually converged (exact success).
    pub exact: bool,
    /// DIP iterations performed.
    pub iterations: u64,
    /// Wall-clock time spent.
    pub elapsed: Duration,
    /// SAT solver counters accumulated over the run (merged across
    /// portfolio workers when the backend is a portfolio).
    pub solver: SolverStats,
}

#[cfg(test)]
fn run_appsat(
    locked: &LockedCircuit,
    oracle: &dyn Oracle,
    config: AppSatConfig,
) -> Result<AppSatReport> {
    let mut engine = SatAttack::new(locked, oracle, config.base)?;
    engine.set_checkpoint_label("appsat");
    drive_appsat(&mut engine, locked, oracle, config)
}

/// The AppSAT loop over a pre-built engine (fresh or resumed from a
/// checkpoint — the engine-level I/O log covers DIPs *and* reinforcement
/// queries, so a restored engine carries both back).
fn drive_appsat(
    engine: &mut SatAttack<'_>,
    locked: &LockedCircuit,
    oracle: &dyn Oracle,
    config: AppSatConfig,
) -> Result<AppSatReport> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut best: Option<(Key, f64)> = None;

    loop {
        // A settlement probe runs before the first DIP too: point-function
        // schemes are approximately broken by *any* consistent key.
        if engine.iterations().is_multiple_of(config.probe_interval) {
            if let Some(key) = engine.extract_key()? {
                let (error, mismatches) =
                    probe_error(locked, oracle, &key, config.probe_samples, &mut rng);
                // AppSAT reinforcement: failed probes become constraints.
                let reinforced = !mismatches.is_empty();
                for (x, y) in mismatches {
                    engine.assert_io(&x, &y);
                }
                if best.as_ref().is_none_or(|(_, e)| error < *e) {
                    engine.set_candidate_key(key.clone());
                    best = Some((key.clone(), error));
                }
                if reinforced {
                    // Persist the reinforcement constraints too — they cost
                    // oracle queries, same as DIPs.
                    engine.checkpoint_now();
                }
                if error <= config.error_threshold {
                    return Ok(AppSatReport {
                        key: Some(key),
                        measured_error: error,
                        settled: true,
                        exact: false,
                        iterations: engine.iterations(),
                        elapsed: engine.elapsed(),
                        solver: engine.solver_stats(),
                    });
                }
            }
        }
        match engine.step()? {
            Step::Dip(_) => continue,
            Step::NoMoreDips => {
                let key = engine.extract_key()?;
                let (error, _) = match &key {
                    Some(k) => probe_error(locked, oracle, k, config.probe_samples, &mut rng),
                    None => (1.0, Vec::new()),
                };
                return Ok(AppSatReport {
                    settled: error <= config.error_threshold,
                    exact: key.is_some(),
                    measured_error: error,
                    key,
                    iterations: engine.iterations(),
                    elapsed: engine.elapsed(),
                    solver: engine.solver_stats(),
                });
            }
            Step::Budget => {
                let (key, error) = match best {
                    Some((k, e)) => (Some(k), e),
                    // A resumed run may not have re-probed yet; fall back
                    // to the checkpoint's candidate key with unknown
                    // (pessimistic) error.
                    None => (engine.candidate_key().cloned(), 1.0),
                };
                return Ok(AppSatReport {
                    key,
                    measured_error: error,
                    settled: false,
                    exact: false,
                    iterations: engine.iterations(),
                    elapsed: engine.elapsed(),
                    solver: engine.solver_stats(),
                });
            }
        }
    }
}

impl Attack for AppSatConfig {
    fn name(&self) -> &'static str {
        "appsat"
    }

    /// Runs AppSAT and folds its settlement data into the common
    /// envelope: an exact convergence maps to
    /// [`AttackOutcome::KeyRecovered`], a settled approximate key to
    /// [`AttackOutcome::ApproximateKey`], and budget exhaustion to
    /// [`AttackOutcome::Timeout`].
    ///
    /// # Example
    ///
    /// ```no_run
    /// use fulllock_attacks::{AppSatConfig, Attack, SimOracle};
    /// use fulllock_locking::{LockingScheme, SarLock};
    /// use fulllock_netlist::benchmarks;
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let original = benchmarks::load("c432")?;
    /// let locked = SarLock::new(16, 0).lock(&original)?;
    /// let oracle = SimOracle::new(&original)?;
    /// // SARLock's error rate is 2^-16: AppSAT settles almost immediately.
    /// let report = AppSatConfig::default().run(&locked, &oracle)?;
    /// assert!(matches!(
    ///     report.outcome,
    ///     fulllock_attacks::AttackOutcome::ApproximateKey { .. }
    /// ));
    /// # Ok(())
    /// # }
    /// ```
    fn run(&self, locked: &LockedCircuit, oracle: &dyn Oracle) -> Result<AttackReport> {
        let mut engine = SatAttack::new(locked, oracle, self.base)?;
        engine.set_checkpoint_label("appsat");
        envelope(&mut engine, locked, oracle, *self)
    }

    fn run_checkpointed(
        &self,
        locked: &LockedCircuit,
        oracle: &dyn Oracle,
        checkpoint: &std::path::Path,
        resume: bool,
    ) -> Result<AttackReport> {
        let mut engine = SatAttack::new(locked, oracle, self.base)?;
        engine.set_checkpoint_label("appsat");
        if resume && checkpoint.exists() {
            let snapshot = crate::checkpoint::AttackCheckpoint::load(checkpoint)?;
            engine.restore(&snapshot)?;
        }
        engine.set_checkpoint(checkpoint);
        envelope(&mut engine, locked, oracle, *self)
    }
}

/// Drives the AppSAT loop and folds its settlement data into the common
/// envelope, capturing the fault-tolerance record and certifying the
/// recovered (or settled approximate) key. A certification failure on
/// any solve aborts with [`AttackError`](crate::AttackError).
fn envelope(
    engine: &mut SatAttack<'_>,
    locked: &LockedCircuit,
    oracle: &dyn Oracle,
    config: AppSatConfig,
) -> Result<AttackReport> {
    let report = drive_appsat(engine, locked, oracle, config)?;
    if let Some(failure) = engine.certify_failure() {
        return Err(crate::AttackError::Certification(failure.clone()));
    }
    let outcome = match (&report.key, report.exact, report.settled) {
        (Some(key), true, _) => AttackOutcome::KeyRecovered {
            key: key.clone(),
            verified: report.measured_error == 0.0,
        },
        (Some(key), false, true) => AttackOutcome::ApproximateKey {
            key: key.clone(),
            measured_error: report.measured_error,
        },
        _ => AttackOutcome::Timeout,
    };
    let key_certificate = match &outcome {
        AttackOutcome::KeyRecovered { key, .. } | AttackOutcome::ApproximateKey { key, .. } => {
            Some(crate::certificate::certify_key(
                locked, oracle, key, 64, 0xCE87,
            ))
        }
        _ => None,
    };
    Ok(AttackReport {
        attack: "appsat",
        outcome,
        iterations: report.iterations,
        elapsed: report.elapsed,
        oracle_queries: engine.oracle_queries(),
        solver: report.solver,
        resilience: engine.resilience(),
        key_certificate,
        details: AttackDetails::AppSat(report),
    })
}

/// Measures a key's error rate on random patterns; returns the rate and
/// the mismatching (input, oracle-output) pairs for reinforcement.
#[allow(clippy::type_complexity)]
fn probe_error(
    locked: &LockedCircuit,
    oracle: &dyn Oracle,
    key: &Key,
    samples: usize,
    rng: &mut StdRng,
) -> (f64, Vec<(Vec<bool>, Vec<bool>)>) {
    let width = locked.data_inputs.len();
    let cyclic = topo::is_cyclic(&locked.netlist);
    let mut wrong = 0usize;
    let mut mismatches = Vec::new();
    for _ in 0..samples {
        let x: Vec<bool> = (0..width).map(|_| rng.gen_bool(0.5)).collect();
        let want = oracle.query(&x);
        let matches = if cyclic {
            locked
                .eval_cyclic(&x, key)
                .map(|e| {
                    e.all_outputs_known()
                        && e.outputs
                            .iter()
                            .zip(&want)
                            .all(|(t, w)| t.to_bool() == Some(*w))
                })
                .unwrap_or(false)
        } else {
            locked.eval(&x, key).map(|got| got == want).unwrap_or(false)
        };
        if !matches {
            wrong += 1;
            if mismatches.len() < 8 {
                mismatches.push((x, want));
            }
        }
    }
    (wrong as f64 / samples.max(1) as f64, mismatches)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SimOracle;
    use fulllock_locking::{FullLock, FullLockConfig, LockingScheme, SarLock};
    use fulllock_netlist::random::{generate, RandomCircuitConfig};

    fn host(seed: u64) -> fulllock_netlist::Netlist {
        generate(RandomCircuitConfig {
            inputs: 12,
            outputs: 6,
            gates: 120,
            max_fanin: 3,
            seed,
        })
        .unwrap()
    }

    #[test]
    fn appsat_settles_on_sarlock_quickly() {
        // SARLock with 10 key bits: exact attack needs ~2^10 iterations;
        // AppSAT should settle in a handful (error 2^-10 < threshold).
        let original = host(1);
        let locked = SarLock::new(10, 2).lock(&original).unwrap();
        let oracle = SimOracle::new(&original).unwrap();
        let report = run_appsat(&locked, &oracle, AppSatConfig::default()).unwrap();
        assert!(report.settled, "AppSAT should settle on SARLock");
        assert!(
            report.iterations < 100,
            "needed {} iterations",
            report.iterations
        );
        assert!(report.measured_error <= 0.01);
    }

    #[test]
    fn appsat_gains_nothing_on_fulllock() {
        // Full-Lock's corruption is high: within a small budget AppSAT
        // neither settles nor converges, and its best key stays badly
        // wrong — the paper's §4.2 claim.
        let original = host(2);
        let locked = FullLock::new(FullLockConfig::single_plr(16))
            .lock(&original)
            .unwrap();
        let oracle = SimOracle::new(&original).unwrap();
        let config = AppSatConfig {
            base: SatAttackConfig {
                timeout: Some(Duration::from_millis(300)),
                ..Default::default()
            },
            ..Default::default()
        };
        let report = run_appsat(&locked, &oracle, config).unwrap();
        assert!(!report.settled);
        assert!(!report.exact);
        assert!(
            report.measured_error > 0.05,
            "approximate key suspiciously good: {}",
            report.measured_error
        );
    }

    #[test]
    fn appsat_is_exact_on_small_schemes() {
        let original = host(3);
        let locked = fulllock_locking::Rll::new(8, 1).lock(&original).unwrap();
        let oracle = SimOracle::new(&original).unwrap();
        let report = run_appsat(&locked, &oracle, AppSatConfig::default()).unwrap();
        // Either settles early (error 0 measured) or converges exactly;
        // both count as breaking RLL.
        assert!(report.settled || report.exact);
        let key = report.key.expect("a key must be produced");
        // The key must be near-perfect functionally.
        let mut rng = StdRng::seed_from_u64(9);
        let sim = fulllock_netlist::Simulator::new(&original).unwrap();
        let mut errors = 0;
        for _ in 0..64 {
            let x: Vec<bool> = (0..original.inputs().len())
                .map(|_| rng.gen_bool(0.5))
                .collect();
            if locked.eval(&x, &key).unwrap() != sim.run(&x).unwrap() {
                errors += 1;
            }
        }
        assert!(errors <= 2, "{errors}/64 errors");
    }
}
