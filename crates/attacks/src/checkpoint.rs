//! Crash-safe checkpointing of oracle-guided attack runs.
//!
//! A Full-Lock attack on a production-sized netlist is a long-lived job:
//! hours of DIP iterations against a physical oracle, any of which can be
//! cut short by a crash, an OOM kill, or a cluster pre-emption. Every DIP
//! is paid for with a real oracle query, so losing the accumulated
//! constraints means re-buying them. This module makes runs resumable:
//!
//! * [`AttackCheckpoint`] captures everything a DIP loop needs to pick up
//!   where it stopped — the observed I/O pairs (the *semantic* state; the
//!   CNF is re-derived from them on resume, so the file stays small and
//!   version-independent of the encoder), iteration counters, the phase
//!   (for Double-DIP's two-phase loop), the best candidate key, and the
//!   cumulative instrumentation (elapsed time, oracle queries, solver
//!   counters);
//! * [`AttackCheckpoint::save`] writes through
//!   [`fulllock_harness::persist::save_sealed`]: the JSON is wrapped in a
//!   checksummed envelope, written atomically (`<path>.tmp`, `sync_all`,
//!   `rename`), and the previous good checkpoint is kept one more
//!   generation as `<path>.1`. A crash mid-write leaves the previous
//!   checkpoint intact; a torn write that the filesystem *reports as
//!   successful* fails its checksum on load and falls back to `<path>.1`
//!   instead of aborting the resume;
//! * [`AttackCheckpoint::load`] validates the version and (via
//!   [`AttackCheckpoint::validate_for`]) the attack name and interface
//!   widths, so a checkpoint can never silently resume against the wrong
//!   netlist.
//!
//! The on-disk format is versioned JSON ([`CHECKPOINT_VERSION`]); bit
//! vectors are `"0101"` strings (index 0 first). See `DESIGN.md` for the
//! schema.

use std::path::{Path, PathBuf};
use std::time::Duration;

use fulllock_harness::persist;
use fulllock_locking::Key;
use fulllock_sat::cdcl::SolverStats;
use fulllock_sat::faults::{self, FaultAction};

use crate::json::Json;
use crate::{AttackError, Result};

/// Version tag written into every checkpoint file; loading any other
/// version fails rather than guessing.
pub const CHECKPOINT_VERSION: u64 = 1;

/// One observed oracle I/O pair (the unit of progress of a DIP loop).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IoPair {
    /// Data-input pattern queried.
    pub inputs: Vec<bool>,
    /// Oracle response.
    pub outputs: Vec<bool>,
    /// How many of the majority-vote repetitions agreed with the recorded
    /// response (1 for an unvoted query; also 1 for pairs restored from
    /// checkpoints written before votes were recorded).
    pub votes: u64,
    /// Whether the pair was quarantined: its answer changed on a
    /// suspicion re-query, so its constraints are disabled and stay
    /// disabled across resumes (the pair is kept in the log as evidence).
    pub quarantined: bool,
}

impl IoPair {
    /// A trusted, unquarantined pair with a single supporting vote.
    pub fn new(inputs: Vec<bool>, outputs: Vec<bool>) -> IoPair {
        IoPair {
            inputs,
            outputs,
            votes: 1,
            quarantined: false,
        }
    }
}

/// A resumable snapshot of an oracle-guided attack run.
#[derive(Debug, Clone, PartialEq)]
pub struct AttackCheckpoint {
    /// Schema version ([`CHECKPOINT_VERSION`]).
    pub version: u64,
    /// Attack name (`"sat"`, `"appsat"`, `"double-dip"`); a checkpoint
    /// only resumes the attack that wrote it.
    pub attack: String,
    /// Data-input width of the locked circuit (resume-time validation).
    pub data_bits: usize,
    /// Key width of the locked circuit (resume-time validation).
    pub key_bits: usize,
    /// Loop phase: 0 for single-phase DIP loops; Double-DIP uses 1
    /// (2-DIP phase) and 2 (plain-DIP clean-up).
    pub phase: u64,
    /// Completed primary-loop iterations.
    pub iterations: u64,
    /// Completed clean-up iterations (Double-DIP only; 0 otherwise).
    pub cleanup_iterations: u64,
    /// Best candidate key at snapshot time, if the attack tracked one
    /// (AppSAT's settling key; `None` for the exact attacks mid-loop).
    pub candidate_key: Option<Key>,
    /// Sum of per-iteration clause/variable ratios (Fig 7 instrumentation).
    pub ratio_sum: f64,
    /// Number of ratio samples.
    pub ratio_samples: u64,
    /// Wall-clock time spent before the snapshot (cumulative across
    /// resumes).
    pub elapsed: Duration,
    /// Oracle queries issued before the snapshot (cumulative).
    pub oracle_queries: u64,
    /// Solver counters accumulated before the snapshot (cumulative).
    pub solver: SolverStats,
    /// Every observed I/O pair, in assertion order — replaying these
    /// through the attack's constraint encoder reproduces the formula
    /// without touching the oracle.
    pub io_pairs: Vec<IoPair>,
}

impl AttackCheckpoint {
    /// An empty snapshot for the named attack (counters zero, no pairs).
    pub fn new(attack: &str, data_bits: usize, key_bits: usize) -> AttackCheckpoint {
        AttackCheckpoint {
            version: CHECKPOINT_VERSION,
            attack: attack.to_string(),
            data_bits,
            key_bits,
            phase: 0,
            iterations: 0,
            cleanup_iterations: 0,
            candidate_key: None,
            ratio_sum: 0.0,
            ratio_samples: 0,
            elapsed: Duration::ZERO,
            oracle_queries: 0,
            solver: SolverStats::default(),
            io_pairs: Vec::new(),
        }
    }

    /// Checks this snapshot can resume the named attack on a circuit with
    /// the given interface widths.
    ///
    /// # Errors
    ///
    /// Returns [`AttackError::CheckpointFormat`] (with an empty path) on
    /// any mismatch.
    pub fn validate_for(&self, attack: &str, data_bits: usize, key_bits: usize) -> Result<()> {
        let complain = |message: String| {
            Err(AttackError::CheckpointFormat {
                path: PathBuf::new(),
                message,
            })
        };
        if self.attack != attack {
            return complain(format!(
                "checkpoint was written by attack {:?}, not {attack:?}",
                self.attack
            ));
        }
        if self.data_bits != data_bits || self.key_bits != key_bits {
            return complain(format!(
                "checkpoint interface is {}x{} (data x key bits) but the circuit is {data_bits}x{key_bits}",
                self.data_bits, self.key_bits
            ));
        }
        for (i, pair) in self.io_pairs.iter().enumerate() {
            if pair.inputs.len() != data_bits {
                return complain(format!(
                    "io pair {i} has {} input bits, expected {data_bits}",
                    pair.inputs.len()
                ));
            }
        }
        Ok(())
    }

    /// Serializes to the versioned JSON text format. The solver block
    /// uses the shared wire codec
    /// ([`wire::solver_stats_to_json`](crate::wire::solver_stats_to_json)),
    /// so checkpoints and wire reports agree on that schema.
    pub fn to_json(&self) -> String {
        let solver = crate::wire::solver_stats_to_json(&self.solver);
        let pairs = Json::Array(
            self.io_pairs
                .iter()
                .map(|pair| {
                    Json::Object(vec![
                        ("x".into(), Json::Str(bits_to_string(&pair.inputs))),
                        ("y".into(), Json::Str(bits_to_string(&pair.outputs))),
                        ("v".into(), Json::Int(pair.votes)),
                        ("q".into(), Json::Bool(pair.quarantined)),
                    ])
                })
                .collect(),
        );
        Json::Object(vec![
            ("version".into(), Json::Int(self.version)),
            ("attack".into(), Json::Str(self.attack.clone())),
            ("data_bits".into(), Json::Int(self.data_bits as u64)),
            ("key_bits".into(), Json::Int(self.key_bits as u64)),
            ("phase".into(), Json::Int(self.phase)),
            ("iterations".into(), Json::Int(self.iterations)),
            (
                "cleanup_iterations".into(),
                Json::Int(self.cleanup_iterations),
            ),
            (
                "candidate_key".into(),
                match &self.candidate_key {
                    Some(key) => Json::Str(key.to_string()),
                    None => Json::Null,
                },
            ),
            ("ratio_sum".into(), Json::Float(self.ratio_sum)),
            ("ratio_samples".into(), Json::Int(self.ratio_samples)),
            (
                "elapsed_secs".into(),
                Json::Float(self.elapsed.as_secs_f64()),
            ),
            ("oracle_queries".into(), Json::Int(self.oracle_queries)),
            ("solver".into(), solver),
            ("io_pairs".into(), pairs),
        ])
        .to_text()
    }

    /// Parses the JSON text format, validating the version tag.
    ///
    /// # Errors
    ///
    /// Returns [`AttackError::CheckpointFormat`] (with an empty path — the
    /// file-level [`load`](Self::load) fills it in) on malformed text or
    /// an unsupported version.
    pub fn from_json(text: &str) -> Result<AttackCheckpoint> {
        parse_checkpoint(text).map_err(|message| AttackError::CheckpointFormat {
            path: PathBuf::new(),
            message,
        })
    }

    /// Writes the checkpoint sealed (checksummed envelope), atomically,
    /// keeping the previous generation as `<path>.1`. A crash at any
    /// point leaves either the old complete checkpoint or the new one;
    /// a torn write is caught by the checksum on [`load`](Self::load),
    /// which then falls back to `<path>.1`.
    ///
    /// The [`faults::site::CHECKPOINT_SAVE`] failpoint hooks this path:
    /// `corrupt` simulates a torn-but-reported-successful write (rotate,
    /// then leave a half-written envelope), `delay:<ms>` slows the save.
    ///
    /// # Errors
    ///
    /// Returns [`AttackError::CheckpointIo`] on any filesystem failure.
    pub fn save(&self, path: &Path) -> Result<()> {
        let io_err = |message: String| AttackError::CheckpointIo {
            path: path.to_path_buf(),
            message,
        };
        let text = self.to_json();
        match faults::evaluate(faults::site::CHECKPOINT_SAVE, 0) {
            Some(FaultAction::Corrupt) => {
                // A torn write the filesystem reported as successful:
                // rotate like a real save, then truncate the sealed
                // envelope mid-payload. The checksum cannot verify, so
                // load() must fall back to the rotated `<path>.1`.
                let sealed = fulllock_harness::json::seal(&text);
                let torn = &sealed[..sealed.len() / 2];
                if path.exists() {
                    let mut previous = path.as_os_str().to_os_string();
                    previous.push(".1");
                    std::fs::rename(path, PathBuf::from(previous))
                        .map_err(|e| io_err(format!("rotate previous: {e}")))?;
                }
                return std::fs::write(path, torn).map_err(|e| io_err(format!("torn write: {e}")));
            }
            Some(delay @ FaultAction::DelayMs(_)) => faults::apply_delay(delay),
            _ => {}
        }
        persist::save_sealed(path, &text).map_err(|e| io_err(format!("save: {e}")))
    }

    /// Loads and parses the newest checksum-valid generation of a
    /// checkpoint file. A corrupt primary is quarantined as
    /// `<path>.corrupt` and the previous generation `<path>.1` is used
    /// instead (with a warning on stderr); unsealed files written by
    /// older builds load as before.
    ///
    /// # Errors
    ///
    /// Returns [`AttackError::CheckpointIo`] if no generation can be read,
    /// and [`AttackError::CheckpointFormat`] if the surviving text is
    /// invalid.
    pub fn load(path: &Path) -> Result<AttackCheckpoint> {
        let loaded = persist::load_sealed(path).map_err(|e| {
            if e.kind() == std::io::ErrorKind::InvalidData {
                AttackError::CheckpointFormat {
                    path: path.to_path_buf(),
                    message: e.to_string(),
                }
            } else {
                AttackError::CheckpointIo {
                    path: path.to_path_buf(),
                    message: format!("read: {e}"),
                }
            }
        })?;
        if loaded.from_previous {
            eprintln!(
                "warning: checkpoint {} failed its checksum{}; resuming from previous generation",
                path.display(),
                match &loaded.quarantined {
                    Some(q) => format!(" (quarantined as {})", q.display()),
                    None => String::new(),
                }
            );
        }
        AttackCheckpoint::from_json(&loaded.payload).map_err(|e| match e {
            AttackError::CheckpointFormat { message, .. } => AttackError::CheckpointFormat {
                path: path.to_path_buf(),
                message,
            },
            other => other,
        })
    }
}

/// Renders bits as a `"0101"` string, index 0 first.
fn bits_to_string(bits: &[bool]) -> String {
    bits.iter().map(|&b| if b { '1' } else { '0' }).collect()
}

/// Parses a `"0101"` string back into bits.
fn string_to_bits(s: &str) -> Result<Vec<bool>, String> {
    s.chars()
        .map(|c| match c {
            '0' => Ok(false),
            '1' => Ok(true),
            other => Err(format!("invalid bit character {other:?}")),
        })
        .collect()
}

fn parse_checkpoint(text: &str) -> std::result::Result<AttackCheckpoint, String> {
    let root = Json::parse(text)?;
    let field = |name: &str| {
        root.get(name)
            .ok_or_else(|| format!("missing field {name:?}"))
    };
    let int_field = |name: &str| {
        field(name)?
            .as_u64()
            .ok_or_else(|| format!("field {name:?} must be an unsigned integer"))
    };

    let version = int_field("version")?;
    if version != CHECKPOINT_VERSION {
        return Err(format!(
            "unsupported checkpoint version {version} (this build reads version {CHECKPOINT_VERSION})"
        ));
    }
    let attack = field("attack")?
        .as_str()
        .ok_or("field \"attack\" must be a string")?
        .to_string();
    let candidate_key = match field("candidate_key")? {
        Json::Null => None,
        Json::Str(s) => Some(
            s.parse::<Key>()
                .map_err(|e| format!("invalid candidate_key: {e}"))?,
        ),
        _ => return Err("field \"candidate_key\" must be a bit string or null".to_string()),
    };
    let ratio_sum = field("ratio_sum")?
        .as_f64()
        .ok_or("field \"ratio_sum\" must be a number")?;
    let elapsed_secs = field("elapsed_secs")?
        .as_f64()
        .ok_or("field \"elapsed_secs\" must be a number")?;
    if !elapsed_secs.is_finite() || elapsed_secs < 0.0 {
        return Err(format!(
            "field \"elapsed_secs\" out of range: {elapsed_secs}"
        ));
    }

    let solver = crate::wire::solver_stats_from_json(field("solver")?)?;

    let pairs_json = field("io_pairs")?
        .as_array()
        .ok_or("field \"io_pairs\" must be an array")?;
    let mut io_pairs = Vec::with_capacity(pairs_json.len());
    for (i, pair) in pairs_json.iter().enumerate() {
        let coord = |name: &str| {
            pair.get(name)
                .and_then(Json::as_str)
                .ok_or_else(|| format!("io pair {i} is missing bit string {name:?}"))
        };
        // Vote count and quarantine flag arrived with the resilient
        // oracle layer; files written before then default to one
        // supporting vote and not quarantined.
        io_pairs.push(IoPair {
            inputs: string_to_bits(coord("x")?)?,
            outputs: string_to_bits(coord("y")?)?,
            votes: pair.get("v").and_then(Json::as_u64).unwrap_or(1),
            quarantined: pair.get("q").and_then(Json::as_bool).unwrap_or(false),
        });
    }

    Ok(AttackCheckpoint {
        version,
        attack,
        data_bits: int_field("data_bits")? as usize,
        key_bits: int_field("key_bits")? as usize,
        phase: int_field("phase")?,
        iterations: int_field("iterations")?,
        cleanup_iterations: int_field("cleanup_iterations")?,
        candidate_key,
        ratio_sum,
        ratio_samples: int_field("ratio_samples")?,
        elapsed: Duration::from_secs_f64(elapsed_secs),
        oracle_queries: int_field("oracle_queries")?,
        solver,
        io_pairs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> AttackCheckpoint {
        let mut cp = AttackCheckpoint::new("sat", 4, 3);
        cp.iterations = 7;
        cp.phase = 0;
        cp.candidate_key = Some(Key::from_bits([true, false, true]));
        cp.ratio_sum = 13.625;
        cp.ratio_samples = 7;
        cp.elapsed = Duration::from_millis(1250);
        cp.oracle_queries = 9;
        cp.solver.conflicts = 123;
        cp.solver.lbd_histogram[2] = 45;
        cp.solver.worker_panics = 1;
        cp.io_pairs = vec![
            IoPair {
                inputs: vec![true, false, false, true],
                outputs: vec![false, true],
                votes: 3,
                quarantined: false,
            },
            IoPair {
                inputs: vec![false, false, true, true],
                outputs: vec![true, true],
                votes: 2,
                quarantined: true,
            },
        ];
        cp
    }

    #[test]
    fn json_round_trip_is_exact() {
        let cp = sample();
        let back = AttackCheckpoint::from_json(&cp.to_json()).expect("round trip");
        assert_eq!(back, cp);
    }

    #[test]
    fn null_candidate_key_round_trips() {
        let mut cp = sample();
        cp.candidate_key = None;
        let back = AttackCheckpoint::from_json(&cp.to_json()).expect("round trip");
        assert_eq!(back.candidate_key, None);
    }

    #[test]
    fn save_load_round_trips_and_is_atomic() {
        let dir = std::env::temp_dir().join(format!("fulllock-ckpt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("attack.ckpt");
        let cp = sample();
        cp.save(&path).expect("save");
        // No temp residue after a successful save.
        assert!(!path.with_extension("ckpt.tmp").exists());
        let back = AttackCheckpoint::load(&path).expect("load");
        assert_eq!(back, cp);
        // Overwrite with a newer snapshot: still one coherent file.
        let mut newer = cp.clone();
        newer.iterations = 8;
        newer.save(&path).expect("second save");
        assert_eq!(AttackCheckpoint::load(&path).expect("reload").iterations, 8);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_primary_falls_back_to_previous_generation() {
        let dir = std::env::temp_dir().join(format!("fulllock-ckpt-torn-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("attack.ckpt");
        let mut cp = sample();
        cp.save(&path).expect("first save");
        cp.iterations = 8;
        cp.save(&path).expect("second save");
        // Tear the primary as a lying-fsync torn write would.
        let full = std::fs::read_to_string(&path).expect("read");
        std::fs::write(&path, &full[..full.len() / 2]).expect("tear");
        let back = AttackCheckpoint::load(&path).expect("fallback load");
        assert_eq!(back.iterations, 7, "previous generation restored");
        let quarantine = dir.join("attack.ckpt.corrupt");
        assert!(quarantine.exists(), "torn primary quarantined");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn legacy_unsealed_checkpoint_still_loads() {
        let dir = std::env::temp_dir().join(format!("fulllock-ckpt-legacy-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("attack.ckpt");
        let cp = sample();
        std::fs::write(&path, cp.to_json() + "\n").expect("write legacy file");
        let back = AttackCheckpoint::load(&path).expect("legacy load");
        assert_eq!(back, cp);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stats_fields_missing_from_old_files_default_to_zero() {
        let cp = sample();
        let text = cp
            .to_json()
            .replace(",\"exchange_rejects\":0", "")
            .replace(",\"certified_models\":0", "");
        assert!(!text.contains("exchange_rejects"), "field really removed");
        let back = AttackCheckpoint::from_json(&text).expect("old-format parse");
        assert_eq!(back.solver.exchange_rejects, 0);
        assert_eq!(back.solver.certified_models, 0);
    }

    #[test]
    fn pairs_without_vote_fields_default_to_one_trusted_vote() {
        // Checkpoints written before the resilient oracle layer carry
        // only "x"/"y" per pair.
        let text = sample()
            .to_json()
            .replace(",\"v\":3,\"q\":false", "")
            .replace(",\"v\":2,\"q\":true", "");
        assert!(!text.contains("\"v\":"), "fields really removed");
        let back = AttackCheckpoint::from_json(&text).expect("legacy pairs parse");
        for pair in &back.io_pairs {
            assert_eq!(pair.votes, 1);
            assert!(!pair.quarantined);
        }
    }

    #[test]
    fn version_mismatch_is_rejected() {
        let text = sample()
            .to_json()
            .replace("\"version\":1", "\"version\":99");
        let err = AttackCheckpoint::from_json(&text).expect_err("must reject");
        assert!(matches!(err, AttackError::CheckpointFormat { .. }), "{err}");
        assert!(err.to_string().contains("version 99"), "{err}");
    }

    #[test]
    fn malformed_text_is_rejected_with_context() {
        for bad in ["", "{}", "not json", "{\"version\":1}"] {
            let err = AttackCheckpoint::from_json(bad).expect_err(bad);
            assert!(matches!(err, AttackError::CheckpointFormat { .. }), "{bad}");
        }
    }

    #[test]
    fn validate_for_checks_attack_and_interface() {
        let cp = sample();
        assert!(cp.validate_for("sat", 4, 3).is_ok());
        assert!(cp.validate_for("appsat", 4, 3).is_err());
        assert!(cp.validate_for("sat", 5, 3).is_err());
        assert!(cp.validate_for("sat", 4, 2).is_err());
    }

    #[test]
    fn load_of_missing_file_is_an_io_error() {
        let err =
            AttackCheckpoint::load(Path::new("/nonexistent/fulllock.ckpt")).expect_err("must fail");
        assert!(matches!(err, AttackError::CheckpointIo { .. }), "{err}");
    }
}
