//! Attacks on locked netlists — the evaluation engine of the Full-Lock
//! reproduction.
//!
//! Implements the attack suite the paper evaluates with (§4):
//!
//! * [`sat_attack`] — the oracle-guided SAT attack (miter + DIP loop),
//!   instrumented with iteration counts, wall-clock timeouts, and
//!   clause/variable-ratio tracking (Tables 2 & 4, Fig 7);
//! * [`cycsat`] — CycSAT no-structural-cycle preprocessing for cyclic
//!   locking (applied automatically when the locked netlist is cyclic);
//! * [`appsat`] — the approximate attack that settles for a low-error key
//!   (defeats point-function schemes; gains nothing on Full-Lock);
//! * [`removal`] — best-case CLN excision with perfect routing recovery
//!   (§4.2.2's removal-resistance study);
//! * [`sps`] — the Signal Probability Skew attack on skewed protection
//!   blocks (breaks Anti-SAT, finds no handle on Full-Lock).
//!
//! The threat model is uniform: the attacker holds the locked netlist and
//! an activated chip ([`Oracle`] / [`SimOracle`]).
//!
//! # Example
//!
//! ```
//! use fulllock_attacks::{attack, SatAttackConfig, SimOracle};
//! use fulllock_locking::{LockingScheme, Rll};
//! use fulllock_netlist::benchmarks;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let original = benchmarks::load("c17")?;
//! let locked = Rll::new(4, 0).lock(&original)?;
//! let oracle = SimOracle::new(&original)?;
//! let report = attack(&locked, &oracle, SatAttackConfig::default())?;
//! println!("broken in {} iterations", report.iterations);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod appsat;
pub mod cycsat;
pub mod double_dip;
mod encode;
mod error;
mod oracle;
pub mod removal;
pub mod sat_attack;
pub mod sps;

pub use appsat::{appsat_attack, AppSatConfig, AppSatReport};
pub use encode::{encode_locked, LockedEncoding};
pub use error::AttackError;
pub use oracle::{Oracle, SimOracle};
pub use sat_attack::{attack, AttackOutcome, AttackReport, SatAttack, SatAttackConfig};

/// Crate-wide result alias.
pub type Result<T, E = AttackError> = std::result::Result<T, E>;
