//! Attacks on locked netlists — the evaluation engine of the Full-Lock
//! reproduction.
//!
//! Implements the attack suite the paper evaluates with (§4):
//!
//! * [`sat_attack`] — the oracle-guided SAT attack (miter + DIP loop),
//!   instrumented with iteration counts, wall-clock timeouts, and
//!   clause/variable-ratio tracking (Tables 2 & 4, Fig 7);
//! * [`cycsat`] — CycSAT no-structural-cycle preprocessing for cyclic
//!   locking (applied automatically when the locked netlist is cyclic);
//! * [`appsat`] — the approximate attack that settles for a low-error key
//!   (defeats point-function schemes; gains nothing on Full-Lock);
//! * [`removal`] — best-case CLN excision with perfect routing recovery
//!   (§4.2.2's removal-resistance study);
//! * [`sps`] — the Signal Probability Skew attack on skewed protection
//!   blocks (breaks Anti-SAT, finds no handle on Full-Lock).
//!
//! The threat model is uniform: the attacker holds the locked netlist and
//! an activated chip ([`Oracle`] / [`SimOracle`]). Every attack implements
//! the [`Attack`] trait and returns the common [`AttackReport`] envelope,
//! so comparison studies can iterate over `Vec<Box<dyn Attack>>`.
//!
//! # Example
//!
//! One attack, one call:
//!
//! ```
//! use fulllock_attacks::{Attack, SatAttackConfig, SimOracle};
//! use fulllock_locking::{LockingScheme, Rll};
//! use fulllock_netlist::benchmarks;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let original = benchmarks::load("c17")?;
//! let locked = Rll::new(4, 0).lock(&original)?;
//! let oracle = SimOracle::new(&original)?;
//! let report = SatAttackConfig::default().run(&locked, &oracle)?;
//! assert!(report.outcome.is_broken());
//! println!("broken in {} iterations", report.iterations);
//! # Ok(())
//! # }
//! ```
//!
//! A whole suite against one scheme (the evaluation-matrix pattern):
//!
//! ```
//! use fulllock_attacks::{AppSatConfig, Attack, SatAttackConfig, SimOracle};
//! use fulllock_attacks::double_dip::DoubleDip;
//! use fulllock_locking::{LockingScheme, Rll};
//! use fulllock_netlist::benchmarks;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let original = benchmarks::load("c17")?;
//! let locked = Rll::new(4, 0).lock(&original)?;
//! let suite: Vec<Box<dyn Attack>> = vec![
//!     Box::new(SatAttackConfig::default()),
//!     Box::new(AppSatConfig::default()),
//!     Box::new(DoubleDip::default()),
//! ];
//! for attack in &suite {
//!     let oracle = SimOracle::new(&original)?;
//!     let report = attack.run(&locked, &oracle)?;
//!     println!("{:>10}: {:?} ({} oracle queries)",
//!              report.attack, report.outcome, report.oracle_queries);
//! }
//! # Ok(())
//! # }
//! ```
//!
//! To solve the DIP queries on a racing CDCL portfolio instead of one
//! sequential solver, point the config at a portfolio backend:
//!
//! ```no_run
//! use fulllock_attacks::SatAttackConfig;
//! use fulllock_sat::BackendSpec;
//!
//! let config = SatAttackConfig {
//!     backend: BackendSpec::portfolio(4),
//!     ..Default::default()
//! };
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod appsat;
pub mod certificate;
pub mod checkpoint;
pub mod cycsat;
pub mod double_dip;
mod encode;
mod error;
mod oracle;
pub mod removal;
mod report;
pub mod sat_attack;
pub mod sps;
pub mod wire;

pub use appsat::{AppSatConfig, AppSatReport};
pub use certificate::certify_key;
pub use checkpoint::{AttackCheckpoint, IoPair, CHECKPOINT_VERSION};
pub use double_dip::DoubleDip;
pub use encode::{
    encode_locked, CircuitEncoder, EncodeStyle, InterfaceMap, LockedEncoding, SigVal,
};
pub use error::AttackError;
pub use oracle::{Oracle, OracleError, OracleResilience, ResilientOracle, SimOracle};
pub use removal::Removal;
pub use report::{
    Attack, AttackDetails, AttackOutcome, AttackReport, FormalVerdict, KeyCertificate,
    RunResilience,
};
pub use sat_attack::{SatAttack, SatAttackConfig, SatAttackReport};
pub use sps::Sps;
pub use wire::WIRE_VERSION;

/// The hand-rolled JSON used by the checkpoint format — promoted to
/// `fulllock-harness` so the attack checkpoints and the campaign
/// manifests share one implementation; re-exported here for both the
/// internal `crate::json` path and downstream users.
pub(crate) mod json {
    pub(crate) use fulllock_harness::json::Json;
}
pub use fulllock_harness::json as shared_json;

/// Crate-wide result alias.
pub type Result<T, E = AttackError> = std::result::Result<T, E>;
