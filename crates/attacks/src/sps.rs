//! SPS: the Signal Probability Skew attack (Yasin et al., ASP-DAC 2017).
//!
//! Anti-SAT's protection block ends in `f = g ∧ ḡ'`: a wire whose
//! probability of being 1 (under uniform inputs *and* uniform keys) is
//! astronomically small. SPS scans the locked netlist for such skewed
//! wires, declares the most skewed one the protection block's output, and
//! neutralizes it by stuck-at-forcing it to its quiescent value.
//!
//! Full-Lock has no such wire — CLN MUXes and XOR inverters keep signal
//! probabilities balanced — which is one of the removal-family resistances
//! §2 claims.

use fulllock_locking::LockedCircuit;
use fulllock_netlist::{probability, topo, GateKind, SignalId, Simulator};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::oracle::Oracle;
use crate::report::{Attack, AttackDetails, AttackOutcome, AttackReport};
use crate::{AttackError, Result};

/// Result of an SPS scan + neutralization attempt.
#[derive(Debug, Clone)]
pub struct SpsReport {
    /// The most skewed key-dependent wire, if any exceeded the threshold.
    pub suspect: Option<SignalId>,
    /// That wire's `|P(1) − 0.5|` skew (0.5 = fully skewed).
    pub skew: f64,
    /// Functional error rate of the neutralized netlist vs the oracle
    /// (only if a suspect was found): 0.0 means the attack succeeded.
    pub error_rate: Option<f64>,
}

impl SpsReport {
    /// Whether neutralization recovered the original function on every
    /// sampled pattern.
    pub fn succeeded(&self) -> bool {
        self.error_rate == Some(0.0)
    }
}

/// Runs the SPS attack: probability scan (key inputs treated as uniform
/// unknowns), suspect selection among key-dependent wires, stuck-at
/// neutralization, and functional comparison against the oracle.
///
/// # Example
///
/// ```no_run
/// use fulllock_attacks::{sps, SimOracle};
/// use fulllock_locking::{AntiSat, LockingScheme};
/// use fulllock_netlist::benchmarks;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let original = benchmarks::load("c432")?;
/// let locked = AntiSat::new(16, 0).lock(&original)?;
/// let oracle = SimOracle::new(&original)?;
/// let report = sps::scan_with_oracle(&locked, &oracle, 0.45, 200, 0)?;
/// assert!(report.succeeded()); // Anti-SAT's skewed block is found & cut
/// # Ok(())
/// # }
/// ```
///
/// # Errors
///
/// Returns [`AttackError::Unsupported`] for cyclic locked netlists
/// (probability propagation needs a DAG) and propagates simulation errors.
pub fn scan_with_oracle(
    locked: &LockedCircuit,
    oracle: &dyn Oracle,
    skew_threshold: f64,
    samples: usize,
    seed: u64,
) -> Result<SpsReport> {
    if topo::is_cyclic(&locked.netlist) {
        return Err(AttackError::Unsupported(
            "SPS probability propagation requires an acyclic netlist".into(),
        ));
    }
    let probs = probability::static_probabilities(&locked.netlist)?;

    // Only key-dependent wires are candidate protection-block outputs.
    let key_cone = crate::removal::key_logic_cone(locked);
    let mut best: Option<(SignalId, f64)> = None;
    for &s in &key_cone {
        let skew = (probs[s.index()] - 0.5).abs();
        if skew >= skew_threshold && best.is_none_or(|(_, b)| skew > b) {
            best = Some((s, skew));
        }
    }
    let Some((suspect, skew)) = best else {
        return Ok(SpsReport {
            suspect: None,
            skew: key_cone
                .iter()
                .map(|s| (probs[s.index()] - 0.5).abs())
                .fold(0.0, f64::max),
            error_rate: None,
        });
    };

    // Neutralize: readers of the suspect see its quiescent constant.
    let stuck_value = probs[suspect.index()] < 0.5;
    let mut repaired = locked.netlist.clone();
    let pi = repaired.inputs()[0];
    let not_pi = repaired.add_gate(GateKind::Not, &[pi])?;
    let constant = if stuck_value {
        // quiescent 0: AND(p, ¬p)
        repaired.add_gate(GateKind::And, &[pi, not_pi])?
    } else {
        repaired.add_gate(GateKind::Or, &[pi, not_pi])?
    };
    repaired.redirect_fanouts(suspect, constant, &[])?;

    // Compare against the oracle: key inputs driven with random constants
    // (a neutralized point-function block makes the key irrelevant).
    let sim = Simulator::new(&repaired)?;
    let mut rng = StdRng::seed_from_u64(seed);
    let key_guess: Vec<bool> = (0..locked.key_inputs.len())
        .map(|_| rng.gen_bool(0.5))
        .collect();
    let data_positions: Vec<usize> = locked
        .data_inputs
        .iter()
        .map(|&d| {
            locked
                .netlist
                .inputs()
                .iter()
                .position(|&i| i == d)
                .expect("data inputs are primary inputs")
        })
        .collect();
    let key_positions: Vec<usize> = locked
        .key_inputs
        .iter()
        .map(|&k| {
            locked
                .netlist
                .inputs()
                .iter()
                .position(|&i| i == k)
                .expect("key inputs are primary inputs")
        })
        .collect();
    let mut wrong = 0usize;
    for _ in 0..samples {
        let x: Vec<bool> = (0..oracle.num_inputs())
            .map(|_| rng.gen_bool(0.5))
            .collect();
        let mut full = vec![false; repaired.inputs().len()];
        for (slot, &pos) in data_positions.iter().enumerate() {
            full[pos] = x[slot];
        }
        for (slot, &pos) in key_positions.iter().enumerate() {
            full[pos] = key_guess[slot];
        }
        if sim.run(&full)? != oracle.query(&x) {
            wrong += 1;
        }
    }
    Ok(SpsReport {
        suspect: Some(suspect),
        skew,
        error_rate: Some(wrong as f64 / samples.max(1) as f64),
    })
}

/// The SPS attack as an [`Attack`] object.
#[derive(Debug, Clone, Copy)]
pub struct Sps {
    /// Minimum `|P(1) - 0.5|` skew for a wire to count as a suspect.
    pub skew_threshold: f64,
    /// Random patterns for the functional comparison.
    pub samples: usize,
    /// RNG seed for the key guess and those patterns.
    pub seed: u64,
}

impl Default for Sps {
    fn default() -> Self {
        Sps {
            skew_threshold: 0.45,
            samples: 200,
            seed: 0,
        }
    }
}

impl Attack for Sps {
    fn name(&self) -> &'static str {
        "sps"
    }

    fn run(&self, locked: &LockedCircuit, oracle: &dyn Oracle) -> Result<AttackReport> {
        let start = std::time::Instant::now();
        let report =
            scan_with_oracle(locked, oracle, self.skew_threshold, self.samples, self.seed)?;
        let outcome = match report.error_rate {
            Some(error_rate) => AttackOutcome::Bypassed {
                error_rate,
                exact: error_rate == 0.0,
            },
            None => AttackOutcome::Defeated {
                reason: format!(
                    "no key-dependent wire skewed above {} (best {:.3})",
                    self.skew_threshold, report.skew
                ),
            },
        };
        Ok(AttackReport {
            attack: "sps",
            outcome,
            iterations: 0,
            elapsed: start.elapsed(),
            oracle_queries: oracle.queries(),
            solver: Default::default(),
            resilience: Default::default(),
            key_certificate: None,
            details: AttackDetails::Sps(report),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SimOracle;
    use fulllock_locking::{AntiSat, FullLock, FullLockConfig, LockingScheme};
    use fulllock_netlist::random::{generate, RandomCircuitConfig};
    use fulllock_netlist::Netlist;

    fn host(seed: u64) -> Netlist {
        generate(RandomCircuitConfig {
            inputs: 14,
            outputs: 6,
            gates: 150,
            max_fanin: 3,
            seed,
        })
        .unwrap()
    }

    #[test]
    fn sps_breaks_antisat() {
        let original = host(1);
        let locked = AntiSat::new(12, 0).lock(&original).unwrap();
        let oracle = SimOracle::new(&original).unwrap();
        let report = scan_with_oracle(&locked, &oracle, 0.45, 200, 2).unwrap();
        assert!(report.suspect.is_some(), "no skewed wire found");
        assert!(report.skew > 0.45);
        assert!(
            report.succeeded(),
            "neutralization left error {:?}",
            report.error_rate
        );
    }

    #[test]
    fn sps_finds_no_handle_on_fulllock() {
        let original = host(2);
        let locked = FullLock::new(FullLockConfig::single_plr(8))
            .lock(&original)
            .unwrap();
        let oracle = SimOracle::new(&original).unwrap();
        let report = scan_with_oracle(&locked, &oracle, 0.45, 100, 3).unwrap();
        // Either no wire is skewed enough, or neutralizing the best
        // candidate breaks the circuit — both mean SPS fails.
        match report.suspect {
            None => assert!(report.skew < 0.45),
            Some(_) => assert!(!report.succeeded()),
        }
    }

    #[test]
    fn sps_rejects_cyclic_netlists() {
        let original = host(3);
        let config = FullLockConfig {
            plrs: vec![fulllock_locking::PlrSpec::new(8)],
            selection: fulllock_locking::WireSelection::Cyclic,
            twist_probability: 0.5,
            seed: 9,
        };
        let locked = FullLock::new(config).lock(&original).unwrap();
        if topo::is_cyclic(&locked.netlist) {
            let oracle = SimOracle::new(&original).unwrap();
            assert!(matches!(
                scan_with_oracle(&locked, &oracle, 0.45, 10, 0),
                Err(AttackError::Unsupported(_))
            ));
        }
    }
}
