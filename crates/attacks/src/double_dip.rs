//! Double DIP: the 2-DIP attack (Shen & Zhou, GLSVLSI 2017).
//!
//! The plain SAT attack's DIP may eliminate only a single wrong key —
//! which is exactly the regime SARLock engineers. Double DIP strengthens
//! the query: it searches for an input on which **two key pairs** disagree
//! across pairs while agreeing within each pair:
//!
//! ```text
//! ∃ X, K1..K4:  C(X,K1) = C(X,K2),  C(X,K3) = C(X,K4),  C(X,K1) ≠ C(X,K3)
//! ```
//!
//! with `K1 ≠ K2` and `K3 ≠ K4`. Whatever the oracle answers on such an
//! `X`, at least one whole *pair* (two distinct keys) is wrong — every
//! 2-DIP eliminates ≥ 2 keys. Once no 2-DIP exists the attack cleans up
//! with plain DIPs.
//!
//! Two instructive facts the tests pin down: pure SARLock admits **no**
//! strict 2-DIP (each input flips exactly one key — that is SARLock's
//! defining guarantee, and it holds against this attack too), while
//! redundancy-rich schemes like RLL offer 2-DIPs in abundance. Against
//! Full-Lock the attack buys nothing either way: iterations were never
//! the bottleneck.

use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use fulllock_locking::{Key, LockedCircuit};
use fulllock_netlist::{topo, GateKind};
use fulllock_sat::backend::SolveBackend;
use fulllock_sat::cdcl::{SolveLimits, SolveResult, SolverStats};
use fulllock_sat::tseytin::encode_gate;
use fulllock_sat::{Cnf, Lit, Var};

use crate::checkpoint::{AttackCheckpoint, IoPair};
use crate::encode::encode_locked;
use crate::oracle::{Oracle, ResilientOracle};
use crate::report::{Attack, AttackDetails, AttackOutcome, AttackReport, RunResilience};
use crate::sat_attack::SatAttackConfig;
use crate::{cycsat, AttackError, Result};

/// Double-DIP's phase tags in checkpoint files: 1 = 2-DIP search, 2 =
/// plain-DIP clean-up.
const PHASE_DOUBLE: u64 = 1;
const PHASE_CLEANUP: u64 = 2;

/// The Double-DIP attack as an [`Attack`] object: a thin wrapper over the
/// base SAT-attack configuration (timeout, iteration cap, backend).
#[derive(Debug, Clone, Copy, Default)]
pub struct DoubleDip {
    /// Base limits and solving backend.
    pub base: SatAttackConfig,
}

impl Attack for DoubleDip {
    fn name(&self) -> &'static str {
        "double-dip"
    }

    fn run(&self, locked: &LockedCircuit, oracle: &dyn Oracle) -> Result<AttackReport> {
        let (report, resilience, queries) =
            run_double_dip_checkpointed(locked, oracle, self.base, None, false)?;
        Ok(envelope(locked, oracle, report, resilience, queries))
    }

    fn run_checkpointed(
        &self,
        locked: &LockedCircuit,
        oracle: &dyn Oracle,
        checkpoint: &Path,
        resume: bool,
    ) -> Result<AttackReport> {
        let (report, resilience, queries) =
            run_double_dip_checkpointed(locked, oracle, self.base, Some(checkpoint), resume)?;
        Ok(envelope(locked, oracle, report, resilience, queries))
    }
}

fn envelope(
    locked: &LockedCircuit,
    oracle: &dyn Oracle,
    report: DoubleDipReport,
    resilience: RunResilience,
    queries: u64,
) -> AttackReport {
    let key_certificate = match &report.outcome {
        AttackOutcome::KeyRecovered { key, .. } => Some(crate::certificate::certify_key(
            locked, oracle, key, 64, 0xCE87,
        )),
        _ => None,
    };
    AttackReport {
        attack: "double-dip",
        outcome: report.outcome.clone(),
        iterations: report.iterations + report.cleanup_iterations,
        elapsed: report.elapsed,
        oracle_queries: queries,
        solver: report.solver,
        resilience,
        key_certificate,
        details: AttackDetails::DoubleDip(report),
    }
}

/// Result of a Double-DIP run.
#[derive(Debug, Clone)]
pub struct DoubleDipReport {
    /// Why the run ended (key recovery / timeout / iteration limit).
    pub outcome: AttackOutcome,
    /// 2-DIP iterations completed.
    pub iterations: u64,
    /// Plain-DIP iterations of the clean-up phase (once no 2-DIP exists,
    /// the attack falls back to single DIPs to finish).
    pub cleanup_iterations: u64,
    /// Wall-clock time.
    pub elapsed: Duration,
    /// SAT solver counters accumulated over the run (merged across
    /// portfolio workers when the backend is a portfolio).
    pub solver: SolverStats,
}

#[cfg(test)]
fn run_double_dip(
    locked: &LockedCircuit,
    oracle: &dyn Oracle,
    config: SatAttackConfig,
) -> Result<DoubleDipReport> {
    run_double_dip_checkpointed(locked, oracle, config, None, false).map(|(report, ..)| report)
}

/// The last model's value for `var`, or
/// [`AttackError::IncompleteModel`] — fabricating a default bit would
/// silently corrupt DIPs and keys.
fn model_bit(solver: &dyn SolveBackend, var: Var) -> Result<bool> {
    solver
        .model_value(var)
        .ok_or(AttackError::IncompleteModel { var: var.index() })
}

/// Checkpoint bookkeeping of one Double-DIP run: where snapshots go, what
/// was restored, and the cumulative instrumentation carried across
/// resumes.
struct CkptCtl {
    path: Option<PathBuf>,
    written: u64,
    failures: u64,
    resumed_from: Option<u64>,
    prior_elapsed: Duration,
    prior_solver: SolverStats,
    io_log: Vec<IoPair>,
}

impl CkptCtl {
    fn new(path: Option<&Path>) -> CkptCtl {
        CkptCtl {
            path: path.map(Path::to_path_buf),
            written: 0,
            failures: 0,
            resumed_from: None,
            prior_elapsed: Duration::ZERO,
            prior_solver: SolverStats::default(),
            io_log: Vec::new(),
        }
    }

    /// Best-effort atomic snapshot write (a failed write is counted, not
    /// fatal).
    #[allow(clippy::too_many_arguments)]
    fn save(
        &mut self,
        locked: &LockedCircuit,
        phase: u64,
        iterations: u64,
        cleanup_iterations: u64,
        start: Instant,
        oracle_queries: u64,
        stats: SolverStats,
    ) {
        let Some(path) = self.path.clone() else {
            return;
        };
        let mut cp = AttackCheckpoint::new(
            "double-dip",
            locked.data_inputs.len(),
            locked.key_inputs.len(),
        );
        cp.phase = phase;
        cp.iterations = iterations;
        cp.cleanup_iterations = cleanup_iterations;
        cp.elapsed = self.prior_elapsed + start.elapsed();
        cp.oracle_queries = oracle_queries;
        let mut merged = self.prior_solver;
        merged.merge(&stats);
        cp.solver = merged;
        cp.io_pairs = self.io_log.clone();
        match cp.save(&path) {
            Ok(()) => self.written += 1,
            Err(_) => self.failures += 1,
        }
    }
}

/// Assembles the report + resilience + cumulative-oracle-queries triple at
/// any exit point.
#[allow(clippy::too_many_arguments)]
fn finish(
    outcome: AttackOutcome,
    iterations: u64,
    cleanup_iterations: u64,
    start: Instant,
    oracle_queries: u64,
    oracle_retries: u64,
    solver: &dyn SolveBackend,
    ctl: &CkptCtl,
) -> (DoubleDipReport, RunResilience, u64) {
    let mut stats = ctl.prior_solver;
    stats.merge(&solver.stats());
    let report = DoubleDipReport {
        outcome,
        iterations,
        cleanup_iterations,
        elapsed: ctl.prior_elapsed + start.elapsed(),
        solver: stats,
    };
    let resilience = RunResilience {
        worker_panics: stats.worker_panics,
        worker_failures: solver.worker_failures(),
        resumed_from: ctl.resumed_from,
        checkpoints_written: ctl.written,
        checkpoint_failures: ctl.failures,
        oracle_retries,
        oracle_requeries: 0,
        quarantined_pairs: ctl.io_log.iter().filter(|p| p.quarantined).count() as u64,
    };
    (report, resilience, oracle_queries)
}

fn run_double_dip_checkpointed(
    locked: &LockedCircuit,
    oracle: &dyn Oracle,
    config: SatAttackConfig,
    checkpoint: Option<&Path>,
    resume: bool,
) -> Result<(DoubleDipReport, RunResilience, u64)> {
    if oracle.num_inputs() != locked.data_inputs.len() {
        return Err(AttackError::InterfaceMismatch {
            locked_inputs: locked.data_inputs.len(),
            oracle_inputs: oracle.num_inputs(),
        });
    }
    // All DIP queries go through the resilient layer (retry / rate limit /
    // majority vote); the raw oracle keeps counting real chip stimuli.
    let resilient = ResilientOracle::new(oracle, config.resilience);
    let start = Instant::now();
    let deadline = config.timeout.map(|t| start + t);
    let limits = {
        let mut builder = SolveLimits::builder();
        if let Some(d) = deadline {
            builder = builder.deadline(d);
        }
        builder.build()
    };

    let mut cnf = Cnf::new();
    let x_vars: Vec<Var> = locked.data_inputs.iter().map(|_| cnf.new_var()).collect();
    let key_vars: Vec<Vec<Var>> = (0..4)
        .map(|_| locked.key_inputs.iter().map(|_| cnf.new_var()).collect())
        .collect();
    let copies: Vec<_> = key_vars
        .iter()
        .map(|kv| encode_locked(locked, &mut cnf, &x_vars, kv))
        .collect();

    // within-pair agreement and cross-pair disagreement, gated by two
    // activation literals so the clean-up phase can fall back to a plain
    // miter (copies 0 and 2, act_single).
    let outputs_equal = |cnf: &mut Cnf, a: usize, b: usize| -> Lit {
        let mut same_lits = Vec::new();
        for (&oa, &ob) in copies[a].output_vars.iter().zip(&copies[b].output_vars) {
            let d = cnf.new_var();
            encode_gate(cnf, GateKind::Xnor, d, &[oa, ob]);
            same_lits.push(Lit::positive(d));
        }
        let all = cnf.new_var();
        // all ↔ AND(same_lits)
        let mut long: Vec<Lit> = same_lits.iter().map(|&l| !l).collect();
        long.push(Lit::positive(all));
        cnf.add_clause(long);
        for &l in &same_lits {
            cnf.add_clause([l, !Lit::positive(all)]);
        }
        Lit::positive(all)
    };

    let pair_a_same = outputs_equal(&mut cnf, 0, 1);
    let pair_b_same = outputs_equal(&mut cnf, 2, 3);
    let cross_same = outputs_equal(&mut cnf, 0, 2);
    // Within-pair key disequality: without it a pair could be one key
    // twice, and the "pair" elimination would only remove one key.
    let keys_differ = |cnf: &mut Cnf, a: usize, b: usize| -> Vec<Lit> {
        key_vars[a]
            .iter()
            .zip(&key_vars[b])
            .map(|(&ka, &kb)| {
                let d = cnf.new_var();
                encode_gate(cnf, GateKind::Xor, d, &[ka, kb]);
                Lit::positive(d)
            })
            .collect()
    };
    let act_double = Lit::positive(cnf.new_var());
    let mut diff_a = keys_differ(&mut cnf, 0, 1);
    diff_a.insert(0, !act_double);
    cnf.add_clause(diff_a);
    let mut diff_b = keys_differ(&mut cnf, 2, 3);
    diff_b.insert(0, !act_double);
    cnf.add_clause(diff_b);
    cnf.add_clause([!act_double, pair_a_same]);
    cnf.add_clause([!act_double, pair_b_same]);
    cnf.add_clause([!act_double, !cross_same]);
    let act_single = Lit::positive(cnf.new_var());
    cnf.add_clause([!act_single, !cross_same]);

    if config.force_cycsat || topo::is_cyclic(&locked.netlist) {
        for kv in &key_vars {
            cycsat::add_no_cycle_clauses(locked, &mut cnf, kv);
        }
    }

    let mut solver = config.backend.create_certified(config.certify);
    solver.ensure_vars(cnf.num_vars());
    for clause in cnf.clauses() {
        solver.add_clause(clause);
    }
    let assert_io = |solver: &mut Box<dyn SolveBackend>, cnf: &mut Cnf, x: &[bool], y: &[bool]| {
        let before = cnf.num_clauses();
        for kv in &key_vars {
            let data_vars: Vec<Var> = x.iter().map(|_| cnf.new_var()).collect();
            let enc = encode_locked(locked, cnf, &data_vars, kv);
            for (slot, &v) in data_vars.iter().enumerate() {
                cnf.add_clause([Lit::with_polarity(v, x[slot])]);
            }
            for (o, &v) in enc.output_vars.iter().enumerate() {
                cnf.add_clause([Lit::with_polarity(v, y[o])]);
            }
        }
        solver.ensure_vars(cnf.num_vars());
        for clause in &cnf.clauses()[before..] {
            solver.add_clause(clause);
        }
    };

    let mut iterations = 0u64;
    let mut cleanup_iterations = 0u64;
    let mut ctl = CkptCtl::new(checkpoint);
    let mut skip_double_phase = false;
    let oracle_baseline = oracle.queries();
    let mut prior_queries = 0u64;
    if resume {
        if let Some(path) = checkpoint.filter(|p| p.exists()) {
            let cp = AttackCheckpoint::load(path)?;
            cp.validate_for(
                "double-dip",
                locked.data_inputs.len(),
                locked.key_inputs.len(),
            )?;
            // Replay the recorded I/O pairs — re-deriving every constraint
            // without an oracle query — and adopt the snapshot's position
            // in the two-phase loop. Quarantined pairs stay in the log as
            // evidence but are never re-asserted.
            for pair in &cp.io_pairs {
                if pair.quarantined {
                    continue;
                }
                assert_io(&mut solver, &mut cnf, &pair.inputs, &pair.outputs);
            }
            ctl.io_log = cp.io_pairs;
            iterations = cp.iterations;
            cleanup_iterations = cp.cleanup_iterations;
            skip_double_phase = cp.phase >= PHASE_CLEANUP;
            ctl.prior_elapsed = cp.elapsed;
            ctl.prior_solver = cp.solver;
            prior_queries = cp.oracle_queries;
            ctl.resumed_from = Some(cp.iterations + cp.cleanup_iterations);
        }
    }
    // Cumulative oracle queries across resumes: the restored count plus
    // the delta this process has issued.
    let total_queries = || prior_queries + (oracle.queries() - oracle_baseline);
    let out_of_budget = |iterations: u64| {
        deadline.is_some_and(|d| Instant::now() >= d)
            || config.max_iterations.is_some_and(|m| iterations >= m)
    };

    // Phase 1: 2-DIPs while they exist (skipped when resuming a snapshot
    // that had already entered the clean-up phase).
    while !skip_double_phase {
        if out_of_budget(iterations) {
            return Ok(finish(
                budget_outcome(&config, iterations),
                iterations,
                cleanup_iterations,
                start,
                total_queries(),
                resilient.retries_absorbed(),
                solver.as_ref(),
                &ctl,
            ));
        }
        match solver.solve_limited(&[act_double], limits.clone()) {
            SolveResult::Unknown => {
                if let Some(failure) = solver.certify_failure() {
                    return Err(AttackError::Certification(failure));
                }
                return Ok(finish(
                    AttackOutcome::Timeout,
                    iterations,
                    cleanup_iterations,
                    start,
                    total_queries(),
                    resilient.retries_absorbed(),
                    solver.as_ref(),
                    &ctl,
                ));
            }
            // No 2-DIP left: advance into the clean-up phase.
            SolveResult::Unsat => skip_double_phase = true,
            SolveResult::Sat => {
                let x: Vec<bool> = x_vars
                    .iter()
                    .map(|&v| model_bit(solver.as_ref(), v))
                    .collect::<Result<_>>()?;
                let (y, votes) = resilient.query_voted(&x).map_err(AttackError::Oracle)?;
                assert_io(&mut solver, &mut cnf, &x, &y);
                let mut pair = IoPair::new(x, y);
                pair.votes = u64::from(votes);
                ctl.io_log.push(pair);
                iterations += 1;
                ctl.save(
                    locked,
                    PHASE_DOUBLE,
                    iterations,
                    cleanup_iterations,
                    start,
                    total_queries(),
                    solver.stats(),
                );
            }
        }
    }
    // Phase 2: plain DIPs until convergence.
    loop {
        if out_of_budget(iterations + cleanup_iterations) {
            return Ok(finish(
                budget_outcome(&config, iterations + cleanup_iterations),
                iterations,
                cleanup_iterations,
                start,
                total_queries(),
                resilient.retries_absorbed(),
                solver.as_ref(),
                &ctl,
            ));
        }
        match solver.solve_limited(&[act_single], limits.clone()) {
            SolveResult::Unknown => {
                if let Some(failure) = solver.certify_failure() {
                    return Err(AttackError::Certification(failure));
                }
                return Ok(finish(
                    AttackOutcome::Timeout,
                    iterations,
                    cleanup_iterations,
                    start,
                    total_queries(),
                    resilient.retries_absorbed(),
                    solver.as_ref(),
                    &ctl,
                ));
            }
            SolveResult::Unsat => break,
            SolveResult::Sat => {
                let x: Vec<bool> = x_vars
                    .iter()
                    .map(|&v| model_bit(solver.as_ref(), v))
                    .collect::<Result<_>>()?;
                let (y, votes) = resilient.query_voted(&x).map_err(AttackError::Oracle)?;
                assert_io(&mut solver, &mut cnf, &x, &y);
                let mut pair = IoPair::new(x, y);
                pair.votes = u64::from(votes);
                ctl.io_log.push(pair);
                cleanup_iterations += 1;
                ctl.save(
                    locked,
                    PHASE_CLEANUP,
                    iterations,
                    cleanup_iterations,
                    start,
                    total_queries(),
                    solver.stats(),
                );
            }
        }
    }
    // A snapshot at the phase boundary: a crash during a long clean-up
    // phase must not fall back into the 2-DIP phase on resume.
    ctl.save(
        locked,
        PHASE_CLEANUP,
        iterations,
        cleanup_iterations,
        start,
        total_queries(),
        solver.stats(),
    );
    // Extraction: any key consistent with all constraints.
    let outcome = match solver.solve_limited(&[!act_double, !act_single], limits.clone()) {
        SolveResult::Sat => {
            let key_bits = key_vars[0]
                .iter()
                .map(|&v| model_bit(solver.as_ref(), v))
                .collect::<Result<Vec<bool>>>()?;
            let key = Key::from_bits(key_bits);
            let verified = verify(locked, oracle, &key);
            AttackOutcome::KeyRecovered { key, verified }
        }
        SolveResult::Unknown => {
            if let Some(failure) = solver.certify_failure() {
                return Err(AttackError::Certification(failure));
            }
            AttackOutcome::Timeout
        }
        SolveResult::Unsat => AttackOutcome::Inconclusive,
    };
    Ok(finish(
        outcome,
        iterations,
        cleanup_iterations,
        start,
        total_queries(),
        resilient.retries_absorbed(),
        solver.as_ref(),
        &ctl,
    ))
}

fn budget_outcome(config: &SatAttackConfig, iterations: u64) -> AttackOutcome {
    if config.max_iterations.is_some_and(|m| iterations >= m) {
        AttackOutcome::IterationLimit
    } else {
        AttackOutcome::Timeout
    }
}

fn verify(locked: &LockedCircuit, oracle: &dyn Oracle, key: &Key) -> bool {
    use rand::{Rng, SeedableRng};
    let mut rng = rand::rngs::StdRng::seed_from_u64(0x2D12);
    let width = locked.data_inputs.len();
    for _ in 0..32 {
        let x: Vec<bool> = (0..width).map(|_| rng.gen_bool(0.5)).collect();
        let want = oracle.query(&x);
        let ok = if topo::is_cyclic(&locked.netlist) {
            locked
                .eval_cyclic(&x, key)
                .map(|e| {
                    e.all_outputs_known()
                        && e.outputs
                            .iter()
                            .zip(&want)
                            .all(|(t, w)| t.to_bool() == Some(*w))
                })
                .unwrap_or(false)
        } else {
            locked.eval(&x, key).map(|got| got == want).unwrap_or(false)
        };
        if !ok {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SimOracle;
    use fulllock_locking::{LockingScheme, Rll, SarLock};
    use fulllock_netlist::random::{generate, RandomCircuitConfig};

    fn host(seed: u64) -> fulllock_netlist::Netlist {
        generate(RandomCircuitConfig {
            inputs: 10,
            outputs: 5,
            gates: 90,
            max_fanin: 3,
            seed,
        })
        .unwrap()
    }

    #[test]
    fn breaks_rll_with_correct_key() {
        let original = host(1);
        let locked = Rll::new(8, 2).lock(&original).unwrap();
        let oracle = SimOracle::new(&original).unwrap();
        let report = run_double_dip(&locked, &oracle, SatAttackConfig::default()).unwrap();
        let AttackOutcome::KeyRecovered { verified, .. } = report.outcome else {
            panic!("RLL must fall to Double DIP, got {:?}", report.outcome);
        };
        assert!(verified);
    }

    #[test]
    fn rll_offers_2dips_in_abundance() {
        // Many distinct RLL keys alias to the same function classes, so
        // strict 2-DIPs exist and phase 1 does real work.
        let original = host(2);
        let locked = Rll::new(10, 3).lock(&original).unwrap();
        let oracle = SimOracle::new(&original).unwrap();
        let report = run_double_dip(&locked, &oracle, SatAttackConfig::default()).unwrap();
        assert!(report.outcome.is_broken());
        assert!(report.iterations >= 1, "expected at least one 2-DIP on RLL");
    }

    #[test]
    fn sarlock_admits_no_2dip() {
        // SARLock's guarantee — each input eliminates exactly one key —
        // holds against Double DIP: phase 1 finds nothing, the clean-up
        // phase pays the full ~2^m - 1 queries, matching the plain attack.
        let original = host(2);
        let m = 5;
        let locked = SarLock::new(m, 3).lock(&original).unwrap();

        let oracle = SimOracle::new(&original).unwrap();
        let plain = SatAttackConfig::default().run(&locked, &oracle).unwrap();
        assert!(plain.outcome.is_broken());

        let oracle2 = SimOracle::new(&original).unwrap();
        let double = run_double_dip(&locked, &oracle2, SatAttackConfig::default()).unwrap();
        assert!(double.outcome.is_broken());
        assert_eq!(double.iterations, 0, "no strict 2-DIP may exist on SARLock");
        assert!(double.cleanup_iterations >= plain.iterations / 2);
    }

    #[test]
    fn respects_iteration_limit() {
        let original = host(3);
        let locked = SarLock::new(10, 1).lock(&original).unwrap();
        let oracle = SimOracle::new(&original).unwrap();
        let report = run_double_dip(
            &locked,
            &oracle,
            SatAttackConfig {
                max_iterations: Some(2),
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(report.outcome, AttackOutcome::IterationLimit);
    }
}
