//! Post-hoc key certification — independent evidence that a recovered
//! key is right.
//!
//! An attack's own "verified" flag comes from the machinery that produced
//! the key: the same encoder, the same solver, sometimes the very model
//! the key was read from. A bug there produces a confidently wrong
//! answer. [`certify_key`] re-derives the verdict from scratch:
//!
//! 1. **Simulation**: the locked netlist is unlocked with the candidate
//!    key and simulated 64 patterns at a time
//!    ([`Simulator::run_u64`]) against fresh oracle queries — the
//!    attack's constraint encoding is never consulted;
//! 2. **Formal**: when the oracle exposes its reference netlist
//!    ([`Oracle::netlist`]), a SAT miter proves (or refutes) equivalence
//!    under the key via [`LockedCircuit::prove_key`] — exhaustive over
//!    the whole input space, not a sample.
//!
//! The result is a [`KeyCertificate`] attached to the
//! [`AttackReport`](crate::AttackReport) envelope, so a paper table can
//! state not just "key recovered" but "key recovered *and independently
//! certified*".

use fulllock_locking::{Key, LockedCircuit};
use fulllock_netlist::Simulator;
use fulllock_sat::equiv::EquivResult;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::oracle::Oracle;
use crate::report::{FormalVerdict, KeyCertificate};

/// Certifies `key` against the oracle: `samples` random patterns (plus
/// the all-zeros and all-ones corners) of bit-parallel simulation, then a
/// formal equivalence check when the oracle exposes a reference netlist.
///
/// Never fails — a check that cannot run is recorded as
/// [`FormalVerdict::Unavailable`] with the reason, and a mis-sized key
/// simply mismatches on every pattern.
pub fn certify_key(
    locked: &LockedCircuit,
    oracle: &dyn Oracle,
    key: &Key,
    samples: usize,
    seed: u64,
) -> KeyCertificate {
    let (samples, mismatches) = simulate(locked, oracle, key, samples, seed);
    let formal = match oracle.netlist() {
        None => FormalVerdict::Unavailable("oracle exposes no reference netlist".into()),
        Some(original) => match locked.prove_key(key, original) {
            Ok(EquivResult::Equivalent) => FormalVerdict::Equivalent,
            Ok(EquivResult::Counterexample(_)) => FormalVerdict::NotEquivalent,
            Ok(EquivResult::Unknown) => FormalVerdict::Unknown,
            Err(e) => FormalVerdict::Unavailable(e.to_string()),
        },
    };
    KeyCertificate {
        samples,
        mismatches,
        formal,
    }
}

/// Simulates the unlocked circuit against the oracle and counts
/// disagreeing patterns. Acyclic netlists run 64 patterns per
/// [`Simulator::run_u64`] sweep; cyclic ones fall back to per-pattern
/// ternary fixed-point evaluation (an unsettled output counts as a
/// mismatch).
fn simulate(
    locked: &LockedCircuit,
    oracle: &dyn Oracle,
    key: &Key,
    samples: usize,
    seed: u64,
) -> (u64, u64) {
    let width = locked.data_inputs.len();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut patterns: Vec<Vec<bool>> = vec![vec![false; width], vec![true; width]];
    patterns.extend((0..samples).map(|_| (0..width).map(|_| rng.gen_bool(0.5)).collect()));
    let total = patterns.len() as u64;

    if key.len() != locked.key_inputs.len() {
        return (total, total);
    }

    let Ok(sim) = Simulator::new(&locked.netlist) else {
        // Cyclic locked netlist: per-pattern ternary evaluation.
        let mismatches = patterns
            .iter()
            .filter(|x| {
                let want = oracle.query(x);
                match locked.eval_cyclic(x, key) {
                    Ok(eval) => {
                        !eval.all_outputs_known()
                            || eval
                                .outputs
                                .iter()
                                .zip(&want)
                                .any(|(t, w)| t.to_bool() != Some(*w))
                    }
                    Err(_) => true,
                }
            })
            .count() as u64;
        return (total, mismatches);
    };

    // Positions of the data/key inputs inside the netlist's input vector.
    let position_of = |sig| {
        locked
            .netlist
            .inputs()
            .iter()
            .position(|&i| i == sig)
            .expect("data/key inputs are primary inputs")
    };
    let data_positions: Vec<usize> = locked.data_inputs.iter().map(|&s| position_of(s)).collect();
    let key_positions: Vec<usize> = locked.key_inputs.iter().map(|&s| position_of(s)).collect();

    let mut mismatches = 0u64;
    for block in patterns.chunks(64) {
        let mut words = vec![0u64; locked.netlist.inputs().len()];
        for (slot, &position) in key_positions.iter().enumerate() {
            if key.bits()[slot] {
                words[position] = u64::MAX;
            }
        }
        for (lane, x) in block.iter().enumerate() {
            for (slot, &position) in data_positions.iter().enumerate() {
                if x[slot] {
                    words[position] |= 1u64 << lane;
                }
            }
        }
        let got = sim
            .run_u64(&words)
            .expect("input vector sized off the netlist");
        for (lane, x) in block.iter().enumerate() {
            let want = oracle.query(x);
            let agrees = got
                .iter()
                .zip(&want)
                .all(|(&word, &w)| (word >> lane & 1 == 1) == w);
            if !agrees {
                mismatches += 1;
            }
        }
    }
    (total, mismatches)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SimOracle;
    use fulllock_locking::{LockingScheme, Rll};
    use fulllock_netlist::benchmarks;

    #[test]
    fn correct_key_certifies_clean_and_proven() {
        let original = benchmarks::load("c17").unwrap();
        let locked = Rll::new(4, 0).lock(&original).unwrap();
        let oracle = SimOracle::new(&original).unwrap();
        let cert = certify_key(&locked, &oracle, &locked.correct_key.clone(), 64, 7);
        assert_eq!(cert.mismatches, 0, "{cert:?}");
        assert_eq!(cert.formal, FormalVerdict::Equivalent);
        assert!(cert.is_clean() && cert.is_proven());
        assert_eq!(cert.samples, 66, "64 samples plus two corners");
    }

    #[test]
    fn wrong_key_is_caught_by_both_checks() {
        let original = benchmarks::load("c17").unwrap();
        let locked = Rll::new(4, 0).lock(&original).unwrap();
        let oracle = SimOracle::new(&original).unwrap();
        let mut bits: Vec<bool> = locked.correct_key.bits().to_vec();
        for b in &mut bits {
            *b = !*b;
        }
        let wrong = Key::from_bits(bits);
        let cert = certify_key(&locked, &oracle, &wrong, 64, 7);
        assert!(cert.mismatches > 0, "{cert:?}");
        assert_eq!(cert.formal, FormalVerdict::NotEquivalent);
        assert!(!cert.is_clean());
    }

    #[test]
    fn oracle_without_netlist_degrades_to_sampled_evidence() {
        struct Opaque<'a>(SimOracle<'a>);
        impl Oracle for Opaque<'_> {
            fn num_inputs(&self) -> usize {
                self.0.num_inputs()
            }
            fn num_outputs(&self) -> usize {
                self.0.num_outputs()
            }
            fn query(&self, inputs: &[bool]) -> Vec<bool> {
                self.0.query(inputs)
            }
            fn queries(&self) -> u64 {
                self.0.queries()
            }
            // netlist() keeps the default None: a real chip.
        }
        let original = benchmarks::load("c17").unwrap();
        let locked = Rll::new(4, 0).lock(&original).unwrap();
        let oracle = Opaque(SimOracle::new(&original).unwrap());
        let cert = certify_key(&locked, &oracle, &locked.correct_key.clone(), 16, 3);
        assert_eq!(cert.mismatches, 0);
        assert!(matches!(cert.formal, FormalVerdict::Unavailable(_)));
        assert!(cert.is_clean() && !cert.is_proven());
    }

    #[test]
    fn mis_sized_key_mismatches_everywhere() {
        let original = benchmarks::load("c17").unwrap();
        let locked = Rll::new(4, 0).lock(&original).unwrap();
        let oracle = SimOracle::new(&original).unwrap();
        let cert = certify_key(&locked, &oracle, &Key::from_bits([true]), 8, 3);
        assert_eq!(cert.mismatches, cert.samples);
        assert!(!cert.is_clean());
    }
}
