//! Property-based tests of the attack layer: the SAT attack must recover
//! *functionally correct* keys on breakable schemes for arbitrary hosts
//! and seeds, and CycSAT's no-cycle constraints must never exclude the
//! correct key.

use fulllock_attacks::{cycsat, Attack, AttackOutcome, SatAttackConfig, SimOracle};
use fulllock_locking::{
    FullLock, FullLockConfig, LockingScheme, LutLock, PlrSpec, Rll, WireSelection,
};
use fulllock_netlist::random::{generate, RandomCircuitConfig};
use fulllock_netlist::{Netlist, Simulator};
use fulllock_sat::cdcl::{SolveResult, Solver};
use fulllock_sat::{Cnf, Lit, Var};
use proptest::prelude::*;

fn host(seed: u64) -> Netlist {
    generate(RandomCircuitConfig {
        inputs: 10,
        outputs: 5,
        gates: 90,
        max_fanin: 3,
        seed,
    })
    .expect("valid config")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The SAT attack always breaks RLL, and the recovered key is
    /// functionally correct (it need not equal the inserted key bit for
    /// bit — key aliasing is legal).
    #[test]
    fn sat_attack_breaks_rll_correctly(host_seed in any::<u64>(), lock_seed in any::<u64>(), bits in 2usize..12) {
        let original = host(host_seed);
        let locked = Rll::new(bits, lock_seed).lock(&original).expect("RLL fits");
        let oracle = SimOracle::new(&original).expect("acyclic");
        let report = SatAttackConfig::default()
            .run(&locked, &oracle)
            .expect("interfaces");
        let AttackOutcome::KeyRecovered { key, verified } = report.outcome else {
            return Err(TestCaseError::fail("RLL must fall"));
        };
        prop_assert!(verified);
        let sim = Simulator::new(&original).expect("acyclic");
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        for _ in 0..16 {
            let x: Vec<bool> = (0..original.inputs().len()).map(|_| rng.gen_bool(0.5)).collect();
            prop_assert_eq!(
                locked.eval(&x, &key).expect("interface"),
                sim.run(&x).expect("sized")
            );
        }
    }

    /// Same for LUT-Lock (MUX-tree-based, exercising a different CNF
    /// structure).
    #[test]
    fn sat_attack_breaks_lutlock_correctly(host_seed in any::<u64>(), lock_seed in any::<u64>(), luts in 1usize..6) {
        let original = host(host_seed);
        let locked = LutLock::new(luts, lock_seed).lock(&original).expect("fits");
        let oracle = SimOracle::new(&original).expect("acyclic");
        let report = SatAttackConfig::default()
            .run(&locked, &oracle)
            .expect("interfaces");
        let AttackOutcome::KeyRecovered { verified, .. } = report.outcome else {
            return Err(TestCaseError::fail("LUT-Lock must fall"));
        };
        prop_assert!(verified);
    }

    /// CycSAT's NC clauses are sound: the correct key always satisfies
    /// them, for arbitrary cyclic Full-Lock instances.
    #[test]
    fn cycsat_never_excludes_the_correct_key(host_seed in any::<u64>(), lock_seed in any::<u64>()) {
        let original = host(host_seed);
        let config = FullLockConfig {
            plrs: vec![PlrSpec::new(4)],
            selection: WireSelection::Cyclic,
            twist_probability: 0.5,
            seed: lock_seed,
        };
        let Ok(locked) = FullLock::new(config).lock(&original) else { return Ok(()) };
        let mut cnf = Cnf::new();
        let key_vars: Vec<Var> = locked.key_inputs.iter().map(|_| cnf.new_var()).collect();
        cycsat::add_no_cycle_clauses(&locked, &mut cnf, &key_vars);
        if cnf.num_clauses() == 0 {
            return Ok(()); // insertion happened to stay acyclic
        }
        let mut solver = Solver::from_cnf(&cnf);
        let assumptions: Vec<Lit> = key_vars
            .iter()
            .zip(locked.correct_key.bits())
            .map(|(&v, &b)| Lit::with_polarity(v, b))
            .collect();
        prop_assert_eq!(solver.solve(&assumptions), SolveResult::Sat);
    }

    /// Attack instrumentation invariants: queries ≥ iterations, elapsed
    /// monotone, formula grows with iterations.
    #[test]
    fn attack_reports_are_coherent(host_seed in any::<u64>()) {
        let original = host(host_seed);
        let locked = Rll::new(6, host_seed).lock(&original).expect("fits");
        let oracle = SimOracle::new(&original).expect("acyclic");
        let report = SatAttackConfig::default()
            .run(&locked, &oracle)
            .expect("interfaces");
        prop_assert!(report.oracle_queries >= report.iterations);
        let fulllock_attacks::AttackDetails::Sat(details) = &report.details else {
            panic!("sat attack reports Sat details");
        };
        prop_assert!(details.formula.0 > 0);
        prop_assert!(details.formula.1 > 0);
        prop_assert!(details.mean_clause_var_ratio > 0.5);
    }
}
