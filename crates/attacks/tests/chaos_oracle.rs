//! Chaos tests at the oracle boundary: inject bit-flips, drops, and
//! stuck-at faults into the activated-chip oracle underneath a running
//! DIP loop, and assert the resilient attack layer quarantines the
//! poison instead of returning a wrong key or a spurious UNSAT.
//!
//! These tests require the `failpoints` feature:
//!
//! ```text
//! cargo test -p fulllock-attacks --features failpoints --test chaos_oracle
//! ```
//!
//! They compose with `FULLLOCK_CERTIFY=model`: every solve of the
//! healed runs is then model-checked while quarantine rewrites the
//! constraint ledger underneath the solver.
//!
//! The fault-plan registry is process-global, so every test serializes
//! on [`chaos_lock`] and installs its own plan (an empty plan where a
//! clean oracle is required — shadowing any ambient
//! `FULLLOCK_FAILPOINTS` row from the CI chaos matrix).
#![cfg(feature = "failpoints")]

use std::sync::{Mutex, MutexGuard, PoisonError};

use fulllock_attacks::{
    Attack, AttackCheckpoint, AttackOutcome, Oracle, SatAttackConfig, SimOracle,
};
use fulllock_locking::{
    FullLock, FullLockConfig, Key, LockedCircuit, LockingScheme, PlrSpec, SarLock, WireSelection,
};
use fulllock_netlist::random::{generate, RandomCircuitConfig};
use fulllock_netlist::{Netlist, Simulator};
use fulllock_sat::faults::{self, site, Failpoint, FaultAction, FaultPlan};

/// Serializes tests that install a global fault plan.
fn chaos_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A c432-class combinational host: comparable input/output interface
/// and gate count to the ISCAS-85 channel-interrupt controller.
fn host(seed: u64) -> Netlist {
    generate(RandomCircuitConfig {
        inputs: 12,
        outputs: 7,
        gates: 160,
        max_fanin: 3,
        seed,
    })
    .expect("valid circuit config")
}

/// Locks the host with a 4x4 configurable logic-and-routing network.
fn cln_locked(original: &Netlist) -> LockedCircuit {
    FullLock::new(FullLockConfig {
        plrs: vec![PlrSpec::new(4)],
        selection: WireSelection::Acyclic,
        twist_probability: 0.5,
        seed: 9,
    })
    .lock(original)
    .expect("lock")
}

/// The recovered key must restore the oracle's function exactly — checked
/// by exhaustive-ish random simulation, independently of the attack's own
/// verification.
fn assert_key_correct(original: &Netlist, locked: &LockedCircuit, key: &Key) {
    let sim = Simulator::new(original).expect("simulator");
    let width = locked.data_inputs.len();
    let mut state = 0x9E37_79B9_7F4A_7C15u64;
    for _ in 0..256 {
        let x: Vec<bool> = (0..width)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                state & 1 == 1
            })
            .collect();
        let want = sim.run(&x).expect("oracle sim");
        let got = locked.eval(&x, key).expect("unlock eval");
        assert_eq!(got, want, "recovered key diverges from the oracle");
    }
}

/// Deterministic stand-in for "each response flipped with p = 0.02":
/// one output bit of every 50th oracle query is inverted, far past any
/// plausible query count.
fn two_percent_flip_plan() -> FaultPlan {
    let mut plan = FaultPlan::new();
    for k in 0..200 {
        plan = plan.with(Failpoint::new(
            site::ORACLE_QUERY,
            Some(2 + 50 * k),
            FaultAction::Flip,
        ));
    }
    plan
}

/// The headline scenario: a CLN-locked c432-class host behind an oracle
/// that flips an output bit on ~2% of queries. The unguarded loop would
/// accumulate poisoned constraints and return a wrong key or a spurious
/// UNSAT; the resilient loop must quarantine the poison, recover the
/// exact key, and stay within a bounded query-inflation factor.
#[test]
fn flipped_responses_are_quarantined_and_the_exact_key_recovered() {
    let _guard = chaos_lock();
    let original = host(42);
    let locked = cln_locked(&original);

    // Clean baseline for the inflation bound (empty plan shadows any
    // ambient FULLLOCK_FAILPOINTS row).
    faults::install(FaultPlan::new());
    let clean_oracle = SimOracle::new(&original).expect("oracle");
    let baseline = SatAttackConfig::default()
        .run(&locked, &clean_oracle)
        .expect("clean attack");
    assert!(baseline.outcome.is_broken(), "{:?}", baseline.outcome);

    faults::install(two_percent_flip_plan());
    let noisy_oracle = SimOracle::new(&original).expect("oracle");
    let report = SatAttackConfig::default()
        .run(&locked, &noisy_oracle)
        .expect("resilient attack");
    faults::clear();

    let AttackOutcome::KeyRecovered { key, verified } = &report.outcome else {
        panic!(
            "the resilient loop must still break the lock, got {:?}",
            report.outcome
        );
    };
    assert!(verified, "the recovered key must pass trusted verification");
    assert_key_correct(&original, &locked, key);
    // The healing machinery must have actually fired: suspects were
    // re-queried and at least one poisoned pair was quarantined.
    assert!(
        report.resilience.oracle_requeries > 0,
        "no suspect re-queries recorded: {:?}",
        report.resilience
    );
    assert!(
        report.resilience.quarantined_pairs > 0,
        "no pair quarantined: {:?}",
        report.resilience
    );
    assert!(report.resilience.is_eventful());
    // Healing buys correctness with extra queries, but the inflation must
    // stay bounded — re-querying is per-suspect, not per-constraint.
    assert!(
        report.oracle_queries <= 8 * baseline.oracle_queries + 64,
        "query inflation out of bounds: {} noisy vs {} clean",
        report.oracle_queries,
        baseline.oracle_queries
    );
}

/// The persistence half of the threat model: a run is killed after a
/// poisoned pair entered the checkpoint, resumed (healing quarantines the
/// poison mid-flight), and then resumed once more from the post-heal
/// snapshot — which must NOT resurrect the quarantined pair.
#[test]
fn resume_does_not_resurrect_quarantined_pairs() {
    let _guard = chaos_lock();
    let original = host(7);
    // SARLock over 5 bits forces ~31 DIPs, so a small iteration cap
    // reliably "kills" the run long before convergence.
    let locked = SarLock::new(5, 2).lock(&original).expect("lock");
    let path = std::env::temp_dir().join(format!(
        "fulllock-{}-oracle-quarantine.ckpt",
        std::process::id()
    ));
    let previous = path.with_extension("ckpt.1");
    for p in [&path, &previous] {
        let _ = std::fs::remove_file(p);
    }

    // Phase 1: the third oracle response is flipped; the run is capped
    // ("killed") right after that iteration, so the poisoned pair lands
    // in the checkpoint unquarantined — exactly what a crashed attacker
    // process leaves behind.
    faults::install(FaultPlan::new().with(Failpoint::new(
        site::ORACLE_QUERY,
        Some(2),
        FaultAction::Flip,
    )));
    let capped_oracle = SimOracle::new(&original).expect("oracle");
    let capped = SatAttackConfig {
        max_iterations: Some(3),
        ..Default::default()
    }
    .run_checkpointed(&locked, &capped_oracle, &path, false)
    .expect("capped run");
    faults::clear();
    assert_eq!(capped.outcome, AttackOutcome::IterationLimit);

    let truth = SimOracle::new(&original).expect("oracle");
    let snapshot = AttackCheckpoint::load(&path).expect("checkpoint");
    assert_eq!(snapshot.io_pairs.len(), 3);
    assert!(
        snapshot.io_pairs.iter().all(|p| !p.quarantined),
        "the kill must land before any quarantine"
    );
    let poisoned = snapshot
        .io_pairs
        .iter()
        .filter(|p| truth.query(&p.inputs) != p.outputs)
        .count();
    assert_eq!(poisoned, 1, "exactly the flipped response must be recorded");

    // Phase 2: resume against a now-healthy oracle. The restored poison
    // must be diagnosed (UNSAT core -> re-query -> quarantine) and the
    // exact key still recovered.
    let resume_oracle = SimOracle::new(&original).expect("oracle");
    let resumed = SatAttackConfig::default()
        .resume(&locked, &resume_oracle, &path)
        .expect("resumed run");
    assert_eq!(resumed.resilience.resumed_from, Some(3));
    let AttackOutcome::KeyRecovered { key, verified } = &resumed.outcome else {
        panic!("resume must break the lock, got {:?}", resumed.outcome);
    };
    assert!(verified);
    assert_key_correct(&original, &locked, key);
    assert!(resumed.resilience.oracle_requeries > 0);
    assert!(resumed.resilience.quarantined_pairs > 0);

    // Phase 3: the post-heal snapshot records the quarantine; resuming
    // from it must keep the pair dead. If restore re-asserted the
    // poisoned constraints, this run would need healing all over again
    // (nonzero re-queries) or lose the key.
    let healed = AttackCheckpoint::load(&path).expect("post-heal checkpoint");
    let quarantined_in_snapshot = healed.io_pairs.iter().filter(|p| p.quarantined).count();
    assert!(
        quarantined_in_snapshot > 0,
        "the post-heal checkpoint must persist the quarantine verdict"
    );
    let final_oracle = SimOracle::new(&original).expect("oracle");
    let replayed = SatAttackConfig::default()
        .resume(&locked, &final_oracle, &path)
        .expect("replayed run");
    let AttackOutcome::KeyRecovered { key, verified } = &replayed.outcome else {
        panic!("replay must break the lock, got {:?}", replayed.outcome);
    };
    assert!(verified);
    assert_key_correct(&original, &locked, key);
    assert_eq!(
        replayed.resilience.oracle_requeries, 0,
        "a resurrected poisoned pair would have forced another healing round"
    );
    assert_eq!(
        replayed.resilience.quarantined_pairs as usize, quarantined_in_snapshot,
        "the quarantine ledger must survive the round trip unchanged"
    );

    for p in [&path, &previous] {
        let _ = std::fs::remove_file(p);
    }
}

/// Dropped responses (a flaky harness link) are absorbed by the retry
/// loop without any quarantine — the attack result is byte-identical to
/// a clean run's key.
#[test]
fn dropped_responses_are_retried_transparently() {
    let _guard = chaos_lock();
    let original = host(11);
    let locked = cln_locked(&original);
    faults::install(
        FaultPlan::new().with(
            // The 4th query drops once; the immediate retry succeeds.
            Failpoint::new(site::ORACLE_QUERY, None, FaultAction::Drop)
                .after(3)
                .times(1),
        ),
    );
    let oracle = SimOracle::new(&original).expect("oracle");
    let report = SatAttackConfig::default()
        .run(&locked, &oracle)
        .expect("attack");
    faults::clear();
    let AttackOutcome::KeyRecovered { key, verified } = &report.outcome else {
        panic!("drops must be absorbed, got {:?}", report.outcome);
    };
    assert!(verified);
    assert_key_correct(&original, &locked, key);
    assert!(
        report.resilience.oracle_retries > 0,
        "the absorbed drop must be on record: {:?}",
        report.resilience
    );
    assert_eq!(report.resilience.quarantined_pairs, 0);
}

/// Run by the CI chaos matrix with `FULLLOCK_FAILPOINTS` set (e.g.
/// `oracle.query=flip@10x3` or `oracle.query=delay:25x10`): whatever the
/// ambient plan injects at the oracle site, the attack must either break
/// the scheme with a verified key or end in a clean budget outcome —
/// never panic, hang, or report an unverified key as verified.
#[test]
fn ambient_oracle_plan_never_escapes_the_attack() {
    let _guard = chaos_lock();
    faults::clear(); // fall back to the FULLLOCK_FAILPOINTS plan, if any
    let original = host(13);
    let locked = cln_locked(&original);
    let oracle = SimOracle::new(&original).expect("oracle");
    let report = SatAttackConfig::default()
        .run(&locked, &oracle)
        .expect("attack");
    match &report.outcome {
        AttackOutcome::KeyRecovered { key, verified } => {
            assert!(verified);
            assert_key_correct(&original, &locked, key);
        }
        AttackOutcome::Timeout | AttackOutcome::IterationLimit => {}
        other => panic!("unexpected outcome under ambient oracle faults: {other:?}"),
    }
}
