//! Property tests of the versioned report wire format: seed-derived
//! reports round-trip canonically through `to_json`/`from_json`, and a
//! single flipped byte in a document either surfaces as a typed
//! [`AttackError::ReportFormat`] or decodes to a report that is still
//! canonical — never a panic, never a silently non-canonical document.

use std::time::Duration;

use fulllock_attacks::{
    AttackDetails, AttackError, AttackOutcome, AttackReport, FormalVerdict, KeyCertificate,
    RunResilience,
};
use fulllock_harness::json::Json;
use fulllock_locking::Key;
use fulllock_sat::cdcl::SolverStats;
use proptest::prelude::*;

/// Deterministic xorshift stream for deriving report fields from one
/// seed (the vendored proptest shim has no composite strategies).
struct Mix(u64);

impl Mix {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }

    /// A float that is an exact binary fraction, so the JSON printer
    /// reproduces it bit-for-bit and canonical round trips stay exact.
    fn exact_f64(&mut self) -> f64 {
        (self.next() % 1_000_000) as f64 / 64.0
    }

    fn printable(&mut self, len: usize) -> String {
        (0..len)
            .map(|_| (0x20 + (self.next() % 0x5f) as u8) as char)
            .collect()
    }

    fn key(&mut self) -> Key {
        let len = 1 + (self.next() % 12) as usize;
        let bits: Vec<bool> = (0..len).map(|_| self.next().is_multiple_of(2)).collect();
        Key::from_bits(bits)
    }
}

fn derived_outcome(mix: &mut Mix) -> AttackOutcome {
    match mix.next() % 7 {
        0 => AttackOutcome::KeyRecovered {
            key: mix.key(),
            verified: mix.next().is_multiple_of(2),
        },
        1 => AttackOutcome::ApproximateKey {
            key: mix.key(),
            measured_error: (mix.next() % 256) as f64 / 256.0,
        },
        2 => AttackOutcome::Bypassed {
            error_rate: (mix.next() % 256) as f64 / 256.0,
            exact: mix.next().is_multiple_of(2),
        },
        3 => {
            let len = (mix.next() % 24) as usize;
            AttackOutcome::Defeated {
                reason: mix.printable(len),
            }
        }
        4 => AttackOutcome::Timeout,
        5 => AttackOutcome::IterationLimit,
        _ => AttackOutcome::Inconclusive,
    }
}

#[allow(clippy::field_reassign_with_default)] // histogram loop forbids a struct literal
fn derived_solver(mix: &mut Mix) -> SolverStats {
    let mut solver = SolverStats::default();
    solver.decisions = mix.next() % 1_000_000;
    solver.propagations = mix.next() % 1_000_000;
    solver.conflicts = mix.next() % 1_000_000;
    solver.restarts = mix.next() % 10_000;
    solver.deleted_learnts = mix.next() % 10_000;
    solver.minimized_literals = mix.next() % 10_000;
    solver.reductions = mix.next() % 100;
    for bucket in solver.lbd_histogram.iter_mut() {
        *bucket = mix.next() % 1_000;
    }
    solver.propagate_ns = mix.next() % u64::from(u32::MAX);
    solver.analyze_ns = mix.next() % u64::from(u32::MAX);
    solver.worker_panics = mix.next() % 4;
    solver.exchange_rejects = mix.next() % 100;
    solver.certified_models = mix.next() % 100;
    solver.solves = mix.next() % 1_000;
    solver.learnts_carried = mix.next() % 10_000;
    solver.inprocessings = mix.next() % 10;
    solver.vars_eliminated = mix.next() % 1_000;
    solver.clauses_subsumed = mix.next() % 1_000;
    solver.clauses_strengthened = mix.next() % 1_000;
    solver.vivification_shrinks = mix.next() % 1_000;
    solver
}

fn derived_resilience(mix: &mut Mix) -> RunResilience {
    let failures = (0..(mix.next() % 3))
        .map(|_| {
            let len = 1 + (mix.next() % 20) as usize;
            mix.printable(len)
        })
        .collect();
    RunResilience {
        worker_panics: mix.next() % 4,
        worker_failures: failures,
        resumed_from: (mix.next().is_multiple_of(2)).then(|| mix.next() % 1_000),
        checkpoints_written: mix.next() % 1_000,
        checkpoint_failures: mix.next() % 4,
        oracle_retries: mix.next() % 100,
        oracle_requeries: mix.next() % 100,
        quarantined_pairs: mix.next() % 16,
    }
}

fn derived_certificate(mix: &mut Mix) -> Option<KeyCertificate> {
    if mix.next().is_multiple_of(3) {
        return None;
    }
    let formal = match mix.next() % 4 {
        0 => FormalVerdict::Equivalent,
        1 => FormalVerdict::NotEquivalent,
        2 => FormalVerdict::Unknown,
        _ => {
            let len = (mix.next() % 16) as usize;
            FormalVerdict::Unavailable(mix.printable(len))
        }
    };
    Some(KeyCertificate {
        samples: mix.next() % 100_000,
        mismatches: mix.next() % 16,
        formal,
    })
}

/// A wire-shaped report: `details` already holds a summary object, as a
/// report decoded off the wire would.
fn derived_report(seed: u64) -> AttackReport {
    let mut mix = Mix(seed | 1);
    let attack = ["sat", "appsat", "double-dip", "removal", "sps"][(mix.next() % 5) as usize];
    let detail_tag = (mix.next() % 64).to_string();
    AttackReport {
        attack,
        outcome: derived_outcome(&mut mix),
        iterations: mix.next() % 1_000_000,
        elapsed: Duration::from_secs_f64(mix.exact_f64()),
        oracle_queries: mix.next() % 1_000_000,
        solver: derived_solver(&mut mix),
        resilience: derived_resilience(&mut mix),
        key_certificate: derived_certificate(&mut mix),
        details: AttackDetails::Wire(Json::Object(vec![
            ("type".to_string(), Json::Str(attack.to_string())),
            ("tag".to_string(), Json::Str(detail_tag)),
        ])),
    }
}

fn flip_byte(text: &str, pos: usize, replacement: u8) -> String {
    let mut bytes = text.as_bytes().to_vec();
    let at = pos % bytes.len();
    let fresh = 0x20 + (replacement % 0x5f);
    bytes[at] = if fresh == bytes[at] { b'#' } else { fresh };
    String::from_utf8_lossy(&bytes).into_owned()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every derivable report round-trips canonically: decoding its wire
    /// text and re-encoding reproduces the exact bytes, and every stable
    /// field survives.
    #[test]
    fn reports_round_trip_canonically(seed in any::<u64>()) {
        let report = derived_report(seed);
        let text = report.to_json();
        let back = AttackReport::from_json(&text).expect("round trip");
        prop_assert_eq!(back.to_json(), text.clone());
        prop_assert_eq!(back.attack, report.attack);
        prop_assert_eq!(&back.outcome, &report.outcome);
        prop_assert_eq!(back.iterations, report.iterations);
        prop_assert_eq!(back.elapsed, report.elapsed);
        prop_assert_eq!(back.oracle_queries, report.oracle_queries);
        prop_assert_eq!(&back.solver, &report.solver);
        prop_assert_eq!(back.resilience.worker_panics, report.resilience.worker_panics);
        prop_assert_eq!(&back.resilience.worker_failures, &report.resilience.worker_failures);
        prop_assert_eq!(back.resilience.resumed_from, report.resilience.resumed_from);
        prop_assert_eq!(
            back.resilience.checkpoints_written,
            report.resilience.checkpoints_written
        );
        prop_assert_eq!(back.resilience.oracle_retries, report.resilience.oracle_retries);
        prop_assert_eq!(
            back.resilience.oracle_requeries,
            report.resilience.oracle_requeries
        );
        prop_assert_eq!(
            back.resilience.quarantined_pairs,
            report.resilience.quarantined_pairs
        );
        prop_assert_eq!(back.key_certificate, report.key_certificate);
        // Details crossed the wire as the summary object, verbatim.
        let AttackDetails::Wire(summary) = &back.details else {
            return Err(TestCaseError::fail("decoded details must be Wire"));
        };
        prop_assert_eq!(
            summary.get("type").and_then(Json::as_str),
            Some(report.attack)
        );
    }

    /// One flipped byte anywhere in a wire document: decoding either
    /// refuses with the typed `ReportFormat` error or still yields a
    /// canonical report (the flip landed somewhere value-preserving,
    /// e.g. inside a free-text field) — it never panics and never
    /// produces a document that fails its own round trip.
    #[test]
    fn mutated_documents_reject_or_stay_canonical(
        seed in any::<u64>(),
        pos in any::<usize>(),
        replacement in any::<u8>(),
    ) {
        let text = derived_report(seed).to_json();
        let mutated = flip_byte(&text, pos, replacement);
        match AttackReport::from_json(&mutated) {
            Err(AttackError::ReportFormat { .. }) => {}
            Err(other) => {
                return Err(TestCaseError::fail(format!(
                    "unexpected error kind: {other}"
                )));
            }
            Ok(report) => {
                let reencoded = report.to_json();
                let again = AttackReport::from_json(&reencoded).expect("canonical re-decode");
                prop_assert_eq!(again.to_json(), reencoded);
            }
        }
    }

    /// Stripping the oracle-resilience counters from any wire document —
    /// as a report written before the resilient oracle layer would look —
    /// still decodes, defaults all three counters to zero, and re-encodes
    /// canonically (the counters reappear explicitly).
    #[test]
    fn absent_oracle_counters_default_to_zero(seed in any::<u64>()) {
        let report = derived_report(seed);
        let text = report.to_json();
        let stripped = text
            .replace(
                &format!(",\"oracle_retries\":{}", report.resilience.oracle_retries),
                "",
            )
            .replace(
                &format!(",\"oracle_requeries\":{}", report.resilience.oracle_requeries),
                "",
            )
            .replace(
                &format!(
                    ",\"quarantined_pairs\":{}",
                    report.resilience.quarantined_pairs
                ),
                "",
            );
        prop_assert!(stripped.len() < text.len(), "fields must have been present");
        let back = AttackReport::from_json(&stripped).expect("pre-resilience document");
        prop_assert_eq!(back.resilience.oracle_retries, 0);
        prop_assert_eq!(back.resilience.oracle_requeries, 0);
        prop_assert_eq!(back.resilience.quarantined_pairs, 0);
        let reencoded = back.to_json();
        let again = AttackReport::from_json(&reencoded).expect("canonical re-decode");
        prop_assert_eq!(again.to_json(), reencoded);
    }

    /// Any `schema_version` other than the current one is refused, no
    /// matter what the rest of the document says.
    #[test]
    fn foreign_schema_versions_are_refused(seed in any::<u64>(), version in 2u64..1_000) {
        let text = derived_report(seed).to_json().replace(
            "\"schema_version\":1",
            &format!("\"schema_version\":{version}"),
        );
        let e = AttackReport::from_json(&text).expect_err("must reject");
        prop_assert!(matches!(e, AttackError::ReportFormat { .. }), "{}", e);
    }
}
