//! The whole attack suite through the unified `Attack` trait: every
//! attack runs against the same Full-Lock-ed circuit via
//! `Vec<Box<dyn Attack>>` and returns the common report envelope.

use fulllock_attacks::{
    AppSatConfig, Attack, AttackOutcome, DoubleDip, Removal, SatAttackConfig, SimOracle, Sps,
};
use fulllock_locking::{FullLock, FullLockConfig, LockingScheme};
use fulllock_netlist::random::{generate, RandomCircuitConfig};
use fulllock_sat::BackendSpec;
use std::time::Duration;

fn host(seed: u64) -> fulllock_netlist::Netlist {
    generate(RandomCircuitConfig {
        inputs: 12,
        outputs: 6,
        gates: 120,
        max_fanin: 3,
        seed,
    })
    .unwrap()
}

#[test]
fn all_five_attacks_run_through_the_trait() {
    let original = host(42);
    let (locked, trace) = FullLock::new(FullLockConfig::single_plr(4))
        .lock_with_trace(&original)
        .unwrap();

    let base = SatAttackConfig {
        timeout: Some(Duration::from_secs(20)),
        ..Default::default()
    };
    let suite: Vec<Box<dyn Attack>> = vec![
        Box::new(base),
        Box::new(AppSatConfig {
            base,
            ..Default::default()
        }),
        Box::new(DoubleDip { base }),
        Box::new(Removal::new(trace)),
        Box::new(Sps::default()),
    ];

    let mut names = Vec::new();
    for attack in &suite {
        let oracle = SimOracle::new(&original).unwrap();
        let report = attack.run(&locked, &oracle).unwrap();
        assert_eq!(report.attack, attack.name());
        assert!(report.elapsed <= Duration::from_secs(60));
        // A 4x4 PLR is within easy reach of the SAT family; the structural
        // attacks must *fail* on Full-Lock (the paper's resistance claim).
        match report.attack {
            "sat" | "double-dip" => assert!(report.outcome.is_broken(), "{:?}", report.outcome),
            "appsat" => assert!(report.outcome.is_compromised(), "{:?}", report.outcome),
            "removal" | "sps" => {
                assert!(!report.outcome.is_compromised(), "{:?}", report.outcome)
            }
            other => panic!("unexpected attack name {other}"),
        }
        // SAT-family attacks must carry real solver counters.
        if matches!(report.attack, "sat" | "double-dip") {
            assert!(report.solver.decisions > 0);
        }
        names.push(report.attack);
    }
    assert_eq!(names, ["sat", "appsat", "double-dip", "removal", "sps"]);
}

#[test]
fn sat_attack_runs_on_a_portfolio_backend() {
    let original = host(7);
    let (locked, _trace) = FullLock::new(FullLockConfig::single_plr(4))
        .lock_with_trace(&original)
        .unwrap();
    let config = SatAttackConfig {
        backend: BackendSpec::portfolio(2),
        ..Default::default()
    };
    let oracle = SimOracle::new(&original).unwrap();
    let report = config.run(&locked, &oracle).unwrap();
    assert!(report.outcome.is_broken(), "{:?}", report.outcome);
    assert!(report.solver.decisions > 0);
}

#[test]
fn attack_trait_breaks_rll() {
    let original = host(9);
    let locked = fulllock_locking::Rll::new(4, 0)
        .lock(&original)
        .expect("rll lock");
    let oracle = SimOracle::new(&original).unwrap();
    let report = SatAttackConfig::default().run(&locked, &oracle).unwrap();
    assert!(matches!(report.outcome, AttackOutcome::KeyRecovered { .. }));
}
