//! Chaos tests at the attack level: kill portfolio workers underneath a
//! running DIP loop and assert the attack still converges (or degrades to
//! a clean budget outcome), with the faults recorded in the report's
//! resilience block.
//!
//! These tests require the `failpoints` feature:
//!
//! ```text
//! cargo test -p fulllock-attacks --features failpoints --test chaos_attacks
//! ```
//!
//! The fault-plan registry is process-global, so every test that installs
//! a plan serializes on [`chaos_lock`] and clears the plan before
//! releasing it.
#![cfg(feature = "failpoints")]

use std::sync::{Mutex, MutexGuard, PoisonError};

use fulllock_attacks::{Attack, AttackOutcome, SatAttackConfig, SimOracle};
use fulllock_locking::{LockingScheme, Rll};
use fulllock_netlist::random::{generate, RandomCircuitConfig};
use fulllock_sat::faults::{self, site, Failpoint, FaultAction, FaultPlan};
use fulllock_sat::BackendSpec;

/// Serializes tests that install a global fault plan.
fn chaos_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Silences the unwind traces of panics injected by failpoints, which
/// would make a passing chaos run look alarming.
fn quiet_injected_panics() {
    use std::sync::Once;
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let default = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<String>()
                .is_some_and(|m| m.contains("injected failpoint"))
                || info
                    .payload()
                    .downcast_ref::<&str>()
                    .is_some_and(|m| m.contains("injected failpoint"));
            if !injected {
                default(info);
            }
        }));
    });
}

fn host(seed: u64) -> fulllock_netlist::Netlist {
    generate(RandomCircuitConfig {
        inputs: 10,
        outputs: 5,
        gates: 90,
        max_fanin: 3,
        seed,
    })
    .expect("valid circuit config")
}

fn portfolio_config() -> SatAttackConfig {
    SatAttackConfig {
        backend: BackendSpec::portfolio(4),
        ..Default::default()
    }
}

/// The headline chaos scenario: one of four portfolio workers is killed
/// mid-attack; the DIP loop must still recover a verified key, and the
/// report must record the absorbed panic.
#[test]
fn sat_attack_recovers_key_despite_worker_kill() {
    let _guard = chaos_lock();
    quiet_injected_panics();
    faults::install(
        FaultPlan::new()
            .with(Failpoint::new(site::WORKER_CHUNK, Some(1), FaultAction::Panic).times(1)),
    );

    let original = host(11);
    let locked = Rll::new(8, 2).lock(&original).expect("lock");
    let oracle = SimOracle::new(&original).expect("oracle");
    let report = portfolio_config().run(&locked, &oracle).expect("attack");

    let AttackOutcome::KeyRecovered { verified, .. } = report.outcome else {
        panic!(
            "RLL must fall despite the worker kill, got {:?}",
            report.outcome
        );
    };
    assert!(verified);
    assert_eq!(report.resilience.worker_panics, 1);
    assert_eq!(report.resilience.worker_failures.len(), 1);
    assert!(
        report.resilience.worker_failures[0].contains("injected"),
        "{:?}",
        report.resilience.worker_failures
    );
    assert!(report.resilience.is_eventful());
    faults::clear();
}

/// With every worker dying on every solve, the attack cannot converge —
/// but it must end in a clean `Timeout`, never a panic or a hang, with
/// all the drop-outs on record.
#[test]
fn sat_attack_degrades_cleanly_when_all_workers_die() {
    let _guard = chaos_lock();
    quiet_injected_panics();
    faults::install(FaultPlan::new().with(Failpoint::new(
        site::WORKER_CHUNK,
        None,
        FaultAction::Panic,
    )));

    let original = host(12);
    let locked = Rll::new(6, 2).lock(&original).expect("lock");
    let oracle = SimOracle::new(&original).expect("oracle");
    let report = portfolio_config().run(&locked, &oracle).expect("attack");

    assert_eq!(report.outcome, AttackOutcome::Timeout);
    assert!(report.resilience.worker_panics >= 4);
    faults::clear();
}

/// The crash the checkpoint layer exists for: a save is torn mid-write
/// (power cut, OOM-kill, lying fsync), leaving a half-written snapshot as
/// the primary file. Resume must detect the corruption by checksum,
/// quarantine the torn file, fall back to the previous generation, and
/// still finish the attack with the same key as an uninterrupted run.
#[test]
fn torn_checkpoint_save_resumes_from_the_previous_generation() {
    let _guard = chaos_lock();
    let original = host(14);
    // SARLock pays ~2^m - 1 DIPs: a long run with one save per iteration.
    let locked = fulllock_locking::SarLock::new(5, 3)
        .lock(&original)
        .expect("lock");
    let path = std::env::temp_dir().join(format!("fulllock-{}-torn.ckpt", std::process::id()));
    let quarantine = path.with_extension("ckpt.corrupt");
    let previous = path.with_extension("ckpt.1");
    for p in [&path, &quarantine, &previous] {
        let _ = std::fs::remove_file(p);
    }

    let fresh_oracle = SimOracle::new(&original).expect("oracle");
    let fresh = SatAttackConfig::default()
        .run(&locked, &fresh_oracle)
        .expect("fresh run");
    let AttackOutcome::KeyRecovered { key: fresh_key, .. } = &fresh.outcome else {
        panic!("expected a recovered key, got {:?}", fresh.outcome);
    };
    assert!(fresh.iterations > 12, "need a long run to interrupt");

    // Tear exactly the LAST save of the capped run (the 10th): `.after(9)`
    // skips the healthy ones and `.times(1)` spends the fault, so the
    // rotated previous generation keeps iteration 9 intact.
    faults::install(
        FaultPlan::new().with(
            Failpoint::new(site::CHECKPOINT_SAVE, None, FaultAction::Corrupt)
                .after(9)
                .times(1),
        ),
    );
    let capped_oracle = SimOracle::new(&original).expect("oracle");
    let capped = SatAttackConfig {
        max_iterations: Some(10),
        ..Default::default()
    }
    .run_checkpointed(&locked, &capped_oracle, &path, false)
    .expect("capped run");
    faults::clear();
    assert_eq!(capped.outcome, AttackOutcome::IterationLimit);
    assert_eq!(capped.resilience.checkpoints_written, 10);

    // Resume in a "new process": the torn primary must not poison it.
    let resume_oracle = SimOracle::new(&original).expect("oracle");
    let resumed = SatAttackConfig::default()
        .resume(&locked, &resume_oracle, &path)
        .expect("resumed run");
    let AttackOutcome::KeyRecovered { key, .. } = &resumed.outcome else {
        panic!("expected a recovered key, got {:?}", resumed.outcome);
    };
    assert_eq!(key, fresh_key);
    assert_eq!(
        resumed.resilience.resumed_from,
        Some(9),
        "must fall back to the generation before the torn save"
    );
    assert!(
        quarantine.exists(),
        "torn primary must be quarantined as evidence"
    );
    let certificate = resumed.key_certificate.as_ref().expect("certificate");
    assert!(certificate.is_clean());

    for p in [&path, &quarantine, &previous] {
        let _ = std::fs::remove_file(p);
    }
}

/// Run by the CI chaos matrix with `FULLLOCK_FAILPOINTS` set: whatever the
/// ambient plan injects, the attack must either break the scheme with a
/// verified key or end in a clean budget outcome — never panic or hang.
#[test]
fn env_plan_never_escapes_the_attack() {
    let _guard = chaos_lock();
    quiet_injected_panics();
    faults::clear(); // fall back to the FULLLOCK_FAILPOINTS plan, if any

    let original = host(13);
    let locked = Rll::new(6, 2).lock(&original).expect("lock");
    let oracle = SimOracle::new(&original).expect("oracle");
    let report = portfolio_config().run(&locked, &oracle).expect("attack");
    match report.outcome {
        AttackOutcome::KeyRecovered { verified, .. } => assert!(verified),
        AttackOutcome::Timeout | AttackOutcome::IterationLimit => {}
        other => panic!("unexpected outcome under ambient faults: {other:?}"),
    }
}
