//! Property-based tests of the cone-reduced, structure-aware encoders:
//! the Generic and Structured styles must be equisatisfiable with each
//! other and with circuit evaluation on arbitrary lockings, and the full
//! attack must recover equivalent keys whichever encoding path it takes.

use fulllock_attacks::{
    Attack, AttackOutcome, CircuitEncoder, EncodeStyle, SatAttackConfig, SimOracle,
};
use fulllock_locking::{
    FullLock, FullLockConfig, Key, LockedCircuit, LockingScheme, LutLock, PlrSpec, Rll,
    WireSelection,
};
use fulllock_netlist::random::{generate, RandomCircuitConfig};
use fulllock_netlist::{Netlist, Simulator};
use fulllock_sat::cdcl::{SolveResult, Solver};
use fulllock_sat::{Cnf, Lit, Var};
use proptest::prelude::*;

fn host(seed: u64) -> Netlist {
    generate(RandomCircuitConfig {
        inputs: 8,
        outputs: 4,
        gates: 70,
        max_fanin: 3,
        seed,
    })
    .expect("valid config")
}

/// Asserts one observation with `style` and checks every given key: the
/// cone must be satisfiable under exactly the keys whose evaluation
/// reproduces the observed outputs.
fn check_observation_cone(
    locked: &LockedCircuit,
    style: EncodeStyle,
    inputs: &[bool],
    keys: impl Iterator<Item = Vec<bool>>,
) -> Result<(), TestCaseError> {
    let outputs = locked
        .eval(inputs, &locked.correct_key)
        .expect("acyclic locked circuit");
    let enc = CircuitEncoder::new(locked, style).expect("acyclic");
    let mut cnf = Cnf::new();
    let key_vars: Vec<Var> = locked.key_inputs.iter().map(|_| cnf.new_var()).collect();
    enc.encode_observation(&mut cnf, inputs, &outputs, &key_vars);
    let mut solver = Solver::from_cnf(&cnf);
    for bits in keys {
        let assumptions: Vec<Lit> = key_vars
            .iter()
            .zip(&bits)
            .map(|(&v, &b)| Lit::with_polarity(v, b))
            .collect();
        let key = Key::from_bits(bits.iter().copied());
        let consistent = locked.eval(inputs, &key).expect("interface") == outputs;
        let verdict = solver.solve(&assumptions);
        prop_assert_eq!(
            verdict,
            if consistent {
                SolveResult::Sat
            } else {
                SolveResult::Unsat
            },
            "style {:?}, key {:?}: cone verdict disagrees with evaluation",
            style,
            bits
        );
    }
    Ok(())
}

/// Every key over `bits` variables (callers keep `bits` small).
fn all_keys(bits: usize) -> impl Iterator<Item = Vec<bool>> {
    (0..1u32 << bits).map(move |k| (0..bits).map(|i| k >> i & 1 == 1).collect())
}

/// The correct key plus `samples` random keys over `bits` variables.
fn sampled_keys(locked: &LockedCircuit, samples: usize, seed: u64) -> Vec<Vec<bool>> {
    use rand::{Rng, SeedableRng};
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let bits = locked.key_inputs.len();
    let mut keys = vec![locked.correct_key.bits().to_vec()];
    keys.extend((0..samples).map(|_| (0..bits).map(|_| rng.gen_bool(0.5)).collect::<Vec<bool>>()));
    keys
}

/// Runs the attack with `config` and asserts a functionally correct key.
fn assert_breaks(
    original: &Netlist,
    locked: &LockedCircuit,
    config: SatAttackConfig,
) -> Result<Key, TestCaseError> {
    let oracle = SimOracle::new(original).expect("acyclic");
    let report = config.run(locked, &oracle).expect("interfaces");
    let AttackOutcome::KeyRecovered { key, verified } = report.outcome else {
        return Err(TestCaseError::fail("scheme must fall"));
    };
    prop_assert!(verified);
    let sim = Simulator::new(original).expect("acyclic");
    use rand::{Rng, SeedableRng};
    let mut rng = rand::rngs::StdRng::seed_from_u64(11);
    for _ in 0..16 {
        let x: Vec<bool> = (0..original.inputs().len())
            .map(|_| rng.gen_bool(0.5))
            .collect();
        prop_assert_eq!(
            locked.eval(&x, &key).expect("interface"),
            sim.run(&x).expect("sized")
        );
    }
    Ok(key)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Generic and Structured observation cones are both exactly the set
    /// of keys consistent with the observation — equisatisfiable with
    /// each other and with evaluation — on random LUT-Lock instances
    /// (MUX trees).
    #[test]
    fn lut_cones_match_evaluation_in_both_styles(
        host_seed in any::<u64>(),
        lock_seed in any::<u64>(),
        input_bits in any::<u32>(),
    ) {
        let original = host(host_seed);
        let locked = LutLock::new(2, lock_seed).lock(&original).expect("fits");
        let inputs: Vec<bool> = (0..original.inputs().len())
            .map(|i| input_bits >> (i % 32) & 1 == 1)
            .collect();
        let bits = locked.key_inputs.len();
        prop_assert!(bits <= 12, "exhaustive sweep needs a small key space");
        check_observation_cone(&locked, EncodeStyle::Generic, &inputs, all_keys(bits))?;
        check_observation_cone(&locked, EncodeStyle::Structured, &inputs, all_keys(bits))?;
    }

    /// Same equisatisfiability on acyclic Full-Lock instances (CLN
    /// switch-box swap pairs, exercising the pair-linking clauses).
    #[test]
    fn cln_cones_match_evaluation_in_both_styles(
        host_seed in any::<u64>(),
        lock_seed in any::<u64>(),
        input_bits in any::<u32>(),
    ) {
        let original = host(host_seed);
        let config = FullLockConfig {
            plrs: vec![PlrSpec::new(4)],
            selection: WireSelection::Acyclic,
            twist_probability: 0.5,
            seed: lock_seed,
        };
        let locked = FullLock::new(config).lock(&original).expect("fits");
        let inputs: Vec<bool> = (0..original.inputs().len())
            .map(|i| input_bits >> (i % 32) & 1 == 1)
            .collect();
        // 36 key bits: sample the space instead of sweeping it.
        let keys = sampled_keys(&locked, 48, lock_seed ^ 0xA5A5);
        check_observation_cone(&locked, EncodeStyle::Generic, &inputs, keys.iter().cloned())?;
        check_observation_cone(&locked, EncodeStyle::Structured, &inputs, keys.into_iter())?;
    }

    /// The attack recovers a functionally correct key whichever encoding
    /// path it takes: legacy full copies, Generic cones, or Structured
    /// cones.
    #[test]
    fn attack_succeeds_under_every_encoding_path(
        host_seed in any::<u64>(),
        lock_seed in any::<u64>(),
        bits in 2usize..10,
    ) {
        let original = host(host_seed);
        let locked = Rll::new(bits, lock_seed).lock(&original).expect("fits");
        for (cone_reduce, encode_style) in [
            (false, EncodeStyle::Generic),
            (true, EncodeStyle::Generic),
            (true, EncodeStyle::Structured),
        ] {
            assert_breaks(&original, &locked, SatAttackConfig {
                cone_reduce,
                encode_style,
                ..Default::default()
            })?;
        }
    }
}
