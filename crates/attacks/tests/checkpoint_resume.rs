//! Crash-safe checkpoint/resume: property tests on the snapshot format
//! and end-to-end kill-and-resume runs of the DIP-loop attacks.

use std::path::PathBuf;

use fulllock_attacks::{
    AppSatConfig, Attack, AttackCheckpoint, AttackError, AttackOutcome, DoubleDip, IoPair, Oracle,
    SatAttackConfig, SimOracle,
};
use fulllock_locking::{Key, LockingScheme, Rll, SarLock};
use fulllock_netlist::random::{generate, RandomCircuitConfig};
use proptest::prelude::*;

fn host(seed: u64) -> fulllock_netlist::Netlist {
    generate(RandomCircuitConfig {
        inputs: 10,
        outputs: 5,
        gates: 90,
        max_fanin: 3,
        seed,
    })
    .expect("valid circuit config")
}

/// A unique scratch path; the temp dir is shared, so names carry the pid
/// and a per-test tag.
fn scratch(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("fulllock-{}-{tag}.ckpt", std::process::id()))
}

fn recovered_key(outcome: &AttackOutcome) -> &Key {
    let AttackOutcome::KeyRecovered { key, verified } = outcome else {
        panic!("expected a recovered key, got {outcome:?}");
    };
    assert!(verified);
    key
}

/// Kill-and-resume, end to end: cap a SAT-attack run mid-loop (the stand-in
/// for a crash — the checkpoint on disk is exactly what a killed process
/// leaves behind), then resume from the snapshot and require the same key
/// as an uninterrupted run, without re-buying the completed iterations'
/// oracle queries.
#[test]
fn sat_attack_resumes_without_redoing_iterations() {
    let original = host(21);
    // SARLock pays ~2^m - 1 DIPs: plenty of room to interrupt.
    let locked = SarLock::new(5, 3).lock(&original).expect("lock");
    let path = scratch("sat-resume");
    let _ = std::fs::remove_file(&path);

    let fresh_oracle = SimOracle::new(&original).expect("oracle");
    let fresh = SatAttackConfig::default()
        .run(&locked, &fresh_oracle)
        .expect("fresh run");
    let fresh_key = recovered_key(&fresh.outcome).clone();
    assert!(fresh.iterations > 12, "need a long run to interrupt");

    // "Crash" after 10 iterations.
    let capped_oracle = SimOracle::new(&original).expect("oracle");
    let capped = SatAttackConfig {
        max_iterations: Some(10),
        ..Default::default()
    }
    .run_checkpointed(&locked, &capped_oracle, &path, false)
    .expect("capped run");
    assert_eq!(capped.outcome, AttackOutcome::IterationLimit);
    assert_eq!(capped.resilience.checkpoints_written, 10);
    assert_eq!(capped.resilience.checkpoint_failures, 0);

    // Resume in a "new process" (fresh oracle) and finish the job.
    let resume_oracle = SimOracle::new(&original).expect("oracle");
    let resumed = SatAttackConfig::default()
        .resume(&locked, &resume_oracle, &path)
        .expect("resumed run");
    assert_eq!(recovered_key(&resumed.outcome), &fresh_key);
    assert_eq!(resumed.resilience.resumed_from, Some(10));
    assert_eq!(resumed.iterations, fresh.iterations);
    // The 10 completed DIPs were replayed from the snapshot, not re-queried:
    // this process paid only for the remaining iterations (+ verification).
    assert!(
        resume_oracle.queries() + 10 <= fresh_oracle.queries(),
        "resume re-bought oracle queries: {} vs fresh {}",
        resume_oracle.queries(),
        fresh_oracle.queries()
    );
    // The cumulative count in the report covers both processes; the key
    // certificate's simulation samples are queried after the attack, so
    // they appear on the oracle but not in the attack's own count.
    let certificate = resumed.key_certificate.as_ref().expect("certificate");
    assert!(certificate.is_clean());
    assert_eq!(
        resumed.oracle_queries + certificate.samples,
        10 + resume_oracle.queries()
    );

    let _ = std::fs::remove_file(&path);
}

/// Resume with no checkpoint file present starts fresh (restart scripts can
/// pass `--resume` unconditionally).
#[test]
fn resume_without_a_file_starts_fresh() {
    let original = host(22);
    let locked = Rll::new(6, 2).lock(&original).expect("lock");
    let path = scratch("sat-fresh");
    let _ = std::fs::remove_file(&path);

    let oracle = SimOracle::new(&original).expect("oracle");
    let report = SatAttackConfig::default()
        .resume(&locked, &oracle, &path)
        .expect("run");
    recovered_key(&report.outcome);
    assert_eq!(report.resilience.resumed_from, None);
    assert!(report.resilience.checkpoints_written > 0);
    let _ = std::fs::remove_file(&path);
}

/// Double-DIP records its phase: a snapshot taken in the clean-up phase
/// resumes there, never falling back into the 2-DIP search.
#[test]
fn double_dip_resumes_in_the_recorded_phase() {
    let original = host(23);
    // SARLock admits no 2-DIP, so all progress is clean-up iterations and
    // any mid-run snapshot is in phase 2.
    let locked = SarLock::new(5, 3).lock(&original).expect("lock");
    let path = scratch("ddip-resume");
    let _ = std::fs::remove_file(&path);

    let capped_oracle = SimOracle::new(&original).expect("oracle");
    let capped = DoubleDip {
        base: SatAttackConfig {
            max_iterations: Some(5),
            ..Default::default()
        },
    }
    .run_checkpointed(&locked, &capped_oracle, &path, false)
    .expect("capped run");
    assert_eq!(capped.outcome, AttackOutcome::IterationLimit);

    let snapshot = AttackCheckpoint::load(&path).expect("snapshot");
    assert_eq!(snapshot.attack, "double-dip");
    assert_eq!(snapshot.phase, 2, "SARLock progress is all clean-up phase");

    let resume_oracle = SimOracle::new(&original).expect("oracle");
    let resumed = DoubleDip::default()
        .resume(&locked, &resume_oracle, &path)
        .expect("resumed run");
    recovered_key(&resumed.outcome);
    assert_eq!(resumed.resilience.resumed_from, Some(5));
    let _ = std::fs::remove_file(&path);
}

/// AppSAT checkpoints its probe loop like the exact attacks.
#[test]
fn appsat_checkpointed_run_writes_snapshots() {
    let original = host(24);
    let locked = Rll::new(6, 2).lock(&original).expect("lock");
    let path = scratch("appsat");
    let _ = std::fs::remove_file(&path);

    let oracle = SimOracle::new(&original).expect("oracle");
    let report = AppSatConfig::default()
        .run_checkpointed(&locked, &oracle, &path, false)
        .expect("run");
    assert!(report.resilience.checkpoints_written > 0);
    let snapshot = AttackCheckpoint::load(&path).expect("snapshot");
    assert_eq!(snapshot.attack, "appsat");
    let _ = std::fs::remove_file(&path);
}

/// A checkpoint never resumes an attack it was not written by.
#[test]
fn checkpoint_of_one_attack_is_rejected_by_another() {
    let original = host(25);
    let locked = SarLock::new(5, 3).lock(&original).expect("lock");
    let path = scratch("cross-attack");
    let _ = std::fs::remove_file(&path);

    let oracle = SimOracle::new(&original).expect("oracle");
    SatAttackConfig {
        max_iterations: Some(3),
        ..Default::default()
    }
    .run_checkpointed(&locked, &oracle, &path, false)
    .expect("capped run");

    let oracle2 = SimOracle::new(&original).expect("oracle");
    let err = DoubleDip::default()
        .resume(&locked, &oracle2, &path)
        .expect_err("cross-attack resume must fail");
    assert!(matches!(err, AttackError::CheckpointFormat { .. }), "{err}");
    assert!(err.to_string().contains("sat"), "{err}");
    let _ = std::fs::remove_file(&path);
}

/// Structural attacks opt out of checkpointing with a typed error.
#[test]
fn non_dip_attacks_reject_checkpointing() {
    let original = host(26);
    let locked = Rll::new(4, 1).lock(&original).expect("lock");
    let oracle = SimOracle::new(&original).expect("oracle");
    let err = fulllock_attacks::Sps::default()
        .run_checkpointed(&locked, &oracle, &scratch("sps"), false)
        .expect_err("sps has no DIP loop to checkpoint");
    assert!(matches!(err, AttackError::Unsupported(_)), "{err}");
}

/// Deterministic bit vectors from a seed (the vendored proptest stub has
/// no `flat_map`, so size-dependent sub-structures are derived here).
fn bits_from(seed: &mut u64, n: usize) -> Vec<bool> {
    (0..n)
        .map(|_| {
            // xorshift64
            *seed ^= *seed << 13;
            *seed ^= *seed >> 7;
            *seed ^= *seed << 17;
            *seed & 1 == 1
        })
        .collect()
}

fn arb_checkpoint() -> impl Strategy<Value = AttackCheckpoint> {
    (
        (1usize..12, 1usize..10, 1usize..6, 0usize..20),
        (1u64..u64::MAX, any::<bool>(), 0usize..3),
        (0u64..3, 0u64..1_000_000, 0u64..1_000_000),
        // Dyadic ratios and whole-millisecond durations round-trip
        // exactly through the decimal text format.
        (0u64..1_000_000, 0u64..10_000_000),
        (any::<u64>(), any::<u64>()),
        (0usize..8, any::<u64>()),
    )
        .prop_map(
            |(
                (data_bits, key_bits, out_bits, num_pairs),
                (mut seed, has_key, attack_pick),
                (phase, iterations, cleanup_iterations),
                (ratio_64ths, elapsed_ms),
                (oracle_queries, conflicts),
                (lbd_bucket, lbd_count),
            )| {
                let attack = ["sat", "appsat", "double-dip"][attack_pick];
                let mut cp = AttackCheckpoint::new(attack, data_bits, key_bits);
                cp.phase = phase;
                cp.iterations = iterations;
                cp.cleanup_iterations = cleanup_iterations;
                cp.candidate_key = has_key.then(|| Key::from_bits(bits_from(&mut seed, key_bits)));
                cp.ratio_sum = ratio_64ths as f64 / 64.0;
                cp.ratio_samples = iterations;
                cp.elapsed = std::time::Duration::from_millis(elapsed_ms);
                cp.oracle_queries = oracle_queries;
                cp.solver.conflicts = conflicts;
                cp.solver.lbd_histogram[lbd_bucket] = lbd_count;
                cp.io_pairs = (0..num_pairs)
                    .map(|i| IoPair {
                        inputs: bits_from(&mut seed, data_bits),
                        outputs: bits_from(&mut seed, out_bits),
                        votes: 1 + seed % 5,
                        quarantined: i % 7 == 3,
                    })
                    .collect();
                cp
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any checkpoint survives the JSON text format bit-for-bit.
    #[test]
    fn checkpoint_json_round_trip(cp in arb_checkpoint()) {
        let back = AttackCheckpoint::from_json(&cp.to_json()).expect("round trip");
        prop_assert_eq!(back, cp);
    }

    /// And the file round trip (atomic save + load) is just as exact.
    #[test]
    fn checkpoint_file_round_trip(cp in arb_checkpoint(), tag in 0u32..1_000_000) {
        let path = scratch(&format!("prop-{tag}"));
        cp.save(&path).expect("save");
        let back = AttackCheckpoint::load(&path).expect("load");
        std::fs::remove_file(&path).ok();
        prop_assert_eq!(back, cp);
    }

    /// Flipping any single byte of a sealed checkpoint on disk surfaces as
    /// a typed error — the FNV seal (or the JSON parser, when the flip
    /// mangles the envelope frame) catches it. Never a panic, never a
    /// silently-wrong resume.
    #[test]
    fn mutated_checkpoint_is_a_typed_error(
        cp in arb_checkpoint(),
        pos in any::<usize>(),
        replacement in any::<u8>(),
        tag in 0u32..1_000_000,
    ) {
        let path = scratch(&format!("flip-{tag}"));
        let quarantine = path.with_extension("ckpt.corrupt");
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(&quarantine).ok();

        cp.save(&path).expect("save");
        let mut bytes = std::fs::read(&path).expect("read sealed checkpoint");
        let at = pos % bytes.len();
        let fresh = 0x20 + (replacement % 0x5f);
        bytes[at] = if fresh == bytes[at] { b'#' } else { fresh };
        std::fs::write(&path, &bytes).expect("write mutated checkpoint");

        let err = AttackCheckpoint::load(&path).expect_err("corruption must not load");
        prop_assert!(
            matches!(
                err,
                AttackError::CheckpointFormat { .. } | AttackError::CheckpointIo { .. }
            ),
            "unexpected error kind: {}",
            err
        );
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(&quarantine).ok();
    }
}
