//! End-to-end result certification: a SAT attack run with `--certify`
//! semantics (Model and Proof levels) must recover the key with every SAT
//! answer re-checked, report those checks in the solver stats, and attach
//! a clean key certificate proving the recovered key simulationally and
//! formally.

use fulllock_attacks::{
    certify_key, Attack, AttackOutcome, DoubleDip, FormalVerdict, SatAttackConfig, SimOracle,
};
use fulllock_locking::{Key, LockingScheme, Rll, SarLock};
use fulllock_netlist::random::{generate, RandomCircuitConfig};
use fulllock_sat::CertifyLevel;

fn host(seed: u64) -> fulllock_netlist::Netlist {
    generate(RandomCircuitConfig {
        inputs: 10,
        outputs: 5,
        gates: 90,
        max_fanin: 3,
        seed,
    })
    .expect("valid circuit config")
}

fn recovered_key(outcome: &AttackOutcome) -> &Key {
    let AttackOutcome::KeyRecovered { key, verified } = outcome else {
        panic!("expected a recovered key, got {outcome:?}");
    };
    assert!(verified);
    key
}

/// Model-level certification: every SAT answer in the DIP loop is
/// re-checked against the original clauses, the count lands in the
/// report, and the recovered key carries a clean, formally-proven
/// certificate.
#[test]
fn sat_attack_at_model_level_certifies_every_answer() {
    let original = host(31);
    let locked = Rll::new(8, 2).lock(&original).expect("lock");
    let oracle = SimOracle::new(&original).expect("oracle");
    let report = SatAttackConfig {
        certify: CertifyLevel::Model,
        ..Default::default()
    }
    .run(&locked, &oracle)
    .expect("attack");

    recovered_key(&report.outcome);
    assert!(
        report.solver.certified_models > 0,
        "a Model-level run must have re-checked its SAT answers: {:?}",
        report.solver
    );
    let certificate = report.key_certificate.as_ref().expect("certificate");
    assert!(certificate.is_clean(), "{certificate:?}");
    assert!(
        certificate.is_proven(),
        "the oracle exposes its netlist, so the miter proof must run: {certificate:?}"
    );
    assert_eq!(certificate.mismatches, 0);
    assert_eq!(certificate.formal, FormalVerdict::Equivalent);
}

/// Proof level composes with the same attack path (the DIP loop's solves
/// are satisfiable, so proof checking is dormant, but the level must not
/// disturb the result).
#[test]
fn sat_attack_at_proof_level_recovers_the_same_key() {
    let original = host(31);
    let locked = Rll::new(8, 2).lock(&original).expect("lock");

    let oracle_model = SimOracle::new(&original).expect("oracle");
    let model = SatAttackConfig {
        certify: CertifyLevel::Model,
        ..Default::default()
    }
    .run(&locked, &oracle_model)
    .expect("model run");

    let oracle_proof = SimOracle::new(&original).expect("oracle");
    let proof = SatAttackConfig {
        certify: CertifyLevel::Proof,
        ..Default::default()
    }
    .run(&locked, &oracle_proof)
    .expect("proof run");

    assert_eq!(recovered_key(&model.outcome), recovered_key(&proof.outcome));
    assert!(proof.solver.certified_models > 0);
    assert!(proof
        .key_certificate
        .as_ref()
        .expect("certificate")
        .is_clean());
}

/// The multi-DIP variant certifies through the same machinery.
#[test]
fn double_dip_at_model_level_attaches_a_clean_certificate() {
    let original = host(32);
    let locked = SarLock::new(5, 3).lock(&original).expect("lock");
    let oracle = SimOracle::new(&original).expect("oracle");
    let report = DoubleDip {
        base: SatAttackConfig {
            certify: CertifyLevel::Model,
            ..Default::default()
        },
    }
    .run(&locked, &oracle)
    .expect("attack");

    recovered_key(&report.outcome);
    assert!(report.solver.certified_models > 0);
    let certificate = report.key_certificate.as_ref().expect("certificate");
    assert!(certificate.is_clean(), "{certificate:?}");
}

/// A deliberately wrong key fails certification on both axes — the
/// simulation samples catch mismatching patterns and the formal miter
/// produces a counterexample.
#[test]
fn wrong_keys_are_rejected_by_the_certificate() {
    let original = host(33);
    let locked = Rll::new(8, 2).lock(&original).expect("lock");
    let oracle = SimOracle::new(&original).expect("oracle");

    let report = SatAttackConfig::default()
        .run(&locked, &oracle)
        .expect("attack");
    let good = recovered_key(&report.outcome);
    let bad = Key::from_bits(good.bits().iter().map(|&b| !b));

    let certificate = certify_key(&locked, &oracle, &bad, 64, 0xBAD);
    assert!(!certificate.is_clean(), "{certificate:?}");
    assert!(certificate.mismatches > 0);
    assert_eq!(certificate.formal, FormalVerdict::NotEquivalent);
}
