//! Power/performance/area (PPA) estimation for the Full-Lock reproduction.
//!
//! The paper characterizes its blocks with a Synopsys generic 32nm
//! educational library (Table 3) and silicon-calibrated STT-LUT models
//! (Fig 5). Neither is redistributable, so this crate provides an
//! analytical stand-in: a per-cell cost table whose constants are
//! calibrated so the CLN rows of Table 3 come out at the published
//! magnitudes, plus an STT-LUT cost model following Fig 5's trend
//! (LUT2–LUT5 ≈ CMOS-gate cost, steep growth beyond).
//!
//! Absolute µm²/nW/ns are synthetic; *ratios* between configurations — the
//! quantities the paper's arguments use (almost-non-blocking ≈ 2× blocking
//! at equal N, and far cheaper than the 16×-area blocking CLN of equal SAT
//! resistance) — are what this model is meant to preserve.
//!
//! # Example
//!
//! ```
//! use fulllock_netlist::benchmarks;
//! use fulllock_tech::Technology;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let tech = Technology::generic_32nm();
//! let c432 = benchmarks::load("c432")?;
//! let ppa = tech.netlist_ppa(&c432)?;
//! assert!(ppa.area_um2 > 0.0 && ppa.delay_ns > 0.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use fulllock_netlist::{topo, GateKind, Netlist, Result};

/// Area/power/delay of one cell instance.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CellCost {
    /// Cell area in µm².
    pub area_um2: f64,
    /// Average switching + leakage power in nW (at the model's nominal
    /// activity).
    pub power_nw: f64,
    /// Pin-to-pin delay in ns.
    pub delay_ns: f64,
}

/// Aggregate PPA of a netlist.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PpaReport {
    /// Total cell area in µm².
    pub area_um2: f64,
    /// Total power in nW.
    pub power_nw: f64,
    /// Critical-path delay in ns (including the fixed I/O + wiring
    /// overhead).
    pub delay_ns: f64,
    /// Gate count.
    pub gates: usize,
}

/// A technology cost model. Construct with [`Technology::generic_32nm`].
#[derive(Debug, Clone, PartialEq)]
pub struct Technology {
    inv_cost: CellCost,
    nand_cost: CellCost,
    and_cost: CellCost,
    xor_cost: CellCost,
    mux_cost: CellCost,
    /// Extra per-fan-in scaling beyond 2 inputs.
    wide_factor: f64,
    /// Fixed path overhead (I/O + wiring), added once to every critical
    /// path.
    path_overhead_ns: f64,
}

impl Default for Technology {
    fn default() -> Self {
        Technology::generic_32nm()
    }
}

impl Technology {
    /// The generic 32nm-class model calibrated against Table 3 of the
    /// paper (see the [crate docs](self)).
    pub fn generic_32nm() -> Technology {
        Technology {
            inv_cost: CellCost {
                area_um2: 0.015,
                power_nw: 0.3,
                delay_ns: 0.010,
            },
            nand_cost: CellCost {
                area_um2: 0.022,
                power_nw: 0.5,
                delay_ns: 0.018,
            },
            and_cost: CellCost {
                area_um2: 0.028,
                power_nw: 0.6,
                delay_ns: 0.025,
            },
            xor_cost: CellCost {
                area_um2: 0.025,
                power_nw: 1.0,
                delay_ns: 0.020,
            },
            mux_cost: CellCost {
                area_um2: 0.040,
                power_nw: 1.8,
                delay_ns: 0.035,
            },
            wide_factor: 0.6,
            path_overhead_ns: 0.545,
        }
    }

    /// The fixed per-path overhead (I/O drivers + wiring) used by
    /// [`Technology::netlist_ppa`].
    pub fn path_overhead_ns(&self) -> f64 {
        self.path_overhead_ns
    }

    /// Cost of a single gate instance of the given kind and fan-in.
    pub fn gate_cost(&self, kind: GateKind, fanin: usize) -> CellCost {
        let base = match kind {
            // Tie cells: tiny, leakage-only, no switching delay.
            GateKind::Const0 | GateKind::Const1 => {
                return CellCost {
                    area_um2: 0.005,
                    power_nw: 0.05,
                    delay_ns: 0.0,
                }
            }
            GateKind::Buf | GateKind::Not => self.inv_cost,
            GateKind::Nand | GateKind::Nor => self.nand_cost,
            GateKind::And | GateKind::Or => self.and_cost,
            GateKind::Xor | GateKind::Xnor => self.xor_cost,
            GateKind::Mux => self.mux_cost,
        };
        // Wider cells cost proportionally more (transistor stacks / extra
        // stages), scaled sub-linearly.
        let extra = fanin.saturating_sub(2) as f64 * self.wide_factor;
        CellCost {
            area_um2: base.area_um2 * (1.0 + extra),
            power_nw: base.power_nw * (1.0 + extra),
            delay_ns: base.delay_ns * (1.0 + 0.5 * extra),
        }
    }

    /// STT-MTJ LUT cost by input count (Fig 5's model): LUT2–LUT5 sit near
    /// CMOS standard-cell cost thanks to the dense 3D-integrated MTJ
    /// array; beyond 5 inputs the 2^k array (and its sense tree) takes
    /// off, which is why Full-Lock caps LUTs at 5.
    pub fn stt_lut_cost(&self, inputs: usize) -> CellCost {
        let small = CellCost {
            area_um2: 0.030 + 0.012 * inputs.min(5) as f64,
            power_nw: 0.55 + 0.22 * inputs.min(5) as f64,
            // GHz-class read regardless of size up to 5 inputs.
            delay_ns: 0.020,
        };
        if inputs <= 5 {
            small
        } else {
            let blowup = (1usize << (inputs - 5)) as f64;
            CellCost {
                area_um2: small.area_um2 * blowup,
                power_nw: small.power_nw * blowup,
                delay_ns: small.delay_ns + 0.012 * (inputs - 5) as f64,
            }
        }
    }

    /// Aggregate PPA of a netlist: area and power sum over gates, delay is
    /// the weighted critical path plus the fixed path overhead.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::Cyclic`](fulllock_netlist::NetlistError::Cyclic)
    /// for cyclic netlists (delay is undefined on a loop).
    pub fn netlist_ppa(&self, netlist: &Netlist) -> Result<PpaReport> {
        let order = topo::topo_order(netlist)?;
        let mut area = 0.0;
        let mut power = 0.0;
        let mut arrival = vec![0.0f64; netlist.len()];
        let mut gates = 0usize;
        let mut max_arrival = 0.0f64;
        for s in order {
            let node = netlist.node(s);
            let Some(kind) = node.gate_kind() else {
                continue;
            };
            let cost = self.gate_cost(kind, node.fanins().len());
            area += cost.area_um2;
            power += cost.power_nw;
            gates += 1;
            let input_arrival = node
                .fanins()
                .iter()
                .map(|f| arrival[f.index()])
                .fold(0.0, f64::max);
            arrival[s.index()] = input_arrival + cost.delay_ns;
            max_arrival = max_arrival.max(arrival[s.index()]);
        }
        Ok(PpaReport {
            area_um2: area,
            power_nw: power,
            delay_ns: max_arrival + self.path_overhead_ns,
            gates,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fulllock_netlist::Netlist;

    #[test]
    fn wider_gates_cost_more() {
        let tech = Technology::generic_32nm();
        let two = tech.gate_cost(GateKind::Nand, 2);
        let four = tech.gate_cost(GateKind::Nand, 4);
        assert!(four.area_um2 > two.area_um2);
        assert!(four.power_nw > two.power_nw);
        assert!(four.delay_ns > two.delay_ns);
    }

    #[test]
    fn lut_cost_grows_steeply_past_five_inputs() {
        let tech = Technology::generic_32nm();
        // Fig 5: LUT2..5 comparable to standard cells, LUT6+ takes off.
        let gate = tech.gate_cost(GateKind::Nand, 2);
        for k in 2..=5 {
            let lut = tech.stt_lut_cost(k);
            assert!(
                lut.area_um2 < 12.0 * gate.area_um2,
                "LUT{k} area {} too large",
                lut.area_um2
            );
            assert!((lut.delay_ns - tech.stt_lut_cost(2).delay_ns).abs() < 1e-9);
        }
        let lut5 = tech.stt_lut_cost(5);
        let lut8 = tech.stt_lut_cost(8);
        assert!(lut8.area_um2 > 6.0 * lut5.area_um2);
        assert!(lut8.delay_ns > lut5.delay_ns);
    }

    #[test]
    fn netlist_ppa_sums_and_takes_critical_path() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let g1 = nl.add_gate(GateKind::Nand, &[a, a]).unwrap();
        let g2 = nl.add_gate(GateKind::Nand, &[g1, a]).unwrap();
        nl.mark_output(g2);
        let tech = Technology::generic_32nm();
        let ppa = tech.netlist_ppa(&nl).unwrap();
        let nand = tech.gate_cost(GateKind::Nand, 2);
        assert_eq!(ppa.gates, 2);
        assert!((ppa.area_um2 - 2.0 * nand.area_um2).abs() < 1e-12);
        assert!((ppa.delay_ns - (2.0 * nand.delay_ns + tech.path_overhead_ns())).abs() < 1e-12);
    }

    #[test]
    fn cyclic_netlist_rejected() {
        let mut nl = Netlist::new("c");
        let g = nl.add_deferred_gate(GateKind::Not, 1).unwrap();
        nl.mark_output(g);
        assert!(Technology::generic_32nm().netlist_ppa(&nl).is_err());
    }

    #[test]
    fn cln_area_matches_table_3_magnitude() {
        // Shuffle N=32: 5 stages × 16 switches × (2 MUX + 2 XOR) gates.
        // The paper reports 10.1 µm²; the calibrated model must land in
        // the same magnitude (±40%).
        let tech = Technology::generic_32nm();
        let mux = tech.gate_cost(GateKind::Mux, 3);
        let xor = tech.gate_cost(GateKind::Xor, 2);
        let area = 5.0 * 16.0 * 2.0 * (mux.area_um2 + xor.area_um2);
        assert!(
            (6.0..15.0).contains(&area),
            "shuffle-32 CLN area {area} strays from Table 3's 10.1"
        );
        let power = 5.0 * 16.0 * 2.0 * (mux.power_nw + xor.power_nw);
        assert!(
            (270.0..700.0).contains(&power),
            "shuffle-32 CLN power {power} strays from Table 3's 448"
        );
    }
}
