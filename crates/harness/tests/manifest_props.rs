//! Property tests: any campaign manifest the supervisor can produce must
//! survive a JSON round trip bit-for-bit (modulo f64 re-parsing, which the
//! writer keeps exact by printing with enough precision), and the atomic
//! save path must agree with the in-memory serializer.

use std::path::PathBuf;

use fulllock_harness::manifest::{CampaignManifest, JobRecord, JobStatus, MANIFEST_VERSION};
use proptest::prelude::*;

/// Deterministic xorshift stream so string-ish fields can be derived from
/// a single generated seed (the vendored proptest stub has no string
/// strategies).
fn bits_from(mut seed: u64) -> impl FnMut() -> u64 {
    move || {
        seed ^= seed << 13;
        seed ^= seed >> 7;
        seed ^= seed << 17;
        seed
    }
}

fn ident_from(bits: u64, salt: u64) -> String {
    const ALPHA: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789-_.";
    let mut next = bits_from(bits ^ salt.wrapping_mul(0x9e37_79b9_7f4a_7c15));
    let len = 1 + (next() % 12) as usize;
    let mut s = String::new();
    for _ in 0..len {
        s.push(ALPHA[(next() % ALPHA.len() as u64) as usize] as char);
    }
    // Ids must not start with a dot; statuses and logs don't care either way.
    if s.starts_with('.') {
        s.replace_range(0..1, "x");
    }
    s
}

const STATUSES: [JobStatus; 6] = [
    JobStatus::Pending,
    JobStatus::Running,
    JobStatus::Succeeded,
    JobStatus::Failed,
    JobStatus::TimedOut,
    JobStatus::Skipped,
];

/// Build a fully-populated-or-not job record from primitive draws.
#[allow(clippy::too_many_arguments)]
fn record(
    seed: u64,
    config_hash: u64,
    status_idx: usize,
    attempts: u32,
    exit_code: i64,
    signal: i64,
    duration_millis: u64,
    option_mask: u8,
) -> JobRecord {
    let mut rec = JobRecord::new(ident_from(seed, 1), config_hash);
    rec.status = STATUSES[status_idx % STATUSES.len()];
    rec.attempts = attempts;
    // option_mask toggles each Option field independently, so the
    // all-None and all-Some corners both get exercised.
    rec.exit_code = (option_mask & 1 != 0).then_some(exit_code);
    rec.signal = (option_mask & 2 != 0).then_some(signal % 64);
    rec.duration_secs = duration_millis as f64 / 1000.0;
    rec.peak_rss_kb = (option_mask & 4 != 0).then_some(seed % 1_000_000);
    rec.stdout_log =
        (option_mask & 8 != 0).then(|| format!("logs/{}.stdout.log", ident_from(seed, 2)));
    rec.stderr_log =
        (option_mask & 16 != 0).then(|| format!("logs/{}.stderr.log", ident_from(seed, 3)));
    rec.last_error =
        (option_mask & 32 != 0).then(|| format!("exit status {} \"quoted\"\nline2", exit_code));
    rec
}

/// One raw draw per job: (seed, hash, status, attempts, exit, signal,
/// duration-millis, option-mask).
type JobDraw = (u64, u64, usize, u32, i64, i64, u64, u8);

fn manifest_from(seeds: &[JobDraw]) -> CampaignManifest {
    let mut manifest = CampaignManifest::new(ident_from(seeds.len() as u64 + 17, 4));
    for (i, &(seed, hash, status, attempts, exit, signal, dur, mask)) in seeds.iter().enumerate() {
        // Distinct ids: upsert would otherwise merge colliding records and
        // the equality check below would be comparing different shapes.
        let mut rec = record(seed, hash, status, attempts, exit, signal, dur, mask);
        rec.id = format!("{}-{i}", rec.id);
        let attempt = rec.attempts;
        let to = rec.status.as_str().to_string();
        manifest.upsert(rec);
        manifest.push_event(&format!("job-{i}"), attempt, &to);
    }
    manifest
}

fn scratch(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "fulllock-manifest-prop-{tag}-{}.json",
        std::process::id()
    ))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// to_json → from_json is the identity on every reachable manifest.
    #[test]
    fn manifest_json_round_trips(
        a in (any::<u64>(), any::<u64>(), 0usize..6, 0u32..10),
        b in (any::<i32>(), 0u64..124, 0u64..3_600_000, any::<u8>()),
        c in (any::<u64>(), any::<u64>(), 0usize..6, 0u32..10),
        d in (any::<i32>(), 0u64..124, 0u64..3_600_000, any::<u8>()),
        n in 0usize..3,
    ) {
        let seeds: Vec<_> = [
            (a.0, a.1, a.2, a.3, i64::from(b.0), b.1 as i64 - 62, b.2, b.3),
            (c.0, c.1, c.2, c.3, i64::from(d.0), d.1 as i64 - 62, d.2, d.3),
        ]
        .into_iter()
        .cycle()
        .take(n + 1)
        .collect();
        let manifest = manifest_from(&seeds);
        let text = manifest.to_json();
        let parsed = CampaignManifest::from_json(&text)
            .expect("serializer output must parse");

        prop_assert_eq!(parsed.version, MANIFEST_VERSION);
        prop_assert_eq!(&parsed.plan_name, &manifest.plan_name);
        prop_assert_eq!(parsed.jobs.len(), manifest.jobs.len());
        for (got, want) in parsed.jobs.iter().zip(&manifest.jobs) {
            prop_assert_eq!(&got.id, &want.id);
            prop_assert_eq!(got.config_hash, want.config_hash);
            prop_assert_eq!(got.status, want.status);
            prop_assert_eq!(got.attempts, want.attempts);
            prop_assert_eq!(got.exit_code, want.exit_code);
            prop_assert_eq!(got.signal, want.signal);
            prop_assert!((got.duration_secs - want.duration_secs).abs() < 1e-9);
            prop_assert_eq!(got.peak_rss_kb, want.peak_rss_kb);
            prop_assert_eq!(&got.stdout_log, &want.stdout_log);
            prop_assert_eq!(&got.stderr_log, &want.stderr_log);
            prop_assert_eq!(&got.last_error, &want.last_error);
        }
        prop_assert_eq!(parsed.events.len(), manifest.events.len());
        for (got, want) in parsed.events.iter().zip(&manifest.events) {
            prop_assert_eq!(&got.job, &want.job);
            prop_assert_eq!(got.attempt, want.attempt);
            prop_assert_eq!(&got.to, &want.to);
        }
    }

    /// save → load through the atomic tmp+rename path agrees with the
    /// in-memory round trip, and leaves no tmp file behind.
    #[test]
    fn manifest_save_load_round_trips(
        a in (any::<u64>(), any::<u64>(), 0usize..6, 0u32..10),
        b in (any::<i32>(), 0u64..124, 0u64..3_600_000, any::<u8>()),
    ) {
        let manifest =
            manifest_from(&[(a.0, a.1, a.2, a.3, i64::from(b.0), b.1 as i64 - 62, b.2, b.3)]);
        let path = scratch(&format!("{:x}", a.0 ^ a.1));
        manifest.save(&path).expect("atomic save");
        let loaded = CampaignManifest::load(&path).expect("load saved manifest");
        prop_assert_eq!(loaded.to_json(), manifest.to_json());
        let tmp = path.with_extension("json.tmp");
        prop_assert!(!tmp.exists(), "tmp file must be renamed away");
        std::fs::remove_file(&path).ok();
    }
}
