//! Chaos acceptance tests for the distributed sweep executor: real
//! worker *processes* (the `sweep_worker` test binary) coordinating
//! purely through lease files and segments, under SIGKILL, torn
//! writes, and injected disk faults. The invariant under every
//! schedule: **every unit settles exactly once** — one folded sample
//! per grid point, duplicates suppressed, no unit lost.

#![cfg(unix)]

use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use fulllock_harness::sweep::coordinator::{run_sweep, SweepConfig};
use fulllock_harness::sweep::grid::{SweepGrid, SweepPlan};
use fulllock_harness::sweep::lease::{read_lease, LeaseState};
use fulllock_harness::sweep::segment::fold_segments;
use fulllock_harness::sweep::worker::{count_settled, WorkerArgs};

fn scratch(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("fulllock-sweep-chaos-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

fn worker_args(dir: &Path, index: usize) -> WorkerArgs {
    WorkerArgs {
        dir: dir.to_path_buf(),
        worker_index: index,
        lease_ttl_millis: 400,
        poll_millis: 20,
        spec_min_age_millis: 60_000, // keep speculation out of steal tests
        spec_factor: 1000.0,
    }
}

fn spawn_worker(dir: &Path, index: usize) -> Child {
    Command::new(env!("CARGO_BIN_EXE_sweep_worker"))
        .args(worker_args(dir, index).to_args())
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn sweep worker")
}

fn wait_for<F: Fn() -> bool>(what: &str, deadline: Duration, check: F) {
    let start = Instant::now();
    while start.elapsed() < deadline {
        if check() {
            return;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    panic!("timed out waiting for {what}");
}

/// A SIGKILLed worker's claimed unit migrates to a live worker through
/// lease expiry + steal — no coordinator involved — and the final fold
/// still holds exactly one sample per unit.
#[test]
fn sigkilled_workers_unit_is_stolen_and_settles_exactly_once() {
    let dir = scratch("sigkill-steal");
    // Unit 0 straggles 60s *on its first owner only* (stolen and
    // speculative re-executions run it instantly), so worker A is
    // guaranteed to be stuck inside it when the SIGKILL lands.
    let plan = SweepPlan::new(
        SweepGrid::new("kill")
            .axis("vars", ["20"])
            .axis("straggle_unit", ["0"])
            .axis("straggle_ms", ["60000"])
            .axis("seed", ["0", "1", "2", "3", "4", "5"]),
    );
    let units = plan.grid.unit_count();
    assert_eq!(units, 6);
    plan.save(&dir, 0).expect("save plan");

    let mut victim = spawn_worker(&dir, 0);
    // Wait until the victim actually holds unit 0's lease (it claims
    // unit 0 first and hangs inside the straggle sleep).
    let lease_path = dir.join("leases").join("unit-00000.lease");
    wait_for(
        "victim to claim unit 0",
        Duration::from_secs(10),
        || matches!(read_lease(&lease_path, 0), LeaseState::Held(l) if l.worker == "w0"),
    );
    victim.kill().expect("SIGKILL victim");
    victim.wait().expect("reap victim");

    // A live worker must finish the whole grid alone: fresh claims for
    // the untouched units, a steal for the orphaned unit 0 once the
    // dead worker's lease expires.
    let mut survivor = spawn_worker(&dir, 1);
    let status = survivor.wait().expect("survivor runs to completion");
    assert!(status.success(), "survivor exit: {status}");

    assert_eq!(count_settled(&dir), units, "every unit settled");
    let fold = fold_segments(&dir).expect("fold");
    assert_eq!(fold.samples.len(), units, "exactly one sample per unit");
    let unit0 = &fold.samples["unit-00000"];
    assert_eq!(unit0.worker, "w1", "the survivor's result won");
    assert!(unit0.stolen, "unit 0 arrived via a steal");
    for sample in fold.samples.values() {
        assert!(
            matches!(sample.verdict.as_str(), "sat" | "unsat" | "unknown"),
            "unexpected verdict {:?}",
            sample.verdict
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

fn coordinator_config(dir: &Path, workers: usize) -> SweepConfig {
    let mut config = SweepConfig::new(dir, env!("CARGO_BIN_EXE_sweep_worker"), vec![]);
    config.workers = workers;
    config.lease_ttl = Duration::from_millis(400);
    config.poll = Duration::from_millis(20);
    config.max_wall = Some(Duration::from_secs(120));
    config.shutdown_grace = Duration::from_millis(500);
    config.ambient_hash = Some(0);
    config
}

/// Crash-then-resume: after a completed sweep loses a record to a torn
/// segment tail (marker still present — the worst case, because the
/// marker *lies*), `resume` must detect the orphan, re-run exactly that
/// unit, and restore exactly-once coverage.
#[test]
fn resume_reconciles_a_torn_tail_with_a_lying_settle_marker() {
    let dir = scratch("torn-resume");
    let plan = SweepPlan::new(
        SweepGrid::new("torn")
            .axis("vars", ["20"])
            .axis("seed", ["0", "1", "2", "3"]),
    );
    let units = plan.grid.unit_count();
    let outcome = run_sweep(&plan, &coordinator_config(&dir, 2)).expect("fresh sweep");
    assert_eq!(outcome.aggregates.samples as usize, units);

    // Tear the last record of one segment in half, keeping its settle
    // marker: a write the filesystem acknowledged but never made
    // durable. The unit now has a marker and no record.
    let before = fold_segments(&dir).expect("fold before tear");
    let seg_dir = dir.join("segments");
    let victim_seg = std::fs::read_dir(&seg_dir)
        .expect("list segments")
        .flatten()
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|ext| ext == "seg"))
        .find(|p| std::fs::metadata(p).is_ok_and(|m| m.len() > 0))
        .expect("a non-empty segment");
    let bytes = std::fs::read(&victim_seg).expect("read segment");
    let body = &bytes[..bytes.len() - 1]; // drop trailing newline
    let last_line_start = body.iter().rposition(|&b| b == b'\n').map_or(0, |p| p + 1);
    let torn_at = last_line_start + (bytes.len() - last_line_start) / 2;
    std::fs::write(&victim_seg, &bytes[..torn_at]).expect("tear tail");

    let after = fold_segments(&dir).expect("fold after tear");
    assert_eq!(
        after.samples.len(),
        units - 1,
        "one record lost to the tear"
    );
    let lost: Vec<&String> = before
        .samples
        .keys()
        .filter(|unit| !after.samples.contains_key(*unit))
        .collect();
    assert_eq!(lost.len(), 1);
    let lost = lost[0].clone();

    let mut config = coordinator_config(&dir, 2);
    config.resume = true;
    let resumed = run_sweep(&plan, &config).expect("resume sweep");
    assert_eq!(
        resumed.resume.orphans_cleared, 1,
        "the lying marker was caught"
    );
    assert_eq!(resumed.resume.settled, units - 1, "intact units were kept");
    assert_eq!(
        resumed.aggregates.samples as usize, units,
        "coverage restored"
    );
    let final_fold = fold_segments(&dir).expect("final fold");
    assert!(
        final_fold.samples.contains_key(&lost),
        "the lost unit re-ran"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// Resume refuses to continue when the FULLLOCK_* ambient environment
/// drifted since the sweep started (the plan's config hash folds in the
/// ambient fingerprint).
#[test]
fn resume_refuses_a_drifted_ambient_environment() {
    let dir = scratch("ambient-drift");
    let plan = SweepPlan::new(
        SweepGrid::new("drift")
            .axis("vars", ["20"])
            .axis("seed", ["0"]),
    );
    let outcome = run_sweep(&plan, &coordinator_config(&dir, 1)).expect("fresh sweep");
    assert_eq!(outcome.aggregates.samples, 1);

    let mut config = coordinator_config(&dir, 1);
    config.resume = true;
    config.ambient_hash = Some(0xdead_beef); // a FULLLOCK_* var changed
    let err = run_sweep(&plan, &config).expect_err("must refuse");
    assert!(
        err.to_string().contains("environment drifted"),
        "got: {err}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// Injected disk faults (torn segment appends + slowed lease writes)
/// via FULLLOCK_FAILPOINTS in the workers' environment: the coordinator
/// must detect the units whose markers lie (record torn), re-run them
/// in bounded rounds, and still deliver exactly-once coverage.
#[cfg(feature = "failpoints")]
#[test]
fn injected_torn_appends_are_rerun_to_exactly_once() {
    let dir = scratch("failpoint-torn");
    let seeds: Vec<String> = (0..12).map(|i| i.to_string()).collect();
    let plan = SweepPlan::new(
        SweepGrid::new("fp")
            .axis("vars", ["20"])
            .axis("seed", seeds),
    );
    let units = plan.grid.unit_count();

    let mut config = coordinator_config(&dir, 2);
    // Each worker process: 2 clean appends, then one torn append that
    // reports success; lease writes get a 10ms delay to widen races.
    config.worker_env = vec![(
        "FULLLOCK_FAILPOINTS".to_string(),
        "sweep.segment=torn@2x1;sweep.lease=delay:10".to_string(),
    )];
    let outcome = run_sweep(&plan, &config).expect("sweep survives torn appends");
    assert_eq!(outcome.aggregates.samples as usize, units, "exactly-once");
    assert!(
        outcome.rerun_rounds >= 1,
        "the torn units must have needed a re-run round"
    );
    let fold = fold_segments(&dir).expect("fold");
    assert_eq!(fold.samples.len(), units);
    assert!(
        fold.invalid_lines >= 1,
        "the torn lines are visible in the fold"
    );
    std::fs::remove_dir_all(&dir).ok();
}
