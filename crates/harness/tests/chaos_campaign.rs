//! Chaos acceptance test: a campaign whose children are driven by the
//! `FULLLOCK_FAILPOINTS` grammar — one healthy job, one that always
//! panics, one that hangs until the supervisor times it out. The
//! campaign must complete the healthy work, record the carnage in the
//! manifest, and report a partial outcome instead of dying.

#![cfg(unix)]

use std::path::PathBuf;
use std::time::Duration;

use fulllock_harness::manifest::{CampaignManifest, JobStatus};
use fulllock_harness::plan::{CampaignPlan, JobSpec};
use fulllock_harness::retry::RetryPolicy;
use fulllock_harness::supervisor::{run_campaign, SupervisorConfig};
use fulllock_harness::CHAOS_CHILD_SITE;

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fulllock-chaos-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

fn chaos_job(id: &str, action: Option<&str>) -> JobSpec {
    let mut job = JobSpec::new(id, env!("CARGO_BIN_EXE_campaign_chaos_child"));
    if let Some(action) = action {
        job = job.env(
            "FULLLOCK_FAILPOINTS",
            format!("{CHAOS_CHILD_SITE}={action}"),
        );
    }
    job
}

#[test]
fn chaos_campaign_degrades_gracefully() {
    let dir = scratch("mixed");
    let plan = CampaignPlan::new("chaos")
        .job(chaos_job("ok", None))
        .job(chaos_job("crashy", Some("panic")))
        .job(
            chaos_job("hangy", Some("trigger"))
                .timeout_secs(0.5)
                .max_attempts(1),
        );
    let cfg = SupervisorConfig {
        out_dir: dir.clone(),
        parallelism: 3,
        default_timeout: Duration::from_secs(20),
        grace: Duration::from_millis(300),
        retry: RetryPolicy {
            max_attempts: 2,
            base_delay: Duration::from_millis(10),
            multiplier: 2.0,
            max_delay: Duration::from_millis(50),
        },
        ..SupervisorConfig::default()
    };
    let outcome = run_campaign(&plan, &cfg).expect("supervisor survives chaotic children");

    assert_eq!(outcome.total, 3);
    assert_eq!(outcome.succeeded, 1);
    assert_eq!(outcome.failed, 1);
    assert_eq!(outcome.timed_out, 1);
    assert_eq!(outcome.status_word(), "partial");
    assert!(!outcome.all_succeeded());

    let manifest =
        CampaignManifest::load(&dir.join("campaign.json")).expect("manifest parses after chaos");

    let ok = manifest.job("ok").expect("healthy record");
    assert_eq!(ok.status, JobStatus::Succeeded);
    let stdout =
        std::fs::read_to_string(dir.join(ok.stdout_log.as_ref().expect("stdout log captured")))
            .expect("log readable");
    assert!(stdout.contains("ok"), "{stdout}");

    let crashy = manifest.job("crashy").expect("crashy record");
    assert_eq!(crashy.status, JobStatus::Failed);
    assert_eq!(crashy.attempts, 2, "panicking child exhausts its retries");

    let hangy = manifest.job("hangy").expect("hangy record");
    assert_eq!(hangy.status, JobStatus::TimedOut);
    let hangy_out =
        std::fs::read_to_string(dir.join(hangy.stdout_log.as_ref().expect("stdout log captured")))
            .expect("log readable");
    assert!(hangy_out.contains("hanging"), "{hangy_out}");

    // The raw manifest text uses the exact status spellings CI greps for.
    let raw = std::fs::read_to_string(dir.join("campaign.json")).expect("manifest text");
    assert!(raw.contains("\"timed_out\""));
    assert!(raw.contains("\"failed\""));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn chaos_child_delay_action_still_succeeds() {
    let dir = scratch("delay");
    let plan = CampaignPlan::new("chaos").job(chaos_job("slow", Some("delay:50")));
    let cfg = SupervisorConfig {
        out_dir: dir.clone(),
        default_timeout: Duration::from_secs(20),
        ..SupervisorConfig::default()
    };
    let outcome = run_campaign(&plan, &cfg).expect("campaign runs");
    assert_eq!(outcome.succeeded, 1);
    std::fs::remove_dir_all(&dir).ok();
}
