//! Property tests of the service queue's on-disk format: arbitrary jobs
//! round-trip exactly through the sharded sealed files, and any
//! single-byte mutation of a shard surfaces as a previous-generation
//! fallback or a typed error — never a panic, never silently-wrong data
//! (the same contract `corruption.rs` pins for campaign manifests).

use std::path::PathBuf;

use fulllock_harness::plan::JobSpec;
use fulllock_harness::service::{JobState, ShardedQueue};
use fulllock_harness::HarnessError;
use proptest::prelude::*;

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "fulllock-service-props-{tag}-{}",
        std::process::id()
    ));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

/// Deterministic xorshift stream for deriving job fields from one seed.
struct Mix(u64);

impl Mix {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }

    fn printable(&mut self, len: usize) -> String {
        (0..len)
            .map(|_| (0x20 + (self.next() % 0x5f) as u8) as char)
            .collect()
    }
}

/// A job spec with every optional field exercised, derived from `seed`.
fn derived_spec(index: usize, mix: &mut Mix) -> JobSpec {
    let mut spec = JobSpec::new(format!("job-{index}"), "/bin/true");
    for _ in 0..(mix.next() % 3) {
        let len = (mix.next() % 13) as usize;
        spec.args.push(mix.printable(len));
    }
    for v in 0..(mix.next() % 3) {
        let len = (mix.next() % 9) as usize;
        spec.env.push((format!("VAR_{v}"), mix.printable(len)));
    }
    if mix.next().is_multiple_of(2) {
        spec.timeout_secs = Some(0.001 + (mix.next() % 10_000) as f64 / 7.0);
    }
    if mix.next().is_multiple_of(2) {
        spec.max_attempts = Some(1 + (mix.next() % 9) as u32);
    }
    spec
}

/// A non-`Running` state (reload rewrites `Running` to `Pending`, so
/// round-trip identity only holds for the other four).
fn settled_state(pick: u64) -> JobState {
    match pick % 4 {
        0 => JobState::Pending,
        1 => JobState::Done,
        2 => JobState::Failed,
        _ => JobState::Canceled,
    }
}

fn flip_byte(path: &std::path::Path, pos: usize, replacement: u8) {
    let mut bytes = std::fs::read(path).expect("read shard");
    let at = pos % bytes.len();
    let fresh = 0x20 + (replacement % 0x5f);
    bytes[at] = if fresh == bytes[at] { b'#' } else { fresh };
    std::fs::write(path, &bytes).expect("write mutated shard");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Arbitrary job records survive save → reopen bit-exactly, across
    /// any shard count.
    #[test]
    fn jobs_round_trip_through_shards(
        seed in any::<u64>(),
        count in 1usize..6,
        shards in 1u32..6,
        tag in 0u32..1_000_000,
    ) {
        let dir = scratch(&format!("roundtrip-{tag}"));
        let mut mix = Mix(seed | 1);
        let mut queue = ShardedQueue::open(&dir, shards).expect("open");
        for i in 0..count {
            let spec = derived_spec(i, &mut mix);
            queue.submit(&format!("tenant-{}", i % 2), spec).expect("submit");
        }
        for i in 0..count {
            let state = settled_state(mix.next());
            let error = (mix.next().is_multiple_of(2)).then(|| mix.printable(14));
            let conflicts = mix.next() % 100_000;
            let wall = (mix.next() % 10_000) as f64 / 16.0;
            let job = queue.job_mut(&format!("job-{i}")).expect("job exists");
            job.state = state;
            job.attempts = (i as u32) % 4;
            job.completions = u64::from(state == JobState::Done);
            job.last_error = error;
            job.charged_conflicts = conflicts;
            job.charged_wall_secs = wall;
        }
        queue.save_all().expect("save");

        let reopened = ShardedQueue::open(&dir, shards).expect("reopen");
        prop_assert_eq!(reopened.jobs().len(), queue.jobs().len());
        for (a, b) in queue.jobs().iter().zip(reopened.jobs()) {
            prop_assert_eq!(a, b);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    /// One flipped byte in the only generation of a shard: the queue
    /// either refuses with a typed error or (if the flip demoted the file
    /// to a legacy unsealed read) fails its format parse — it never loads
    /// altered job records.
    #[test]
    fn mutated_shard_never_loads_silently(
        pos in any::<usize>(),
        replacement in any::<u8>(),
        tag in 0u32..1_000_000,
    ) {
        let dir = scratch(&format!("mutate-{tag}"));
        {
            let mut queue = ShardedQueue::open(&dir, 1).expect("open");
            queue
                .submit("t", JobSpec::new("victim", "/bin/true").arg("--flag").env("K", "v"))
                .expect("submit");
        }
        // Only one generation on disk: no fallback possible.
        std::fs::remove_file(dir.join("shard-00.json.1")).ok();
        flip_byte(&dir.join("shard-00.json"), pos, replacement);

        match ShardedQueue::open(&dir, 1) {
            Err(HarnessError::Io { .. } | HarnessError::ManifestFormat { .. }) => {}
            Err(other) => prop_assert!(false, "unexpected error kind: {}", other),
            Ok(queue) => prop_assert!(
                false,
                "mutated shard loaded {} job(s)",
                queue.jobs().len()
            ),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    /// With a previous generation on disk, the same flip degrades to a
    /// clean fallback: the prior snapshot's jobs, or a typed error —
    /// never mutated data.
    #[test]
    fn mutated_shard_falls_back_to_previous_generation(
        pos in any::<usize>(),
        replacement in any::<u8>(),
        tag in 0u32..1_000_000,
    ) {
        let dir = scratch(&format!("fallback-{tag}"));
        {
            let mut queue = ShardedQueue::open(&dir, 1).expect("open");
            queue.submit("t", JobSpec::new("first", "/bin/true")).expect("submit");
            // The second save rotates the one-job snapshot into `.1`.
            queue.submit("t", JobSpec::new("second", "/bin/true")).expect("submit");
        }
        flip_byte(&dir.join("shard-00.json"), pos, replacement);

        match ShardedQueue::open(&dir, 1) {
            Ok(queue) => {
                // The previous generation held only the first job.
                prop_assert_eq!(queue.jobs().len(), 1);
                prop_assert_eq!(queue.jobs()[0].id.as_str(), "first");
            }
            Err(HarnessError::Io { .. } | HarnessError::ManifestFormat { .. }) => {}
            Err(other) => prop_assert!(false, "unexpected error kind: {}", other),
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
