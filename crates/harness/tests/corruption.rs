//! Property tests of the corruption-resilient persistence layer: any
//! single-byte mutation of a sealed file on disk must surface as a typed
//! error or a clean previous-generation fallback — never a panic and never
//! silently-wrong data.

use std::path::PathBuf;

use fulllock_harness::manifest::{CampaignManifest, JobRecord};
use fulllock_harness::persist;
use fulllock_harness::HarnessError;
use proptest::prelude::*;

fn scratch(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "fulllock-corruption-{tag}-{}.json",
        std::process::id()
    ))
}

fn sample_manifest(jobs: u64) -> CampaignManifest {
    let mut manifest = CampaignManifest::new("corruption-props");
    for i in 0..jobs {
        let mut rec = JobRecord::new(format!("job-{i}"), 0x1234_5678 ^ i);
        rec.attempts = (i % 3) as u32;
        manifest.upsert(rec);
    }
    manifest
}

/// Flips one byte of `path` to a different printable-ASCII value (staying
/// valid UTF-8 keeps the mutation in the interesting token/checksum space
/// rather than the encoding layer).
fn flip_byte(path: &std::path::Path, pos: usize, replacement: u8) {
    let mut bytes = std::fs::read(path).expect("read sealed file");
    let at = pos % bytes.len();
    let fresh = 0x20 + (replacement % 0x5f);
    bytes[at] = if fresh == bytes[at] { b'#' } else { fresh };
    std::fs::write(path, &bytes).expect("write mutated file");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// With only one generation on disk, a mutated manifest loads as a
    /// typed error (format or io) — the FNV seal catches every
    /// single-byte substitution — and never panics.
    #[test]
    fn mutated_manifest_is_a_typed_error(
        jobs in 1u64..4,
        pos in any::<usize>(),
        replacement in any::<u8>(),
        tag in 0u32..1_000_000,
    ) {
        let path = scratch(&format!("single-{tag}"));
        let previous = path.with_extension("json.1");
        let quarantine = path.with_extension("json.corrupt");
        for p in [&path, &previous, &quarantine] {
            std::fs::remove_file(p).ok();
        }

        sample_manifest(jobs).save(&path).expect("save");
        flip_byte(&path, pos, replacement);

        let err = CampaignManifest::load(&path).expect_err("corruption must not load");
        prop_assert!(
            matches!(err, HarnessError::ManifestFormat { .. } | HarnessError::Io { .. }),
            "unexpected error kind: {err}"
        );
        for p in [&path, &previous, &quarantine] {
            std::fs::remove_file(p).ok();
        }
    }

    /// With a previous generation present, the same mutation degrades to a
    /// fallback (prior snapshot's content, corrupt primary quarantined)
    /// when the seal catches it — or to a typed format error when the flip
    /// mangles the envelope frame itself and the file reads as legacy
    /// unsealed text. Never a panic, never silently-wrong data.
    #[test]
    fn mutated_manifest_falls_back_to_the_previous_generation(
        pos in any::<usize>(),
        replacement in any::<u8>(),
        tag in 0u32..1_000_000,
    ) {
        let path = scratch(&format!("fallback-{tag}"));
        let previous = path.with_extension("json.1");
        let quarantine = path.with_extension("json.corrupt");
        for p in [&path, &previous, &quarantine] {
            std::fs::remove_file(p).ok();
        }

        sample_manifest(2).save(&path).expect("save generation 1");
        sample_manifest(3).save(&path).expect("save generation 2");
        flip_byte(&path, pos, replacement);

        match CampaignManifest::load(&path) {
            Ok(loaded) => {
                prop_assert_eq!(loaded.jobs.len(), 2, "must be the previous generation");
                prop_assert!(quarantine.exists(), "corrupt primary must be quarantined");
            }
            Err(e) => prop_assert!(
                matches!(e, HarnessError::ManifestFormat { .. }),
                "unexpected error kind: {}",
                e
            ),
        }
        for p in [&path, &previous, &quarantine] {
            std::fs::remove_file(p).ok();
        }
    }

    /// The raw persist layer under arbitrary payloads: seal → mutate →
    /// load is always `InvalidData`, and an intact round trip is exact.
    #[test]
    fn sealed_payload_byte_flips_never_pass_the_checksum(
        payload_seed in any::<u64>(),
        len in 1usize..200,
        pos in any::<usize>(),
        replacement in any::<u8>(),
        tag in 0u32..1_000_000,
    ) {
        let path = scratch(&format!("persist-{tag}"));
        std::fs::remove_file(&path).ok();

        // Deterministic printable payload from the seed.
        let mut state = payload_seed | 1;
        let payload: String = (0..len)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (0x20 + (state % 0x5f) as u8) as char
            })
            .collect();

        persist::save_sealed(&path, &payload).expect("seal");
        let intact = persist::load_sealed(&path).expect("intact load");
        prop_assert_eq!(&intact.payload, &payload);

        flip_byte(&path, pos, replacement);
        match persist::load_sealed(&path) {
            Err(e) => prop_assert_eq!(e.kind(), std::io::ErrorKind::InvalidData),
            // A flip in the envelope frame can demote the file to a
            // "legacy unsealed" read, which hands back raw text rather
            // than an error — acceptable only because the caller's parser
            // sees obvious garbage, but it must never equal the payload.
            Ok(loaded) => prop_assert_ne!(&loaded.payload, &payload),
        }
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(path.with_extension("json.corrupt")).ok();
    }
}
