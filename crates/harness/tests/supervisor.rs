//! Supervisor edge cases: timeouts with SIGKILL escalation, retry
//! bookkeeping, permanent vs. transient failures, and resume semantics
//! (including the manifest state a `kill -9` of the supervisor leaves
//! behind). Jobs are tiny `/bin/sh` scripts, so every test is
//! self-contained and fast.

#![cfg(unix)]

use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use fulllock_harness::manifest::{CampaignManifest, JobStatus};
use fulllock_harness::plan::{CampaignPlan, JobSpec};
use fulllock_harness::retry::RetryPolicy;
use fulllock_harness::supervisor::{run_campaign, SupervisorConfig};

/// A fresh scratch directory under the target-adjacent temp dir.
fn scratch(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("fulllock-supervisor-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

fn sh(id: &str, script: impl Into<String>) -> JobSpec {
    JobSpec::new(id, "/bin/sh").arg("-c").arg(script)
}

/// Fast-retry supervisor config writing into `dir`.
fn config(dir: &Path) -> SupervisorConfig {
    SupervisorConfig {
        out_dir: dir.to_path_buf(),
        default_timeout: Duration::from_secs(20),
        grace: Duration::from_millis(300),
        retry: RetryPolicy {
            max_attempts: 2,
            base_delay: Duration::from_millis(10),
            multiplier: 2.0,
            max_delay: Duration::from_millis(50),
        },
        ..SupervisorConfig::default()
    }
}

fn manifest(dir: &Path) -> CampaignManifest {
    CampaignManifest::load(&dir.join("campaign.json")).expect("manifest on disk")
}

#[test]
fn parallel_jobs_all_succeed_with_captured_output() {
    let dir = scratch("parallel");
    let plan = CampaignPlan::new("p")
        .job(sh("a", "echo out-a; echo err-a >&2"))
        .job(sh("b", "echo out-b"))
        .job(sh("c", "echo out-c"));
    let mut cfg = config(&dir);
    cfg.parallelism = 3;
    let outcome = run_campaign(&plan, &cfg).expect("campaign runs");
    assert_eq!(outcome.succeeded, 3);
    assert!(outcome.all_succeeded());
    assert_eq!(outcome.status_word(), "success");

    let m = manifest(&dir);
    for id in ["a", "b", "c"] {
        let rec = m.job(id).expect("record present");
        assert_eq!(rec.status, JobStatus::Succeeded);
        assert_eq!(rec.attempts, 1);
        assert_eq!(rec.exit_code, Some(0));
        let stdout = std::fs::read_to_string(
            dir.join(rec.stdout_log.as_ref().expect("stdout log recorded")),
        )
        .expect("stdout log readable");
        assert!(stdout.contains(&format!("out-{id}")), "{stdout}");
    }
    let stderr = std::fs::read_to_string(
        dir.join(m.job("a").unwrap().stderr_log.as_ref().expect("stderr log")),
    )
    .expect("stderr log readable");
    assert!(stderr.contains("err-a"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn failing_job_is_retried_then_recorded_and_campaign_continues() {
    let dir = scratch("failing");
    let plan = CampaignPlan::new("p")
        .job(sh("bad", "exit 7"))
        .job(sh("good", "echo fine"));
    let outcome = run_campaign(&plan, &config(&dir)).expect("campaign survives the bad job");
    assert_eq!(outcome.succeeded, 1);
    assert_eq!(outcome.failed, 1);
    assert_eq!(outcome.status_word(), "partial");

    let m = manifest(&dir);
    let bad = m.job("bad").expect("record");
    assert_eq!(bad.status, JobStatus::Failed);
    assert_eq!(bad.attempts, 2, "transient failure gets its retry");
    assert_eq!(bad.exit_code, Some(7));
    assert!(
        bad.last_error.as_deref().unwrap_or("").contains("status 7"),
        "{:?}",
        bad.last_error
    );
    assert!(
        m.events
            .iter()
            .any(|e| e.job == "bad" && e.to == "retrying"),
        "retry transition recorded: {:?}",
        m.events
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn flaky_job_succeeds_on_second_attempt() {
    let dir = scratch("flaky");
    let marker = dir.join("marker");
    let plan = CampaignPlan::new("p").job(sh(
        "flaky",
        format!(
            "if [ -f {m} ]; then exit 0; else touch {m}; exit 1; fi",
            m = marker.display()
        ),
    ));
    let outcome = run_campaign(&plan, &config(&dir)).expect("campaign runs");
    assert_eq!(outcome.succeeded, 1);
    let rec = manifest(&dir).job("flaky").cloned().expect("record");
    assert_eq!(rec.status, JobStatus::Succeeded);
    assert_eq!(rec.attempts, 2);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn hanging_job_is_timed_out_via_sigterm() {
    let dir = scratch("hang");
    let plan =
        CampaignPlan::new("p").job(sh("hangy", "sleep 30").timeout_secs(0.3).max_attempts(1));
    let start = Instant::now();
    let outcome = run_campaign(&plan, &config(&dir)).expect("campaign runs");
    assert!(
        start.elapsed() < Duration::from_secs(10),
        "timeout must not wait for the sleep: {:?}",
        start.elapsed()
    );
    assert_eq!(outcome.timed_out, 1);
    assert_eq!(outcome.status_word(), "failed");
    let rec = manifest(&dir).job("hangy").cloned().expect("record");
    assert_eq!(rec.status, JobStatus::TimedOut);
    assert_eq!(rec.signal, Some(15), "plain sleep dies to SIGTERM");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn sigterm_ignoring_job_is_escalated_to_sigkill() {
    let dir = scratch("sigkill");
    // The child traps (ignores) SIGTERM, so only the SIGKILL escalation
    // after the grace period can reclaim the slot.
    let plan = CampaignPlan::new("p").job(
        sh(
            "stubborn",
            "trap '' TERM; i=0; while [ $i -lt 600 ]; do sleep 0.1; i=$((i+1)); done",
        )
        .timeout_secs(0.3)
        .max_attempts(1),
    );
    let start = Instant::now();
    let outcome = run_campaign(&plan, &config(&dir)).expect("campaign runs");
    assert!(
        start.elapsed() < Duration::from_secs(15),
        "SIGKILL escalation must reclaim the job: {:?}",
        start.elapsed()
    );
    assert_eq!(outcome.timed_out, 1);
    let rec = manifest(&dir).job("stubborn").cloned().expect("record");
    assert_eq!(rec.status, JobStatus::TimedOut);
    assert_eq!(rec.signal, Some(9), "escalation ends in SIGKILL");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn spawn_failure_is_permanent_and_never_retried() {
    let dir = scratch("spawn");
    let plan = CampaignPlan::new("p")
        .job(JobSpec::new("ghost", "/nonexistent/fulllock-no-such-binary").max_attempts(5));
    let outcome = run_campaign(&plan, &config(&dir)).expect("campaign runs");
    assert_eq!(outcome.failed, 1);
    let m = manifest(&dir);
    let rec = m.job("ghost").expect("record");
    assert_eq!(rec.status, JobStatus::Failed);
    assert_eq!(rec.attempts, 1, "bad config is permanent, not retried");
    assert!(
        rec.last_error
            .as_deref()
            .unwrap_or("")
            .contains("spawn failed"),
        "{:?}",
        rec.last_error
    );
    assert!(!m.events.iter().any(|e| e.to == "retrying"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn resume_skips_succeeded_jobs_without_reexecuting() {
    let dir = scratch("resume");
    let count_a = dir.join("count_a");
    let count_b = dir.join("count_b");
    let plan = CampaignPlan::new("p")
        .job(sh("a", format!("echo run >> {}", count_a.display())))
        .job(sh("b", format!("echo run >> {}", count_b.display())));
    let cfg = config(&dir);
    let first = run_campaign(&plan, &cfg).expect("first run");
    assert_eq!(first.succeeded, 2);

    let mut resume_cfg = cfg.clone();
    resume_cfg.resume = true;
    let second = run_campaign(&plan, &resume_cfg).expect("resume run");
    assert_eq!(second.skipped, 2);
    assert_eq!(second.succeeded, 0);
    assert!(second.all_succeeded());
    let lines = |p: &PathBuf| {
        std::fs::read_to_string(p)
            .map(|t| t.lines().count())
            .unwrap_or(0)
    };
    assert_eq!(lines(&count_a), 1, "job a executed exactly once");
    assert_eq!(lines(&count_b), 1, "job b executed exactly once");
    std::fs::remove_dir_all(&dir).ok();
}

/// A `kill -9` of the supervisor leaves `running`/`pending` records in
/// the manifest; `--resume` must re-run exactly those and leave the
/// succeeded ones alone.
#[test]
fn resume_reruns_interrupted_jobs_only() {
    let dir = scratch("interrupted");
    let count_a = dir.join("count_a");
    let count_b = dir.join("count_b");
    let plan = CampaignPlan::new("p")
        .job(sh("a", format!("echo run >> {}", count_a.display())))
        .job(sh("b", format!("echo run >> {}", count_b.display())));
    let cfg = config(&dir);
    run_campaign(&plan, &cfg).expect("first run");

    // Simulate the kill-9 aftermath: job "a" was mid-flight.
    let manifest_path = dir.join("campaign.json");
    let mut m = CampaignManifest::load(&manifest_path).expect("load");
    m.job_mut("a").expect("record").status = JobStatus::Running;
    m.save(&manifest_path).expect("rewrite");

    let mut resume_cfg = cfg.clone();
    resume_cfg.resume = true;
    let outcome = run_campaign(&plan, &resume_cfg).expect("resume");
    assert_eq!(outcome.succeeded, 1, "only the interrupted job re-ran");
    assert_eq!(outcome.skipped, 1);
    let lines = |p: &PathBuf| {
        std::fs::read_to_string(p)
            .map(|t| t.lines().count())
            .unwrap_or(0)
    };
    assert_eq!(lines(&count_a), 2, "interrupted job executed again");
    assert_eq!(lines(&count_b), 1, "succeeded job untouched");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn config_drift_invalidates_a_previous_success() {
    let dir = scratch("drift");
    let count = dir.join("count");
    let job = |arg: &str| sh("a", format!("echo {arg} >> {}", count.display()));
    let cfg = config(&dir);
    run_campaign(&CampaignPlan::new("p").job(job("v1")), &cfg).expect("first run");

    let mut resume_cfg = cfg.clone();
    resume_cfg.resume = true;
    let outcome = run_campaign(&CampaignPlan::new("p").job(job("v2")), &resume_cfg)
        .expect("resume with changed config");
    assert_eq!(outcome.skipped, 0, "changed config hash must re-run");
    assert_eq!(outcome.succeeded, 1);
    let text = std::fs::read_to_string(&count).expect("count file");
    assert_eq!(text.lines().count(), 2);
    assert!(text.contains("v2"));
    std::fs::remove_dir_all(&dir).ok();
}

/// The ambient `FULLLOCK_*` fingerprint is part of every job's config
/// hash: a resume under a drifted environment must re-run the job, and
/// a resume under the same environment must skip it.
#[test]
fn ambient_env_drift_invalidates_resume() {
    let dir = scratch("ambient");
    let count = dir.join("count");
    let plan = CampaignPlan::new("p").job(sh("a", format!("echo run >> {}", count.display())));
    let mut cfg = config(&dir);
    cfg.ambient_hash = Some(1);
    run_campaign(&plan, &cfg).expect("first run");

    let mut same_env = cfg.clone();
    same_env.resume = true;
    let unchanged = run_campaign(&plan, &same_env).expect("resume, same env");
    assert_eq!(unchanged.skipped, 1, "same ambient fingerprint skips");

    let mut drifted = same_env.clone();
    drifted.ambient_hash = Some(2); // a FULLLOCK_* variable changed
    let outcome = run_campaign(&plan, &drifted).expect("resume, drifted env");
    assert_eq!(outcome.skipped, 0, "drifted ambient must invalidate");
    assert_eq!(outcome.succeeded, 1);
    let text = std::fs::read_to_string(&count).expect("count file");
    assert_eq!(text.lines().count(), 2, "job re-ran under the new env");
    std::fs::remove_dir_all(&dir).ok();
}

/// A job that exits almost immediately still gets a peak-RSS sample:
/// the supervisor samples `VmHWM` right at spawn and again before every
/// `try_wait`, so reaping the zombie can't erase the evidence.
#[test]
fn instant_job_still_records_peak_rss() {
    if !cfg!(target_os = "linux") {
        return;
    }
    let dir = scratch("rss-instant");
    let plan = CampaignPlan::new("p").job(sh("blink", ":"));
    run_campaign(&plan, &config(&dir)).expect("campaign runs");
    let rec = manifest(&dir).job("blink").cloned().expect("record");
    assert_eq!(rec.status, JobStatus::Succeeded);
    assert!(
        rec.peak_rss_kb.is_some_and(|kb| kb > 0),
        "spawn-time VmHWM sample missing: {:?}",
        rec.peak_rss_kb
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn peak_rss_is_recorded_on_linux() {
    if !cfg!(target_os = "linux") {
        return;
    }
    let dir = scratch("rss");
    // Long enough for at least one poll-loop RSS sample.
    let plan = CampaignPlan::new("p").job(sh("busy", "sleep 0.4"));
    run_campaign(&plan, &config(&dir)).expect("campaign runs");
    let rec = manifest(&dir).job("busy").cloned().expect("record");
    assert!(
        rec.peak_rss_kb.is_some_and(|kb| kb > 0),
        "VmHWM sampled: {:?}",
        rec.peak_rss_kb
    );
    std::fs::remove_dir_all(&dir).ok();
}
