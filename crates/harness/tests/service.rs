//! In-process integration tests of the `fulllock serve` daemon: the
//! protocol's typed errors, the job lifecycle, tenant quotas, cancel,
//! and graceful drain.

#![cfg(unix)]

use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use fulllock_harness::json::Json;
use fulllock_harness::plan::JobSpec;
use fulllock_harness::service::{serve, Client, Endpoint, ServeSummary, ServiceConfig};
use fulllock_sat::QuotaSpec;

struct TestServer {
    dir: PathBuf,
    endpoint: Endpoint,
    shutdown: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<ServeSummary>>,
}

impl TestServer {
    fn start(tag: &str, configure: impl FnOnce(&mut ServiceConfig)) -> TestServer {
        let dir =
            std::env::temp_dir().join(format!("fulllock-service-{tag}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).expect("temp dir");
        let endpoint = Endpoint::Unix(dir.join("serve.sock"));
        let mut config = ServiceConfig::new(endpoint.clone(), dir.join("state"));
        config.poll_interval = Duration::from_millis(2);
        config.default_timeout = Duration::from_secs(20);
        config.grace = Duration::from_millis(200);
        configure(&mut config);
        let shutdown = Arc::new(AtomicBool::new(false));
        let handle = {
            let shutdown = Arc::clone(&shutdown);
            std::thread::spawn(move || serve(config, shutdown).expect("serve"))
        };
        let client = Client::new(endpoint.clone());
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while !client.is_up() {
            assert!(std::time::Instant::now() < deadline, "server never came up");
            std::thread::sleep(Duration::from_millis(10));
        }
        TestServer {
            dir,
            endpoint,
            shutdown,
            handle: Some(handle),
        }
    }

    fn client(&self) -> Client {
        Client::new(self.endpoint.clone())
    }

    fn stop(&mut self) -> ServeSummary {
        self.shutdown.store(true, Ordering::SeqCst);
        self.handle
            .take()
            .expect("server still running")
            .join()
            .expect("server thread")
    }
}

impl Drop for TestServer {
    fn drop(&mut self) {
        if self.handle.is_some() {
            self.stop();
        }
        std::fs::remove_dir_all(&self.dir).ok();
    }
}

/// Sends one raw line over the socket and returns the raw response line
/// (for malformed-input tests the typed [`Client`] cannot produce).
fn raw_round_trip(endpoint: &Endpoint, line: &str) -> String {
    let Endpoint::Unix(path) = endpoint else {
        panic!("tests use unix sockets")
    };
    let mut stream = UnixStream::connect(path).expect("connect");
    stream
        .write_all(format!("{line}\n").as_bytes())
        .expect("write");
    let mut reader = BufReader::new(stream);
    let mut response = String::new();
    reader.read_line(&mut response).expect("read");
    response.trim_end().to_string()
}

fn error_code(response: &str) -> String {
    let json = Json::parse(response).expect("response is JSON");
    assert_eq!(json.get("ok").and_then(Json::as_bool), Some(false));
    json.get("error")
        .and_then(|e| e.get("code"))
        .and_then(Json::as_str)
        .expect("typed error code")
        .to_string()
}

fn sh_job(id: &str, script: &str) -> JobSpec {
    JobSpec::new(id, "/bin/sh").arg("-c").arg(script)
}

#[test]
fn submit_runs_to_done_and_list_sees_it() {
    let mut server = TestServer::start("lifecycle", |_| {});
    let client = server.client();

    let reply = client
        .submit("acme", sh_job("hello", "echo hi > {job_dir}/proof"))
        .expect("submit");
    assert!(reply.error_code().is_none(), "{reply:?}");

    let done = client.wait("hello", Duration::from_secs(20)).expect("wait");
    assert_eq!(
        done.job_state().map(|s| s.as_str()),
        Some("done"),
        "{done:?}"
    );

    // {job_dir} was substituted and the child really ran there.
    let proof = server.dir.join("state/jobs/hello/proof");
    assert!(proof.exists(), "missing {}", proof.display());

    // list (all tenants and filtered) includes the job exactly once.
    for tenant in [None, Some("acme")] {
        let list = client.list(tenant).expect("list");
        let fulllock_harness::service::ServiceReply::Ok(json) = &list else {
            panic!("list failed: {list:?}")
        };
        assert_eq!(json.get("count").and_then(Json::as_u64), Some(1));
    }
    let other = client.list(Some("nobody")).expect("list");
    let fulllock_harness::service::ServiceReply::Ok(json) = &other else {
        panic!("list failed: {other:?}")
    };
    assert_eq!(json.get("count").and_then(Json::as_u64), Some(0));

    let summary = server.stop();
    assert_eq!(summary.submitted, 1);
    assert_eq!(summary.completed, 1);
}

#[test]
fn protocol_errors_are_typed() {
    let mut server = TestServer::start("protocol", |_| {});
    let client = server.client();

    // Malformed / unknown inputs straight over the socket.
    for (line, want) in [
        ("this is not json", "malformed_request"),
        ("{\"verb\":\"explode\"}", "unknown_verb"),
        (
            "{\"verb\":\"submit\",\"tenant\":\"t\"}",
            "malformed_request",
        ),
        (
            "{\"verb\":\"submit\",\"tenant\":\"t\",\"job\":{\"id\":\"..x\",\"program\":\"p\"}}",
            "invalid_job",
        ),
        ("{\"verb\":\"status\",\"job\":\"ghost\"}", "unknown_job"),
        ("{\"verb\":\"cancel\",\"job\":\"ghost\"}", "unknown_job"),
    ] {
        let response = raw_round_trip(&server.endpoint, line);
        assert_eq!(error_code(&response), want, "request: {line}");
    }

    // Duplicate ids are refused with a typed error.
    client
        .submit("t", sh_job("dup", "true"))
        .expect("first submit");
    let second = client.submit("t", sh_job("dup", "true")).expect("send");
    assert_eq!(second.error_code(), Some("duplicate_job"), "{second:?}");

    // A finished job cannot be canceled.
    client.wait("dup", Duration::from_secs(20)).expect("wait");
    let cancel = client.cancel("dup").expect("send");
    assert_eq!(cancel.error_code(), Some("not_cancelable"), "{cancel:?}");

    server.stop();
}

#[test]
fn tenant_quotas_refuse_over_limit_submissions() {
    let mut server = TestServer::start("quota", |config| {
        config.quotas = vec![
            (
                "narrow".to_string(),
                QuotaSpec {
                    max_in_flight: Some(1),
                    max_conflicts: None,
                    max_wall: None,
                },
            ),
            (
                "bankrupt".to_string(),
                QuotaSpec {
                    max_in_flight: None,
                    max_conflicts: Some(0),
                    max_wall: None,
                },
            ),
        ];
    });
    let client = server.client();

    // In-flight cap: the first job occupies the only slot while it
    // sleeps; the second submission is refused, not queued.
    client
        .submit("narrow", sh_job("slot-holder", "sleep 5"))
        .expect("submit");
    let refused = client
        .submit("narrow", sh_job("over-quota", "true"))
        .expect("send");
    assert_eq!(
        refused.error_code(),
        Some("concurrency_full"),
        "{refused:?}"
    );

    // Another tenant is unaffected (default quota is unlimited).
    let ok = client
        .submit("other", sh_job("bystander", "true"))
        .expect("send");
    assert!(ok.error_code().is_none(), "{ok:?}");

    // Exhausted cumulative budget refuses even the first submission.
    let broke = client
        .submit("bankrupt", sh_job("no-funds", "true"))
        .expect("send");
    assert_eq!(broke.error_code(), Some("conflicts_exhausted"), "{broke:?}");

    // Cancel frees the slot: the tenant can submit again.
    client.cancel("slot-holder").expect("cancel");
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        let reply = client
            .submit(
                "narrow",
                sh_job(&format!("retry-{}", deadline.elapsed().as_millis()), "true"),
            )
            .expect("send");
        match reply.error_code() {
            None => break,
            Some("concurrency_full") if std::time::Instant::now() < deadline => {
                std::thread::sleep(Duration::from_millis(20));
            }
            Some(code) => panic!("unexpected refusal {code}"),
        }
    }

    server.stop();
}

#[test]
fn cancel_interrupts_a_running_job() {
    let mut server = TestServer::start("cancel", |_| {});
    let client = server.client();

    client
        .submit("t", sh_job("long", "sleep 30"))
        .expect("submit");
    // Wait until it is actually running before canceling.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        let state = client.status("long").expect("status").job_state();
        if state.map(|s| s.as_str()) == Some("running") {
            break;
        }
        assert!(std::time::Instant::now() < deadline, "never started");
        std::thread::sleep(Duration::from_millis(10));
    }
    client.cancel("long").expect("cancel");
    let done = client.wait("long", Duration::from_secs(20)).expect("wait");
    assert_eq!(done.job_state().map(|s| s.as_str()), Some("canceled"));

    let summary = server.stop();
    assert_eq!(summary.canceled, 1);
}

#[test]
fn failed_jobs_retry_then_fail_with_the_exit_detail() {
    let mut server = TestServer::start("retry", |config| {
        config.retry.max_attempts = 2;
        config.retry.base_delay = Duration::from_millis(5);
    });
    let client = server.client();

    client
        .submit("t", sh_job("doomed", "exit 3"))
        .expect("submit");
    let done = client
        .wait("doomed", Duration::from_secs(20))
        .expect("wait");
    assert_eq!(done.job_state().map(|s| s.as_str()), Some("failed"));
    let fulllock_harness::service::ServiceReply::Ok(json) = &done else {
        panic!("{done:?}")
    };
    let job = json.get("job").expect("job");
    assert_eq!(job.get("attempts").and_then(Json::as_u64), Some(2));
    assert!(
        job.get("last_error")
            .and_then(Json::as_str)
            .is_some_and(|e| e.contains("exit status 3")),
        "{done:?}"
    );

    let summary = server.stop();
    assert_eq!(summary.failed, 1);
}

#[test]
fn overload_sheds_submissions_with_a_typed_error() {
    let mut server = TestServer::start("overload", |config| {
        config.workers = 1;
        config.max_pending = 2;
    });
    let client = server.client();

    // Fill the single worker, then the pending queue.
    client
        .submit("t", sh_job("occupier", "sleep 10"))
        .expect("submit");
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        let state = client.status("occupier").expect("status").job_state();
        if state.map(|s| s.as_str()) == Some("running") {
            break;
        }
        assert!(std::time::Instant::now() < deadline, "never started");
        std::thread::sleep(Duration::from_millis(10));
    }
    for i in 0..2 {
        let ok = client
            .submit("t", sh_job(&format!("queued-{i}"), "true"))
            .expect("send");
        assert!(ok.error_code().is_none(), "{ok:?}");
    }

    // The queue is at max_pending: the next submission is shed, typed.
    let shed = client.submit("t", sh_job("excess", "true")).expect("send");
    assert_eq!(shed.error_code(), Some("overloaded"), "{shed:?}");

    // Health sees the shed and the queue depth.
    let health = client.health().expect("health");
    let fulllock_harness::service::ServiceReply::Ok(json) = &health else {
        panic!("health failed: {health:?}")
    };
    let h = json.get("health").expect("health body");
    assert_eq!(
        h.get("counters")
            .and_then(|c| c.get("shed"))
            .and_then(Json::as_u64),
        Some(1),
        "{health:?}"
    );
    assert_eq!(
        h.get("queue")
            .and_then(|q| q.get("pending"))
            .and_then(Json::as_u64),
        Some(2),
        "{health:?}"
    );

    client.cancel("occupier").expect("cancel");
    let summary = server.stop();
    assert_eq!(summary.shed, 1);
}

#[test]
fn oversized_request_lines_are_refused() {
    let mut server = TestServer::start("bigline", |config| {
        config.max_request_line = 1024;
    });

    let huge = format!(
        "{{\"verb\":\"status\",\"job\":\"{}\"}}",
        "x".repeat(4 * 1024)
    );
    let response = raw_round_trip(&server.endpoint, &huge);
    assert_eq!(error_code(&response), "request_too_large", "{response}");

    // An oversized line that fits inside a single read chunk (here 2 KiB,
    // under the server's 4 KiB read buffer) must be refused too — the cap
    // is about the line, not about how it happened to arrive.
    let small_but_over = format!(
        "{{\"verb\":\"status\",\"job\":\"{}\"}}",
        "y".repeat(2 * 1024)
    );
    let response = raw_round_trip(&server.endpoint, &small_but_over);
    assert_eq!(error_code(&response), "request_too_large", "{response}");

    // The server is unharmed: a well-formed request still works.
    let ok = server.client().list(None).expect("list");
    assert!(ok.error_code().is_none(), "{ok:?}");
    server.stop();
}

#[test]
fn slow_loris_clients_are_disconnected_without_stalling_others() {
    let mut server = TestServer::start("loris", |config| {
        config.io_timeout = Duration::from_millis(300);
    });
    let Endpoint::Unix(path) = &server.endpoint else {
        panic!("tests use unix sockets")
    };

    // The loris: open a connection and trickle a partial line, never
    // finishing it.
    let mut loris = UnixStream::connect(path).expect("connect");
    loris.write_all(b"{\"verb\":\"lis").expect("partial write");
    loris
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("read timeout");

    // Meanwhile other clients are not stalled.
    for _ in 0..3 {
        let ok = server.client().list(None).expect("list");
        assert!(ok.error_code().is_none(), "{ok:?}");
    }

    // The deadline fires: the loris gets a typed best-effort error, then
    // the connection closes (EOF).
    let mut reader = BufReader::new(&mut loris);
    let mut response = String::new();
    reader.read_line(&mut response).expect("read error line");
    assert_eq!(
        error_code(response.trim_end()),
        "deadline_exceeded",
        "{response}"
    );
    let mut rest = String::new();
    let n = reader.read_line(&mut rest).expect("read EOF");
    assert_eq!(n, 0, "connection must be closed, got {rest:?}");

    server.stop();
}

#[test]
fn connection_cap_sheds_excess_connections() {
    let mut server = TestServer::start("conncap", |config| {
        config.max_connections = 1;
    });
    let Endpoint::Unix(path) = &server.endpoint else {
        panic!("tests use unix sockets")
    };

    // Occupy the only slot and prove its handler passed admission.
    let mut holder = UnixStream::connect(path).expect("connect");
    holder.write_all(b"{\"verb\":\"list\"}\n").expect("write");
    let mut holder_reader = BufReader::new(holder.try_clone().expect("clone"));
    let mut response = String::new();
    holder_reader.read_line(&mut response).expect("read");
    let parsed = Json::parse(response.trim_end()).expect("response is JSON");
    assert_eq!(
        parsed.get("ok").and_then(Json::as_bool),
        Some(true),
        "{response}"
    );

    // The second connection is turned away with a typed error.
    let over = UnixStream::connect(path).expect("connect");
    let mut over_reader = BufReader::new(over);
    let mut refusal = String::new();
    over_reader.read_line(&mut refusal).expect("read refusal");
    assert_eq!(error_code(refusal.trim_end()), "overloaded", "{refusal}");

    // Releasing the slot admits new connections again.
    drop(holder);
    drop(holder_reader);
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        match server.client().list(None) {
            Ok(reply) if reply.error_code().is_none() => break,
            _ if std::time::Instant::now() < deadline => {
                std::thread::sleep(Duration::from_millis(20));
            }
            other => panic!("connection slot never freed: {other:?}"),
        }
    }
    server.stop();
}

#[test]
fn health_reports_queue_workers_and_tenants() {
    let mut server = TestServer::start("health", |config| {
        config.workers = 2;
    });
    let client = server.client();
    client
        .submit("acme", sh_job("observed", "true"))
        .expect("submit");
    client
        .wait("observed", Duration::from_secs(20))
        .expect("wait");

    let health = client.health().expect("health");
    let fulllock_harness::service::ServiceReply::Ok(json) = &health else {
        panic!("health failed: {health:?}")
    };
    let h = json.get("health").expect("health body");
    let field = |path: &[&str]| {
        let mut cursor = h;
        for p in path {
            cursor = cursor.get(p).unwrap_or_else(|| panic!("missing {p}"));
        }
        cursor.clone()
    };
    assert_eq!(field(&["status"]).as_str(), Some("ok"));
    assert_eq!(field(&["queue", "done"]).as_u64(), Some(1));
    assert_eq!(field(&["queue", "completions"]).as_u64(), Some(1));
    assert_eq!(field(&["workers", "configured"]).as_u64(), Some(2));
    assert_eq!(field(&["workers", "recycled"]).as_u64(), Some(0));
    assert_eq!(field(&["persist", "healthy"]).as_bool(), Some(true));
    assert_eq!(field(&["persist", "failures"]).as_u64(), Some(0));
    assert_eq!(field(&["counters", "submitted"]).as_u64(), Some(1));
    let tenants = field(&["tenants"]);
    let rows = tenants.as_array().expect("tenants array");
    assert!(
        rows.iter().any(|r| {
            r.get("tenant").and_then(Json::as_str) == Some("acme")
                && r.get("in_flight").and_then(Json::as_u64) == Some(0)
        }),
        "{health:?}"
    );
    server.stop();
}

/// The restart edge case where a tenant's *only* jobs are interrupted
/// ones (re-queued without a consumed attempt): the rebuilt ledger must
/// re-occupy exactly their in-flight slots and preload zero cumulative
/// charges, reconciling exactly with what the first server recorded.
#[test]
fn quota_ledger_rebuild_reconciles_interrupted_only_tenants() {
    let dir =
        std::env::temp_dir().join(format!("fulllock-service-qrebuild-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("temp dir");
    let endpoint = Endpoint::Unix(dir.join("serve.sock"));
    let narrow_quota = || {
        vec![(
            "narrow".to_string(),
            QuotaSpec {
                max_in_flight: Some(1),
                max_conflicts: None,
                max_wall: None,
            },
        )]
    };
    let make_config = || {
        let mut config = ServiceConfig::new(endpoint.clone(), dir.join("state"));
        config.poll_interval = Duration::from_millis(2);
        config.grace = Duration::from_millis(200);
        config.quotas = narrow_quota();
        config
    };
    let start = |config: ServiceConfig| {
        let shutdown = Arc::new(AtomicBool::new(false));
        let handle = {
            let shutdown = Arc::clone(&shutdown);
            std::thread::spawn(move || serve(config, shutdown).expect("serve"))
        };
        let client = Client::new(endpoint.clone());
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while !client.is_up() {
            assert!(std::time::Instant::now() < deadline, "server never came up");
            std::thread::sleep(Duration::from_millis(10));
        }
        (shutdown, handle, client)
    };

    // Server 1: the tenant's only job is mid-run when the drain hits.
    let (shutdown, handle, client) = start(make_config());
    client
        .submit("narrow", sh_job("only-job", "sleep 30"))
        .expect("submit");
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        let state = client.status("only-job").expect("status").job_state();
        if state.map(|s| s.as_str()) == Some("running") {
            break;
        }
        assert!(std::time::Instant::now() < deadline, "never started");
        std::thread::sleep(Duration::from_millis(10));
    }
    shutdown.store(true, Ordering::SeqCst);
    let summary = handle.join().expect("server thread");
    assert_eq!(summary.drained, 1);

    // Server 2 rebuilds the ledger from a queue whose only entry for
    // "narrow" is pending+interrupted with zero consumed attempts.
    let (shutdown, handle, client) = start(make_config());
    let health = client.health().expect("health");
    let fulllock_harness::service::ServiceReply::Ok(json) = &health else {
        panic!("health failed: {health:?}")
    };
    let rows = json
        .get("health")
        .and_then(|h| h.get("tenants"))
        .and_then(Json::as_array)
        .expect("tenants array");
    let narrow = rows
        .iter()
        .find(|r| r.get("tenant").and_then(Json::as_str) == Some("narrow"))
        .expect("narrow tenant in ledger");
    // Exactly one in-flight slot (the interrupted job), zero charges:
    // the interruption was the server's fault and cost the tenant
    // nothing.
    assert_eq!(narrow.get("in_flight").and_then(Json::as_u64), Some(1));
    assert_eq!(narrow.get("conflicts").and_then(Json::as_u64), Some(0));
    assert_eq!(
        narrow.get("wall_secs").and_then(Json::as_f64),
        Some(0.0),
        "{narrow:?}"
    );

    // The slot is genuinely occupied: a second submission is refused.
    let refused = client
        .submit("narrow", sh_job("second", "true"))
        .expect("send");
    assert_eq!(
        refused.error_code(),
        Some("concurrency_full"),
        "{refused:?}"
    );

    // Canceling the interrupted job releases exactly that slot.
    client.cancel("only-job").expect("cancel");
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        let reply = client
            .submit("narrow", sh_job("after-cancel", "true"))
            .expect("send");
        match reply.error_code() {
            None => break,
            Some("concurrency_full") if std::time::Instant::now() < deadline => {
                std::thread::sleep(Duration::from_millis(20));
            }
            Some(code) => panic!("unexpected refusal {code}"),
        }
    }
    client
        .wait("after-cancel", Duration::from_secs(20))
        .expect("wait");

    shutdown.store(true, Ordering::SeqCst);
    handle.join().expect("server thread");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn drain_requeues_in_flight_jobs_without_consuming_attempts() {
    let mut server = TestServer::start("drain", |_| {});
    let client = server.client();

    client
        .submit("t", sh_job("interrupted", "sleep 30"))
        .expect("submit");
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        let state = client.status("interrupted").expect("status").job_state();
        if state.map(|s| s.as_str()) == Some("running") {
            break;
        }
        assert!(std::time::Instant::now() < deadline, "never started");
        std::thread::sleep(Duration::from_millis(10));
    }

    let state_dir = server.dir.join("state");
    let summary = server.stop();
    assert_eq!(summary.drained, 1);

    // The persisted queue re-queues it with the attempt given back —
    // visible to the next server that opens the same state directory.
    let queue =
        fulllock_harness::service::ShardedQueue::open(&state_dir.join("queue"), 4).expect("open");
    let job = queue.job("interrupted").expect("persisted");
    assert_eq!(job.state, fulllock_harness::service::JobState::Pending);
    assert!(job.interrupted);
    assert_eq!(job.attempts, 0);
    assert_eq!(job.completions, 0);
}
