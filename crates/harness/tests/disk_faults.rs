//! Disk-fault injection tests of the persistence stack: `persist.write`,
//! `persist.sync`, and `queue.seal` failpoints driven through
//! [`fulllock_harness::persist::save_sealed`] and the sharded queue.
//!
//! The invariant under every injected fault: **no acked-but-unsealed
//! state**. A failed save must surface as an error (and quarantine the
//! shard), a torn save must be caught by the checksum at the next load
//! with the previous generation taking over — never a silently half
//! written file behind a success return.
//!
//! These tests require the `failpoints` feature:
//!
//! ```text
//! cargo test -p fulllock-harness --features failpoints --test disk_faults
//! ```

#![cfg(all(unix, feature = "failpoints"))]

use std::path::PathBuf;
use std::sync::{Mutex, MutexGuard, PoisonError};
use std::time::Duration;

use fulllock_harness::persist::{load_sealed, save_sealed};
use fulllock_harness::plan::JobSpec;
use fulllock_harness::service::ShardedQueue;
use fulllock_harness::HarnessError;
use fulllock_sat::faults::{self, site, Failpoint, FaultAction, FaultPlan};

/// Serializes tests that install a global fault plan.
fn chaos_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(PoisonError::into_inner)
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fulllock-diskfault-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

fn spec(id: &str) -> JobSpec {
    JobSpec::new(id, "/bin/true")
}

#[test]
fn persist_write_enospc_fails_the_save_and_keeps_the_previous_state() {
    let _guard = chaos_lock();
    let dir = scratch("enospc");
    let path = dir.join("state.json");
    save_sealed(&path, "{\"gen\":1}").expect("clean save");

    faults::install(
        FaultPlan::new()
            .with(Failpoint::new(site::PERSIST_WRITE, None, FaultAction::Enospc).times(1)),
    );
    let err = save_sealed(&path, "{\"gen\":2}").expect_err("injected ENOSPC");
    assert!(err.to_string().contains("ENOSPC"), "{err}");

    // The failure left the previous state fully intact and loadable.
    let loaded = load_sealed(&path).expect("previous state loads");
    assert_eq!(loaded.payload, "{\"gen\":1}");
    assert!(!loaded.from_previous);

    // The budget is spent: the next save goes through.
    save_sealed(&path, "{\"gen\":3}").expect("save after fault");
    assert_eq!(load_sealed(&path).expect("load").payload, "{\"gen\":3}");
    faults::clear();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn persist_write_torn_lies_but_the_next_load_falls_back() {
    let _guard = chaos_lock();
    let dir = scratch("torn");
    let path = dir.join("state.json");
    save_sealed(&path, "{\"gen\":1}").expect("first save");
    save_sealed(&path, "{\"gen\":2}").expect("second save");

    faults::install(
        FaultPlan::new()
            .with(Failpoint::new(site::PERSIST_WRITE, None, FaultAction::Torn).times(1)),
    );
    // The torn write *reports success* — that is the attack.
    save_sealed(&path, "{\"gen\":3}").expect("torn save lies");
    faults::clear();

    // The checksum catches the tear; the previous generation takes over
    // and the torn primary is quarantined as evidence.
    let loaded = load_sealed(&path).expect("fallback load");
    assert_eq!(loaded.payload, "{\"gen\":2}");
    assert!(loaded.from_previous);
    assert!(loaded.quarantined.is_some(), "{loaded:?}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn persist_sync_eio_fails_the_save() {
    let _guard = chaos_lock();
    let dir = scratch("sync-eio");
    let path = dir.join("state.json");
    save_sealed(&path, "{\"gen\":1}").expect("clean save");

    faults::install(
        FaultPlan::new().with(Failpoint::new(site::PERSIST_SYNC, None, FaultAction::Eio).times(1)),
    );
    let err = save_sealed(&path, "{\"gen\":2}").expect_err("injected EIO at sync");
    assert!(err.to_string().contains("EIO"), "{err}");
    faults::clear();

    assert_eq!(load_sealed(&path).expect("load").payload, "{\"gen\":1}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn queue_seal_enospc_quarantines_the_shard_and_never_acks_unsealed_state() {
    let _guard = chaos_lock();
    let dir = scratch("seal-enospc");
    let mut queue = ShardedQueue::open(&dir, 1).expect("open");
    queue.submit("t", spec("first")).expect("clean submit");

    faults::install(FaultPlan::new().with(Failpoint::new(
        site::QUEUE_SEAL,
        None,
        FaultAction::Enospc,
    )));
    let err = queue.submit("t", spec("second")).expect_err("failed seal");
    assert!(matches!(err, HarnessError::Io { .. }), "{err}");
    assert!(queue.is_quarantined("second"), "shard must be quarantined");
    // The rolled-back job is gone from memory too — the error was the ack.
    assert!(queue.job("second").is_none());

    // On disk: only the successfully sealed submission exists.
    let reopened = ShardedQueue::open(&dir, 1).expect("reopen");
    assert_eq!(reopened.jobs().len(), 1);
    assert_eq!(reopened.jobs()[0].id, "first");

    // Once the fault lifts, the retry recovers the shard and submissions
    // flow again.
    faults::install(FaultPlan::new());
    assert_eq!(queue.retry_quarantined(), 1);
    assert!(!queue.is_quarantined("second"));
    queue
        .submit("t", spec("second"))
        .expect("submit after recovery");
    faults::clear();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn queue_seal_torn_is_caught_at_the_next_open() {
    let _guard = chaos_lock();
    let dir = scratch("seal-torn");
    let mut queue = ShardedQueue::open(&dir, 1).expect("open");
    queue.submit("t", spec("kept")).expect("clean submit");

    faults::install(
        FaultPlan::new().with(Failpoint::new(site::QUEUE_SEAL, None, FaultAction::Torn).times(1)),
    );
    // The lying success: the caller cannot tell anything went wrong.
    queue.submit("t", spec("lost")).expect("torn seal lies");
    assert!(!queue.is_quarantined("lost"), "a lie leaves no trace yet");
    faults::clear();

    // The next open notices the tear and falls back to the previous
    // generation — the torn submission is the one that vanishes, the
    // earlier sealed state survives.
    let reopened = ShardedQueue::open(&dir, 1).expect("fallback open");
    assert_eq!(reopened.jobs().len(), 1);
    assert_eq!(reopened.jobs()[0].id, "kept");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn server_refuses_submissions_to_a_quarantined_shard_then_recovers() {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    use fulllock_harness::service::{serve, Client, Endpoint, ServiceConfig};

    let _guard = chaos_lock();
    let dir = scratch("server-quarantine");
    let endpoint = Endpoint::Unix(dir.join("serve.sock"));
    let mut config = ServiceConfig::new(endpoint.clone(), dir.join("state"));
    config.poll_interval = Duration::from_millis(2);
    config.shards = 1;
    config.workers = 1;
    let shutdown = Arc::new(AtomicBool::new(false));
    let server = {
        let shutdown = Arc::clone(&shutdown);
        std::thread::spawn(move || serve(config, shutdown).expect("serve"))
    };
    let client = Client::new(endpoint);
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while !client.is_up() {
        assert!(std::time::Instant::now() < deadline, "server never came up");
        std::thread::sleep(Duration::from_millis(10));
    }

    faults::install(FaultPlan::new().with(Failpoint::new(
        site::QUEUE_SEAL,
        None,
        FaultAction::Enospc,
    )));
    // The submission that hits the failing seal is refused with a typed
    // persistence error — the ack is withheld, nothing unsealed is owed.
    let refused = client.submit("t", spec("blocked")).expect("send");
    assert_eq!(refused.error_code(), Some("persist_failed"), "{refused:?}");
    // The shard is now known-bad: the refusal is immediate and typed.
    let fast = client.submit("t", spec("blocked-too")).expect("send");
    assert_eq!(fast.error_code(), Some("shard_quarantined"), "{fast:?}");

    // Lift the fault (empty installed plan still shadows any env plan):
    // the watchdog re-seals the shard and submissions flow again.
    faults::install(FaultPlan::new());
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        let reply = client.submit("t", spec("unblocked")).expect("send");
        match reply.error_code() {
            None => break,
            Some("shard_quarantined") if std::time::Instant::now() < deadline => {
                std::thread::sleep(Duration::from_millis(50));
            }
            Some(code) => panic!("unexpected refusal {code}"),
        }
    }
    let done = client
        .wait("unblocked", Duration::from_secs(20))
        .expect("wait");
    assert_eq!(
        done.job_state().map(|s| s.as_str()),
        Some("done"),
        "{done:?}"
    );

    shutdown.store(true, Ordering::SeqCst);
    let summary = server.join().expect("server thread");
    assert_eq!(summary.completed, 1);
    faults::clear();
    let _ = std::fs::remove_dir_all(&dir);
}
