//! Property tests of the sweep's on-disk coordination state: lease
//! files and result-segment records must round-trip exactly, and any
//! single-byte mutation must read as corrupt/invalid — never a panic,
//! never silently-wrong data. (Mirrors `corruption.rs` for the
//! campaign manifest.)

use std::path::PathBuf;

use fulllock_harness::json::seal;
use fulllock_harness::sweep::lease::{read_lease, Lease, LeaseState};
use fulllock_harness::sweep::segment::{read_segment, SampleRecord, SegmentWriter};
use proptest::prelude::*;

fn scratch_file(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("fulllock-sweep-props-{tag}-{}", std::process::id()))
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "fulllock-sweep-props-dir-{tag}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// Flips one byte of `path` to a different printable-ASCII value
/// (valid UTF-8 keeps the mutation in the token/checksum space).
fn flip_byte(path: &std::path::Path, pos: usize, replacement: u8) {
    let mut bytes = std::fs::read(path).expect("read file");
    let at = pos % bytes.len();
    let fresh = 0x20 + (replacement % 0x5f);
    bytes[at] = if fresh == bytes[at] { b'#' } else { fresh };
    std::fs::write(path, &bytes).expect("write mutated file");
}

const VERDICTS: [&str; 6] = ["sat", "unsat", "unknown", "recovered", "timeout", "error"];

fn arb_lease() -> impl Strategy<Value = Lease> {
    (
        (0usize..100_000, 0usize..64, any::<u64>(), 0u64..1000),
        (0u64..u64::MAX / 2, 1u64..100_000),
    )
        .prop_map(
            |((unit_index, worker, nonce, generation), (acquired, ttl))| Lease {
                unit: format!("unit-{unit_index:05}"),
                worker: format!("w{worker}"),
                nonce,
                generation,
                acquired_millis: acquired,
                expires_millis: acquired.saturating_add(ttl),
            },
        )
}

fn arb_record() -> impl Strategy<Value = SampleRecord> {
    (
        (0usize..100_000, 0usize..64, any::<bool>(), any::<bool>()),
        (
            0usize..VERDICTS.len(),
            any::<u64>(),
            0u64..1_000_000,
            0u64..10_000_000,
        ),
        (0u64..100_000, 0u64..1_000_000_000),
    )
        .prop_map(
            |(
                (unit_index, worker, stolen, speculative),
                (verdict, conflicts, vars, clauses),
                (ratio_milli, wall_micros),
            )| SampleRecord {
                unit: format!("unit-{unit_index:05}"),
                worker: format!("w{worker}"),
                stolen,
                speculative,
                verdict: VERDICTS[verdict].to_string(),
                conflicts,
                vars,
                clauses,
                clause_var_ratio: ratio_milli as f64 / 1000.0,
                wall_secs: wall_micros as f64 / 1_000_000.0,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Lease JSON round-trips exactly through its own parser.
    #[test]
    fn lease_round_trips(lease in arb_lease()) {
        let back = Lease::from_json(&lease.to_json()).expect("round trip");
        prop_assert_eq!(back, lease);
    }

    /// A sealed lease file with any single byte flipped reads as
    /// `Corrupt` — stealable, never trusted, never a panic. (Lease
    /// files are always sealed, so the legacy unsealed pass-through
    /// must also land in `Corrupt`.)
    #[test]
    fn mutated_lease_reads_as_corrupt(
        lease in arb_lease(),
        pos in any::<usize>(),
        replacement in any::<u8>(),
        tag in 0u32..1_000_000,
    ) {
        let path = scratch_file(&format!("lease-{tag}.lease"));
        std::fs::write(&path, format!("{}\n", seal(&lease.to_json()))).expect("write lease");
        // Intact: reads back as held (expiry far in the future per
        // arb_lease at now=0).
        prop_assert_eq!(read_lease(&path, 0), LeaseState::Held(lease.clone()));
        flip_byte(&path, pos, replacement);
        prop_assert_eq!(read_lease(&path, 0), LeaseState::Corrupt);
        std::fs::remove_file(&path).ok();
    }

    /// Sample records round-trip exactly (including the float fields —
    /// the JSON writer must not lose precision the reader needs).
    #[test]
    fn sample_record_round_trips(record in arb_record()) {
        let back = SampleRecord::from_json(&record.to_json()).expect("round trip");
        prop_assert_eq!(back, record);
    }

    /// A segment with one byte flipped anywhere never yields a wrong
    /// record: every surviving record equals one of the originals, at
    /// most two are lost (the mutated line, plus a joined neighbor if
    /// the newline itself was hit), and the reader never panics.
    #[test]
    fn mutated_segment_drops_only_the_hit_line(
        records in proptest::collection::vec(arb_record(), 1..6),
        pos in any::<usize>(),
        replacement in any::<u8>(),
        tag in 0u32..1_000_000,
    ) {
        let dir = scratch_dir(&format!("seg-{tag}"));
        let mut writer = SegmentWriter::open(&dir, "w0", 0).expect("open segment");
        for record in &records {
            writer.append(record).expect("append");
        }
        let path = writer.path().to_path_buf();
        drop(writer);
        let intact = read_segment(&path).expect("read intact");
        prop_assert_eq!(&intact.records, &records);
        prop_assert_eq!(intact.invalid_lines, 0);

        flip_byte(&path, pos, replacement);
        let mutated = read_segment(&path).expect("read mutated");
        for got in &mutated.records {
            prop_assert!(
                records.contains(got),
                "mutation fabricated a record: {:?}",
                got
            );
        }
        prop_assert!(
            mutated.records.len() + 2 >= records.len(),
            "lost {} records to one byte flip",
            records.len() - mutated.records.len()
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}
