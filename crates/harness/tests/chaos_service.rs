//! Chaos tests of the serve worker pool via the `service.worker`
//! failpoint site: an injected worker panic must be contained (the
//! attempt fails, the worker thread survives, the retry succeeds), and
//! a persistent panic must degrade to a cleanly failed job — never a
//! dead worker or a hung server.
//!
//! These tests require the `failpoints` feature:
//!
//! ```text
//! cargo test -p fulllock-harness --features failpoints --test chaos_service
//! ```
//!
//! The fault-plan registry is process-global, so every test serializes
//! on [`chaos_lock`] and clears the plan before releasing it.

#![cfg(all(unix, feature = "failpoints"))]

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::Duration;

use fulllock_harness::json::Json;
use fulllock_harness::plan::JobSpec;
use fulllock_harness::service::{serve, Client, Endpoint, ServeSummary, ServiceConfig};
use fulllock_sat::faults::{self, site, Failpoint, FaultAction, FaultPlan};

/// Serializes tests that install a global fault plan.
fn chaos_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Silences the unwind traces of injected worker panics, which would
/// make a passing chaos run look alarming.
fn quiet_injected_panics() {
    use std::sync::Once;
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let default = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<&str>()
                .is_some_and(|m| m.contains("service.worker failpoint"));
            if !injected {
                default(info);
            }
        }));
    });
}

struct TestServer {
    dir: PathBuf,
    endpoint: Endpoint,
    shutdown: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<ServeSummary>>,
}

impl TestServer {
    fn start(tag: &str, configure: impl FnOnce(&mut ServiceConfig)) -> TestServer {
        let dir = std::env::temp_dir().join(format!(
            "fulllock-chaos-service-{tag}-{}",
            std::process::id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).expect("temp dir");
        let endpoint = Endpoint::Unix(dir.join("serve.sock"));
        let mut config = ServiceConfig::new(endpoint.clone(), dir.join("state"));
        config.poll_interval = Duration::from_millis(2);
        config.retry.base_delay = Duration::from_millis(5);
        configure(&mut config);
        let shutdown = Arc::new(AtomicBool::new(false));
        let handle = {
            let shutdown = Arc::clone(&shutdown);
            std::thread::spawn(move || serve(config, shutdown).expect("serve"))
        };
        let client = Client::new(endpoint.clone());
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while !client.is_up() {
            assert!(std::time::Instant::now() < deadline, "server never came up");
            std::thread::sleep(Duration::from_millis(10));
        }
        TestServer {
            dir,
            endpoint,
            shutdown,
            handle: Some(handle),
        }
    }

    fn client(&self) -> Client {
        Client::new(self.endpoint.clone())
    }

    fn stop(&mut self) -> ServeSummary {
        self.shutdown.store(true, Ordering::SeqCst);
        self.handle
            .take()
            .expect("server still running")
            .join()
            .expect("server thread")
    }
}

impl Drop for TestServer {
    fn drop(&mut self) {
        if self.handle.is_some() {
            self.stop();
        }
        std::fs::remove_dir_all(&self.dir).ok();
    }
}

fn job_field(reply: &fulllock_harness::service::ServiceReply, field: &str) -> Option<u64> {
    let fulllock_harness::service::ServiceReply::Ok(json) = reply else {
        panic!("reply failed: {reply:?}")
    };
    json.get("job")
        .and_then(|j| j.get(field))
        .and_then(Json::as_u64)
}

/// One injected panic: the attempt is consumed, the worker thread
/// survives, and the retry completes the job.
#[test]
fn one_worker_panic_costs_one_attempt_then_the_retry_succeeds() {
    let _guard = chaos_lock();
    quiet_injected_panics();
    faults::install(
        FaultPlan::new()
            .with(Failpoint::new(site::SERVICE_WORKER, None, FaultAction::Panic).times(1)),
    );

    // One worker: the same (surviving) thread must run the retry.
    let mut server = TestServer::start("one-panic", |config| {
        config.workers = 1;
    });
    let client = server.client();
    client
        .submit("t", JobSpec::new("survivor", "/bin/true"))
        .expect("submit");
    let done = client
        .wait("survivor", Duration::from_secs(20))
        .expect("wait");
    assert_eq!(
        done.job_state().map(|s| s.as_str()),
        Some("done"),
        "{done:?}"
    );
    assert_eq!(job_field(&done, "attempts"), Some(2), "{done:?}");
    assert_eq!(job_field(&done, "completions"), Some(1), "{done:?}");

    // The pool is still alive: a second job sails through.
    client
        .submit("t", JobSpec::new("after", "/bin/true"))
        .expect("submit");
    let after = client.wait("after", Duration::from_secs(20)).expect("wait");
    assert_eq!(
        after.job_state().map(|s| s.as_str()),
        Some("done"),
        "{after:?}"
    );

    let summary = server.stop();
    assert_eq!(summary.completed, 2);
    faults::clear();
}

/// A panic on every launch: the job exhausts its attempts and fails
/// with the panic recorded, the server drains cleanly, and once the
/// plan is cleared the same pool completes new work.
#[test]
fn persistent_worker_panics_fail_the_job_cleanly() {
    let _guard = chaos_lock();
    quiet_injected_panics();
    faults::install(FaultPlan::new().with(Failpoint::new(
        site::SERVICE_WORKER,
        None,
        FaultAction::Panic,
    )));

    let mut server = TestServer::start("all-panic", |config| {
        config.workers = 2;
        config.retry.max_attempts = 2;
    });
    let client = server.client();
    client
        .submit("t", JobSpec::new("doomed", "/bin/true"))
        .expect("submit");
    let done = client
        .wait("doomed", Duration::from_secs(20))
        .expect("wait");
    assert_eq!(
        done.job_state().map(|s| s.as_str()),
        Some("failed"),
        "{done:?}"
    );
    assert_eq!(job_field(&done, "attempts"), Some(2), "{done:?}");
    let fulllock_harness::service::ServiceReply::Ok(json) = &done else {
        panic!("{done:?}")
    };
    assert!(
        json.get("job")
            .and_then(|j| j.get("last_error"))
            .and_then(Json::as_str)
            .is_some_and(|e| e.contains("worker panic")),
        "{done:?}"
    );

    // Swap in an *empty* installed plan (not `clear()`: an empty plan
    // still shadows whatever FULLLOCK_FAILPOINTS the chaos matrix set,
    // so this healthy run stays healthy under any env row): the same
    // workers (never crashed, only their attempts were) complete fresh
    // work.
    faults::install(FaultPlan::new());
    client
        .submit("t", JobSpec::new("healthy", "/bin/true"))
        .expect("submit");
    let healthy = client
        .wait("healthy", Duration::from_secs(20))
        .expect("wait");
    assert_eq!(
        healthy.job_state().map(|s| s.as_str()),
        Some("done"),
        "{healthy:?}"
    );

    let summary = server.stop();
    assert_eq!(summary.failed, 1);
    assert_eq!(summary.completed, 1);
    faults::clear();
}
