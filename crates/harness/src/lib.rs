//! Supervised experiment campaign runner.
//!
//! The paper's evaluation is a multi-hour sweep over thirteen experiment
//! binaries and long oracle-guided attacks — exactly the kind of batch
//! where one crashed or hung child used to abort the whole run and
//! discard every finished row. This crate lifts the fault tolerance that
//! `fulllock-attacks` gives a *single* attack (checkpoint/resume,
//! panic-isolated workers) one level up, to the whole campaign:
//!
//! * a [`plan::CampaignPlan`] declares the jobs — arbitrary commands, or
//!   the built-in paper sweep ([`plan::CampaignPlan::builtin_paper`]);
//! * the [`supervisor`] runs each job as an **isolated child process**
//!   with a per-job wall-clock timeout (SIGTERM, then SIGKILL after a
//!   grace period), bounded parallelism, and bounded retries with
//!   exponential backoff for transient failures;
//! * every state transition is recorded in a versioned, atomically
//!   written [`manifest::CampaignManifest`] (`campaign.json`), so a
//!   killed supervisor resumes with `--resume` and re-runs only the jobs
//!   that did not already succeed;
//! * per-job stdout/stderr are captured to files, and the manifest
//!   aggregates exit status, attempts, duration, and peak RSS.
//!
//! A failed job is **recorded, not fatal**: the campaign degrades
//! gracefully and reports a partial-success outcome.
//!
//! The [`service`] module lifts the same machinery into a long-running
//! daemon (`fulllock serve`): jobs arrive over a socket instead of a
//! plan file, land in a crash-safe sharded queue, and are billed to
//! per-tenant quotas.
//!
//! # Example
//!
//! ```no_run
//! use fulllock_harness::plan::{CampaignPlan, JobSpec};
//! use fulllock_harness::supervisor::{run_campaign, SupervisorConfig};
//!
//! let plan = CampaignPlan::new("demo")
//!     .job(JobSpec::new("hello", "/bin/echo").arg("hi"))
//!     .job(JobSpec::new("slow", "/bin/sleep").arg("60"));
//! let mut config = SupervisorConfig::default();
//! config.default_timeout = std::time::Duration::from_secs(2);
//! let outcome = run_campaign(&plan, &config).unwrap();
//! println!("{}: {}/{} succeeded", outcome.status_word(),
//!          outcome.succeeded, outcome.total);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod error;
pub mod json;
pub mod manifest;
pub mod persist;
pub mod plan;
pub mod retry;
pub mod service;
pub mod supervisor;
pub mod sweep;

pub use error::HarnessError;
pub use manifest::{CampaignManifest, JobRecord, JobStatus, MANIFEST_VERSION};
pub use plan::{
    ambient_fingerprint, current_ambient_fingerprint, CampaignPlan, JobSpec, PAPER_BINS,
    PLAN_VERSION,
};
pub use retry::{Clock, RetryPolicy, SystemClock};
pub use supervisor::{run_campaign, CampaignOutcome, SupervisorConfig};
pub use sweep::{run_sweep, SweepConfig, SweepGrid, SweepOutcome, SweepPlan};

/// Failpoint site evaluated by the `campaign_chaos_child` helper binary:
/// arm it through `FULLLOCK_FAILPOINTS` in a job's environment to get a
/// child that panics, hangs, or exits non-zero on demand (chaos tests).
pub const CHAOS_CHILD_SITE: &str = "campaign.child.run";

/// Crate-wide result alias.
pub type Result<T, E = HarnessError> = std::result::Result<T, E>;
