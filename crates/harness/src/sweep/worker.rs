//! The sweep worker: claim → execute → append → settle, then steal and
//! speculate.
//!
//! A worker is one OS process (isolation: a SIGKILL, OOM, or panic takes
//! down only its own claims). Its loop:
//!
//! 1. **Claim** any free unit ([`LeaseDir::try_claim`]) and execute it,
//!    renewing the lease from a heartbeat thread while the executor
//!    runs.
//! 2. **Steal** expired or corrupt leases from dead workers — the units
//!    of a SIGKILLed worker migrate here without any coordinator help.
//! 3. **Speculate** on stragglers: when nothing is claimable but
//!    unsettled units remain, re-execute (without the lease) any unit
//!    whose lease age exceeds `max(min_age, factor × p95)` of this
//!    worker's own observed unit durations — first result wins.
//!
//! Every result is appended durably to this worker's segment *before*
//! the settle marker is taken, and the marker itself is a
//! [`std::fs::hard_link`] (first-wins, like a fresh claim). That order
//! is what makes the sweep exactly-once: a marker can exist without a
//! valid record only if the record write *lied* (torn), and the
//! coordinator's fold detects exactly that case and re-runs the unit.
//!
//! The worker exits 0 once every unit of the plan is settled.

use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use fulllock_sat::faults::{self, FaultAction};

use crate::json::seal;
use crate::sweep::grid::{SweepPlan, WorkUnit};
use crate::sweep::lease::{now_millis, read_lease, Lease, LeaseDir, LeaseState};
use crate::sweep::segment::{SampleRecord, SegmentWriter};
use crate::{HarnessError, Result};

/// The measurements an executor reports for one unit (the worker adds
/// identity, wall time, and the stolen/speculative provenance).
#[derive(Debug, Clone, PartialEq)]
pub struct UnitSample {
    /// Verdict word (`sat`, `unsat`, `unknown`, `recovered`, `timeout`,
    /// `error`, ...).
    pub verdict: String,
    /// Solver conflicts spent.
    pub conflicts: u64,
    /// Instance variables.
    pub vars: u64,
    /// Instance clauses.
    pub clauses: u64,
    /// Instance clause/variable ratio.
    pub clause_var_ratio: f64,
}

/// Provenance of one execution, passed to the executor (the synthetic
/// bench executor uses it to model first-owner stragglers).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecContext<'a> {
    /// Executing worker's display name.
    pub worker: &'a str,
    /// Whether the unit runs under a stolen lease.
    pub stolen: bool,
    /// Whether this is a speculative re-execution.
    pub speculative: bool,
}

/// Executes one work unit into a [`UnitSample`]. Implementations live
/// where their dependencies do: the synthetic random-3-SAT executor
/// ([`SatUnitExecutor`]) here in the harness, the CLN hardness-atlas
/// executor in the `full-lock` crate.
pub trait UnitExecutor {
    /// Runs `unit`; an `Err` is recorded as a settled `error` verdict
    /// (the sweep terminates either way — exactly-once includes failed
    /// units).
    fn execute(
        &self,
        unit: &WorkUnit,
        ctx: &ExecContext<'_>,
    ) -> std::result::Result<UnitSample, String>;
}

/// Synthetic executor: generates a random 3-SAT instance from the
/// unit's `vars` / `ratio` / `seed` params and solves it under a
/// conflict cap. Extra params make it a controllable robustness
/// workload:
///
/// * `sleep_ms` — simulated per-unit latency (the scaling bench's
///   latency-bound reference grid);
/// * `straggle_unit` + `straggle_ms` — the unit with that index sleeps
///   `straggle_ms` on its *first owner* (not on steals or speculation),
///   modelling a straggling machine that speculation must neutralize.
pub struct SatUnitExecutor {
    /// Base seed mixed into per-unit instance seeds.
    pub base_seed: u64,
    /// Conflict cap per instance.
    pub max_conflicts: u64,
}

impl SatUnitExecutor {
    /// Executor for a plan (seed from the plan, default conflict cap).
    pub fn from_plan(plan: &SweepPlan) -> SatUnitExecutor {
        SatUnitExecutor {
            base_seed: plan.seed,
            max_conflicts: 200_000,
        }
    }
}

impl UnitExecutor for SatUnitExecutor {
    fn execute(
        &self,
        unit: &WorkUnit,
        ctx: &ExecContext<'_>,
    ) -> std::result::Result<UnitSample, String> {
        use fulllock_sat::cdcl::{SolveLimits, SolveResult, Solver};
        use fulllock_sat::random_sat::{generate, RandomSatConfig};

        let param_u64 = |key: &str, default: u64| {
            unit.param(key)
                .map(|v| {
                    v.parse::<u64>()
                        .map_err(|_| format!("param {key}={v:?} not an integer"))
                })
                .transpose()
                .map(|v| v.unwrap_or(default))
        };
        if let Some(ms) = unit.param("sleep_ms") {
            let ms: u64 = ms
                .parse()
                .map_err(|_| format!("sleep_ms={ms:?} not an integer"))?;
            std::thread::sleep(Duration::from_millis(ms));
        }
        let straggle_unit = param_u64("straggle_unit", u64::MAX)?;
        if straggle_unit == unit.index as u64 && !ctx.stolen && !ctx.speculative {
            let ms = param_u64("straggle_ms", 0)?;
            std::thread::sleep(Duration::from_millis(ms));
        }
        let vars = usize::try_from(param_u64("vars", 50)?).map_err(|_| "vars too large")?;
        let ratio: f64 = unit
            .param("ratio")
            .unwrap_or("4.267")
            .parse()
            .map_err(|_| "ratio not a number")?;
        let seed = self.base_seed ^ param_u64("seed", unit.index as u64)?;
        let cnf = generate(RandomSatConfig::from_ratio(vars, ratio, 3, seed))
            .map_err(|e| format!("generate: {e}"))?;
        let clause_var_ratio = cnf.clause_to_variable_ratio();
        let clauses = cnf.num_clauses() as u64;
        let mut solver = Solver::from_cnf(&cnf);
        let limits = SolveLimits::builder()
            .max_conflicts(self.max_conflicts)
            .build();
        let verdict = match solver.solve_limited(&[], limits) {
            SolveResult::Sat => "sat",
            SolveResult::Unsat => "unsat",
            SolveResult::Unknown => "unknown",
        };
        Ok(UnitSample {
            verdict: verdict.to_string(),
            conflicts: solver.stats().conflicts,
            vars: vars as u64,
            clauses,
            clause_var_ratio,
        })
    }
}

/// Where a sweep directory keeps its settle markers.
pub fn settled_dir(sweep_dir: &Path) -> PathBuf {
    sweep_dir.join("settled")
}

/// Whether a unit has a settle marker.
pub fn is_settled(sweep_dir: &Path, unit: &str) -> bool {
    settled_dir(sweep_dir).join(format!("{unit}.done")).exists()
}

/// Takes a unit's settle marker, first-wins: the marker is created with
/// `hard_link`, which fails atomically when another worker settled
/// first. Returns whether *this* call won.
pub fn try_settle(sweep_dir: &Path, unit: &str, worker: &str) -> io::Result<bool> {
    let dir = settled_dir(sweep_dir);
    std::fs::create_dir_all(&dir)?;
    let payload = format!("{{\"unit\":{unit:?},\"worker\":{worker:?}}}");
    let tmp = dir.join(format!(".{unit}.{worker}.tmp"));
    std::fs::write(&tmp, format!("{}\n", seal(&payload)))?;
    let outcome = std::fs::hard_link(&tmp, dir.join(format!("{unit}.done")));
    let _ = std::fs::remove_file(&tmp);
    match outcome {
        Ok(()) => Ok(true),
        Err(e) if e.kind() == io::ErrorKind::AlreadyExists => Ok(false),
        Err(e) => Err(e),
    }
}

/// Removes a unit's settle marker (coordinator reconciliation: a marker
/// whose segment record was torn must not count).
pub fn remove_marker(sweep_dir: &Path, unit: &str) -> io::Result<()> {
    match std::fs::remove_file(settled_dir(sweep_dir).join(format!("{unit}.done"))) {
        Ok(()) => Ok(()),
        Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(()),
        Err(e) => Err(e),
    }
}

/// Counts settle markers (cheap progress probe for the coordinator).
pub fn count_settled(sweep_dir: &Path) -> usize {
    match std::fs::read_dir(settled_dir(sweep_dir)) {
        Ok(entries) => entries
            .flatten()
            .filter(|e| e.path().extension().is_some_and(|ext| ext == "done"))
            .count(),
        Err(_) => 0,
    }
}

/// Worker knobs. [`WorkerArgs`] carries the same values over a command
/// line between coordinator and worker process.
#[derive(Debug, Clone)]
pub struct WorkerConfig {
    /// The sweep directory (plan, leases, segments, settled markers).
    pub dir: PathBuf,
    /// Display name, unique across all workers ever spawned into this
    /// sweep (`w0`, `w1`, ... — respawns keep counting).
    pub worker: String,
    /// Failpoint context index for `sweep.lease` / `sweep.segment`.
    pub worker_index: usize,
    /// Lease time-to-live; heartbeats renew at a third of this.
    pub lease_ttl: Duration,
    /// Idle poll between passes when nothing was runnable.
    pub poll: Duration,
    /// Floor on the straggler age before speculation may re-execute.
    pub speculation_min_age: Duration,
    /// Straggler deadline factor: speculate when a live lease's age
    /// exceeds `factor × p95` of this worker's own unit durations.
    pub speculation_factor: f64,
}

/// What a worker did, as printed on exit.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WorkerSummary {
    /// Units executed (all kinds).
    pub executed: u64,
    /// Executions under a stolen lease.
    pub stolen: u64,
    /// Speculative re-executions.
    pub speculative: u64,
    /// Settle races won.
    pub settle_wins: u64,
    /// Settle races lost (another worker's result counted).
    pub settle_losses: u64,
}

/// Runs the worker loop until every unit of the plan is settled.
///
/// # Errors
///
/// Only infrastructure failures are errors (unreadable plan, segment IO
/// including injected `enospc`/`eio`); unit execution failures settle
/// with an `error` verdict and the loop continues.
pub fn run_worker(
    plan: &SweepPlan,
    config: &WorkerConfig,
    executor: &dyn UnitExecutor,
) -> Result<WorkerSummary> {
    let io_err = |path: &Path, what: &str, e: io::Error| HarnessError::Io {
        path: path.to_path_buf(),
        message: format!("{what}: {e}"),
    };
    let units = plan.grid.units();
    let leases = LeaseDir::new(&config.dir, config.worker.clone(), config.worker_index);
    leases
        .ensure()
        .map_err(|e| io_err(&config.dir, "create leases dir", e))?;
    let mut segment = SegmentWriter::open(&config.dir, &config.worker, config.worker_index)
        .map_err(|e| io_err(&config.dir, "open segment", e))?;
    let mut summary = WorkerSummary::default();
    let mut durations_ms: Vec<u64> = Vec::new();

    loop {
        let mut progressed = false;
        let mut unsettled = 0usize;

        // Pass 1: fresh claims.
        for unit in &units {
            if is_settled(&config.dir, &unit.id) {
                continue;
            }
            unsettled += 1;
            if let Some(lease) = leases
                .try_claim(&unit.id, config.lease_ttl)
                .map_err(|e| io_err(&config.dir, "claim lease", e))?
            {
                // The prior owner may have settled and released between
                // our settled-check and the claim; re-check under the
                // lease so a finished unit is not re-executed.
                if is_settled(&config.dir, &unit.id) {
                    leases.release(&lease);
                    continue;
                }
                execute_unit(
                    plan,
                    config,
                    executor,
                    &leases,
                    &mut segment,
                    &mut summary,
                    &mut durations_ms,
                    unit,
                    Some(lease),
                    false,
                    false,
                )?;
                progressed = true;
            }
        }
        if unsettled == 0 {
            break;
        }

        // Pass 2: steal expired/corrupt leases from dead workers.
        for unit in &units {
            if is_settled(&config.dir, &unit.id) {
                continue;
            }
            let state = read_lease(&leases.lease_path(&unit.id), now_millis());
            let prior_generation = match state {
                LeaseState::Expired(old) => old.generation,
                LeaseState::Corrupt => 0,
                _ => continue,
            };
            if let Some(lease) = leases
                .try_steal(&unit.id, prior_generation, config.lease_ttl)
                .map_err(|e| io_err(&config.dir, "steal lease", e))?
            {
                if is_settled(&config.dir, &unit.id) {
                    leases.release(&lease);
                    continue;
                }
                execute_unit(
                    plan,
                    config,
                    executor,
                    &leases,
                    &mut segment,
                    &mut summary,
                    &mut durations_ms,
                    unit,
                    Some(lease),
                    true,
                    false,
                )?;
                progressed = true;
            }
        }

        // Pass 3: speculate on stragglers — live leases older than the
        // percentile deadline. One per round, without taking the lease.
        if !progressed {
            let deadline_ms = speculation_deadline_ms(config, &durations_ms);
            for unit in &units {
                if is_settled(&config.dir, &unit.id) {
                    continue;
                }
                let LeaseState::Held(held) = read_lease(&leases.lease_path(&unit.id), now_millis())
                else {
                    continue;
                };
                if held.worker != config.worker && held.age_millis(now_millis()) > deadline_ms {
                    execute_unit(
                        plan,
                        config,
                        executor,
                        &leases,
                        &mut segment,
                        &mut summary,
                        &mut durations_ms,
                        unit,
                        None,
                        false,
                        true,
                    )?;
                    progressed = true;
                    break;
                }
            }
        }

        if !progressed {
            std::thread::sleep(config.poll);
        }
    }
    Ok(summary)
}

/// The lease age past which a live-leased unit counts as a straggler.
fn speculation_deadline_ms(config: &WorkerConfig, durations_ms: &[u64]) -> u64 {
    let min_age = config
        .lease_ttl
        .as_millis()
        .max(config.speculation_min_age.as_millis()) as u64;
    if durations_ms.is_empty() {
        return min_age;
    }
    let mut sorted = durations_ms.to_vec();
    sorted.sort_unstable();
    let idx = ((sorted.len() * 95).div_ceil(100)).saturating_sub(1);
    let p95 = sorted[idx.min(sorted.len() - 1)];
    min_age.max((config.speculation_factor * p95 as f64) as u64)
}

/// Executes one unit end to end: heartbeat, executor, durable segment
/// append, first-wins settlement, lease release.
#[allow(clippy::too_many_arguments)]
fn execute_unit(
    plan: &SweepPlan,
    config: &WorkerConfig,
    executor: &dyn UnitExecutor,
    leases: &LeaseDir,
    segment: &mut SegmentWriter,
    summary: &mut WorkerSummary,
    durations_ms: &mut Vec<u64>,
    unit: &WorkUnit,
    lease: Option<Lease>,
    stolen: bool,
    speculative: bool,
) -> Result<()> {
    let _ = plan;
    // The sweep.unit failpoint targets grid points by *unit* index:
    // delay makes this unit a straggler, panic kills the worker while it
    // holds the lease, trigger fails the execution spuriously.
    let injected_error = match faults::evaluate(faults::site::SWEEP_UNIT, unit.index) {
        Some(FaultAction::Panic) => panic!("sweep.unit failpoint: injected panic"),
        Some(delay @ FaultAction::DelayMs(_)) => {
            faults::apply_delay(delay);
            false
        }
        Some(FaultAction::Trigger) => true,
        _ => false,
    };

    // Heartbeat: renew the lease from a side thread at ttl/3 while the
    // executor runs, so live progress is never stolen.
    let stop = Arc::new(AtomicBool::new(false));
    let heartbeat = lease.as_ref().map(|lease| {
        let stop = Arc::clone(&stop);
        let leases = leases.clone();
        let mut lease = lease.clone();
        let ttl = config.lease_ttl;
        std::thread::spawn(move || {
            let interval = ttl / 3;
            loop {
                let slept = Instant::now();
                while slept.elapsed() < interval {
                    if stop.load(Ordering::Relaxed) {
                        return;
                    }
                    std::thread::sleep(Duration::from_millis(5).min(interval));
                }
                if stop.load(Ordering::Relaxed) {
                    return;
                }
                // A lost renewal means we were stolen; keep going — the
                // settle marker decides whose result counts.
                let _ = leases.renew(&mut lease, ttl);
            }
        })
    });

    let started = Instant::now();
    let ctx = ExecContext {
        worker: &config.worker,
        stolen,
        speculative,
    };
    let outcome = if injected_error {
        Err("sweep.unit failpoint: injected execution failure".to_string())
    } else {
        executor.execute(unit, &ctx)
    };
    let wall = started.elapsed();
    stop.store(true, Ordering::Relaxed);
    if let Some(handle) = heartbeat {
        let _ = handle.join();
    }

    let sample = match outcome {
        Ok(sample) => sample,
        Err(message) => {
            eprintln!(
                "worker {}: unit {} failed: {message}",
                config.worker, unit.id
            );
            UnitSample {
                verdict: "error".to_string(),
                conflicts: 0,
                vars: 0,
                clauses: 0,
                clause_var_ratio: 0.0,
            }
        }
    };
    let record = SampleRecord {
        unit: unit.id.clone(),
        worker: config.worker.clone(),
        stolen,
        speculative,
        verdict: sample.verdict,
        conflicts: sample.conflicts,
        vars: sample.vars,
        clauses: sample.clauses,
        clause_var_ratio: sample.clause_var_ratio,
        wall_secs: wall.as_secs_f64(),
    };
    // Durable record first, then the marker: a marker must never exist
    // without its record having been (reportedly) written.
    segment.append(&record).map_err(|e| HarnessError::Io {
        path: segment.path().to_path_buf(),
        message: format!("append sample: {e}"),
    })?;
    let won = try_settle(&config.dir, &unit.id, &config.worker).map_err(|e| HarnessError::Io {
        path: config.dir.clone(),
        message: format!("settle {}: {e}", unit.id),
    })?;

    summary.executed += 1;
    summary.stolen += u64::from(stolen);
    summary.speculative += u64::from(speculative);
    if won {
        summary.settle_wins += 1;
    } else {
        summary.settle_losses += 1;
    }
    durations_ms.push(wall.as_millis().min(u128::from(u64::MAX)) as u64);
    if let Some(lease) = lease {
        leases.release(&lease);
    }
    Ok(())
}

/// The worker half of the coordinator↔worker command line: flags a
/// coordinator passes when spawning `<program> <prefix...> --dir ...`,
/// parsed back by worker `main`s.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkerArgs {
    /// The sweep directory.
    pub dir: PathBuf,
    /// Worker number (display name `w<N>` and failpoint context).
    pub worker_index: usize,
    /// Lease TTL in milliseconds.
    pub lease_ttl_millis: u64,
    /// Idle poll in milliseconds.
    pub poll_millis: u64,
    /// Speculation age floor in milliseconds.
    pub spec_min_age_millis: u64,
    /// Speculation p95 factor.
    pub spec_factor: f64,
}

impl WorkerArgs {
    /// Parses `--dir D --worker N [--lease-ttl-millis M] [--poll-millis M]
    /// [--spec-min-age-millis M] [--spec-factor F]`.
    pub fn parse(args: &[String]) -> std::result::Result<WorkerArgs, String> {
        let mut parsed = WorkerArgs {
            dir: PathBuf::new(),
            worker_index: 0,
            lease_ttl_millis: 2000,
            poll_millis: 50,
            spec_min_age_millis: 500,
            spec_factor: 4.0,
        };
        let mut have_dir = false;
        let mut it = args.iter();
        while let Some(flag) = it.next() {
            let mut value = || {
                it.next()
                    .map(String::as_str)
                    .ok_or_else(|| format!("flag {flag} needs a value"))
            };
            match flag.as_str() {
                "--dir" => {
                    parsed.dir = PathBuf::from(value()?);
                    have_dir = true;
                }
                "--worker" => {
                    parsed.worker_index = value()?.parse().map_err(|e| format!("--worker: {e}"))?;
                }
                "--lease-ttl-millis" => {
                    parsed.lease_ttl_millis = value()?
                        .parse()
                        .map_err(|e| format!("--lease-ttl-millis: {e}"))?;
                }
                "--poll-millis" => {
                    parsed.poll_millis = value()?
                        .parse()
                        .map_err(|e| format!("--poll-millis: {e}"))?;
                }
                "--spec-min-age-millis" => {
                    parsed.spec_min_age_millis = value()?
                        .parse()
                        .map_err(|e| format!("--spec-min-age-millis: {e}"))?;
                }
                "--spec-factor" => {
                    parsed.spec_factor = value()?
                        .parse()
                        .map_err(|e| format!("--spec-factor: {e}"))?;
                }
                other => return Err(format!("unknown worker flag {other:?}")),
            }
        }
        if !have_dir {
            return Err("missing required flag --dir".to_string());
        }
        Ok(parsed)
    }

    /// The flag list [`parse`](WorkerArgs::parse) reads back.
    pub fn to_args(&self) -> Vec<String> {
        vec![
            "--dir".to_string(),
            self.dir.display().to_string(),
            "--worker".to_string(),
            self.worker_index.to_string(),
            "--lease-ttl-millis".to_string(),
            self.lease_ttl_millis.to_string(),
            "--poll-millis".to_string(),
            self.poll_millis.to_string(),
            "--spec-min-age-millis".to_string(),
            self.spec_min_age_millis.to_string(),
            "--spec-factor".to_string(),
            self.spec_factor.to_string(),
        ]
    }

    /// The [`WorkerConfig`] these args describe.
    pub fn to_config(&self) -> WorkerConfig {
        WorkerConfig {
            dir: self.dir.clone(),
            worker: format!("w{}", self.worker_index),
            worker_index: self.worker_index,
            lease_ttl: Duration::from_millis(self.lease_ttl_millis),
            poll: Duration::from_millis(self.poll_millis),
            speculation_min_age: Duration::from_millis(self.spec_min_age_millis),
            speculation_factor: self.spec_factor,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::grid::SweepGrid;
    use crate::sweep::segment::fold_segments;

    fn scratch(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("fulllock-worker-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create scratch dir");
        dir
    }

    fn tiny_plan() -> SweepPlan {
        SweepPlan::new(
            SweepGrid::new("tiny")
                .axis("vars", ["20"])
                .axis("ratio", ["3.0"])
                .axis("seed", ["0", "1", "2", "3"]),
        )
    }

    fn config(dir: &Path, index: usize) -> WorkerConfig {
        WorkerConfig {
            dir: dir.to_path_buf(),
            worker: format!("w{index}"),
            worker_index: index,
            lease_ttl: Duration::from_millis(500),
            poll: Duration::from_millis(5),
            speculation_min_age: Duration::from_millis(100),
            speculation_factor: 4.0,
        }
    }

    #[test]
    fn single_worker_settles_every_unit_exactly_once() {
        let dir = scratch("solo");
        let plan = tiny_plan();
        let summary = run_worker(&plan, &config(&dir, 0), &SatUnitExecutor::from_plan(&plan))
            .expect("worker runs");
        assert_eq!(summary.executed, 4);
        assert_eq!(summary.settle_wins, 4);
        assert_eq!(summary.settle_losses, 0);
        let fold = fold_segments(&dir).expect("fold");
        assert_eq!(fold.samples.len(), 4);
        assert_eq!(fold.duplicates, 0);
        assert_eq!(count_settled(&dir), 4);
        for sample in fold.samples.values() {
            assert!(matches!(
                sample.verdict.as_str(),
                "sat" | "unsat" | "unknown"
            ));
            assert!(sample.vars == 20);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn settle_markers_are_first_wins() {
        let dir = scratch("settle");
        assert!(try_settle(&dir, "unit-00000", "a").expect("io"));
        assert!(!try_settle(&dir, "unit-00000", "b").expect("io"), "loser");
        assert!(is_settled(&dir, "unit-00000"));
        assert_eq!(count_settled(&dir), 1);
        remove_marker(&dir, "unit-00000").expect("remove");
        assert!(!is_settled(&dir, "unit-00000"));
        remove_marker(&dir, "unit-00000").expect("idempotent");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn worker_args_round_trip() {
        let args = WorkerArgs {
            dir: PathBuf::from("/tmp/sweepdir"),
            worker_index: 3,
            lease_ttl_millis: 1500,
            poll_millis: 25,
            spec_min_age_millis: 300,
            spec_factor: 2.5,
        };
        let back = WorkerArgs::parse(&args.to_args()).expect("round trip");
        assert_eq!(back, args);
        assert!(WorkerArgs::parse(&["--worker".to_string(), "1".to_string()]).is_err());
        assert!(WorkerArgs::parse(&["--bogus".to_string()]).is_err());
        let cfg = args.to_config();
        assert_eq!(cfg.worker, "w3");
        assert_eq!(cfg.lease_ttl, Duration::from_millis(1500));
    }

    #[test]
    fn two_threads_of_workers_share_a_grid_without_duplicates() {
        let dir = scratch("pair");
        let plan = tiny_plan();
        let d1 = dir.clone();
        let p1 = plan.clone();
        let t = std::thread::spawn(move || {
            run_worker(&p1, &config(&d1, 1), &SatUnitExecutor::from_plan(&p1))
                .expect("worker 1 runs")
        });
        let s0 = run_worker(&plan, &config(&dir, 0), &SatUnitExecutor::from_plan(&plan))
            .expect("worker 0 runs");
        let s1 = t.join().expect("thread joins");
        assert_eq!(
            s0.settle_wins + s1.settle_wins,
            4,
            "every unit settled once"
        );
        let fold = fold_segments(&dir).expect("fold");
        assert_eq!(fold.samples.len(), 4);
        std::fs::remove_dir_all(&dir).ok();
    }
}
