//! Lease files: file-based, partition-tolerant work claims.
//!
//! Each work unit has at most one lease file
//! (`<dir>/leases/<unit>.lease`) holding a sealed single-line JSON
//! record: owner, a claim nonce, a steal generation, and wall-clock
//! acquire/expiry stamps. The protocol needs no coordinator:
//!
//! * **Claim** — write the lease to a private temp file, then
//!   [`std::fs::hard_link`] it to the lease path. `hard_link` fails with
//!   `AlreadyExists` when another worker got there first, which makes
//!   the fresh claim genuinely atomic (a plain `rename` would clobber).
//! * **Renew** — the owner periodically rewrites its lease with a fresh
//!   expiry (tmp + rename), then reads it back; seeing a foreign nonce
//!   means the lease was stolen in the gap and ownership is lost.
//! * **Steal** — a live worker may take an *expired or corrupt* lease by
//!   renaming its own record over the file and reading it back; the
//!   read-back nonce decides the race when two workers steal at once.
//!
//! Two stealers (or a stealer racing a renewal) can transiently both
//! believe they own a unit — that is by design. Leases are the
//! *duplicate-suppression* layer; correctness (exactly-once settlement)
//! comes from the settle markers and the coordinator's fold
//! (see [`crate::sweep::worker`] and [`crate::sweep::coordinator`]).
//! A SIGKILLed worker renews nothing, its leases expire, and live
//! workers steal the units — no coordinator intervention required.
//!
//! Every lease write consults the
//! [`sweep.lease`](fulllock_sat::faults::site::SWEEP_LEASE) failpoint:
//! `enospc`/`eio` fail the write, `torn` lands a truncated lease (other
//! workers read it as corrupt, hence stealable), `delay:<ms>` widens the
//! protocol's race windows under test.

use std::io;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, SystemTime, UNIX_EPOCH};

use fulllock_sat::faults;

use crate::json::{seal, unseal, Json};
use crate::persist::consult_io_site;

/// Milliseconds since the Unix epoch — the clock the lease protocol
/// runs on (comparable across worker processes on one machine).
pub fn now_millis() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| u64::try_from(d.as_millis()).unwrap_or(u64::MAX))
        .unwrap_or(0)
}

/// One lease record: who holds a unit, until when.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Lease {
    /// The work unit this lease covers.
    pub unit: String,
    /// Owning worker's display name.
    pub worker: String,
    /// Random-enough claim identity; the read-back after a steal or
    /// renewal compares nonces to decide races.
    pub nonce: u64,
    /// How many times the unit's lease has been stolen (0 = fresh
    /// claim); diagnostics only.
    pub generation: u64,
    /// When this claim was taken (epoch millis).
    pub acquired_millis: u64,
    /// When the claim lapses unless renewed (epoch millis).
    pub expires_millis: u64,
}

impl Lease {
    /// Whether the lease has lapsed at `now` (epoch millis).
    pub fn is_expired(&self, now: u64) -> bool {
        now >= self.expires_millis
    }

    /// Age of the claim at `now`, in milliseconds (0 if the clock went
    /// backwards).
    pub fn age_millis(&self, now: u64) -> u64 {
        now.saturating_sub(self.acquired_millis)
    }

    /// Serializes to compact single-line JSON (the payload that gets
    /// sealed into the lease file).
    pub fn to_json(&self) -> String {
        Json::Object(vec![
            ("unit".to_string(), Json::Str(self.unit.clone())),
            ("worker".to_string(), Json::Str(self.worker.clone())),
            ("nonce".to_string(), Json::Int(self.nonce)),
            ("generation".to_string(), Json::Int(self.generation)),
            (
                "acquired_millis".to_string(),
                Json::Int(self.acquired_millis),
            ),
            ("expires_millis".to_string(), Json::Int(self.expires_millis)),
        ])
        .to_text()
    }

    /// Parses the JSON payload of a lease file.
    pub fn from_json(text: &str) -> Result<Lease, String> {
        let root = Json::parse(text)?;
        let str_field = |name: &str| {
            root.get(name)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("lease: missing string field {name:?}"))
        };
        let int_field = |name: &str| {
            root.get(name)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("lease: missing integer field {name:?}"))
        };
        Ok(Lease {
            unit: str_field("unit")?,
            worker: str_field("worker")?,
            nonce: int_field("nonce")?,
            generation: int_field("generation")?,
            acquired_millis: int_field("acquired_millis")?,
            expires_millis: int_field("expires_millis")?,
        })
    }
}

/// What a lease file says about a unit right now.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LeaseState {
    /// No lease file: the unit is claimable.
    Free,
    /// A live lease (not yet expired at read time).
    Held(Lease),
    /// A lease whose expiry has passed: stealable.
    Expired(Lease),
    /// The file exists but does not verify (torn write, corruption):
    /// treated as stealable — the writer may be dead, and if it is not,
    /// settlement still dedupes.
    Corrupt,
}

/// Reads and classifies a unit's lease file at `now` (epoch millis).
pub fn read_lease(path: &Path, now: u64) -> LeaseState {
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(_) => return LeaseState::Free,
    };
    // Lease files are always sealed; a legacy pass-through (`Ok(None)`)
    // here means a torn prefix, not an old format.
    let payload = match unseal(&text) {
        Ok(Some(payload)) => payload,
        _ => return LeaseState::Corrupt,
    };
    match Lease::from_json(payload) {
        Ok(lease) if lease.is_expired(now) => LeaseState::Expired(lease),
        Ok(lease) => LeaseState::Held(lease),
        Err(_) => LeaseState::Corrupt,
    }
}

/// Per-process counter mixed into nonces so two claims from one worker
/// never collide even within a millisecond.
static NONCE_COUNTER: AtomicU64 = AtomicU64::new(0);

/// A claim identity that is unique enough across workers on one
/// machine: FNV over pid, wall clock, worker name, and a process-local
/// counter.
fn fresh_nonce(worker: &str) -> u64 {
    let mut h = crate::plan::Fnv::new();
    h.bytes(&u64::from(std::process::id()).to_le_bytes());
    h.bytes(&now_millis().to_le_bytes());
    h.bytes(&NONCE_COUNTER.fetch_add(1, Ordering::Relaxed).to_le_bytes());
    h.str(worker);
    h.finish()
}

/// The lease directory of one sweep, bound to one worker identity.
#[derive(Debug, Clone)]
pub struct LeaseDir {
    dir: PathBuf,
    worker: String,
    worker_index: usize,
}

impl LeaseDir {
    /// Binds `<sweep_dir>/leases` to a worker identity (the index is the
    /// failpoint context for `sweep.lease`).
    pub fn new(sweep_dir: &Path, worker: impl Into<String>, worker_index: usize) -> LeaseDir {
        LeaseDir {
            dir: sweep_dir.join("leases"),
            worker: worker.into(),
            worker_index,
        }
    }

    /// Creates the directory (idempotent).
    pub fn ensure(&self) -> io::Result<()> {
        std::fs::create_dir_all(&self.dir)
    }

    /// Path of a unit's lease file.
    pub fn lease_path(&self, unit: &str) -> PathBuf {
        self.dir.join(format!("{unit}.lease"))
    }

    /// Writes a sealed lease to a private temp file, honoring the
    /// `sweep.lease` failpoint, and returns the temp path.
    fn write_tmp(&self, lease: &Lease) -> io::Result<PathBuf> {
        let torn = consult_io_site(faults::site::SWEEP_LEASE, self.worker_index)?;
        let tmp = self.dir.join(format!(
            ".{}.{}.{:016x}.tmp",
            lease.unit, self.worker, lease.nonce
        ));
        let sealed = format!("{}\n", seal(&lease.to_json()));
        let bytes = if torn {
            &sealed.as_bytes()[..sealed.len() / 2]
        } else {
            sealed.as_bytes()
        };
        let mut file = std::fs::File::create(&tmp)?;
        file.write_all(bytes)?;
        file.sync_data()?;
        Ok(tmp)
    }

    /// Attempts a *fresh* claim of `unit` for `ttl`. Returns the new
    /// lease on success, `None` when another worker already holds a
    /// lease file (live or not — fresh claims never clobber; stealing
    /// expired files is [`try_steal`](LeaseDir::try_steal)'s job).
    pub fn try_claim(&self, unit: &str, ttl: Duration) -> io::Result<Option<Lease>> {
        let now = now_millis();
        let lease = Lease {
            unit: unit.to_string(),
            worker: self.worker.clone(),
            nonce: fresh_nonce(&self.worker),
            generation: 0,
            acquired_millis: now,
            expires_millis: now + ttl.as_millis() as u64,
        };
        let tmp = self.write_tmp(&lease)?;
        let outcome = std::fs::hard_link(&tmp, self.lease_path(unit));
        let _ = std::fs::remove_file(&tmp);
        match outcome {
            Ok(()) => Ok(Some(lease)),
            Err(e) if e.kind() == io::ErrorKind::AlreadyExists => Ok(None),
            Err(e) => Err(e),
        }
    }

    /// Attempts to steal a lease previously read as
    /// [`Expired`](LeaseState::Expired) or [`Corrupt`](LeaseState::Corrupt):
    /// renames its own record over the file, then reads back — the nonce
    /// that survives wins the steal race. `prior_generation` is the
    /// generation of the expired lease (0 for a corrupt one).
    pub fn try_steal(
        &self,
        unit: &str,
        prior_generation: u64,
        ttl: Duration,
    ) -> io::Result<Option<Lease>> {
        let now = now_millis();
        let lease = Lease {
            unit: unit.to_string(),
            worker: self.worker.clone(),
            nonce: fresh_nonce(&self.worker),
            generation: prior_generation + 1,
            acquired_millis: now,
            expires_millis: now + ttl.as_millis() as u64,
        };
        let tmp = self.write_tmp(&lease)?;
        let path = self.lease_path(unit);
        std::fs::rename(&tmp, &path)?;
        // Read-back decides the race: a concurrent stealer's rename may
        // have landed after ours.
        match read_lease(&path, now) {
            LeaseState::Held(back) | LeaseState::Expired(back) if back.nonce == lease.nonce => {
                Ok(Some(lease))
            }
            _ => Ok(None),
        }
    }

    /// Renews an owned lease for another `ttl` from now. Returns `false`
    /// when ownership was lost (the lease was stolen or the file
    /// replaced): the caller keeps executing — settlement still dedupes
    /// — but should know a competitor exists.
    pub fn renew(&self, lease: &mut Lease, ttl: Duration) -> io::Result<bool> {
        let path = self.lease_path(&lease.unit);
        let now = now_millis();
        match read_lease(&path, now) {
            LeaseState::Held(cur) | LeaseState::Expired(cur) if cur.nonce == lease.nonce => {}
            _ => return Ok(false),
        }
        lease.expires_millis = now + ttl.as_millis() as u64;
        let tmp = self.write_tmp(lease)?;
        std::fs::rename(&tmp, &path)?;
        match read_lease(&path, now) {
            LeaseState::Held(back) | LeaseState::Expired(back) if back.nonce == lease.nonce => {
                Ok(true)
            }
            _ => Ok(false),
        }
    }

    /// Releases an owned lease (best-effort: only removes the file if it
    /// still carries our nonce).
    pub fn release(&self, lease: &Lease) {
        let path = self.lease_path(&lease.unit);
        match read_lease(&path, now_millis()) {
            LeaseState::Held(cur) | LeaseState::Expired(cur) if cur.nonce == lease.nonce => {
                let _ = std::fs::remove_file(&path);
            }
            _ => {}
        }
    }

    /// Removes every lease file (coordinator resume: no workers are
    /// running, so all claims are stale). Returns how many were
    /// cleared.
    pub fn clear_all(&self) -> io::Result<usize> {
        let entries = match std::fs::read_dir(&self.dir) {
            Ok(entries) => entries,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(0),
            Err(e) => return Err(e),
        };
        let mut cleared = 0;
        for entry in entries.flatten() {
            if std::fs::remove_file(entry.path()).is_ok() {
                cleared += 1;
            }
        }
        Ok(cleared)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("fulllock-lease-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create scratch dir");
        dir
    }

    #[test]
    fn lease_json_round_trips() {
        let lease = Lease {
            unit: "unit-00003".to_string(),
            worker: "w1".to_string(),
            nonce: 0xdead_beef,
            generation: 2,
            acquired_millis: 1000,
            expires_millis: 3000,
        };
        let back = Lease::from_json(&lease.to_json()).expect("round trip");
        assert_eq!(back, lease);
        assert!(lease.is_expired(3000));
        assert!(!lease.is_expired(2999));
        assert_eq!(lease.age_millis(1500), 500);
    }

    #[test]
    fn fresh_claims_are_mutually_exclusive() {
        let dir = scratch("claim");
        let a = LeaseDir::new(&dir, "a", 0);
        let b = LeaseDir::new(&dir, "b", 1);
        a.ensure().expect("mkdir");
        let ttl = Duration::from_secs(60);
        let lease = a
            .try_claim("unit-00000", ttl)
            .expect("io")
            .expect("claimed");
        assert!(
            b.try_claim("unit-00000", ttl).expect("io").is_none(),
            "second claim must lose"
        );
        // Reads classify it as held.
        let state = read_lease(&a.lease_path("unit-00000"), now_millis());
        assert_eq!(state, LeaseState::Held(lease.clone()));
        // Release frees it for the next claim.
        a.release(&lease);
        assert!(b.try_claim("unit-00000", ttl).expect("io").is_some());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn expired_leases_are_stolen_with_generation_bump() {
        let dir = scratch("steal");
        let a = LeaseDir::new(&dir, "a", 0);
        let b = LeaseDir::new(&dir, "b", 1);
        a.ensure().expect("mkdir");
        // A zero-ttl claim expires immediately.
        let stale = a
            .try_claim("unit-00001", Duration::ZERO)
            .expect("io")
            .expect("claimed");
        let path = a.lease_path("unit-00001");
        std::thread::sleep(Duration::from_millis(2));
        let state = read_lease(&path, now_millis());
        assert_eq!(state, LeaseState::Expired(stale.clone()));
        let stolen = b
            .try_steal("unit-00001", stale.generation, Duration::from_secs(60))
            .expect("io")
            .expect("steal wins");
        assert_eq!(stolen.generation, 1);
        assert_eq!(stolen.worker, "b");
        // The original owner's renewal must now fail.
        let mut lost = stale;
        assert!(!a.renew(&mut lost, Duration::from_secs(60)).expect("io"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_lease_is_stealable() {
        let dir = scratch("corrupt");
        let a = LeaseDir::new(&dir, "a", 0);
        a.ensure().expect("mkdir");
        let path = a.lease_path("unit-00002");
        std::fs::write(&path, "{\"checksum\":12,\"pay").expect("write torn");
        assert_eq!(read_lease(&path, now_millis()), LeaseState::Corrupt);
        let stolen = a
            .try_steal("unit-00002", 0, Duration::from_secs(60))
            .expect("io")
            .expect("steal");
        assert_eq!(stolen.generation, 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn renewal_extends_expiry_in_place() {
        let dir = scratch("renew");
        let a = LeaseDir::new(&dir, "a", 0);
        a.ensure().expect("mkdir");
        let mut lease = a
            .try_claim("unit-00004", Duration::from_millis(50))
            .expect("io")
            .expect("claimed");
        let before = lease.expires_millis;
        assert!(a.renew(&mut lease, Duration::from_secs(60)).expect("io"));
        assert!(lease.expires_millis > before);
        let state = read_lease(&a.lease_path("unit-00004"), now_millis());
        assert_eq!(state, LeaseState::Held(lease));
        std::fs::remove_dir_all(&dir).ok();
    }
}
