//! Result segments: checksummed, append-only per-worker sample streams.
//!
//! Each worker owns one segment file (`<dir>/segments/<worker>.seg`) and
//! appends one line per executed unit: a [`seal`]ed single-line JSON
//! [`SampleRecord`]. Append-only + per-line envelopes give exactly the
//! crash semantics a sweep needs:
//!
//! * a SIGKILL mid-append leaves a torn *tail* — the fold truncates to
//!   the last valid record instead of poisoning the file;
//! * a torn write that the filesystem reported as successful (the
//!   [`sweep.segment`](fulllock_sat::faults::site::SWEEP_SEGMENT)
//!   failpoint's `torn` action simulates it) mangles one line — the
//!   envelope checksum rejects that line and every other record
//!   survives;
//! * records for the same unit from two workers (steal and speculation
//!   races) are folded first-wins, so duplicates are *suppressed*, never
//!   double-counted.
//!
//! The fold ([`fold_segments`]) is the single source of truth for which
//! units actually have results; settle markers without a folded record
//! do not count (see [`crate::sweep::coordinator`]).

use std::collections::BTreeMap;
use std::io;
use std::io::Write as _;
use std::path::{Path, PathBuf};

use fulllock_sat::faults;

use crate::json::{seal, unseal, Json};
use crate::persist::consult_io_site;

/// One executed work unit's measurements — the per-instance data the
/// hardness atlas aggregates.
#[derive(Debug, Clone, PartialEq)]
pub struct SampleRecord {
    /// Work unit id (`unit-00042`).
    pub unit: String,
    /// Worker that produced the sample.
    pub worker: String,
    /// Whether the unit was executed under a stolen lease.
    pub stolen: bool,
    /// Whether this was a speculative re-execution (no lease held).
    pub speculative: bool,
    /// Executor verdict (`sat`, `unsat`, `unknown`, `recovered`,
    /// `timeout`, `error`, ...).
    pub verdict: String,
    /// Solver conflicts spent on the unit.
    pub conflicts: u64,
    /// Variables of the generated instance.
    pub vars: u64,
    /// Clauses of the generated instance.
    pub clauses: u64,
    /// Clause/variable ratio of the generated instance.
    pub clause_var_ratio: f64,
    /// Wall-clock seconds the unit took on this worker.
    pub wall_secs: f64,
}

impl SampleRecord {
    /// Serializes to compact single-line JSON (the payload of one sealed
    /// segment line).
    pub fn to_json(&self) -> String {
        Json::Object(vec![
            ("unit".to_string(), Json::Str(self.unit.clone())),
            ("worker".to_string(), Json::Str(self.worker.clone())),
            ("stolen".to_string(), Json::Bool(self.stolen)),
            ("speculative".to_string(), Json::Bool(self.speculative)),
            ("verdict".to_string(), Json::Str(self.verdict.clone())),
            ("conflicts".to_string(), Json::Int(self.conflicts)),
            ("vars".to_string(), Json::Int(self.vars)),
            ("clauses".to_string(), Json::Int(self.clauses)),
            (
                "clause_var_ratio".to_string(),
                Json::Float(self.clause_var_ratio),
            ),
            ("wall_secs".to_string(), Json::Float(self.wall_secs)),
        ])
        .to_text()
    }

    /// Parses one segment line's JSON payload.
    pub fn from_json(text: &str) -> Result<SampleRecord, String> {
        let root = Json::parse(text)?;
        let str_field = |name: &str| {
            root.get(name)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("sample: missing string field {name:?}"))
        };
        let int_field = |name: &str| {
            root.get(name)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("sample: missing integer field {name:?}"))
        };
        let float_field = |name: &str| {
            root.get(name)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("sample: missing numeric field {name:?}"))
        };
        let bool_field = |name: &str| {
            root.get(name)
                .and_then(Json::as_bool)
                .ok_or_else(|| format!("sample: missing boolean field {name:?}"))
        };
        Ok(SampleRecord {
            unit: str_field("unit")?,
            worker: str_field("worker")?,
            stolen: bool_field("stolen")?,
            speculative: bool_field("speculative")?,
            verdict: str_field("verdict")?,
            conflicts: int_field("conflicts")?,
            vars: int_field("vars")?,
            clauses: int_field("clauses")?,
            clause_var_ratio: float_field("clause_var_ratio")?,
            wall_secs: float_field("wall_secs")?,
        })
    }
}

/// Where a sweep directory keeps its segment files.
pub fn segments_dir(sweep_dir: &Path) -> PathBuf {
    sweep_dir.join("segments")
}

/// An open, append-only segment file owned by one worker.
#[derive(Debug)]
pub struct SegmentWriter {
    file: std::fs::File,
    path: PathBuf,
    worker_index: usize,
}

impl SegmentWriter {
    /// Creates (or reopens for append) this worker's segment file. The
    /// name carries the worker so respawned workers with fresh names
    /// never collide. Reopening a file that ends in a torn half-line
    /// (the writer was SIGKILLed mid-append) first terminates that line
    /// so the next record starts fresh instead of being swallowed into
    /// the invalid tail.
    pub fn open(sweep_dir: &Path, worker: &str, worker_index: usize) -> io::Result<SegmentWriter> {
        let dir = segments_dir(sweep_dir);
        std::fs::create_dir_all(&dir)?;
        let path = dir.join(format!("{worker}.seg"));
        let mut file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)?;
        let existing = std::fs::read(&path)?;
        if existing.last().is_some_and(|&b| b != b'\n') {
            file.write_all(b"\n")?;
            file.sync_data()?;
        }
        Ok(SegmentWriter {
            file,
            path,
            worker_index,
        })
    }

    /// The segment file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one sealed record line and fsyncs it durable. Under the
    /// `sweep.segment` failpoint, `enospc`/`eio` fail the append before
    /// any byte lands and `torn` writes half the line while reporting
    /// success — the fold's checksum catches it and the unit re-runs.
    pub fn append(&mut self, record: &SampleRecord) -> io::Result<()> {
        let torn = consult_io_site(faults::site::SWEEP_SEGMENT, self.worker_index)?;
        let line = format!("{}\n", seal(&record.to_json()));
        let bytes = if torn {
            &line.as_bytes()[..line.len() / 2]
        } else {
            line.as_bytes()
        };
        self.file.write_all(bytes)?;
        self.file.sync_data()
    }
}

/// What one segment file held.
#[derive(Debug, Clone, PartialEq)]
pub struct SegmentRead {
    /// The checksum-valid records, in append order.
    pub records: Vec<SampleRecord>,
    /// Lines that failed their envelope or parse (torn writes that
    /// later appends buried mid-file).
    pub invalid_lines: usize,
    /// Whether the file ended in a torn tail (truncated to the last
    /// valid record).
    pub torn_tail: bool,
}

/// Reads one segment file, keeping every checksum-valid line and
/// counting the rest. A trailing invalid line is a torn tail (the
/// classic SIGKILL-mid-append shape); an invalid line mid-file is a torn
/// write later appends buried.
pub fn read_segment(path: &Path) -> io::Result<SegmentRead> {
    let text = std::fs::read_to_string(path)?;
    let mut records = Vec::new();
    let mut invalid_lines = 0usize;
    let mut last_invalid = false;
    for line in text.lines() {
        if line.trim().is_empty() {
            continue;
        }
        // Segment lines are always sealed; `Ok(None)` (no envelope
        // prefix) means a torn prefix here, not a legacy format.
        let parsed = match unseal(line) {
            Ok(Some(payload)) => SampleRecord::from_json(payload).ok(),
            _ => None,
        };
        match parsed {
            Some(record) => {
                records.push(record);
                last_invalid = false;
            }
            None => {
                invalid_lines += 1;
                last_invalid = true;
            }
        }
    }
    // A file that ends without a newline concatenates the torn half-line
    // with nothing — lines() still yields it; `last_invalid` covers both.
    Ok(SegmentRead {
        records,
        invalid_lines,
        torn_tail: last_invalid,
    })
}

/// The folded view of every segment in a sweep directory.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SegmentFold {
    /// First-wins sample per unit id.
    pub samples: BTreeMap<String, SampleRecord>,
    /// Later records for already-sampled units (steal/speculation races)
    /// — suppressed, never double-counted.
    pub duplicates: usize,
    /// Checksum-failing lines across all segments.
    pub invalid_lines: usize,
    /// Segments that ended in a torn tail.
    pub torn_tails: usize,
    /// How many folded samples ran under a stolen lease.
    pub stolen: usize,
    /// How many folded samples were speculative re-executions.
    pub speculative: usize,
}

/// Folds every `*.seg` file under `<sweep_dir>/segments`, first-wins per
/// unit. Files are visited in sorted name order so the fold is
/// deterministic for a given directory state.
pub fn fold_segments(sweep_dir: &Path) -> io::Result<SegmentFold> {
    let dir = segments_dir(sweep_dir);
    let mut fold = SegmentFold::default();
    let entries = match std::fs::read_dir(&dir) {
        Ok(entries) => entries,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(fold),
        Err(e) => return Err(e),
    };
    let mut paths: Vec<PathBuf> = entries
        .flatten()
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|ext| ext == "seg"))
        .collect();
    paths.sort();
    for path in paths {
        let read = read_segment(&path)?;
        fold.invalid_lines += read.invalid_lines;
        fold.torn_tails += usize::from(read.torn_tail);
        for record in read.records {
            if fold.samples.contains_key(&record.unit) {
                fold.duplicates += 1;
                continue;
            }
            fold.stolen += usize::from(record.stolen);
            fold.speculative += usize::from(record.speculative);
            fold.samples.insert(record.unit.clone(), record);
        }
    }
    Ok(fold)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("fulllock-seg-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create scratch dir");
        dir
    }

    fn sample(unit: &str, worker: &str) -> SampleRecord {
        SampleRecord {
            unit: unit.to_string(),
            worker: worker.to_string(),
            stolen: false,
            speculative: false,
            verdict: "sat".to_string(),
            conflicts: 123,
            vars: 50,
            clauses: 215,
            clause_var_ratio: 4.3,
            wall_secs: 0.25,
        }
    }

    #[test]
    fn record_json_round_trips() {
        let mut rec = sample("unit-00000", "w0");
        rec.stolen = true;
        rec.speculative = true;
        let back = SampleRecord::from_json(&rec.to_json()).expect("round trip");
        assert_eq!(back, rec);
    }

    #[test]
    fn append_read_round_trips() {
        let dir = scratch("roundtrip");
        let mut w = SegmentWriter::open(&dir, "w0", 0).expect("open");
        for i in 0..5 {
            w.append(&sample(&format!("unit-{i:05}"), "w0"))
                .expect("append");
        }
        let read = read_segment(w.path()).expect("read");
        assert_eq!(read.records.len(), 5);
        assert_eq!(read.invalid_lines, 0);
        assert!(!read.torn_tail);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_tail_truncates_to_last_valid_record() {
        let dir = scratch("torn");
        let mut w = SegmentWriter::open(&dir, "w0", 0).expect("open");
        w.append(&sample("unit-00000", "w0")).expect("append");
        w.append(&sample("unit-00001", "w0")).expect("append");
        // SIGKILL mid-append: half a line, no newline.
        let full = format!("{}\n", seal(&sample("unit-00002", "w0").to_json()));
        let mut raw = std::fs::OpenOptions::new()
            .append(true)
            .open(w.path())
            .expect("reopen");
        raw.write_all(&full.as_bytes()[..full.len() / 2])
            .expect("tear");
        drop(raw);
        let read = read_segment(w.path()).expect("read");
        assert_eq!(read.records.len(), 2, "valid prefix survives");
        assert!(read.torn_tail);
        assert_eq!(read.invalid_lines, 1);
        // Reopening repairs the torn tail (terminates the half-line), so
        // records appended by the successor are never swallowed into it.
        let mut w = SegmentWriter::open(&dir, "w0", 0).expect("reopen writer");
        w.append(&sample("unit-00003", "w0")).expect("append");
        w.append(&sample("unit-00004", "w0")).expect("append");
        let read = read_segment(w.path()).expect("read again");
        assert_eq!(
            read.records.len(),
            4,
            "both new records land on fresh lines"
        );
        assert_eq!(
            read.invalid_lines, 1,
            "the quarantined half-line stays invalid"
        );
        assert!(!read.torn_tail, "the file no longer *ends* torn");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fold_is_first_wins_and_counts_duplicates() {
        let dir = scratch("fold");
        let mut a = SegmentWriter::open(&dir, "a", 0).expect("open a");
        let mut b = SegmentWriter::open(&dir, "b", 1).expect("open b");
        a.append(&sample("unit-00000", "a")).expect("append");
        let mut dup = sample("unit-00000", "b");
        dup.speculative = true;
        b.append(&dup).expect("append dup");
        b.append(&sample("unit-00001", "b")).expect("append");
        let fold = fold_segments(&dir).expect("fold");
        assert_eq!(fold.samples.len(), 2);
        assert_eq!(fold.duplicates, 1);
        // Sorted file order: a.seg before b.seg, so "a" won unit 0.
        assert_eq!(fold.samples["unit-00000"].worker, "a");
        assert_eq!(
            fold.speculative, 0,
            "the losing speculative copy was suppressed"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fold_of_missing_dir_is_empty() {
        let dir = scratch("empty");
        let fold = fold_segments(&dir.join("nope")).expect("fold");
        assert!(fold.samples.is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }
}
