//! The sweep coordinator: spawns worker processes, respawns casualties,
//! reconciles resumes, and folds segments into the final atlas.
//!
//! The coordinator is deliberately dumb about work distribution — the
//! lease files in the sweep directory are the only scheduler, so a
//! coordinator crash (or a partition between coordinator and workers)
//! never stalls unit migration. What the coordinator *does* own:
//!
//! * **Plan identity.** A resume recomputes the plan's config hash
//!   (which folds in the `FULLLOCK_*` ambient fingerprint) and refuses
//!   to continue a sweep whose parameters or environment drifted.
//! * **Reconciliation.** On `--resume`, stale leases are cleared,
//!   settle markers without a valid folded record (a marker landed but
//!   the segment append tore) are deleted so those units re-run, and
//!   valid records without a marker are settled on the worker's behalf.
//! * **Worker lifecycle.** Dead workers are respawned under *fresh*
//!   worker names (their segments and leases are never reused); once
//!   every unit is settled, lingering workers get a grace period and
//!   are then killed — a straggling execution whose unit was already
//!   won by speculation must not hold the sweep open.
//! * **The fold.** Segments are folded first-wins, verified to cover
//!   every unit exactly once, aggregated into percentile summaries
//!   (`atlas.json`) and a compact columnar store (`columns.json`).

use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use crate::sweep::aggregate::{aggregate, write_columns, SweepAggregates};
use crate::sweep::grid::SweepPlan;
use crate::sweep::lease::LeaseDir;
use crate::sweep::segment::{fold_segments, SegmentFold};
use crate::sweep::worker::{count_settled, is_settled, remove_marker, try_settle, WorkerArgs};
use crate::{HarnessError, Result};

/// How a coordinator runs a sweep.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// Sweep directory (plan, leases, segments, markers, atlas).
    pub out_dir: PathBuf,
    /// Worker processes to keep alive.
    pub workers: usize,
    /// Program spawned per worker (usually the current executable).
    pub worker_program: PathBuf,
    /// Arguments placed before the generated worker flags (e.g.
    /// `["sweep-worker"]` to select the subcommand).
    pub worker_args_prefix: Vec<String>,
    /// Extra environment for workers, on top of the inherited one.
    pub worker_env: Vec<(String, String)>,
    /// Lease time-to-live handed to workers.
    pub lease_ttl: Duration,
    /// Coordinator poll interval (reap + progress checks).
    pub poll: Duration,
    /// Continue an existing sweep directory instead of requiring a
    /// fresh one.
    pub resume: bool,
    /// Respawn budget for dead workers across the whole run.
    pub max_respawns: usize,
    /// Bounded re-run rounds for orphan markers discovered at fold
    /// time (marker present, record torn).
    pub max_rerun_rounds: usize,
    /// Overall wall-clock budget; exceeding it kills the fleet and
    /// fails the sweep. `None` means unbounded.
    pub max_wall: Option<Duration>,
    /// Grace period for workers to exit on their own after the last
    /// unit settles, before they are killed.
    pub shutdown_grace: Duration,
    /// Speculation age floor handed to workers.
    pub speculation_min_age: Duration,
    /// Speculation p95 factor handed to workers.
    pub speculation_factor: f64,
    /// Ambient `FULLLOCK_*` fingerprint override (`None` reads the
    /// current process environment).
    pub ambient_hash: Option<u64>,
}

impl SweepConfig {
    /// A config with house defaults for `out_dir`, spawning
    /// `worker_program` with `worker_args_prefix`.
    pub fn new(
        out_dir: impl Into<PathBuf>,
        worker_program: impl Into<PathBuf>,
        worker_args_prefix: Vec<String>,
    ) -> SweepConfig {
        SweepConfig {
            out_dir: out_dir.into(),
            workers: 4,
            worker_program: worker_program.into(),
            worker_args_prefix,
            worker_env: Vec::new(),
            lease_ttl: Duration::from_millis(2000),
            poll: Duration::from_millis(50),
            resume: false,
            max_respawns: 16,
            max_rerun_rounds: 3,
            max_wall: Some(Duration::from_secs(1800)),
            shutdown_grace: Duration::from_millis(1500),
            speculation_min_age: Duration::from_millis(500),
            speculation_factor: 4.0,
            ambient_hash: None,
        }
    }
}

/// What resume reconciliation found and repaired.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ResumeReport {
    /// Units already settled with a valid record (skipped entirely).
    pub settled: usize,
    /// Orphan markers removed (marker present, record missing or torn —
    /// those units re-run).
    pub orphans_cleared: usize,
    /// Valid records that were missing their marker (settled on the
    /// recovering worker's behalf).
    pub records_settled: usize,
    /// Stale lease files cleared.
    pub leases_cleared: usize,
}

/// The coordinator's account of a finished sweep.
#[derive(Debug, Clone)]
pub struct SweepOutcome {
    /// Final aggregates (also persisted to `atlas.json`).
    pub aggregates: SweepAggregates,
    /// Where the aggregates were written.
    pub atlas_path: PathBuf,
    /// Where the columnar samples were written.
    pub columns_path: PathBuf,
    /// Dead workers respawned.
    pub respawns: usize,
    /// Orphan-marker re-run rounds that were needed.
    pub rerun_rounds: usize,
    /// Reconciliation performed before the run (all zero on a fresh
    /// sweep).
    pub resume: ResumeReport,
    /// Total coordinator wall time.
    pub elapsed: Duration,
}

fn io_err(path: &Path, what: &str, e: io::Error) -> HarnessError {
    HarnessError::Io {
        path: path.to_path_buf(),
        message: format!("{what}: {e}"),
    }
}

/// Reconciles an interrupted sweep directory back to a consistent
/// state: every unit either has (valid record + marker) or (neither).
/// Stale leases are cleared — no worker is running when this is called.
pub fn reconcile_resume(dir: &Path, plan: &SweepPlan) -> Result<ResumeReport> {
    let mut report = ResumeReport::default();
    let leases = LeaseDir::new(dir, "coordinator", 0);
    report.leases_cleared = leases
        .clear_all()
        .map_err(|e| io_err(dir, "clear stale leases", e))?;
    let fold = fold_segments(dir).map_err(|e| io_err(dir, "fold segments", e))?;
    for unit in plan.grid.units() {
        let has_record = fold.samples.contains_key(&unit.id);
        let has_marker = is_settled(dir, &unit.id);
        match (has_record, has_marker) {
            (true, true) => report.settled += 1,
            (true, false) => {
                // The worker appended durably but died before the
                // marker; its result is valid — settle it.
                try_settle(dir, &unit.id, "coordinator")
                    .map_err(|e| io_err(dir, "settle recovered record", e))?;
                report.settled += 1;
                report.records_settled += 1;
            }
            (false, true) => {
                // Marker without a record: the append tore (or was
                // injected to tear) after reporting success. The marker
                // lies; remove it so the unit re-runs.
                remove_marker(dir, &unit.id).map_err(|e| io_err(dir, "clear orphan marker", e))?;
                report.orphans_cleared += 1;
            }
            (false, false) => {}
        }
    }
    Ok(report)
}

struct Fleet {
    children: Vec<(usize, Child)>,
    next_index: usize,
    respawns: usize,
}

impl Fleet {
    fn spawn_one(&mut self, config: &SweepConfig) -> Result<()> {
        let index = self.next_index;
        self.next_index += 1;
        let worker_args = WorkerArgs {
            dir: config.out_dir.clone(),
            worker_index: index,
            lease_ttl_millis: config.lease_ttl.as_millis() as u64,
            poll_millis: config.poll.as_millis().max(1) as u64,
            spec_min_age_millis: config.speculation_min_age.as_millis() as u64,
            spec_factor: config.speculation_factor,
        };
        let logs = config.out_dir.join("logs");
        std::fs::create_dir_all(&logs).map_err(|e| io_err(&logs, "create logs dir", e))?;
        let log_path = logs.join(format!("w{index}.log"));
        let log = std::fs::File::create(&log_path)
            .map_err(|e| io_err(&log_path, "create worker log", e))?;
        let log_err = log
            .try_clone()
            .map_err(|e| io_err(&log_path, "clone worker log", e))?;
        let mut command = Command::new(&config.worker_program);
        command
            .args(&config.worker_args_prefix)
            .args(worker_args.to_args())
            .stdin(Stdio::null())
            .stdout(Stdio::from(log))
            .stderr(Stdio::from(log_err));
        for (key, value) in &config.worker_env {
            command.env(key, value);
        }
        let child = command
            .spawn()
            .map_err(|e| io_err(&config.worker_program, "spawn worker", e))?;
        self.children.push((index, child));
        Ok(())
    }

    /// Reaps exited children; returns how many died abnormally.
    fn reap(&mut self) -> usize {
        let mut casualties = 0;
        self.children
            .retain_mut(|(index, child)| match child.try_wait() {
                Ok(Some(status)) => {
                    if !status.success() {
                        eprintln!("sweep: worker w{index} died: {status}");
                        casualties += 1;
                    }
                    false
                }
                Ok(None) => true,
                Err(_) => true,
            });
        casualties
    }

    fn kill_all(&mut self) {
        for (_, child) in &mut self.children {
            let _ = child.kill();
        }
        for (_, child) in &mut self.children {
            let _ = child.wait();
        }
        self.children.clear();
    }
}

/// Runs a sweep end to end: persist/verify the plan, reconcile (on
/// resume), run the worker fleet to full settlement, bounded re-run
/// rounds for orphan markers, final fold + aggregation.
///
/// # Errors
///
/// Fails on plan/environment drift during resume, an exhausted respawn
/// or re-run budget, the wall-clock budget, and any coordinator-side IO
/// failure. The sweep directory is left intact for `--resume` in every
/// failure mode.
pub fn run_sweep(plan: &SweepPlan, config: &SweepConfig) -> Result<SweepOutcome> {
    let started = Instant::now();
    plan.validate()?;
    if config.workers == 0 {
        return Err(HarnessError::PlanFormat {
            path: None,
            message: "sweep needs at least one worker".to_string(),
        });
    }
    let dir = &config.out_dir;
    std::fs::create_dir_all(dir).map_err(|e| io_err(dir, "create sweep dir", e))?;
    let ambient = config
        .ambient_hash
        .unwrap_or_else(crate::plan::current_ambient_fingerprint);

    let plan_path = crate::sweep::grid::plan_path(dir);
    let mut resume_report = ResumeReport::default();
    if plan_path.exists() {
        if !config.resume {
            return Err(HarnessError::PlanFormat {
                path: Some(plan_path),
                message: "sweep directory already holds a plan; pass resume to continue it"
                    .to_string(),
            });
        }
        let (stored_plan, stored_hash) = SweepPlan::load(dir)?;
        let current_hash = plan.config_hash(ambient);
        if stored_hash != current_hash {
            let drift = if stored_plan.config_hash(ambient) == stored_hash {
                "the sweep parameters changed"
            } else {
                "the FULLLOCK_* environment drifted since the sweep started"
            };
            return Err(HarnessError::PlanFormat {
                path: Some(plan_path),
                message: format!(
                    "refusing to resume: {drift} (stored config hash {stored_hash:016x}, \
                     current {current_hash:016x})"
                ),
            });
        }
        resume_report = reconcile_resume(dir, plan)?;
    } else {
        plan.save(dir, ambient)?;
    }

    let units = plan.grid.unit_count();
    let mut fleet = Fleet {
        children: Vec::new(),
        next_index: 0,
        respawns: 0,
    };
    let mut rerun_rounds = 0usize;

    let outcome = loop {
        // Keep the fleet at strength until every unit is settled.
        while fleet.children.len() < config.workers && count_settled(dir) < units {
            fleet.spawn_one(config)?;
        }
        loop {
            let casualties = fleet.reap();
            if casualties > 0 && count_settled(dir) < units {
                for _ in 0..casualties {
                    if fleet.respawns >= config.max_respawns {
                        fleet.kill_all();
                        return Err(HarnessError::Io {
                            path: dir.clone(),
                            message: format!(
                                "respawn budget exhausted ({} respawns) with {}/{units} units settled",
                                fleet.respawns,
                                count_settled(dir)
                            ),
                        });
                    }
                    fleet.respawns += 1;
                    fleet.spawn_one(config)?;
                }
            }
            if count_settled(dir) >= units {
                break;
            }
            if fleet.children.is_empty() {
                return Err(HarnessError::Io {
                    path: dir.clone(),
                    message: format!(
                        "all workers exited with {}/{units} units settled",
                        count_settled(dir)
                    ),
                });
            }
            if let Some(max_wall) = config.max_wall {
                if started.elapsed() > max_wall {
                    fleet.kill_all();
                    return Err(HarnessError::Io {
                        path: dir.clone(),
                        message: format!(
                            "sweep exceeded wall budget {:.0?} with {}/{units} units settled \
                             (directory kept for resume)",
                            max_wall,
                            count_settled(dir)
                        ),
                    });
                }
            }
            std::thread::sleep(config.poll);
        }

        // All units settled. Let workers drain on their own, then kill
        // stragglers: an execution that lost its race (a neutralized
        // straggler) must not hold the sweep open.
        let grace_until = Instant::now() + config.shutdown_grace;
        while !fleet.children.is_empty() && Instant::now() < grace_until {
            fleet.reap();
            std::thread::sleep(config.poll);
        }
        fleet.kill_all();

        // Fold and check marker/record agreement: a torn append can
        // leave a marker whose record never landed. Bounded re-runs.
        let fold = fold_segments(dir).map_err(|e| io_err(dir, "fold segments", e))?;
        let orphans = orphan_markers(dir, plan, &fold);
        if orphans.is_empty() {
            break finish(plan, dir, fold, units)?;
        }
        if rerun_rounds >= config.max_rerun_rounds {
            return Err(HarnessError::Io {
                path: dir.clone(),
                message: format!(
                    "{} units still lack a durable record after {rerun_rounds} re-run rounds",
                    orphans.len()
                ),
            });
        }
        rerun_rounds += 1;
        for unit in &orphans {
            remove_marker(dir, unit).map_err(|e| io_err(dir, "clear orphan marker", e))?;
        }
    };

    Ok(SweepOutcome {
        aggregates: outcome.0,
        atlas_path: outcome.1,
        columns_path: outcome.2,
        respawns: fleet.respawns,
        rerun_rounds,
        resume: resume_report,
        elapsed: started.elapsed(),
    })
}

/// Settle markers whose unit has no valid folded record.
fn orphan_markers(dir: &Path, plan: &SweepPlan, fold: &SegmentFold) -> Vec<String> {
    plan.grid
        .units()
        .into_iter()
        .filter(|unit| is_settled(dir, &unit.id) && !fold.samples.contains_key(&unit.id))
        .map(|unit| unit.id)
        .collect()
}

/// Final verification + persistence: exactly-once coverage, aggregate
/// summaries, columnar store.
fn finish(
    plan: &SweepPlan,
    dir: &Path,
    fold: SegmentFold,
    units: usize,
) -> Result<(SweepAggregates, PathBuf, PathBuf)> {
    let ids: BTreeMap<&String, ()> = fold.samples.keys().map(|k| (k, ())).collect();
    for unit in plan.grid.units() {
        if !ids.contains_key(&unit.id) {
            return Err(HarnessError::Io {
                path: dir.to_path_buf(),
                message: format!("unit {} settled without a folded record", unit.id),
            });
        }
    }
    if fold.samples.len() != units {
        return Err(HarnessError::Io {
            path: dir.to_path_buf(),
            message: format!(
                "fold holds {} samples for {units} units — exactly-once violated",
                fold.samples.len()
            ),
        });
    }
    let aggregates = aggregate(&fold, units);
    let atlas_path = dir.join("atlas.json");
    aggregates
        .save(&atlas_path)
        .map_err(|e| io_err(&atlas_path, "write atlas", e))?;
    let columns_path = dir.join("columns.json");
    write_columns(&columns_path, fold.samples.values())
        .map_err(|e| io_err(&columns_path, "write columns", e))?;
    Ok((aggregates, atlas_path, columns_path))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::grid::SweepGrid;
    use crate::sweep::segment::{SampleRecord, SegmentWriter};

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("fulllock-coord-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create scratch dir");
        dir
    }

    fn plan_of(units: usize) -> SweepPlan {
        let seeds: Vec<String> = (0..units).map(|i| i.to_string()).collect();
        SweepPlan::new(SweepGrid::new("t").axis("seed", seeds))
    }

    fn record(unit: &str) -> SampleRecord {
        SampleRecord {
            unit: unit.to_string(),
            worker: "w0".to_string(),
            stolen: false,
            speculative: false,
            verdict: "sat".to_string(),
            conflicts: 10,
            vars: 20,
            clauses: 60,
            clause_var_ratio: 3.0,
            wall_secs: 0.01,
        }
    }

    #[test]
    fn reconcile_repairs_markers_both_ways() {
        let dir = scratch("reconcile");
        let plan = plan_of(3);
        // unit-00000: record + marker (fine). unit-00001: record, no
        // marker (worker died pre-settle). unit-00002: marker, no
        // record (torn append) — the orphan.
        let mut seg = SegmentWriter::open(&dir, "w0", 0).expect("segment");
        seg.append(&record("unit-00000")).expect("append");
        seg.append(&record("unit-00001")).expect("append");
        try_settle(&dir, "unit-00000", "w0").expect("settle");
        try_settle(&dir, "unit-00002", "w0").expect("settle");
        let report = reconcile_resume(&dir, &plan).expect("reconcile");
        assert_eq!(report.settled, 2);
        assert_eq!(report.records_settled, 1);
        assert_eq!(report.orphans_cleared, 1);
        assert!(is_settled(&dir, "unit-00001"), "recovered record settled");
        assert!(!is_settled(&dir, "unit-00002"), "orphan marker cleared");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fresh_dir_refuses_to_run_without_resume_once_planned() {
        let dir = scratch("refuse");
        let plan = plan_of(2);
        plan.save(&dir, 7).expect("save plan");
        let config = SweepConfig::new(&dir, "/nonexistent-worker", vec![]);
        let err = run_sweep(&plan, &config).expect_err("must refuse");
        assert!(err.to_string().contains("resume"), "got: {err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn resume_detects_ambient_drift() {
        let dir = scratch("drift");
        let plan = plan_of(2);
        plan.save(&dir, 7).expect("save plan");
        let mut config = SweepConfig::new(&dir, "/nonexistent-worker", vec![]);
        config.resume = true;
        config.ambient_hash = Some(8); // drifted FULLLOCK_* fingerprint
        let err = run_sweep(&plan, &config).expect_err("must refuse");
        assert!(
            err.to_string().contains("environment drifted"),
            "got: {err}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn resume_detects_plan_change() {
        let dir = scratch("replan");
        plan_of(2).save(&dir, 7).expect("save plan");
        let changed = plan_of(3);
        let mut config = SweepConfig::new(&dir, "/nonexistent-worker", vec![]);
        config.resume = true;
        config.ambient_hash = Some(7);
        let err = run_sweep(&changed, &config).expect_err("must refuse");
        assert!(err.to_string().contains("parameters changed"), "got: {err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn orphan_markers_lists_only_marker_without_record() {
        let dir = scratch("orphans");
        let plan = plan_of(2);
        let mut seg = SegmentWriter::open(&dir, "w0", 0).expect("segment");
        seg.append(&record("unit-00000")).expect("append");
        try_settle(&dir, "unit-00000", "w0").expect("settle");
        try_settle(&dir, "unit-00001", "w0").expect("settle");
        let fold = fold_segments(&dir).expect("fold");
        assert_eq!(orphan_markers(&dir, &plan, &fold), vec!["unit-00001"]);
        std::fs::remove_dir_all(&dir).ok();
    }
}
