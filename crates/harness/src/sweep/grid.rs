//! Parameter grids and sweep plans: the work a distributed sweep covers.
//!
//! A [`SweepGrid`] is a named Cartesian product of axes
//! (`vars = 50,100 × ratio = 4.0,4.3 × seed = 0..8`); its expansion is a
//! flat, deterministic list of [`WorkUnit`]s whose stable ids
//! (`unit-00042`) name lease files, settle markers, and segment records.
//! A [`SweepPlan`] wraps the grid with everything else that affects
//! execution (executor name, per-unit budget, seed) and hashes it all —
//! *including* the ambient `FULLLOCK_*` fingerprint — so `--resume`
//! detects both plan edits and environment drift instead of silently
//! reusing stale results.

use std::path::Path;

use crate::json::Json;
use crate::plan::Fnv;
use crate::{HarnessError, Result};

/// Version tag written into every sweep plan file; loading any other
/// version fails rather than guessing.
pub const SWEEP_PLAN_VERSION: u64 = 1;

/// Hard ceiling on grid expansion, as a guard against a typo'd axis
/// turning into a hundred-million-unit sweep.
pub const MAX_UNITS: usize = 1_000_000;

/// One point of the parameter grid: a stable id plus the axis values
/// that define it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkUnit {
    /// Position in the grid expansion (also the failpoint context index
    /// for [`sweep.unit`](fulllock_sat::faults::site::SWEEP_UNIT)).
    pub index: usize,
    /// Stable identity (`unit-00042`): names the unit's lease file and
    /// settle marker, and keys segment records.
    pub id: String,
    /// Axis name → value pairs, in axis order.
    pub params: Vec<(String, String)>,
}

impl WorkUnit {
    /// Looks up an axis value by name.
    pub fn param(&self, key: &str) -> Option<&str> {
        self.params
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// The stable id for a grid position.
    pub fn id_for(index: usize) -> String {
        format!("unit-{index:05}")
    }
}

/// A named Cartesian product of parameter axes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepGrid {
    /// Grid name, recorded in the plan and the atlas report.
    pub name: String,
    /// Axes in declaration order; the *last* axis varies fastest in the
    /// expansion.
    pub axes: Vec<(String, Vec<String>)>,
}

impl SweepGrid {
    /// An empty grid with the given name.
    pub fn new(name: impl Into<String>) -> SweepGrid {
        SweepGrid {
            name: name.into(),
            axes: Vec::new(),
        }
    }

    /// Appends an axis (builder style).
    pub fn axis(
        mut self,
        name: impl Into<String>,
        values: impl IntoIterator<Item = impl Into<String>>,
    ) -> SweepGrid {
        self.axes
            .push((name.into(), values.into_iter().map(Into::into).collect()));
        self
    }

    /// Parses the CLI grid spec: `name=v1,v2;name2=v3` (axes separated
    /// by `;`, values by `,`).
    pub fn parse_spec(name: impl Into<String>, spec: &str) -> Result<SweepGrid> {
        let mut grid = SweepGrid::new(name);
        for raw in spec.split(';') {
            let raw = raw.trim();
            if raw.is_empty() {
                continue;
            }
            let (axis, values) = raw
                .split_once('=')
                .ok_or_else(|| HarnessError::PlanFormat {
                    path: None,
                    message: format!("grid axis {raw:?}: expected name=v1,v2,..."),
                })?;
            grid = grid.axis(
                axis.trim(),
                values.split(',').map(str::trim).filter(|v| !v.is_empty()),
            );
        }
        grid.validate()?;
        Ok(grid)
    }

    /// Number of grid points (product of axis sizes).
    pub fn unit_count(&self) -> usize {
        self.axes.iter().map(|(_, v)| v.len()).product()
    }

    /// Expands the grid into its flat, deterministic unit list (last
    /// axis varies fastest).
    pub fn units(&self) -> Vec<WorkUnit> {
        let total = self.unit_count();
        let mut units = Vec::with_capacity(total);
        for index in 0..total {
            let mut params = Vec::with_capacity(self.axes.len());
            let mut rest = index;
            for (name, values) in self.axes.iter().rev() {
                params.push((name.clone(), values[rest % values.len()].clone()));
                rest /= values.len();
            }
            params.reverse();
            units.push(WorkUnit {
                index,
                id: WorkUnit::id_for(index),
                params,
            });
        }
        units
    }

    /// Checks the grid is non-degenerate: at least one axis, well-formed
    /// unique axis names, non-empty value lists, and a bounded product.
    pub fn validate(&self) -> Result<()> {
        let complain = |message: String| {
            Err(HarnessError::PlanFormat {
                path: None,
                message,
            })
        };
        if self.axes.is_empty() {
            return complain("sweep grid has no axes".to_string());
        }
        for (i, (name, values)) in self.axes.iter().enumerate() {
            if name.is_empty()
                || name
                    .chars()
                    .any(|c| !c.is_ascii_alphanumeric() && !matches!(c, '.' | '_' | '-'))
            {
                return complain(format!(
                    "axis #{i} name {name:?} invalid; allowed: [A-Za-z0-9._-]"
                ));
            }
            if self.axes[..i].iter().any(|(other, _)| other == name) {
                return complain(format!("duplicate axis name {name:?}"));
            }
            if values.is_empty() {
                return complain(format!("axis {name:?} has no values"));
            }
        }
        let count = self.unit_count();
        if count == 0 || count > MAX_UNITS {
            return complain(format!(
                "grid expands to {count} units (allowed: 1..={MAX_UNITS})"
            ));
        }
        Ok(())
    }
}

/// Everything a sweep executes: the grid plus the execution knobs that
/// must invalidate results when they change.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPlan {
    /// The parameter grid.
    pub grid: SweepGrid,
    /// Which [`UnitExecutor`](crate::sweep::UnitExecutor) interprets the
    /// grid params (`"sat"` — synthetic random 3-SAT, `"atlas"` — the
    /// CLN hardness atlas in the `full-lock` crate, or a custom name).
    pub executor: String,
    /// Per-unit wall-clock budget hint, in seconds (executors translate
    /// it into conflict caps / attack timeouts).
    pub unit_timeout_secs: f64,
    /// Base seed mixed into per-unit seeds by executors.
    pub seed: u64,
}

impl SweepPlan {
    /// A plan over `grid` with the default executor and budget.
    pub fn new(grid: SweepGrid) -> SweepPlan {
        SweepPlan {
            grid,
            executor: "sat".to_string(),
            unit_timeout_secs: 60.0,
            seed: 0,
        }
    }

    /// Validates the grid and the knobs.
    pub fn validate(&self) -> Result<()> {
        self.grid.validate()?;
        if self.executor.is_empty() {
            return Err(HarnessError::PlanFormat {
                path: None,
                message: "sweep plan has an empty executor name".to_string(),
            });
        }
        if !self.unit_timeout_secs.is_finite() || self.unit_timeout_secs <= 0.0 {
            return Err(HarnessError::PlanFormat {
                path: None,
                message: format!("invalid unit_timeout_secs {}", self.unit_timeout_secs),
            });
        }
        Ok(())
    }

    /// FNV-1a hash over everything that affects the sweep's results:
    /// the grid, the executor, the per-unit budget, the seed, and the
    /// ambient `FULLLOCK_*` fingerprint
    /// ([`crate::plan::ambient_fingerprint`]). A `--resume` whose hash
    /// differs refuses to reuse the directory — the on-disk samples were
    /// produced under a different effective configuration.
    pub fn config_hash(&self, ambient: u64) -> u64 {
        let mut h = Fnv::new();
        h.str(&self.grid.name);
        h.bytes(&(self.grid.axes.len() as u64).to_le_bytes());
        for (name, values) in &self.grid.axes {
            h.str(name);
            h.bytes(&(values.len() as u64).to_le_bytes());
            for v in values {
                h.str(v);
            }
        }
        h.str(&self.executor);
        h.bytes(&self.unit_timeout_secs.to_bits().to_le_bytes());
        h.bytes(&self.seed.to_le_bytes());
        h.bytes(&ambient.to_le_bytes());
        h.finish()
    }

    /// Serializes to the versioned JSON plan format, with the config
    /// hash under which the sweep runs baked in.
    pub fn to_json(&self, ambient: u64) -> String {
        let axes = Json::Array(
            self.grid
                .axes
                .iter()
                .map(|(name, values)| {
                    Json::Object(vec![
                        ("name".to_string(), Json::Str(name.clone())),
                        (
                            "values".to_string(),
                            Json::Array(values.iter().cloned().map(Json::Str).collect()),
                        ),
                    ])
                })
                .collect(),
        );
        Json::Object(vec![
            ("version".to_string(), Json::Int(SWEEP_PLAN_VERSION)),
            ("name".to_string(), Json::Str(self.grid.name.clone())),
            ("executor".to_string(), Json::Str(self.executor.clone())),
            (
                "unit_timeout_secs".to_string(),
                Json::Float(self.unit_timeout_secs),
            ),
            ("seed".to_string(), Json::Int(self.seed)),
            ("axes".to_string(), axes),
            (
                "config_hash".to_string(),
                Json::Int(self.config_hash(ambient)),
            ),
        ])
        .to_text()
    }

    /// Parses the JSON plan format, returning the plan and the config
    /// hash recorded at write time.
    ///
    /// # Errors
    ///
    /// [`HarnessError::PlanFormat`] on malformed text, an unsupported
    /// version, or an invalid grid.
    pub fn from_json(text: &str) -> Result<(SweepPlan, u64)> {
        let parsed = parse_sweep_plan(text).map_err(|message| HarnessError::PlanFormat {
            path: None,
            message,
        })?;
        parsed.0.validate()?;
        Ok(parsed)
    }

    /// Writes the sealed plan file (`sweep.json`) into the sweep
    /// directory.
    pub fn save(&self, dir: &Path, ambient: u64) -> Result<()> {
        let path = plan_path(dir);
        crate::persist::save_sealed(&path, &self.to_json(ambient)).map_err(|e| HarnessError::Io {
            path,
            message: format!("write sweep plan: {e}"),
        })
    }

    /// Loads the sealed plan file from a sweep directory, returning the
    /// plan and its recorded config hash.
    pub fn load(dir: &Path) -> Result<(SweepPlan, u64)> {
        let path = plan_path(dir);
        let loaded = crate::persist::load_sealed(&path).map_err(|e| HarnessError::Io {
            path: path.clone(),
            message: format!("read sweep plan: {e}"),
        })?;
        SweepPlan::from_json(&loaded.payload).map_err(|e| match e {
            HarnessError::PlanFormat { message, .. } => HarnessError::PlanFormat {
                path: Some(path),
                message,
            },
            other => other,
        })
    }
}

/// Where the sealed plan lives inside a sweep directory.
pub fn plan_path(dir: &Path) -> std::path::PathBuf {
    dir.join("sweep.json")
}

fn parse_sweep_plan(text: &str) -> std::result::Result<(SweepPlan, u64), String> {
    let root = Json::parse(text)?;
    let version = root
        .get("version")
        .and_then(Json::as_u64)
        .ok_or("missing unsigned integer field \"version\"")?;
    if version != SWEEP_PLAN_VERSION {
        return Err(format!(
            "unsupported sweep plan version {version} (this build reads version \
             {SWEEP_PLAN_VERSION})"
        ));
    }
    let name = root
        .get("name")
        .and_then(Json::as_str)
        .ok_or("missing string field \"name\"")?;
    let executor = root
        .get("executor")
        .and_then(Json::as_str)
        .ok_or("missing string field \"executor\"")?;
    let unit_timeout_secs = root
        .get("unit_timeout_secs")
        .and_then(Json::as_f64)
        .ok_or("missing numeric field \"unit_timeout_secs\"")?;
    let seed = root
        .get("seed")
        .and_then(Json::as_u64)
        .ok_or("missing unsigned integer field \"seed\"")?;
    let config_hash = root
        .get("config_hash")
        .and_then(Json::as_u64)
        .ok_or("missing unsigned integer field \"config_hash\"")?;
    let axes_json = root
        .get("axes")
        .and_then(Json::as_array)
        .ok_or("missing array field \"axes\"")?;
    let mut grid = SweepGrid::new(name);
    for (i, axis) in axes_json.iter().enumerate() {
        let axis_name = axis
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("axis #{i}: missing string field \"name\""))?;
        let values = axis
            .get("values")
            .and_then(Json::as_array)
            .ok_or_else(|| format!("axis #{i}: missing array field \"values\""))?;
        let values: Vec<String> = values
            .iter()
            .map(|v| {
                v.as_str()
                    .map(str::to_string)
                    .ok_or_else(|| format!("axis #{i}: values must be strings"))
            })
            .collect::<std::result::Result<_, _>>()?;
        grid = grid.axis(axis_name, values);
    }
    Ok((
        SweepPlan {
            grid,
            executor: executor.to_string(),
            unit_timeout_secs,
            seed,
        },
        config_hash,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SweepPlan {
        let mut plan = SweepPlan::new(
            SweepGrid::new("mini")
                .axis("vars", ["50", "100"])
                .axis("ratio", ["4.0", "4.3"])
                .axis("seed", ["0", "1", "2"]),
        );
        plan.unit_timeout_secs = 5.0;
        plan.seed = 7;
        plan
    }

    #[test]
    fn expansion_is_deterministic_and_last_axis_fastest() {
        let plan = sample();
        let units = plan.grid.units();
        assert_eq!(units.len(), 12);
        assert_eq!(units[0].id, "unit-00000");
        assert_eq!(units[0].param("vars"), Some("50"));
        assert_eq!(units[0].param("seed"), Some("0"));
        assert_eq!(units[1].param("seed"), Some("1"));
        assert_eq!(units[3].param("ratio"), Some("4.3"));
        assert_eq!(units[11].param("vars"), Some("100"));
        assert_eq!(units[11].param("seed"), Some("2"));
        assert_eq!(units, plan.grid.units(), "expansion is pure");
    }

    #[test]
    fn plan_round_trips_with_hash() {
        let plan = sample();
        let text = plan.to_json(0xdead);
        let (back, hash) = SweepPlan::from_json(&text).expect("round trip");
        assert_eq!(back, plan);
        assert_eq!(hash, plan.config_hash(0xdead));
    }

    #[test]
    fn config_hash_tracks_grid_executor_and_ambient() {
        let plan = sample();
        let base = plan.config_hash(1);
        assert_eq!(base, sample().config_hash(1));
        assert_ne!(base, plan.config_hash(2), "ambient drift changes the hash");
        let mut edited = sample();
        edited.grid.axes[0].1.push("200".to_string());
        assert_ne!(base, edited.config_hash(1));
        let mut other_exec = sample();
        other_exec.executor = "atlas".to_string();
        assert_ne!(base, other_exec.config_hash(1));
        let mut other_budget = sample();
        other_budget.unit_timeout_secs = 6.0;
        assert_ne!(base, other_budget.config_hash(1));
    }

    #[test]
    fn parse_spec_handles_the_cli_grammar() {
        let grid = SweepGrid::parse_spec("g", "vars=50,100; ratio=4.3 ;seed=0,1").expect("parses");
        assert_eq!(grid.axes.len(), 3);
        assert_eq!(grid.unit_count(), 4, "2 vars x 1 ratio x 2 seeds");
        assert!(SweepGrid::parse_spec("g", "noequals").is_err());
        assert!(SweepGrid::parse_spec("g", "").is_err(), "no axes");
        assert!(SweepGrid::parse_spec("g", "a=").is_err(), "no values");
        assert!(SweepGrid::parse_spec("g", "sp ace=1").is_err());
        assert!(SweepGrid::parse_spec("g", "a=1;a=2").is_err(), "dup axis");
    }

    #[test]
    fn validation_bounds_the_expansion() {
        let mut plan = sample();
        plan.unit_timeout_secs = -1.0;
        assert!(plan.validate().is_err());
        let huge: Vec<String> = (0..1001).map(|i| i.to_string()).collect();
        let grid = SweepGrid::new("huge")
            .axis("a", huge.clone())
            .axis("b", huge);
        assert!(grid.validate().is_err(), "1001^2 exceeds MAX_UNITS");
    }
}
