//! Streaming aggregation of sweep samples: P² percentiles, metric
//! summaries, and the compact columnar result store.
//!
//! A full hardness atlas folds millions of samples; holding them all to
//! sort for percentiles defeats the point of streaming segments. The
//! [`P2Quantile`] estimator (Jain & Chlamtac's P² algorithm, 1985)
//! tracks one quantile in five markers — O(1) memory, one pass — which
//! is accurate to well under a percent on the unimodal distributions
//! (conflicts, clause/var ratio, wall time) the atlas cares about. The
//! coordinator folds each metric through a [`MetricStats`] (count / min
//! / max / mean + p50/p90/p99) and writes two artifacts:
//!
//! * `atlas.json` — the sealed [`SweepAggregates`] report;
//! * `columns.json` — a sealed columnar store (parallel arrays keyed by
//!   unit id) that downstream analysis loads without re-reading every
//!   segment.

use std::io;
use std::path::Path;

use crate::json::Json;
use crate::sweep::segment::{SampleRecord, SegmentFold};

/// One-quantile P² estimator (Jain & Chlamtac): five markers whose
/// heights approximate the quantile after parabolic adjustment on every
/// observation.
#[derive(Debug, Clone)]
pub struct P2Quantile {
    q: f64,
    /// Marker heights (sorted ascending once primed).
    heights: [f64; 5],
    /// Marker positions, 1-based as in the paper.
    positions: [f64; 5],
    /// Desired marker positions.
    desired: [f64; 5],
    /// Per-observation increments of the desired positions.
    increments: [f64; 5],
    /// Observations seen; the first five only prime the markers.
    count: usize,
}

impl P2Quantile {
    /// An estimator for quantile `q` in `(0, 1)`.
    pub fn new(q: f64) -> P2Quantile {
        P2Quantile {
            q,
            heights: [0.0; 5],
            positions: [1.0, 2.0, 3.0, 4.0, 5.0],
            desired: [1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0],
            increments: [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0],
            count: 0,
        }
    }

    /// Feeds one observation.
    pub fn observe(&mut self, x: f64) {
        if !x.is_finite() {
            return;
        }
        if self.count < 5 {
            self.heights[self.count] = x;
            self.count += 1;
            if self.count == 5 {
                self.heights.sort_by(f64::total_cmp);
            }
            return;
        }
        self.count += 1;

        // Find the cell k with heights[k] <= x < heights[k+1], clamping
        // the extremes to the observed min/max.
        let k = if x < self.heights[0] {
            self.heights[0] = x;
            0
        } else if x >= self.heights[4] {
            self.heights[4] = x;
            3
        } else {
            // One of the middle cells.
            let mut cell = 0;
            for i in 0..4 {
                if x >= self.heights[i] && x < self.heights[i + 1] {
                    cell = i;
                    break;
                }
            }
            cell
        };
        for pos in self.positions.iter_mut().skip(k + 1) {
            *pos += 1.0;
        }
        for (d, inc) in self.desired.iter_mut().zip(self.increments) {
            *d += inc;
        }

        // Adjust the three interior markers toward their desired
        // positions, parabolically when possible, linearly otherwise.
        for i in 1..4 {
            let delta = self.desired[i] - self.positions[i];
            let right = self.positions[i + 1] - self.positions[i];
            let left = self.positions[i - 1] - self.positions[i];
            if (delta >= 1.0 && right > 1.0) || (delta <= -1.0 && left < -1.0) {
                let d = delta.signum();
                let parabolic = self.heights[i]
                    + d / (self.positions[i + 1] - self.positions[i - 1])
                        * ((self.positions[i] - self.positions[i - 1] + d)
                            * (self.heights[i + 1] - self.heights[i])
                            / right
                            + (self.positions[i + 1] - self.positions[i] - d)
                                * (self.heights[i] - self.heights[i - 1])
                                / -left);
                self.heights[i] =
                    if self.heights[i - 1] < parabolic && parabolic < self.heights[i + 1] {
                        parabolic
                    } else if d > 0.0 {
                        // Linear fallback toward the right neighbour.
                        self.heights[i] + (self.heights[i + 1] - self.heights[i]) / right
                    } else {
                        self.heights[i] + (self.heights[i - 1] - self.heights[i]) / -left
                    };
                self.positions[i] += d;
            }
        }
    }

    /// The current estimate; exact (sorted interpolation) while fewer
    /// than five observations have been seen, `None` with zero.
    pub fn value(&self) -> Option<f64> {
        match self.count {
            0 => None,
            n @ 1..=4 => {
                let mut sorted = self.heights[..n].to_vec();
                sorted.sort_by(f64::total_cmp);
                // Nearest-rank on the tiny prefix.
                let rank = ((self.q * n as f64).ceil() as usize).clamp(1, n);
                Some(sorted[rank - 1])
            }
            _ => Some(self.heights[2]),
        }
    }
}

/// Streaming count/min/max/mean plus p50/p90/p99 for one metric.
#[derive(Debug, Clone)]
pub struct MetricStats {
    count: u64,
    min: f64,
    max: f64,
    sum: f64,
    p50: P2Quantile,
    p90: P2Quantile,
    p99: P2Quantile,
}

impl Default for MetricStats {
    fn default() -> MetricStats {
        MetricStats::new()
    }
}

impl MetricStats {
    /// An empty accumulator.
    pub fn new() -> MetricStats {
        MetricStats {
            count: 0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            sum: 0.0,
            p50: P2Quantile::new(0.50),
            p90: P2Quantile::new(0.90),
            p99: P2Quantile::new(0.99),
        }
    }

    /// Feeds one observation (non-finite values are ignored).
    pub fn observe(&mut self, x: f64) {
        if !x.is_finite() {
            return;
        }
        self.count += 1;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
        self.sum += x;
        self.p50.observe(x);
        self.p90.observe(x);
        self.p99.observe(x);
    }

    /// Snapshot of the accumulated summary.
    pub fn summary(&self) -> MetricSummary {
        let or_zero = |v: Option<f64>| v.unwrap_or(0.0);
        MetricSummary {
            count: self.count,
            min: if self.count == 0 { 0.0 } else { self.min },
            max: if self.count == 0 { 0.0 } else { self.max },
            mean: if self.count == 0 {
                0.0
            } else {
                self.sum / self.count as f64
            },
            p50: or_zero(self.p50.value()),
            p90: or_zero(self.p90.value()),
            p99: or_zero(self.p99.value()),
        }
    }
}

/// A finished metric summary, as reported in `atlas.json`.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricSummary {
    /// Observations folded.
    pub count: u64,
    /// Smallest observation (0 when empty).
    pub min: f64,
    /// Largest observation (0 when empty).
    pub max: f64,
    /// Arithmetic mean (0 when empty).
    pub mean: f64,
    /// Streaming median estimate.
    pub p50: f64,
    /// Streaming 90th-percentile estimate.
    pub p90: f64,
    /// Streaming 99th-percentile estimate.
    pub p99: f64,
}

impl MetricSummary {
    fn to_json(&self) -> Json {
        Json::Object(vec![
            ("count".to_string(), Json::Int(self.count)),
            ("min".to_string(), Json::Float(self.min)),
            ("max".to_string(), Json::Float(self.max)),
            ("mean".to_string(), Json::Float(self.mean)),
            ("p50".to_string(), Json::Float(self.p50)),
            ("p90".to_string(), Json::Float(self.p90)),
            ("p99".to_string(), Json::Float(self.p99)),
        ])
    }
}

/// The aggregate report of a sweep: per-metric summaries, verdict
/// counts, and the robustness counters that prove (or disprove) the
/// exactly-once invariant.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepAggregates {
    /// Units the grid expands to.
    pub units: u64,
    /// Units with a folded sample (== `units` on a complete sweep).
    pub samples: u64,
    /// Suppressed duplicate records (steal/speculation races).
    pub duplicates: u64,
    /// Checksum-failing segment lines.
    pub invalid_lines: u64,
    /// Segments that ended in a torn tail.
    pub torn_tails: u64,
    /// Folded samples executed under a stolen lease.
    pub stolen: u64,
    /// Folded samples from speculative re-execution.
    pub speculative: u64,
    /// Solver conflicts per unit.
    pub conflicts: MetricSummary,
    /// Clause/variable ratio per unit.
    pub clause_var_ratio: MetricSummary,
    /// Wall seconds per unit.
    pub wall_secs: MetricSummary,
    /// Verdict → count, sorted by verdict.
    pub verdicts: Vec<(String, u64)>,
}

/// Folds the per-unit samples into the aggregate report.
pub fn aggregate(fold: &SegmentFold, units: usize) -> SweepAggregates {
    let mut conflicts = MetricStats::new();
    let mut ratio = MetricStats::new();
    let mut wall = MetricStats::new();
    let mut verdicts: std::collections::BTreeMap<String, u64> = std::collections::BTreeMap::new();
    for sample in fold.samples.values() {
        conflicts.observe(sample.conflicts as f64);
        ratio.observe(sample.clause_var_ratio);
        wall.observe(sample.wall_secs);
        *verdicts.entry(sample.verdict.clone()).or_insert(0) += 1;
    }
    SweepAggregates {
        units: units as u64,
        samples: fold.samples.len() as u64,
        duplicates: fold.duplicates as u64,
        invalid_lines: fold.invalid_lines as u64,
        torn_tails: fold.torn_tails as u64,
        stolen: fold.stolen as u64,
        speculative: fold.speculative as u64,
        conflicts: conflicts.summary(),
        clause_var_ratio: ratio.summary(),
        wall_secs: wall.summary(),
        verdicts: verdicts.into_iter().collect(),
    }
}

impl SweepAggregates {
    /// Serializes the report (the payload of the sealed `atlas.json`).
    pub fn to_json(&self) -> String {
        Json::Object(vec![
            ("units".to_string(), Json::Int(self.units)),
            ("samples".to_string(), Json::Int(self.samples)),
            ("duplicates".to_string(), Json::Int(self.duplicates)),
            ("invalid_lines".to_string(), Json::Int(self.invalid_lines)),
            ("torn_tails".to_string(), Json::Int(self.torn_tails)),
            ("stolen".to_string(), Json::Int(self.stolen)),
            ("speculative".to_string(), Json::Int(self.speculative)),
            ("conflicts".to_string(), self.conflicts.to_json()),
            (
                "clause_var_ratio".to_string(),
                self.clause_var_ratio.to_json(),
            ),
            ("wall_secs".to_string(), self.wall_secs.to_json()),
            (
                "verdicts".to_string(),
                Json::Object(
                    self.verdicts
                        .iter()
                        .map(|(v, n)| (v.clone(), Json::Int(*n)))
                        .collect(),
                ),
            ),
        ])
        .to_text()
    }

    /// Writes the sealed report file.
    pub fn save(&self, path: &Path) -> io::Result<()> {
        crate::persist::save_sealed(path, &self.to_json())
    }
}

/// Writes the compact columnar result store: one sealed JSON object of
/// parallel arrays (`unit[i]`, `verdict[i]`, `conflicts[i]`, ...) in
/// unit-id order. Downstream analysis gets every per-unit number without
/// re-folding segments.
pub fn write_columns<'a, I>(path: &Path, samples: I) -> io::Result<()>
where
    I: IntoIterator<Item = &'a SampleRecord>,
{
    let mut unit = Vec::new();
    let mut worker = Vec::new();
    let mut verdict = Vec::new();
    let mut conflicts = Vec::new();
    let mut vars = Vec::new();
    let mut clauses = Vec::new();
    let mut ratio = Vec::new();
    let mut wall = Vec::new();
    for s in samples {
        unit.push(Json::Str(s.unit.clone()));
        worker.push(Json::Str(s.worker.clone()));
        verdict.push(Json::Str(s.verdict.clone()));
        conflicts.push(Json::Int(s.conflicts));
        vars.push(Json::Int(s.vars));
        clauses.push(Json::Int(s.clauses));
        ratio.push(Json::Float(s.clause_var_ratio));
        wall.push(Json::Float(s.wall_secs));
    }
    let payload = Json::Object(vec![
        ("version".to_string(), Json::Int(1)),
        ("rows".to_string(), Json::Int(unit.len() as u64)),
        (
            "columns".to_string(),
            Json::Object(vec![
                ("unit".to_string(), Json::Array(unit)),
                ("worker".to_string(), Json::Array(worker)),
                ("verdict".to_string(), Json::Array(verdict)),
                ("conflicts".to_string(), Json::Array(conflicts)),
                ("vars".to_string(), Json::Array(vars)),
                ("clauses".to_string(), Json::Array(clauses)),
                ("clause_var_ratio".to_string(), Json::Array(ratio)),
                ("wall_secs".to_string(), Json::Array(wall)),
            ]),
        ),
    ])
    .to_text();
    crate::persist::save_sealed(path, &payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic pseudo-random stream (xorshift) for estimator tests.
    fn xorshift(state: &mut u64) -> u64 {
        *state ^= *state << 13;
        *state ^= *state >> 7;
        *state ^= *state << 17;
        *state
    }

    #[test]
    fn p2_matches_exact_quantiles_on_uniform_data() {
        let mut state = 0x1234_5678_9abc_def0u64;
        let mut values = Vec::new();
        let mut p50 = P2Quantile::new(0.5);
        let mut p90 = P2Quantile::new(0.9);
        let mut p99 = P2Quantile::new(0.99);
        for _ in 0..20_000 {
            let x = (xorshift(&mut state) % 1_000_000) as f64 / 1_000_000.0;
            values.push(x);
            p50.observe(x);
            p90.observe(x);
            p99.observe(x);
        }
        values.sort_by(f64::total_cmp);
        let exact = |q: f64| values[((q * values.len() as f64) as usize).min(values.len() - 1)];
        assert!((p50.value().expect("nonempty") - exact(0.5)).abs() < 0.02);
        assert!((p90.value().expect("nonempty") - exact(0.9)).abs() < 0.02);
        assert!((p99.value().expect("nonempty") - exact(0.99)).abs() < 0.02);
    }

    #[test]
    fn p2_is_exact_on_tiny_streams() {
        let mut p50 = P2Quantile::new(0.5);
        assert_eq!(p50.value(), None);
        for x in [5.0, 1.0, 3.0] {
            p50.observe(x);
        }
        assert_eq!(p50.value(), Some(3.0));
        let mut p99 = P2Quantile::new(0.99);
        p99.observe(7.0);
        assert_eq!(p99.value(), Some(7.0));
    }

    #[test]
    fn metric_stats_summary_is_consistent() {
        let mut m = MetricStats::new();
        for x in 1..=100 {
            m.observe(f64::from(x));
        }
        let s = m.summary();
        assert_eq!(s.count, 100);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 100.0);
        assert!((s.mean - 50.5).abs() < 1e-9);
        assert!((s.p50 - 50.0).abs() <= 2.0, "p50 {}", s.p50);
        assert!((s.p90 - 90.0).abs() <= 3.0, "p90 {}", s.p90);
        // Empty stats degrade to zeros, not NaN.
        let empty = MetricStats::new().summary();
        assert_eq!(empty.count, 0);
        assert_eq!(empty.mean, 0.0);
    }

    #[test]
    fn aggregate_report_round_trips_as_json() {
        use crate::sweep::segment::SampleRecord;
        let mut fold = SegmentFold::default();
        for i in 0..10 {
            fold.samples.insert(
                format!("unit-{i:05}"),
                SampleRecord {
                    unit: format!("unit-{i:05}"),
                    worker: "w0".to_string(),
                    stolen: i == 3,
                    speculative: false,
                    verdict: if i % 2 == 0 { "sat" } else { "unsat" }.to_string(),
                    conflicts: 100 + i,
                    vars: 50,
                    clauses: 215,
                    clause_var_ratio: 4.3,
                    wall_secs: 0.1,
                },
            );
        }
        fold.stolen = 1;
        let agg = aggregate(&fold, 10);
        assert_eq!(agg.samples, 10);
        assert_eq!(agg.stolen, 1);
        assert_eq!(agg.verdicts.len(), 2);
        let text = agg.to_json();
        let parsed = Json::parse(&text).expect("valid json");
        assert_eq!(parsed.get("samples").and_then(Json::as_u64), Some(10));
        assert_eq!(
            parsed
                .get("verdicts")
                .and_then(|v| v.get("sat"))
                .and_then(Json::as_u64),
            Some(5)
        );
    }
}
