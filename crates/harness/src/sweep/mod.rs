//! Fault-tolerant distributed sweep executor for the hardness atlas.
//!
//! A *sweep* fans a parameter grid (instance sizes × clause/variable
//! ratios × seeds, or any axes) across N isolated OS worker processes
//! and folds their measurements into streaming percentile aggregates.
//! Coordination is entirely file-based and partition-tolerant:
//!
//! * [`grid`] — the parameter grid, work units, and the sealed plan
//!   file whose config hash folds in the `FULLLOCK_*` ambient
//!   environment fingerprint (resume refuses drifted environments).
//! * [`lease`] — work units are claimed by atomically-created lease
//!   files with heartbeat renewal; expired or corrupt leases are
//!   *stolen* by live workers, so a SIGKILLed worker's units migrate
//!   without coordinator help.
//! * [`segment`] — workers stream results as checksummed append-only
//!   segment files; a torn tail truncates to the last valid record and
//!   the fold is first-wins per unit, which is where exactly-once
//!   actually lives.
//! * [`mod@aggregate`] — streaming P² percentile estimators (p50/p90/p99
//!   without retaining samples) and the compact columnar result store.
//! * [`worker`] — the claim → execute → durable-append → first-wins
//!   settle loop, plus speculative re-execution of stragglers past a
//!   percentile deadline.
//! * [`coordinator`] — process lifecycle, respawn, resume
//!   reconciliation (orphan markers re-run; recovered records settle),
//!   and the final fold.
//!
//! Chaos coverage injects through the `sweep.lease`, `sweep.segment`,
//! and `sweep.unit` failpoint sites (see `fulllock_sat::faults`).

pub mod aggregate;
pub mod coordinator;
pub mod grid;
pub mod lease;
pub mod segment;
pub mod worker;

pub use aggregate::{aggregate, MetricStats, MetricSummary, P2Quantile, SweepAggregates};
pub use coordinator::{reconcile_resume, run_sweep, ResumeReport, SweepConfig, SweepOutcome};
pub use grid::{SweepGrid, SweepPlan, WorkUnit};
pub use lease::{Lease, LeaseDir, LeaseState};
pub use segment::{fold_segments, SampleRecord, SegmentFold, SegmentWriter};
pub use worker::{
    run_worker, ExecContext, SatUnitExecutor, UnitExecutor, UnitSample, WorkerArgs, WorkerConfig,
    WorkerSummary,
};
