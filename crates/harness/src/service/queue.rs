//! The persistent sharded job queue behind `fulllock serve`.
//!
//! Every queue mutation lands on disk before the server acknowledges it:
//! jobs are assigned to one of N shard files (`queue/shard-NN.json`,
//! FNV-hashed by job id) and each state transition rewrites only the
//! affected shard through [`crate::persist::save_sealed`] — checksummed
//! envelope, atomic rename, previous generation kept. A SIGKILL at any
//! instant leaves every shard either at its pre- or post-transition
//! state, never torn; a corrupt shard falls back to its previous
//! generation on load.
//!
//! Restart semantics give exactly-once *recorded* completion: a job found
//! in the `running` state on load was in flight when the server died, so
//! it is re-queued (`pending`, with [`ServiceJob::interrupted`] set) and
//! runs again — attack jobs pick their `AttackCheckpoint` back up instead
//! of re-buying oracle queries. A job already `done` stays done and is
//! never re-launched, so [`ServiceJob::completions`] reaching 2 would be
//! a supervision bug, and tests assert it stays at 1.
//!
//! # Shard quarantine
//!
//! When a shard file cannot be sealed (real disk trouble, or the
//! [`queue.seal`](fulllock_sat::faults::site::QUEUE_SEAL) failpoint
//! firing `enospc`/`eio`), the shard is *quarantined*: the save error
//! propagates to the caller — the server refuses the request with a
//! typed error instead of acking state it could not persist — and
//! further writes to that shard keep failing fast until
//! [`ShardedQueue::retry_quarantined`] manages a clean save. A `torn`
//! action at the same site is the nastier case: the write lies, the
//! shard lands truncated, and only the next [`ShardedQueue::open`]
//! notices — which is exactly why every save keeps the previous
//! generation.

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

use fulllock_sat::faults::{self, FaultAction};

use crate::json::Json;
use crate::plan::JobSpec;
use crate::{persist, HarnessError, Result};

/// Version tag of the shard file schema.
pub const QUEUE_VERSION: u64 = 1;

/// Lifecycle of a service job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Accepted, waiting for a worker.
    Pending,
    /// A worker is executing its child process.
    Running,
    /// Completed successfully (exit 0). Terminal.
    Done,
    /// Exhausted its attempts or was refused by a quota. Terminal.
    Failed,
    /// Canceled by request. Terminal.
    Canceled,
}

impl JobState {
    /// Stable wire/disk name.
    pub fn as_str(self) -> &'static str {
        match self {
            JobState::Pending => "pending",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed => "failed",
            JobState::Canceled => "canceled",
        }
    }

    /// Inverse of [`as_str`](Self::as_str).
    pub fn parse(s: &str) -> Option<JobState> {
        Some(match s {
            "pending" => JobState::Pending,
            "running" => JobState::Running,
            "done" => JobState::Done,
            "failed" => JobState::Failed,
            "canceled" => JobState::Canceled,
            _ => return None,
        })
    }

    /// Whether the job will never run again.
    pub fn is_terminal(self) -> bool {
        matches!(self, JobState::Done | JobState::Failed | JobState::Canceled)
    }
}

/// One job in the service queue: the command to run plus its supervision
/// record.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceJob {
    /// Job identity (equals `spec.id`; the queue-wide uniqueness key).
    pub id: String,
    /// Owning tenant (quota ledger key).
    pub tenant: String,
    /// The command to execute. `{job_dir}` in the program, any argument,
    /// or any environment value is substituted with the job's scratch
    /// directory at launch.
    pub spec: JobSpec,
    /// Current lifecycle state.
    pub state: JobState,
    /// Execution attempts started so far.
    pub attempts: u32,
    /// Global submission sequence number (FIFO scheduling order).
    pub seq: u64,
    /// Times this job transitioned into [`JobState::Done`]. Stays ≤ 1
    /// under correct supervision — the exactly-once audit counter.
    pub completions: u64,
    /// Why the last attempt failed, if it did.
    pub last_error: Option<String>,
    /// Solver conflicts charged to the tenant for this job (parsed from
    /// the job's report at completion).
    pub charged_conflicts: u64,
    /// Wall-clock seconds charged to the tenant for this job.
    pub charged_wall_secs: f64,
    /// Whether a server shutdown interrupted this job mid-run at least
    /// once (it was found `running` on restart, or drained). Informational.
    pub interrupted: bool,
}

impl ServiceJob {
    /// A freshly submitted job.
    pub fn new(tenant: impl Into<String>, spec: JobSpec, seq: u64) -> ServiceJob {
        ServiceJob {
            id: spec.id.clone(),
            tenant: tenant.into(),
            spec,
            state: JobState::Pending,
            attempts: 0,
            seq,
            completions: 0,
            last_error: None,
            charged_conflicts: 0,
            charged_wall_secs: 0.0,
            interrupted: false,
        }
    }

    fn to_json(&self) -> Json {
        let mut spec_members = vec![
            ("program".to_string(), Json::Str(self.spec.program.clone())),
            (
                "args".to_string(),
                Json::Array(self.spec.args.iter().cloned().map(Json::Str).collect()),
            ),
            (
                "env".to_string(),
                Json::Object(
                    self.spec
                        .env
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::Str(v.clone())))
                        .collect(),
                ),
            ),
        ];
        if let Some(t) = self.spec.timeout_secs {
            spec_members.push(("timeout_secs".to_string(), Json::Float(t)));
        }
        if let Some(n) = self.spec.max_attempts {
            spec_members.push(("max_attempts".to_string(), Json::Int(u64::from(n))));
        }
        Json::Object(vec![
            ("id".to_string(), Json::Str(self.id.clone())),
            ("tenant".to_string(), Json::Str(self.tenant.clone())),
            ("spec".to_string(), Json::Object(spec_members)),
            (
                "state".to_string(),
                Json::Str(self.state.as_str().to_string()),
            ),
            ("attempts".to_string(), Json::Int(u64::from(self.attempts))),
            ("seq".to_string(), Json::Int(self.seq)),
            ("completions".to_string(), Json::Int(self.completions)),
            (
                "last_error".to_string(),
                match &self.last_error {
                    Some(e) => Json::Str(e.clone()),
                    None => Json::Null,
                },
            ),
            (
                "charged_conflicts".to_string(),
                Json::Int(self.charged_conflicts),
            ),
            (
                "charged_wall_secs".to_string(),
                Json::Float(self.charged_wall_secs),
            ),
            ("interrupted".to_string(), Json::Bool(self.interrupted)),
        ])
    }

    fn from_json(json: &Json) -> std::result::Result<ServiceJob, String> {
        let str_field = |name: &str| {
            json.get(name)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("job missing string field {name:?}"))
        };
        let int_field = |name: &str| {
            json.get(name)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("job field {name:?} must be an unsigned integer"))
        };
        let id = str_field("id")?;
        let spec_json = json.get("spec").ok_or("job missing field \"spec\"")?;
        let mut spec = JobSpec::new(
            id.clone(),
            spec_json
                .get("program")
                .and_then(Json::as_str)
                .ok_or("spec missing string field \"program\"")?,
        );
        for a in spec_json
            .get("args")
            .and_then(Json::as_array)
            .ok_or("spec field \"args\" must be an array")?
        {
            spec.args
                .push(a.as_str().ok_or("spec args must be strings")?.to_string());
        }
        match spec_json.get("env").ok_or("spec missing field \"env\"")? {
            Json::Object(members) => {
                for (k, v) in members {
                    let v = v.as_str().ok_or("spec env values must be strings")?;
                    spec.env.push((k.clone(), v.to_string()));
                }
            }
            _ => return Err("spec field \"env\" must be an object".to_string()),
        }
        if let Some(t) = spec_json.get("timeout_secs") {
            spec.timeout_secs = Some(t.as_f64().ok_or("spec \"timeout_secs\" must be a number")?);
        }
        if let Some(n) = spec_json.get("max_attempts") {
            spec.max_attempts = Some(
                n.as_u64()
                    .and_then(|n| u32::try_from(n).ok())
                    .ok_or("spec \"max_attempts\" must fit u32")?,
            );
        }
        let state_name = str_field("state")?;
        let state = JobState::parse(&state_name)
            .ok_or_else(|| format!("unknown job state {state_name:?}"))?;
        let last_error = match json.get("last_error") {
            None | Some(Json::Null) => None,
            Some(v) => Some(
                v.as_str()
                    .ok_or("job field \"last_error\" must be a string or null")?
                    .to_string(),
            ),
        };
        Ok(ServiceJob {
            id,
            tenant: str_field("tenant")?,
            spec,
            state,
            attempts: u32::try_from(int_field("attempts")?)
                .map_err(|_| "job field \"attempts\" must fit u32".to_string())?,
            seq: int_field("seq")?,
            completions: int_field("completions")?,
            last_error,
            charged_conflicts: int_field("charged_conflicts")?,
            charged_wall_secs: json
                .get("charged_wall_secs")
                .and_then(Json::as_f64)
                .ok_or("job field \"charged_wall_secs\" must be a number")?,
            interrupted: json
                .get("interrupted")
                .and_then(Json::as_bool)
                .ok_or("job field \"interrupted\" must be a boolean")?,
        })
    }
}

/// Per-state job counts plus the queue-wide completion total — the
/// health verb's view of the queue, computed in one pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueueCounts {
    /// Jobs waiting for a worker.
    pub pending: usize,
    /// Jobs currently executing.
    pub running: usize,
    /// Jobs completed successfully.
    pub done: usize,
    /// Jobs that exhausted their attempts.
    pub failed: usize,
    /// Jobs canceled by request.
    pub canceled: usize,
    /// Sum of every job's `completions` counter (exactly-once audit:
    /// must equal `done` under correct supervision).
    pub completions: u64,
}

/// The in-memory queue plus its on-disk shard files.
#[derive(Debug)]
pub struct ShardedQueue {
    dir: PathBuf,
    shards: u32,
    jobs: Vec<ServiceJob>,
    next_seq: u64,
    /// Shards whose last seal failed; writes to them fail fast until
    /// [`retry_quarantined`](Self::retry_quarantined) recovers them.
    quarantined: BTreeSet<u32>,
    /// Jobs found `running` at load time (interrupted by the previous
    /// server's death) — informational, consumed by the server's log line.
    pub recovered: usize,
}

impl ShardedQueue {
    /// Opens (or initializes) the queue under `dir` with the given shard
    /// count. Jobs found in the `running` state are re-queued as
    /// `pending` with [`ServiceJob::interrupted`] set — the previous
    /// server died mid-flight; their attempt counters are preserved.
    ///
    /// # Errors
    ///
    /// [`HarnessError::Io`] when the directory or a shard cannot be read,
    /// [`HarnessError::ManifestFormat`] when a shard's surviving
    /// generation is unparseable.
    pub fn open(dir: &Path, shards: u32) -> Result<ShardedQueue> {
        let shards = shards.max(1);
        std::fs::create_dir_all(dir).map_err(|e| HarnessError::Io {
            path: dir.to_path_buf(),
            message: format!("create queue directory: {e}"),
        })?;
        let mut jobs: Vec<ServiceJob> = Vec::new();
        let mut recovered = 0;
        for shard in 0..shards {
            let path = shard_path(dir, shard);
            if !path.exists() && !crate::persist::with_suffix(&path, ".1").exists() {
                continue;
            }
            let loaded = persist::load_sealed(&path).map_err(|e| HarnessError::Io {
                path: path.clone(),
                message: format!("read shard: {e}"),
            })?;
            if loaded.from_previous {
                eprintln!(
                    "warning: queue shard {} failed its checksum; using previous generation",
                    path.display()
                );
            }
            let mut shard_jobs =
                parse_shard(&loaded.payload).map_err(|message| HarnessError::ManifestFormat {
                    path: path.clone(),
                    message,
                })?;
            for job in &mut shard_jobs {
                if job.state == JobState::Running {
                    job.state = JobState::Pending;
                    job.interrupted = true;
                    recovered += 1;
                }
            }
            jobs.extend(shard_jobs);
        }
        jobs.sort_by_key(|j| j.seq);
        let next_seq = jobs.iter().map(|j| j.seq + 1).max().unwrap_or(0);
        Ok(ShardedQueue {
            dir: dir.to_path_buf(),
            shards,
            jobs,
            next_seq,
            quarantined: BTreeSet::new(),
            recovered,
        })
    }

    /// The shard index a job id maps to.
    pub fn shard_of(&self, id: &str) -> u32 {
        (fnv1a_str(id) % u64::from(self.shards)) as u32
    }

    /// Inserts a freshly submitted job and persists its shard.
    ///
    /// # Errors
    ///
    /// [`HarnessError::PlanFormat`] on a duplicate id, [`HarnessError::Io`]
    /// when the shard cannot be written (the job is rolled back).
    pub fn submit(&mut self, tenant: &str, spec: JobSpec) -> Result<&ServiceJob> {
        if self.jobs.iter().any(|j| j.id == spec.id) {
            return Err(HarnessError::PlanFormat {
                path: None,
                message: format!("duplicate job id {:?}", spec.id),
            });
        }
        let job = ServiceJob::new(tenant, spec, self.next_seq);
        let id = job.id.clone();
        self.jobs.push(job);
        self.next_seq += 1;
        if let Err(e) = self.save_shard_of(&id) {
            self.jobs.retain(|j| j.id != id);
            self.next_seq -= 1;
            return Err(e);
        }
        Ok(self
            .jobs
            .iter()
            .find(|j| j.id == id)
            .expect("job was just inserted"))
    }

    /// Looks a job up by id.
    pub fn job(&self, id: &str) -> Option<&ServiceJob> {
        self.jobs.iter().find(|j| j.id == id)
    }

    /// Mutable lookup. Callers persist with
    /// [`save_shard_of`](Self::save_shard_of) after mutating.
    pub fn job_mut(&mut self, id: &str) -> Option<&mut ServiceJob> {
        self.jobs.iter_mut().find(|j| j.id == id)
    }

    /// All jobs in submission order.
    pub fn jobs(&self) -> &[ServiceJob] {
        &self.jobs
    }

    /// The oldest pending job not in `skip`, if any (FIFO scheduling).
    pub fn next_pending(&self, skip: &dyn Fn(&ServiceJob) -> bool) -> Option<&ServiceJob> {
        self.jobs
            .iter()
            .filter(|j| j.state == JobState::Pending && !skip(j))
            .min_by_key(|j| j.seq)
    }

    /// Rewrites the shard holding `id` (atomic, sealed, previous
    /// generation kept).
    ///
    /// # Errors
    ///
    /// [`HarnessError::Io`] on any filesystem failure; the shard is
    /// quarantined until a later save succeeds.
    pub fn save_shard_of(&mut self, id: &str) -> Result<()> {
        self.save_shard(self.shard_of(id))
    }

    /// Rewrites every shard (used at drain time).
    ///
    /// # Errors
    ///
    /// [`HarnessError::Io`] on any filesystem failure.
    pub fn save_all(&mut self) -> Result<()> {
        for shard in 0..self.shards {
            self.save_shard(shard)?;
        }
        Ok(())
    }

    /// Whether the shard holding `id` is quarantined (its last seal
    /// failed). Submissions routed here must be refused — the queue
    /// cannot promise durability for them.
    pub fn is_quarantined(&self, id: &str) -> bool {
        self.quarantined.contains(&self.shard_of(id))
    }

    /// The currently quarantined shard indices, ascending.
    pub fn quarantined_shards(&self) -> Vec<u32> {
        self.quarantined.iter().copied().collect()
    }

    /// Retries the seal of every quarantined shard, releasing the ones
    /// that now persist cleanly. Returns how many shards recovered.
    pub fn retry_quarantined(&mut self) -> usize {
        let stuck: Vec<u32> = self.quarantined.iter().copied().collect();
        let mut recovered = 0;
        for shard in stuck {
            if self.save_shard(shard).is_ok() {
                recovered += 1;
            }
        }
        recovered
    }

    /// Per-state job counts and the completion total, in one pass.
    pub fn counts(&self) -> QueueCounts {
        let mut counts = QueueCounts::default();
        for job in &self.jobs {
            match job.state {
                JobState::Pending => counts.pending += 1,
                JobState::Running => counts.running += 1,
                JobState::Done => counts.done += 1,
                JobState::Failed => counts.failed += 1,
                JobState::Canceled => counts.canceled += 1,
            }
            counts.completions += job.completions;
        }
        counts
    }

    fn save_shard(&mut self, shard: u32) -> Result<()> {
        let path = shard_path(&self.dir, shard);
        // The queue.seal disk-fault site, indexed by shard: enospc/eio
        // fail the seal (and quarantine the shard), torn tears the file
        // on disk while this call *succeeds* — the lie only surfaces at
        // the next open, via the previous-generation fallback.
        let mut torn = false;
        match faults::evaluate(faults::site::QUEUE_SEAL, shard as usize) {
            Some(action @ (FaultAction::Enospc | FaultAction::Eio)) => {
                self.quarantined.insert(shard);
                return Err(HarnessError::Io {
                    path,
                    message: format!("save shard: injected {action} (queue.seal failpoint)"),
                });
            }
            Some(FaultAction::Torn) => torn = true,
            Some(delay @ FaultAction::DelayMs(_)) => faults::apply_delay(delay),
            Some(FaultAction::Panic) => panic!("queue.seal failpoint: injected panic"),
            _ => {}
        }
        let jobs: Vec<Json> = self
            .jobs
            .iter()
            .filter(|j| self.shard_of(&j.id) == shard)
            .map(ServiceJob::to_json)
            .collect();
        let payload = Json::Object(vec![
            ("version".to_string(), Json::Int(QUEUE_VERSION)),
            ("shard".to_string(), Json::Int(u64::from(shard))),
            ("jobs".to_string(), Json::Array(jobs)),
        ])
        .to_text();
        // A queue.seal tear has already decided the write's fate; a clean
        // seal still runs through save_sealed so the generic
        // persist.write/persist.sync sites cover shard files too.
        let saved = if torn {
            persist::save_sealed_raw(&path, &payload, true)
        } else {
            persist::save_sealed(&path, &payload)
        };
        match saved {
            Ok(()) => {
                self.quarantined.remove(&shard);
                Ok(())
            }
            Err(e) => {
                self.quarantined.insert(shard);
                Err(HarnessError::Io {
                    path,
                    message: format!("save shard: {e}"),
                })
            }
        }
    }
}

fn shard_path(dir: &Path, shard: u32) -> PathBuf {
    dir.join(format!("shard-{shard:02}.json"))
}

fn parse_shard(text: &str) -> std::result::Result<Vec<ServiceJob>, String> {
    let root = Json::parse(text)?;
    let version = root
        .get("version")
        .and_then(Json::as_u64)
        .ok_or("missing unsigned integer field \"version\"")?;
    if version != QUEUE_VERSION {
        return Err(format!(
            "unsupported queue version {version} (this build reads version {QUEUE_VERSION})"
        ));
    }
    root.get("jobs")
        .and_then(Json::as_array)
        .ok_or("missing array field \"jobs\"")?
        .iter()
        .map(ServiceJob::from_json)
        .collect()
}

/// FNV-1a over a string (shard assignment; stable across restarts).
fn fnv1a_str(s: &str) -> u64 {
    crate::json::fnv1a(s.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("fulllock-queue-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("temp dir");
        dir
    }

    fn spec(id: &str) -> JobSpec {
        JobSpec::new(id, "/bin/true").arg("x").env("K", "v")
    }

    #[test]
    fn submit_persists_and_reloads() {
        let dir = tmp_dir("roundtrip");
        let mut q = ShardedQueue::open(&dir, 4).expect("open");
        for i in 0..10 {
            q.submit("acme", spec(&format!("job-{i}"))).expect("submit");
        }
        let q2 = ShardedQueue::open(&dir, 4).expect("reopen");
        assert_eq!(q2.jobs().len(), 10);
        for (a, b) in q.jobs().iter().zip(q2.jobs()) {
            assert_eq!(a, b);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn duplicate_ids_are_rejected() {
        let dir = tmp_dir("dup");
        let mut q = ShardedQueue::open(&dir, 2).expect("open");
        q.submit("a", spec("same")).expect("first");
        assert!(q.submit("b", spec("same")).is_err());
        assert_eq!(q.jobs().len(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn running_jobs_requeue_on_reload() {
        let dir = tmp_dir("requeue");
        let mut q = ShardedQueue::open(&dir, 2).expect("open");
        q.submit("a", spec("interrupted")).expect("submit");
        q.submit("a", spec("finished")).expect("submit");
        q.job_mut("interrupted").expect("exists").state = JobState::Running;
        let done = q.job_mut("finished").expect("exists");
        done.state = JobState::Done;
        done.completions = 1;
        q.save_all().expect("save");

        let q2 = ShardedQueue::open(&dir, 2).expect("reopen");
        assert_eq!(q2.recovered, 1);
        let back = q2.job("interrupted").expect("exists");
        assert_eq!(back.state, JobState::Pending);
        assert!(back.interrupted);
        // A completed job stays completed: exactly-once.
        let done = q2.job("finished").expect("exists");
        assert_eq!(done.state, JobState::Done);
        assert_eq!(done.completions, 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn next_pending_is_fifo_with_skips() {
        let dir = tmp_dir("fifo");
        let mut q = ShardedQueue::open(&dir, 2).expect("open");
        q.submit("a", spec("first")).expect("submit");
        q.submit("a", spec("second")).expect("submit");
        assert_eq!(q.next_pending(&|_| false).expect("some").id, "first");
        assert_eq!(
            q.next_pending(&|j| j.id == "first").expect("some").id,
            "second"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_shard_falls_back_to_previous_generation() {
        let dir = tmp_dir("torn");
        let mut q = ShardedQueue::open(&dir, 1).expect("open");
        q.submit("a", spec("one")).expect("submit");
        q.submit("a", spec("two")).expect("submit");
        // Tear the primary shard mid-envelope.
        let path = shard_path(&dir, 0);
        let text = std::fs::read_to_string(&path).expect("read");
        std::fs::write(&path, &text[..text.len() / 2]).expect("tear");
        let q2 = ShardedQueue::open(&dir, 1).expect("fallback open");
        // Previous generation held only the first submission.
        assert_eq!(q2.jobs().len(), 1);
        assert_eq!(q2.jobs()[0].id, "one");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn shard_assignment_is_stable_and_spread() {
        let dir = tmp_dir("spread");
        let q = ShardedQueue::open(&dir, 8).expect("open");
        let mut hit = [false; 8];
        for i in 0..64 {
            hit[q.shard_of(&format!("job-{i}")) as usize] = true;
        }
        assert!(hit.iter().filter(|&&h| h).count() >= 4, "{hit:?}");
        std::fs::remove_dir_all(&dir).ok();
    }
}
