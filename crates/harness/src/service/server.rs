//! The `fulllock serve` daemon: listener, worker pool, quota ledger,
//! graceful drain.
//!
//! One thread accepts connections (Unix or TCP socket, newline-delimited
//! JSON — see [`super::protocol`]) and hands each to a short-lived
//! handler thread; a bounded pool of worker threads pulls pending jobs
//! off the [`super::queue::ShardedQueue`] in FIFO order and runs each as
//! a supervised child process, mirroring the campaign supervisor's
//! machinery: per-job deadline, SIGTERM → grace → SIGKILL escalation,
//! retry with backoff.
//!
//! ## Tenancy
//!
//! Every job belongs to a tenant, and every tenant has a
//! [`TenantQuota`]: an in-flight job cap enforced at *submit* time (an
//! over-quota submission is refused with a typed `concurrency_full`
//! error rather than queued) and cumulative conflict/wall budgets
//! enforced at submit and launch time. Completed jobs charge the solver
//! conflicts parsed from their `report.json` (if the child wrote one)
//! plus their wall time; charges are persisted per job and preloaded on
//! restart, so a tenant cannot reset its ledger by killing the server.
//!
//! ## Drain and crash recovery
//!
//! When the shutdown flag flips (SIGTERM in the CLI), the server stops
//! accepting connections, SIGTERMs in-flight children (attack jobs write
//! an `AttackCheckpoint` on the way down), re-queues those jobs as
//! `pending`/`interrupted` without consuming an attempt, flushes every
//! queue shard, and returns. A SIGKILL gets no courtesy, but the queue
//! is sealed-and-synced at every transition, so a restarted server
//! replays the same recovery path from disk: `running` jobs re-queue and
//! resume from their checkpoints, `done` jobs stay done — completions
//! are recorded exactly once.
//!
//! ## Overload and environment hardening
//!
//! The daemon assumes hostile clients and a hostile disk:
//!
//! * **Admission control** — submissions beyond
//!   [`ServiceConfig::max_pending`] queued jobs are refused with a typed
//!   `overloaded` error instead of queued, and connections beyond
//!   [`ServiceConfig::max_connections`] are turned away the same way, so
//!   load is shed at the edge and admitted jobs keep their latency.
//! * **Socket deadlines** — request lines are read in short timeout
//!   slices against a per-line deadline ([`ServiceConfig::io_timeout`]):
//!   a slow-loris client trickling bytes is disconnected with
//!   `deadline_exceeded`, an idle connection is closed quietly, and a
//!   line over [`ServiceConfig::max_request_line`] is refused with
//!   `request_too_large` before it can exhaust memory.
//! * **Accept backoff** — persistent `accept()` errors (EMFILE and
//!   friends) back the accept loop off exponentially instead of
//!   hot-spinning a warning loop.
//! * **Disk faults** — every queue seal runs through the `queue.seal` /
//!   `persist.write` / `persist.sync` fault sites. A shard that cannot
//!   be sealed is quarantined: submissions routed to it are refused with
//!   `shard_quarantined` (never acked-but-unsealed), and the watchdog
//!   retries the seal until the shard recovers.
//! * **Self-observation** — the `health` verb reports queue depth,
//!   worker liveness, quota pressure, connection load, and last-persist
//!   status; a watchdog thread recycles workers whose heartbeat goes
//!   stale past [`ServiceConfig::watchdog_timeout`].
//!
//! ## Fault injection
//!
//! Workers evaluate the [`fault site`](fulllock_sat::faults::site::SERVICE_WORKER)
//! `service.worker` before each launch (`panic` is caught and consumes
//! an attempt, `trigger` fails the launch spuriously, `delay:<ms>` slows
//! the worker), so the chaos suite can exercise the retry and recovery
//! paths deterministically. The disk-fault sites live further down the
//! stack, in [`crate::persist`] and [`super::queue`].

use std::collections::{HashMap, HashSet};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpListener;
#[cfg(unix)]
use std::os::unix::net::UnixListener;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::process::{Command, Stdio};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

use fulllock_sat::faults::{self, FaultAction};
use fulllock_sat::{QuotaSpec, TenantQuota};

use crate::retry::RetryPolicy;
use crate::service::protocol::{self, parse_request, ProtocolError, Request, PROTOCOL_VERSION};
use crate::service::queue::{JobState, ServiceJob, ShardedQueue};
use crate::{HarnessError, Result};

/// Where the daemon listens.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Endpoint {
    /// A Unix domain socket at this path (created at bind, removed on
    /// drain).
    Unix(PathBuf),
    /// A TCP address, e.g. `127.0.0.1:7171`.
    Tcp(String),
}

impl Endpoint {
    /// Parses a CLI endpoint: `tcp:HOST:PORT`, `unix:PATH`, or a bare
    /// filesystem path (treated as a Unix socket).
    pub fn parse(s: &str) -> std::result::Result<Endpoint, String> {
        if let Some(addr) = s.strip_prefix("tcp:") {
            if addr.is_empty() {
                return Err("empty TCP address".to_string());
            }
            Ok(Endpoint::Tcp(addr.to_string()))
        } else if let Some(path) = s.strip_prefix("unix:") {
            if path.is_empty() {
                return Err("empty socket path".to_string());
            }
            Ok(Endpoint::Unix(PathBuf::from(path)))
        } else if s.is_empty() {
            Err("empty endpoint".to_string())
        } else {
            Ok(Endpoint::Unix(PathBuf::from(s)))
        }
    }
}

impl std::fmt::Display for Endpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Endpoint::Unix(p) => write!(f, "unix:{}", p.display()),
            Endpoint::Tcp(a) => write!(f, "tcp:{a}"),
        }
    }
}

/// Configuration of one `fulllock serve` instance.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Where to listen.
    pub endpoint: Endpoint,
    /// State directory: `queue/` shards and per-job `jobs/<id>/` scratch
    /// directories live here.
    pub state_dir: PathBuf,
    /// Worker threads executing jobs (≥ 1).
    pub workers: usize,
    /// Queue shard files (≥ 1; more shards = smaller rewrites per
    /// transition).
    pub shards: u32,
    /// Wall-clock budget per job attempt when the job has no override.
    pub default_timeout: Duration,
    /// SIGTERM-to-SIGKILL escalation window.
    pub grace: Duration,
    /// Retry policy for failed attempts (per-job `max_attempts`
    /// overrides the attempt cap).
    pub retry: RetryPolicy,
    /// Scheduler/reaper poll interval.
    pub poll_interval: Duration,
    /// Per-tenant quota overrides.
    pub quotas: Vec<(String, QuotaSpec)>,
    /// Quota for tenants with no override (default: unlimited).
    pub default_quota: QuotaSpec,
    /// Open-connection cap; connections beyond it are refused with a
    /// typed `overloaded` error.
    pub max_connections: usize,
    /// Pending-queue depth cap; submissions beyond it are refused with a
    /// typed `overloaded` error (admission control, not queuing).
    pub max_pending: usize,
    /// Per-request-line socket deadline: a line that has not completed
    /// within this window disconnects the client (`deadline_exceeded`
    /// when bytes arrived, silently when idle). Also the write timeout.
    pub io_timeout: Duration,
    /// Longest request line accepted, in bytes; beyond it the client is
    /// refused with `request_too_large` and disconnected.
    pub max_request_line: usize,
    /// Worker heartbeat staleness after which the watchdog declares the
    /// worker stuck and recycles its slot.
    pub watchdog_timeout: Duration,
}

impl ServiceConfig {
    /// A config with the given endpoint and state directory and
    /// defaults everywhere else: 2 workers, 4 shards, 1 h timeout, 2 s
    /// grace, default retry (2 attempts), 10 ms poll, unlimited quotas,
    /// 128 connections, 4096 pending jobs, 30 s socket deadline, 256 KiB
    /// request lines, 60 s worker watchdog.
    pub fn new(endpoint: Endpoint, state_dir: impl Into<PathBuf>) -> ServiceConfig {
        ServiceConfig {
            endpoint,
            state_dir: state_dir.into(),
            workers: 2,
            shards: 4,
            default_timeout: Duration::from_secs(3600),
            grace: Duration::from_secs(2),
            retry: RetryPolicy::default(),
            poll_interval: Duration::from_millis(10),
            quotas: Vec::new(),
            default_quota: QuotaSpec::unlimited(),
            max_connections: 128,
            max_pending: 4096,
            io_timeout: Duration::from_secs(30),
            max_request_line: 256 * 1024,
            watchdog_timeout: Duration::from_secs(60),
        }
    }
}

/// What a completed `serve` call reports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeSummary {
    /// Jobs recovered from a previous server's death (were `running`).
    pub recovered: usize,
    /// Jobs accepted over this server's lifetime.
    pub submitted: u64,
    /// Jobs that reached `done` under this server.
    pub completed: u64,
    /// Jobs that reached `failed` under this server.
    pub failed: u64,
    /// Jobs that reached `canceled` under this server.
    pub canceled: u64,
    /// Jobs re-queued (interrupted mid-run) by the drain.
    pub drained: u64,
    /// Requests refused by admission control (`overloaded`).
    pub shed: u64,
    /// Stuck workers recycled by the watchdog.
    pub recycled: u64,
}

struct Counters {
    submitted: u64,
    completed: u64,
    failed: u64,
    canceled: u64,
    drained: u64,
    shed: u64,
}

/// Last-persist health, reported by the `health` verb.
struct PersistStatus {
    /// `false` after a failed save until the next one succeeds.
    healthy: bool,
    /// Saves that failed over the server's lifetime.
    failures: u64,
    /// What the most recent failure said.
    last_error: Option<String>,
}

struct Shared {
    config: ServiceConfig,
    queue: Mutex<ShardedQueue>,
    quotas: Mutex<HashMap<String, Arc<TenantQuota>>>,
    /// Running jobs asked to cancel; workers poll this.
    cancels: Mutex<HashSet<String>>,
    /// Jobs serving a retry backoff: not eligible before the instant.
    backoff: Mutex<HashMap<String, Instant>>,
    /// Flips when the shutdown flag is observed: stop accepting, stop
    /// picking, interrupt children.
    draining: AtomicBool,
    counters: Mutex<Counters>,
    /// Currently open connections (admission control + health).
    connections: AtomicUsize,
    /// When the server came up: uptime, and the heartbeat clock base.
    started: Instant,
    /// Per-worker-slot heartbeat, in milliseconds since `started`.
    heartbeats: Vec<AtomicU64>,
    /// Per-worker-slot generation: the watchdog bumps it to retire a
    /// stuck worker, whose loop exits at its next generation check.
    generations: Vec<AtomicU64>,
    /// Workers recycled by the watchdog over the server's lifetime.
    recycled: AtomicU64,
    /// Replacement worker threads the watchdog spawned (joined at drain).
    replacements: Mutex<Vec<std::thread::JoinHandle<()>>>,
    persist: Mutex<PersistStatus>,
}

impl Shared {
    fn quota(&self, tenant: &str) -> Arc<TenantQuota> {
        let mut quotas = lock(&self.quotas);
        if let Some(q) = quotas.get(tenant) {
            return Arc::clone(q);
        }
        let spec = self
            .config
            .quotas
            .iter()
            .find(|(t, _)| t == tenant)
            .map(|(_, s)| *s)
            .unwrap_or(self.config.default_quota);
        let q = Arc::new(TenantQuota::new(spec));
        quotas.insert(tenant.to_string(), Arc::clone(&q));
        q
    }

    /// Stamps the worker slot's heartbeat (milliseconds since start).
    fn beat(&self, slot: usize) {
        if let Some(beat) = self.heartbeats.get(slot) {
            beat.store(self.started.elapsed().as_millis() as u64, Ordering::Relaxed);
        }
    }

    /// Records a persistence outcome for the health report.
    fn note_persist<T>(&self, result: &Result<T>) {
        match result {
            Ok(_) => lock(&self.persist).healthy = true,
            Err(e) => self.note_persist_failure(&e.to_string()),
        }
    }

    /// Records a failed save for the health report.
    fn note_persist_failure(&self, message: &str) {
        let mut status = lock(&self.persist);
        status.healthy = false;
        status.failures += 1;
        status.last_error = Some(message.to_string());
    }

    /// Counts one admission-control refusal.
    fn shed_one(&self) {
        lock(&self.counters).shed += 1;
    }
}

/// Holds one slot of the open-connection count; dropping releases it.
struct ConnGuard<'a>(&'a Shared);

impl Drop for ConnGuard<'_> {
    fn drop(&mut self) {
        self.0.connections.fetch_sub(1, Ordering::SeqCst);
    }
}

/// A poisoned lock means a worker panicked mid-section; the data is a
/// plain queue/ledger snapshot, still safe to read, and the server must
/// keep serving the other tenants.
fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

enum Listener {
    #[cfg(unix)]
    Unix(UnixListener),
    Tcp(TcpListener),
}

trait Conn: Read + Write + Send {
    fn try_clone_conn(&self) -> std::io::Result<Box<dyn Conn>>;
    /// Applies socket-level read/write timeouts (shared by clones of the
    /// same underlying socket).
    fn set_io_timeouts(
        &self,
        read: Option<Duration>,
        write: Option<Duration>,
    ) -> std::io::Result<()>;
}

#[cfg(unix)]
impl Conn for std::os::unix::net::UnixStream {
    fn try_clone_conn(&self) -> std::io::Result<Box<dyn Conn>> {
        Ok(Box::new(self.try_clone()?))
    }

    fn set_io_timeouts(
        &self,
        read: Option<Duration>,
        write: Option<Duration>,
    ) -> std::io::Result<()> {
        self.set_read_timeout(read)?;
        self.set_write_timeout(write)
    }
}

impl Conn for std::net::TcpStream {
    fn try_clone_conn(&self) -> std::io::Result<Box<dyn Conn>> {
        Ok(Box::new(self.try_clone()?))
    }

    fn set_io_timeouts(
        &self,
        read: Option<Duration>,
        write: Option<Duration>,
    ) -> std::io::Result<()> {
        self.set_read_timeout(read)?;
        self.set_write_timeout(write)
    }
}

impl Listener {
    fn bind(endpoint: &Endpoint) -> Result<Listener> {
        let io_err = |path: PathBuf, e: std::io::Error| HarnessError::Io {
            path,
            message: format!("bind: {e}"),
        };
        match endpoint {
            #[cfg(unix)]
            Endpoint::Unix(path) => {
                // A socket file left by a dead server would fail the bind.
                let _ = std::fs::remove_file(path);
                let l = UnixListener::bind(path).map_err(|e| io_err(path.clone(), e))?;
                l.set_nonblocking(true)
                    .map_err(|e| io_err(path.clone(), e))?;
                Ok(Listener::Unix(l))
            }
            #[cfg(not(unix))]
            Endpoint::Unix(path) => Err(HarnessError::Io {
                path: path.clone(),
                message: "unix sockets are not available on this platform".to_string(),
            }),
            Endpoint::Tcp(addr) => {
                let l = TcpListener::bind(addr).map_err(|e| io_err(PathBuf::from(addr), e))?;
                l.set_nonblocking(true)
                    .map_err(|e| io_err(PathBuf::from(addr), e))?;
                Ok(Listener::Tcp(l))
            }
        }
    }

    /// Accepts one connection if one is waiting (non-blocking).
    fn accept(&self) -> std::io::Result<Option<Box<dyn Conn>>> {
        match self {
            #[cfg(unix)]
            Listener::Unix(l) => match l.accept() {
                Ok((s, _)) => Ok(Some(Box::new(s))),
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => Ok(None),
                Err(e) => Err(e),
            },
            Listener::Tcp(l) => match l.accept() {
                Ok((s, _)) => Ok(Some(Box::new(s))),
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => Ok(None),
                Err(e) => Err(e),
            },
        }
    }
}

/// Runs the daemon until `shutdown` flips to `true`, then drains:
/// stops accepting, interrupts in-flight children (they re-queue without
/// consuming an attempt), flushes every shard, and returns the lifetime
/// summary.
///
/// # Errors
///
/// [`HarnessError::Io`] when the endpoint cannot be bound or the state
/// directory is unusable; [`HarnessError::ManifestFormat`] when a
/// recovered queue shard is unreadable. Per-connection and per-job
/// failures are handled internally and never abort the server.
pub fn serve(config: ServiceConfig, shutdown: Arc<AtomicBool>) -> Result<ServeSummary> {
    let queue = ShardedQueue::open(&config.state_dir.join("queue"), config.shards)?;
    let recovered = queue.recovered;
    let workers = config.workers.max(1);
    let shared = Arc::new(Shared {
        queue: Mutex::new(queue),
        quotas: Mutex::new(HashMap::new()),
        cancels: Mutex::new(HashSet::new()),
        backoff: Mutex::new(HashMap::new()),
        draining: AtomicBool::new(false),
        counters: Mutex::new(Counters {
            submitted: 0,
            completed: 0,
            failed: 0,
            canceled: 0,
            drained: 0,
            shed: 0,
        }),
        connections: AtomicUsize::new(0),
        started: Instant::now(),
        heartbeats: (0..workers).map(|_| AtomicU64::new(0)).collect(),
        generations: (0..workers).map(|_| AtomicU64::new(0)).collect(),
        recycled: AtomicU64::new(0),
        replacements: Mutex::new(Vec::new()),
        persist: Mutex::new(PersistStatus {
            healthy: true,
            failures: 0,
            last_error: None,
        }),
        config,
    });

    // Rebuild the quota ledger from the recovered queue: terminal jobs
    // preload their persisted charges, live jobs re-occupy their
    // in-flight slots.
    {
        let queue = lock(&shared.queue);
        for job in queue.jobs() {
            let quota = shared.quota(&job.tenant);
            if job.state.is_terminal() {
                quota.preload(
                    job.charged_conflicts,
                    Duration::from_secs_f64(job.charged_wall_secs.max(0.0)),
                );
            } else {
                // Occupy the slot directly: these jobs were admitted by a
                // previous server and must not be dropped even if the
                // quota config shrank since.
                let _ = quota.admit();
            }
        }
    }

    let listener = Listener::bind(&shared.config.endpoint)?;

    let mut worker_handles = Vec::new();
    for index in 0..workers {
        let shared = Arc::clone(&shared);
        worker_handles.push(
            std::thread::Builder::new()
                .name(format!("serve-worker-{index}"))
                .spawn(move || worker_loop(&shared, index, 0))
                .map_err(|e| HarnessError::Io {
                    path: PathBuf::new(),
                    message: format!("spawn worker thread: {e}"),
                })?,
        );
    }
    let watchdog = {
        let shared = Arc::clone(&shared);
        std::thread::Builder::new()
            .name("serve-watchdog".to_string())
            .spawn(move || watchdog_loop(&shared))
            .map_err(|e| HarnessError::Io {
                path: PathBuf::new(),
                message: format!("spawn watchdog thread: {e}"),
            })?
    };

    // Accept loop. Handler threads are detached: they die with their
    // connection, and drain only has to stop the accept loop. Persistent
    // accept errors (EMFILE when clients hold every descriptor) back off
    // exponentially instead of hot-spinning the warning.
    let min_backoff = shared.config.poll_interval.max(Duration::from_millis(1));
    let max_backoff = Duration::from_secs(1);
    let mut accept_backoff = min_backoff;
    while !shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok(Some(conn)) => {
                accept_backoff = min_backoff;
                shared.connections.fetch_add(1, Ordering::SeqCst);
                let handler_shared = Arc::clone(&shared);
                let spawned = std::thread::Builder::new()
                    .name("serve-conn".to_string())
                    .spawn(move || handle_connection(&handler_shared, conn));
                if spawned.is_err() {
                    // The guard lives in the handler; undo by hand.
                    shared.connections.fetch_sub(1, Ordering::SeqCst);
                }
            }
            Ok(None) => {
                accept_backoff = min_backoff;
                std::thread::sleep(shared.config.poll_interval);
            }
            Err(e) => {
                eprintln!(
                    "warning: accept failed: {e}; backing off {}ms",
                    accept_backoff.as_millis()
                );
                std::thread::sleep(accept_backoff);
                accept_backoff = (accept_backoff * 2).min(max_backoff);
            }
        }
    }

    // Drain: stop pickers, wait for workers to park their children.
    shared.draining.store(true, Ordering::SeqCst);
    drop(listener);
    if let Endpoint::Unix(path) = &shared.config.endpoint {
        let _ = std::fs::remove_file(path);
    }
    let _ = watchdog.join();
    for h in worker_handles {
        let _ = h.join();
    }
    loop {
        // Replacement workers can themselves be replaced mid-join.
        let batch: Vec<_> = lock(&shared.replacements).drain(..).collect();
        if batch.is_empty() {
            break;
        }
        for h in batch {
            let _ = h.join();
        }
    }
    {
        let mut queue = lock(&shared.queue);
        queue.retry_quarantined();
        queue.save_all()?;
    }
    let counters = lock(&shared.counters);
    Ok(ServeSummary {
        recovered,
        submitted: counters.submitted,
        completed: counters.completed,
        failed: counters.failed,
        canceled: counters.canceled,
        drained: counters.drained,
        shed: counters.shed,
        recycled: shared.recycled.load(Ordering::Relaxed),
    })
}

/// Detects stuck workers by heartbeat staleness and recycles their slot
/// (the stale thread retires at its next generation check; a fresh one
/// takes over), and periodically retries quarantined queue shards.
fn watchdog_loop(shared: &Arc<Shared>) {
    let interval = shared
        .config
        .poll_interval
        .max(Duration::from_millis(10))
        .min(Duration::from_millis(250));
    let mut last_shard_retry = Instant::now();
    while !shared.draining.load(Ordering::SeqCst) {
        std::thread::sleep(interval);
        let now_ms = shared.started.elapsed().as_millis() as u64;
        let stale_ms = shared.config.watchdog_timeout.as_millis() as u64;
        for slot in 0..shared.heartbeats.len() {
            let beat = shared.heartbeats[slot].load(Ordering::Relaxed);
            if now_ms.saturating_sub(beat) <= stale_ms {
                continue;
            }
            let generation = shared.generations[slot].fetch_add(1, Ordering::SeqCst) + 1;
            shared.recycled.fetch_add(1, Ordering::Relaxed);
            shared.beat(slot); // fresh worker starts with a fresh clock
            eprintln!(
                "warning: worker {slot} heartbeat stale for {}ms; recycling",
                now_ms.saturating_sub(beat)
            );
            let shared_worker = Arc::clone(shared);
            let spawned = std::thread::Builder::new()
                .name(format!("serve-worker-{slot}-gen{generation}"))
                .spawn(move || worker_loop(&shared_worker, slot, generation));
            match spawned {
                Ok(handle) => lock(&shared.replacements).push(handle),
                Err(e) => eprintln!("warning: respawn worker {slot}: {e}"),
            }
        }
        if last_shard_retry.elapsed() >= Duration::from_millis(500) {
            last_shard_retry = Instant::now();
            let recovered = lock(&shared.queue).retry_quarantined();
            if recovered > 0 {
                shared.note_persist(&Ok(()));
                eprintln!("info: {recovered} quarantined shard(s) recovered");
            }
        }
    }
}

// ---------------------------------------------------------------------
// Connection handling
// ---------------------------------------------------------------------

/// How one attempt to read a request line ended.
enum LineOutcome {
    /// A complete line arrived within the deadline and size cap.
    Line(String),
    /// The peer closed (or went idle past the deadline with no bytes
    /// buffered, or errored) — close quietly.
    Closed,
    /// The line outgrew [`ServiceConfig::max_request_line`].
    TooLarge,
    /// Bytes arrived but no newline within [`ServiceConfig::io_timeout`]
    /// — the slow-loris case.
    Deadline,
}

/// Reads one newline-terminated request line in short timeout slices,
/// enforcing the per-line deadline and size cap. `carry` holds bytes
/// already read past the previous line's newline.
fn read_request_line(
    reader: &mut Box<dyn Conn>,
    carry: &mut Vec<u8>,
    shared: &Shared,
) -> LineOutcome {
    let deadline = Instant::now() + shared.config.io_timeout;
    loop {
        if let Some(pos) = carry.iter().position(|&b| b == b'\n') {
            // `pos` is the line length sans newline; the cap applies even
            // when the whole oversized line landed inside one read chunk.
            if pos > shared.config.max_request_line {
                return LineOutcome::TooLarge;
            }
            let rest = carry.split_off(pos + 1);
            let mut line = std::mem::replace(carry, rest);
            line.pop(); // the newline itself
            return LineOutcome::Line(String::from_utf8_lossy(&line).into_owned());
        }
        if carry.len() > shared.config.max_request_line {
            return LineOutcome::TooLarge;
        }
        if shared.draining.load(Ordering::SeqCst) {
            return LineOutcome::Closed;
        }
        let mut chunk = [0u8; 4096];
        match reader.read(&mut chunk) {
            Ok(0) => return LineOutcome::Closed,
            Ok(n) => carry.extend_from_slice(&chunk[..n]),
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock
                        | std::io::ErrorKind::TimedOut
                        | std::io::ErrorKind::Interrupted
                ) => {}
            Err(_) => return LineOutcome::Closed,
        }
        if Instant::now() >= deadline {
            return if carry.is_empty() {
                LineOutcome::Closed
            } else {
                LineOutcome::Deadline
            };
        }
    }
}

fn handle_connection(shared: &Shared, conn: Box<dyn Conn>) {
    // The accept loop already counted this connection; release on exit.
    let _guard = ConnGuard(shared);
    let refuse = |mut writer: Box<dyn Conn>, error: ProtocolError| {
        let _ = writer.write_all(format!("{}\n", error.to_response()).as_bytes());
        let _ = writer.flush();
    };
    // Read in short slices (so deadlines and drain are observed), write
    // with the full io_timeout so a peer that stops reading cannot pin
    // this thread either.
    let slice = shared
        .config
        .io_timeout
        .min(Duration::from_millis(100))
        .max(Duration::from_millis(5));
    if conn
        .set_io_timeouts(Some(slice), Some(shared.config.io_timeout))
        .is_err()
    {
        return;
    }
    if shared.connections.load(Ordering::SeqCst) > shared.config.max_connections {
        shared.shed_one();
        refuse(
            conn,
            ProtocolError::new(
                "overloaded",
                format!(
                    "connection limit reached ({}); retry later",
                    shared.config.max_connections
                ),
            ),
        );
        return;
    }
    let mut reader = match conn.try_clone_conn() {
        Ok(r) => r,
        Err(_) => return,
    };
    let mut writer = conn;
    let mut carry: Vec<u8> = Vec::new();
    loop {
        let line = match read_request_line(&mut reader, &mut carry, shared) {
            LineOutcome::Line(line) => line,
            LineOutcome::Closed => return,
            LineOutcome::TooLarge => {
                return refuse(
                    writer,
                    ProtocolError::new(
                        "request_too_large",
                        format!(
                            "request line exceeds {} bytes",
                            shared.config.max_request_line
                        ),
                    ),
                );
            }
            LineOutcome::Deadline => {
                // Best-effort notice: the slow client may not even read it.
                return refuse(
                    writer,
                    ProtocolError::new(
                        "deadline_exceeded",
                        format!(
                            "request line not completed within {:?}",
                            shared.config.io_timeout
                        ),
                    ),
                );
            }
        };
        if line.trim().is_empty() {
            continue;
        }
        let outcome = match parse_request(&line) {
            Ok(request) => handle_request(shared, &request, &mut writer),
            Err(e) => writer
                .write_all(format!("{}\n", e.to_response()).as_bytes())
                .map(|()| true),
        };
        match outcome {
            Ok(true) => {
                let _ = writer.flush();
            }
            _ => return,
        }
    }
}

/// Handles one request; `Ok(true)` keeps the connection open.
fn handle_request(
    shared: &Shared,
    request: &Request,
    writer: &mut Box<dyn Conn>,
) -> std::io::Result<bool> {
    let mut send = |line: String| {
        writer
            .write_all(format!("{line}\n").as_bytes())
            .map(|()| true)
    };
    match request {
        Request::Submit { tenant, job } => {
            if shared.draining.load(Ordering::SeqCst) {
                return send(
                    ProtocolError::new("draining", "server is draining; resubmit after restart")
                        .to_response(),
                );
            }
            let quota = shared.quota(tenant);
            let mut queue = lock(&shared.queue);
            // Admission control: a full pending queue sheds load with a
            // typed error instead of queuing unboundedly.
            let pending = queue.counts().pending;
            if pending >= shared.config.max_pending {
                drop(queue);
                shared.shed_one();
                return send(
                    ProtocolError::new(
                        "overloaded",
                        format!("pending queue is full ({pending} jobs); retry later"),
                    )
                    .to_response(),
                );
            }
            // A quarantined shard cannot durably record the submission;
            // refuse rather than ack unsealed state.
            if queue.is_quarantined(&job.id) {
                drop(queue);
                return send(
                    ProtocolError::new(
                        "shard_quarantined",
                        format!(
                            "the queue shard for job {:?} cannot persist; retry later",
                            job.id
                        ),
                    )
                    .to_response(),
                );
            }
            if let Err(e) = quota.admit() {
                return send(ProtocolError::new(e.code(), e.to_string()).to_response());
            }
            let submitted = queue.submit(tenant, job.clone());
            match submitted {
                Ok(accepted) => {
                    let line = protocol::job_response(accepted);
                    drop(queue);
                    lock(&shared.counters).submitted += 1;
                    send(line)
                }
                Err(e) => {
                    drop(queue);
                    quota.release();
                    let code = match &e {
                        HarnessError::PlanFormat { .. } => "duplicate_job",
                        HarnessError::Io { .. } => {
                            shared.note_persist_failure(&e.to_string());
                            "persist_failed"
                        }
                        _ => "internal",
                    };
                    send(ProtocolError::new(code, e.to_string()).to_response())
                }
            }
        }
        Request::Health => send(health_response(shared)),
        Request::Status { job } => {
            let queue = lock(&shared.queue);
            match queue.job(job) {
                Some(j) => send(protocol::job_response(j)),
                None => send(unknown_job(job).to_response()),
            }
        }
        Request::List { tenant } => {
            let queue = lock(&shared.queue);
            let jobs: Vec<&ServiceJob> = queue
                .jobs()
                .iter()
                .filter(|j| tenant.as_deref().is_none_or(|t| j.tenant == t))
                .collect();
            send(protocol::list_response(&jobs))
        }
        Request::Cancel { job } => {
            let mut queue = lock(&shared.queue);
            let Some(entry) = queue.job_mut(job) else {
                return send(unknown_job(job).to_response());
            };
            match entry.state {
                JobState::Pending => {
                    entry.state = JobState::Canceled;
                    entry.last_error = Some("canceled while pending".to_string());
                    let tenant = entry.tenant.clone();
                    let line = protocol::job_response(entry);
                    let save = queue.save_shard_of(job);
                    drop(queue);
                    shared.quota(&tenant).release();
                    lock(&shared.counters).canceled += 1;
                    shared.note_persist(&save);
                    if let Err(e) = save {
                        eprintln!("warning: persisting cancel of {job:?}: {e}");
                    }
                    send(line)
                }
                JobState::Running => {
                    // The owning worker observes the flag and escalates.
                    lock(&shared.cancels).insert(job.clone());
                    let line = protocol::job_response(entry);
                    drop(queue);
                    send(line)
                }
                _ => send(
                    ProtocolError::new(
                        "not_cancelable",
                        format!("job {job:?} is already {}", entry.state.as_str()),
                    )
                    .to_response(),
                ),
            }
        }
        Request::Stream { job } => {
            // Emit a line per observed state change until terminal.
            let mut last: Option<(JobState, u32)> = None;
            loop {
                let (line, state) = {
                    let queue = lock(&shared.queue);
                    match queue.job(job) {
                        Some(j) => (protocol::job_response(j), Some((j.state, j.attempts))),
                        None => (unknown_job(job).to_response(), None),
                    }
                };
                let Some(state) = state else {
                    return send(line);
                };
                if last != Some(state) {
                    last = Some(state);
                    send(line)?;
                    if state.0.is_terminal() {
                        return Ok(true);
                    }
                }
                if shared.draining.load(Ordering::SeqCst) {
                    // Don't hold streams open across a drain.
                    return Ok(true);
                }
                std::thread::sleep(shared.config.poll_interval);
            }
        }
    }
}

fn unknown_job(id: &str) -> ProtocolError {
    ProtocolError::new("unknown_job", format!("no job {id:?}"))
}

/// Builds the `health` response: queue depth, worker liveness, quota
/// pressure, connection load, and last-persist status, in one line.
fn health_response(shared: &Shared) -> String {
    use crate::json::Json;

    let (counts, quarantined) = {
        let queue = lock(&shared.queue);
        (queue.counts(), queue.quarantined_shards())
    };
    let now_ms = shared.started.elapsed().as_millis() as u64;
    let stalest_beat_ms = shared
        .heartbeats
        .iter()
        .map(|b| now_ms.saturating_sub(b.load(Ordering::Relaxed)))
        .max()
        .unwrap_or(0);
    let tenants: Vec<Json> = {
        let quotas = lock(&shared.quotas);
        let mut rows: Vec<(String, Json)> = quotas
            .iter()
            .map(|(tenant, quota)| {
                let usage = quota.usage();
                (
                    tenant.clone(),
                    Json::Object(vec![
                        ("tenant".to_string(), Json::Str(tenant.clone())),
                        ("in_flight".to_string(), Json::Int(usage.in_flight)),
                        ("conflicts".to_string(), Json::Int(usage.conflicts)),
                        (
                            "wall_secs".to_string(),
                            Json::Float(usage.wall.as_secs_f64()),
                        ),
                    ]),
                )
            })
            .collect();
        rows.sort_by(|a, b| a.0.cmp(&b.0));
        rows.into_iter().map(|(_, json)| json).collect()
    };
    let (persist, counters_json) = {
        let status = lock(&shared.persist);
        let persist = Json::Object(vec![
            ("healthy".to_string(), Json::Bool(status.healthy)),
            ("failures".to_string(), Json::Int(status.failures)),
            (
                "last_error".to_string(),
                match &status.last_error {
                    Some(e) => Json::Str(e.clone()),
                    None => Json::Null,
                },
            ),
            (
                "quarantined_shards".to_string(),
                Json::Array(
                    quarantined
                        .iter()
                        .map(|&s| Json::Int(u64::from(s)))
                        .collect(),
                ),
            ),
        ]);
        let counters = lock(&shared.counters);
        let counters_json = Json::Object(vec![
            ("submitted".to_string(), Json::Int(counters.submitted)),
            ("completed".to_string(), Json::Int(counters.completed)),
            ("failed".to_string(), Json::Int(counters.failed)),
            ("canceled".to_string(), Json::Int(counters.canceled)),
            ("drained".to_string(), Json::Int(counters.drained)),
            ("shed".to_string(), Json::Int(counters.shed)),
        ]);
        (persist, counters_json)
    };
    let status = if shared.draining.load(Ordering::SeqCst) {
        "draining"
    } else {
        "ok"
    };
    Json::Object(vec![
        ("ok".to_string(), Json::Bool(true)),
        ("protocol".to_string(), Json::Int(PROTOCOL_VERSION)),
        (
            "health".to_string(),
            Json::Object(vec![
                ("status".to_string(), Json::Str(status.to_string())),
                (
                    "uptime_secs".to_string(),
                    Json::Float(shared.started.elapsed().as_secs_f64()),
                ),
                (
                    "queue".to_string(),
                    Json::Object(vec![
                        ("pending".to_string(), Json::Int(counts.pending as u64)),
                        ("running".to_string(), Json::Int(counts.running as u64)),
                        ("done".to_string(), Json::Int(counts.done as u64)),
                        ("failed".to_string(), Json::Int(counts.failed as u64)),
                        ("canceled".to_string(), Json::Int(counts.canceled as u64)),
                        ("completions".to_string(), Json::Int(counts.completions)),
                    ]),
                ),
                (
                    "workers".to_string(),
                    Json::Object(vec![
                        (
                            "configured".to_string(),
                            Json::Int(shared.heartbeats.len() as u64),
                        ),
                        (
                            "recycled".to_string(),
                            Json::Int(shared.recycled.load(Ordering::Relaxed)),
                        ),
                        ("stalest_beat_ms".to_string(), Json::Int(stalest_beat_ms)),
                    ]),
                ),
                (
                    "connections".to_string(),
                    Json::Object(vec![
                        (
                            "open".to_string(),
                            Json::Int(shared.connections.load(Ordering::SeqCst) as u64),
                        ),
                        (
                            "max".to_string(),
                            Json::Int(shared.config.max_connections as u64),
                        ),
                    ]),
                ),
                ("counters".to_string(), counters_json),
                ("persist".to_string(), persist),
                ("tenants".to_string(), Json::Array(tenants)),
            ]),
        ),
    ])
    .to_text()
}

// ---------------------------------------------------------------------
// Worker pool
// ---------------------------------------------------------------------

/// Why an attempt ended.
enum AttemptEnd {
    /// Exit status 0.
    Success,
    /// Non-zero exit, launch failure, or injected fault — retryable.
    Failure(String),
    /// Deadline exceeded (SIGTERM → grace → SIGKILL) — retryable.
    Timeout(f64),
    /// Canceled by request.
    Canceled,
    /// Interrupted by the drain; re-queue without consuming an attempt.
    Interrupted,
}

fn worker_loop(shared: &Shared, index: usize, generation: u64) {
    let current_generation = |shared: &Shared| {
        shared
            .generations
            .get(index)
            .map(|g| g.load(Ordering::SeqCst))
            .unwrap_or(generation)
    };
    while !shared.draining.load(Ordering::SeqCst) && current_generation(shared) == generation {
        shared.beat(index);
        let Some((id, tenant)) = claim_next(shared) else {
            std::thread::sleep(shared.config.poll_interval);
            continue;
        };
        // A panicking attempt (the `service.worker` panic action, or a
        // harness bug) is caught here and charged as a failed attempt —
        // the worker thread itself survives and keeps serving.
        let attempt_start = Instant::now();
        let end = catch_unwind(AssertUnwindSafe(|| run_attempt(shared, index, &id)))
            .unwrap_or_else(|payload| {
                let msg = payload
                    .downcast_ref::<&str>()
                    .map(|s| (*s).to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "worker panicked".to_string());
                AttemptEnd::Failure(format!("worker panic: {msg}"))
            });
        settle_attempt(shared, &id, &tenant, end, attempt_start.elapsed());
    }
}

/// Claims the oldest eligible pending job: flips it to `running`,
/// increments its attempt counter, persists the shard. Jobs whose tenant
/// has exhausted a cumulative budget are failed on the spot (typed quota
/// error) rather than left to clog the queue.
fn claim_next(shared: &Shared) -> Option<(String, String)> {
    let now = Instant::now();
    let mut queue = lock(&shared.queue);
    let backoff = lock(&shared.backoff);
    let skip = |j: &ServiceJob| backoff.get(&j.id).is_some_and(|&until| until > now);
    let candidate = queue.next_pending(&skip)?;
    let id = candidate.id.clone();
    let tenant = candidate.tenant.clone();
    drop(backoff);

    let quota = shared.quota(&tenant);
    if let Err(e) = quota.check_cumulative() {
        if !e.is_transient() {
            let job = queue.job_mut(&id).expect("claimed job exists");
            job.state = JobState::Failed;
            job.last_error = Some(format!("{} ({})", e, e.code()));
            let save = queue.save_shard_of(&id);
            drop(queue);
            quota.release();
            lock(&shared.counters).failed += 1;
            shared.note_persist(&save);
            if let Err(e) = save {
                eprintln!("warning: persisting quota failure of {id:?}: {e}");
            }
            return None;
        }
    }

    let job = queue.job_mut(&id).expect("claimed job exists");
    job.state = JobState::Running;
    job.attempts += 1;
    let save = queue.save_shard_of(&id);
    shared.note_persist(&save);
    if let Err(e) = save {
        // Cannot record the claim durably: revert, try again later.
        let job = queue.job_mut(&id).expect("claimed job exists");
        job.state = JobState::Pending;
        job.attempts -= 1;
        eprintln!("warning: persisting claim of {id:?}: {e}");
        return None;
    }
    lock(&shared.backoff).remove(&id);
    Some((id, tenant))
}

/// Runs one attempt of a claimed job to completion (or interruption).
fn run_attempt(shared: &Shared, index: usize, id: &str) -> AttemptEnd {
    // Chaos hook: see module docs.
    match faults::evaluate(faults::site::SERVICE_WORKER, index) {
        Some(FaultAction::Panic) => panic!("service.worker failpoint"),
        Some(FaultAction::Trigger) => {
            return AttemptEnd::Failure("service.worker failpoint trigger".to_string())
        }
        Some(delay @ FaultAction::DelayMs(_)) => faults::apply_delay(delay),
        _ => {}
    }

    let (spec, attempt) = {
        let queue = lock(&shared.queue);
        let job = queue.job(id).expect("claimed job exists");
        (job.spec.clone(), job.attempts)
    };
    let job_dir = shared.config.state_dir.join("jobs").join(id);
    if let Err(e) = std::fs::create_dir_all(&job_dir) {
        return AttemptEnd::Failure(format!("create job dir: {e}"));
    }
    let job_dir_str = job_dir.to_string_lossy().to_string();
    let subst = |s: &str| s.replace("{job_dir}", &job_dir_str);

    let stdout_log = job_dir.join(format!("attempt{attempt}.stdout.log"));
    let stderr_log = job_dir.join(format!("attempt{attempt}.stderr.log"));
    let open_log =
        |p: &PathBuf| -> std::io::Result<Stdio> { Ok(Stdio::from(std::fs::File::create(p)?)) };
    let mut command = Command::new(subst(&spec.program));
    command
        .args(spec.args.iter().map(|a| subst(a)))
        .envs(spec.env.iter().map(|(k, v)| (k.clone(), subst(v))))
        .stdin(Stdio::null());
    match (open_log(&stdout_log), open_log(&stderr_log)) {
        (Ok(out), Ok(err)) => {
            command.stdout(out).stderr(err);
        }
        _ => {
            command.stdout(Stdio::null()).stderr(Stdio::null());
        }
    }
    let mut child = match command.spawn() {
        Ok(c) => c,
        Err(e) => return AttemptEnd::Failure(format!("spawn {:?}: {e}", spec.program)),
    };

    let started = Instant::now();
    let timeout = spec
        .timeout_secs
        .map(Duration::from_secs_f64)
        .unwrap_or(shared.config.default_timeout);
    let deadline = started + timeout;
    let mut term_sent: Option<Instant> = None;
    let mut end_after_kill: Option<AttemptEnd> = None;

    loop {
        // Supervising a long child is not "stuck": keep the heartbeat
        // fresh so the watchdog only recycles workers wedged *outside*
        // this loop (e.g. a blocking fault injection or harness bug).
        shared.beat(index);
        match child.try_wait() {
            Ok(Some(status)) => {
                if let Some(end) = end_after_kill {
                    return end;
                }
                if status.success() {
                    return AttemptEnd::Success;
                }
                let detail = match crate::supervisor::exit_signal(Some(status)) {
                    Some(sig) => format!("killed by signal {sig}"),
                    None => format!("exit status {}", status.code().unwrap_or(-1)),
                };
                return AttemptEnd::Failure(detail);
            }
            Ok(None) => {}
            Err(e) => {
                let _ = child.kill();
                let _ = child.wait();
                return AttemptEnd::Failure(format!("wait: {e}"));
            }
        }

        let canceled = lock(&shared.cancels).contains(id);
        let draining = shared.draining.load(Ordering::SeqCst);
        let now = Instant::now();
        let over_deadline = now >= deadline;

        if (canceled || draining || over_deadline) && end_after_kill.is_none() {
            end_after_kill = Some(if canceled {
                AttemptEnd::Canceled
            } else if draining {
                AttemptEnd::Interrupted
            } else {
                AttemptEnd::Timeout(timeout.as_secs_f64())
            });
        }
        if end_after_kill.is_some() {
            match term_sent {
                None => {
                    crate::supervisor::send_sigterm(&mut child);
                    term_sent = Some(now);
                }
                Some(at) if now.duration_since(at) >= shared.config.grace => {
                    let _ = child.kill();
                }
                Some(_) => {}
            }
        }
        std::thread::sleep(shared.config.poll_interval);
    }
}

/// Applies an attempt's outcome to the queue, the quota ledger, and the
/// counters, and persists the job's shard. Wall time is charged to the
/// tenant for every attempt the *job* caused (success, failure, timeout,
/// cancel); a drain interruption is the server's fault and costs the
/// tenant nothing.
fn settle_attempt(shared: &Shared, id: &str, tenant: &str, end: AttemptEnd, elapsed: Duration) {
    let quota = shared.quota(tenant);
    let mut queue = lock(&shared.queue);
    let Some(job) = queue.job_mut(id) else { return };
    let mut charge_wall = true;
    match end {
        AttemptEnd::Success => {
            // Charge solver conflicts from the job's report, if it wrote
            // one in the standard location.
            let conflicts = report_conflicts(&shared.config.state_dir.join("jobs").join(id));
            job.state = JobState::Done;
            job.completions += 1;
            job.last_error = None;
            job.charged_conflicts += conflicts;
            quota.charge(conflicts, Duration::ZERO);
            lock(&shared.counters).completed += 1;
        }
        AttemptEnd::Canceled => {
            job.state = JobState::Canceled;
            job.last_error = Some("canceled".to_string());
            lock(&shared.cancels).remove(id);
            lock(&shared.counters).canceled += 1;
        }
        AttemptEnd::Interrupted => {
            job.state = JobState::Pending;
            job.interrupted = true;
            // The interruption was the server's fault, not the job's:
            // give the attempt back and don't bill the wall time.
            job.attempts = job.attempts.saturating_sub(1);
            charge_wall = false;
            lock(&shared.counters).drained += 1;
        }
        AttemptEnd::Failure(_) | AttemptEnd::Timeout(_) => {
            let detail = match end {
                AttemptEnd::Timeout(secs) => format!("timed out after {secs:.1}s"),
                AttemptEnd::Failure(detail) => detail,
                _ => unreachable!("outer match covers only these two"),
            };
            job.last_error = Some(detail);
            let mut policy = shared.config.retry;
            if let Some(n) = job.spec.max_attempts {
                policy.max_attempts = n;
            }
            match policy.delay_after(job.attempts) {
                Some(delay) => {
                    job.state = JobState::Pending;
                    lock(&shared.backoff).insert(id.to_string(), Instant::now() + delay);
                }
                None => {
                    job.state = JobState::Failed;
                    lock(&shared.counters).failed += 1;
                }
            }
        }
    }
    if charge_wall {
        job.charged_wall_secs += elapsed.as_secs_f64();
        quota.charge(0, elapsed);
    }
    let state = job.state;
    if state.is_terminal() {
        quota.release();
    }
    let save = queue.save_shard_of(id);
    shared.note_persist(&save);
    if let Err(e) = save {
        eprintln!("warning: persisting outcome of {id:?}: {e}");
    }
}

/// Solver conflicts claimed by a job's `report.json`, when present.
/// The report is read as opaque JSON (the harness does not depend on the
/// attacks crate): `solver.conflicts` at the top level, else 0.
fn report_conflicts(job_dir: &std::path::Path) -> u64 {
    let Ok(text) = std::fs::read_to_string(job_dir.join("report.json")) else {
        return 0;
    };
    crate::json::Json::parse(&text)
        .ok()
        .as_ref()
        .and_then(|j| j.get("solver"))
        .and_then(|s| s.get("conflicts"))
        .and_then(crate::json::Json::as_u64)
        .unwrap_or(0)
}

/// Connects, sends one encoded request line, reads one response line.
/// The blocking client used by the CLI, the bench harness, and tests
/// lives in [`super::client`]; this helper is its transport primitive.
pub(crate) fn one_shot(endpoint: &Endpoint, line: &str) -> std::io::Result<String> {
    let mut conn: Box<dyn Conn> = match endpoint {
        #[cfg(unix)]
        Endpoint::Unix(path) => Box::new(std::os::unix::net::UnixStream::connect(path)?),
        #[cfg(not(unix))]
        Endpoint::Unix(_) => {
            return Err(std::io::Error::new(
                std::io::ErrorKind::Unsupported,
                "unix sockets are not available on this platform",
            ))
        }
        Endpoint::Tcp(addr) => Box::new(std::net::TcpStream::connect(addr)?),
    };
    conn.write_all(format!("{line}\n").as_bytes())?;
    conn.flush()?;
    let mut reader = BufReader::new(conn);
    let mut response = String::new();
    reader.read_line(&mut response)?;
    Ok(response.trim_end().to_string())
}

/// `PROTOCOL_VERSION` is part of this module's contract too (responses
/// embed it); re-assert the linkage for readers of either module.
const _: () = assert!(PROTOCOL_VERSION == 1);
