//! `fulllock serve`: the multi-tenant attack-as-a-service daemon.
//!
//! The pieces, bottom-up:
//!
//! * [`queue`] — the persistent sharded job queue. Every transition is
//!   sealed-and-synced through [`crate::persist`], so a SIGKILL at any
//!   instant is recoverable and completions are recorded exactly once.
//! * [`protocol`] — the newline-delimited JSON wire format: five verbs
//!   (`submit`, `status`, `cancel`, `list`, `stream`) and a typed error
//!   envelope with stable codes.
//! * [`server`] — the daemon itself: listener (Unix or TCP), bounded
//!   worker pool supervising child processes with deadline/retry
//!   escalation, per-tenant [`fulllock_sat::TenantQuota`] ledgers, and
//!   graceful drain.
//! * [`client`] — a blocking client used by the CLI, the load-test
//!   bench, and the smoke tests.
//!
//! Attack jobs are ordinary child processes (`fulllock attack …`) whose
//! arguments may reference `{job_dir}`, the job's scratch directory.
//! Pointing the attack's checkpoint at `{job_dir}/attack.ckpt` with
//! `--resume` gives end-to-end exactly-once oracle semantics: a job
//! interrupted by a crash or drain replays its recorded I/O pairs
//! instead of re-buying oracle queries.

pub mod client;
pub mod protocol;
pub mod queue;
pub mod server;

pub use client::{Client, ServiceReply};
pub use protocol::{ProtocolError, Request, PROTOCOL_VERSION};
pub use queue::{JobState, QueueCounts, ServiceJob, ShardedQueue, QUEUE_VERSION};
pub use server::{serve, Endpoint, ServeSummary, ServiceConfig};
