//! The `fulllock serve` wire protocol: newline-delimited JSON.
//!
//! Every request is one line of JSON, every response one line back.
//! Requests carry a `verb`; responses carry `"ok": true` plus
//! verb-specific payload, or `"ok": false` plus a typed error envelope:
//!
//! ```json
//! {"ok": false, "error": {"code": "unknown_job", "message": "no job \"x\""}}
//! ```
//!
//! Error codes are stable API: `malformed_request`, `unknown_verb`,
//! `invalid_job`, `duplicate_job`, `unknown_job`, `not_cancelable`,
//! `draining`, the overload/robustness codes (`overloaded` for a full
//! pending queue or connection limit, `request_too_large` for an
//! oversized request line, `deadline_exceeded` for a line that trickled
//! past the socket deadline, `persist_failed` when the queue could not
//! seal the submission, `shard_quarantined` when its shard is known
//! unwritable), plus the quota codes minted by
//! [`fulllock_sat::QuotaError::code`] (`concurrency_full`,
//! `conflicts_exhausted`, `wall_time_exhausted`). Clients branch on the
//! code, never on the human-readable message.
//!
//! The six verbs, by example:
//!
//! ```json
//! {"verb": "submit", "tenant": "acme", "job": {"id": "j1", "program": "/bin/true", "args": [], "env": {}}}
//! {"verb": "status", "job": "j1"}
//! {"verb": "cancel", "job": "j1"}
//! {"verb": "list", "tenant": "acme"}
//! {"verb": "stream", "job": "j1"}
//! {"verb": "health"}
//! ```
//!
//! `stream` is the one verb with a multi-line response: the server emits
//! a status line every time the job changes state, ending with the line
//! whose state is terminal. `health` reports the daemon's
//! self-observation snapshot: queue depth per state, worker liveness,
//! connection load, per-tenant quota usage, and last-persist status.

use crate::json::Json;
use crate::plan::JobSpec;
use crate::service::queue::ServiceJob;

/// Version tag of the request/response schema, echoed in every response.
pub const PROTOCOL_VERSION: u64 = 1;

/// A decoded client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Submit a job owned by `tenant`.
    Submit {
        /// Quota ledger the job is charged against.
        tenant: String,
        /// The command to run.
        job: JobSpec,
    },
    /// One-shot status of a job.
    Status {
        /// Job id.
        job: String,
    },
    /// Cancel a pending or running job.
    Cancel {
        /// Job id.
        job: String,
    },
    /// Summarize jobs, optionally restricted to one tenant.
    List {
        /// Restrict to this tenant when present.
        tenant: Option<String>,
    },
    /// Stream state changes of a job until it reaches a terminal state.
    Stream {
        /// Job id.
        job: String,
    },
    /// The daemon's self-observation snapshot (queue depth, worker
    /// liveness, quota pressure, persist status).
    Health,
}

/// A typed protocol error: stable `code` plus human-readable `message`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtocolError {
    /// Stable machine-readable code (see module docs for the list).
    pub code: &'static str,
    /// Human-readable context. Not stable API.
    pub message: String,
}

impl ProtocolError {
    /// Builds an error with the given stable code.
    pub fn new(code: &'static str, message: impl Into<String>) -> ProtocolError {
        ProtocolError {
            code,
            message: message.into(),
        }
    }

    /// The response line for this error.
    pub fn to_response(&self) -> String {
        Json::Object(vec![
            ("ok".to_string(), Json::Bool(false)),
            ("protocol".to_string(), Json::Int(PROTOCOL_VERSION)),
            (
                "error".to_string(),
                Json::Object(vec![
                    ("code".to_string(), Json::Str(self.code.to_string())),
                    ("message".to_string(), Json::Str(self.message.clone())),
                ]),
            ),
        ])
        .to_text()
    }
}

/// Decodes one request line.
///
/// # Errors
///
/// `malformed_request` when the line is not a JSON object or a field has
/// the wrong shape; `unknown_verb` when the verb is not one of the five;
/// `invalid_job` when a submitted job spec fails validation.
pub fn parse_request(line: &str) -> Result<Request, ProtocolError> {
    let root = Json::parse(line)
        .map_err(|e| ProtocolError::new("malformed_request", format!("bad JSON: {e}")))?;
    if !matches!(root, Json::Object(_)) {
        return Err(ProtocolError::new(
            "malformed_request",
            "request must be a JSON object",
        ));
    }
    let verb = root
        .get("verb")
        .and_then(Json::as_str)
        .ok_or_else(|| ProtocolError::new("malformed_request", "missing string field \"verb\""))?;
    let job_id = |root: &Json| {
        root.get("job")
            .and_then(Json::as_str)
            .map(str::to_string)
            .ok_or_else(|| ProtocolError::new("malformed_request", "missing string field \"job\""))
    };
    match verb {
        "submit" => {
            let tenant = root.get("tenant").and_then(Json::as_str).ok_or_else(|| {
                ProtocolError::new(
                    "malformed_request",
                    "submit requires string field \"tenant\"",
                )
            })?;
            if tenant.is_empty() {
                return Err(ProtocolError::new("malformed_request", "empty tenant name"));
            }
            let job_json = root.get("job").ok_or_else(|| {
                ProtocolError::new("malformed_request", "submit requires object field \"job\"")
            })?;
            let job =
                parse_job_spec(job_json).map_err(|m| ProtocolError::new("malformed_request", m))?;
            // Reuse the campaign plan validator: id charset, non-empty
            // program, finite positive timeout.
            crate::plan::CampaignPlan::new("submit")
                .job(job.clone())
                .validate()
                .map_err(|e| ProtocolError::new("invalid_job", e.to_string()))?;
            Ok(Request::Submit {
                tenant: tenant.to_string(),
                job,
            })
        }
        "status" => Ok(Request::Status {
            job: job_id(&root)?,
        }),
        "cancel" => Ok(Request::Cancel {
            job: job_id(&root)?,
        }),
        "stream" => Ok(Request::Stream {
            job: job_id(&root)?,
        }),
        "health" => Ok(Request::Health),
        "list" => {
            let tenant = match root.get("tenant") {
                None | Some(Json::Null) => None,
                Some(v) => Some(
                    v.as_str()
                        .ok_or_else(|| {
                            ProtocolError::new(
                                "malformed_request",
                                "list field \"tenant\" must be a string",
                            )
                        })?
                        .to_string(),
                ),
            };
            Ok(Request::List { tenant })
        }
        other => Err(ProtocolError::new(
            "unknown_verb",
            format!("unknown verb {other:?} (expected submit/status/cancel/list/stream/health)"),
        )),
    }
}

/// Encodes a request (the client side of [`parse_request`]).
pub fn encode_request(request: &Request) -> String {
    let json = match request {
        Request::Submit { tenant, job } => Json::Object(vec![
            ("verb".to_string(), Json::Str("submit".to_string())),
            ("tenant".to_string(), Json::Str(tenant.clone())),
            ("job".to_string(), job_spec_to_json(job)),
        ]),
        Request::Status { job } => verb_job("status", job),
        Request::Cancel { job } => verb_job("cancel", job),
        Request::Stream { job } => verb_job("stream", job),
        Request::List { tenant } => Json::Object(vec![
            ("verb".to_string(), Json::Str("list".to_string())),
            (
                "tenant".to_string(),
                match tenant {
                    Some(t) => Json::Str(t.clone()),
                    None => Json::Null,
                },
            ),
        ]),
        Request::Health => {
            Json::Object(vec![("verb".to_string(), Json::Str("health".to_string()))])
        }
    };
    json.to_text()
}

fn verb_job(verb: &str, job: &str) -> Json {
    Json::Object(vec![
        ("verb".to_string(), Json::Str(verb.to_string())),
        ("job".to_string(), Json::Str(job.to_string())),
    ])
}

fn job_spec_to_json(spec: &JobSpec) -> Json {
    let mut members = vec![
        ("id".to_string(), Json::Str(spec.id.clone())),
        ("program".to_string(), Json::Str(spec.program.clone())),
        (
            "args".to_string(),
            Json::Array(spec.args.iter().cloned().map(Json::Str).collect()),
        ),
        (
            "env".to_string(),
            Json::Object(
                spec.env
                    .iter()
                    .map(|(k, v)| (k.clone(), Json::Str(v.clone())))
                    .collect(),
            ),
        ),
    ];
    if let Some(t) = spec.timeout_secs {
        members.push(("timeout_secs".to_string(), Json::Float(t)));
    }
    if let Some(n) = spec.max_attempts {
        members.push(("max_attempts".to_string(), Json::Int(u64::from(n))));
    }
    Json::Object(members)
}

fn parse_job_spec(json: &Json) -> Result<JobSpec, String> {
    let id = json
        .get("id")
        .and_then(Json::as_str)
        .ok_or("job missing string field \"id\"")?;
    let program = json
        .get("program")
        .and_then(Json::as_str)
        .ok_or("job missing string field \"program\"")?;
    let mut spec = JobSpec::new(id, program);
    if let Some(args) = json.get("args") {
        for a in args
            .as_array()
            .ok_or("job field \"args\" must be an array")?
        {
            spec.args
                .push(a.as_str().ok_or("job args must be strings")?.to_string());
        }
    }
    match json.get("env") {
        None => {}
        Some(Json::Object(members)) => {
            for (k, v) in members {
                let v = v.as_str().ok_or("job env values must be strings")?;
                spec.env.push((k.clone(), v.to_string()));
            }
        }
        Some(_) => return Err("job field \"env\" must be an object".to_string()),
    }
    if let Some(t) = json.get("timeout_secs") {
        spec.timeout_secs = Some(t.as_f64().ok_or("job \"timeout_secs\" must be a number")?);
    }
    if let Some(n) = json.get("max_attempts") {
        spec.max_attempts = Some(
            n.as_u64()
                .and_then(|n| u32::try_from(n).ok())
                .ok_or("job \"max_attempts\" must fit u32")?,
        );
    }
    Ok(spec)
}

/// The `{"ok": true}` status line describing one job (used by `submit`
/// acknowledgements, `status`, each `stream` update, and `list` rows via
/// [`job_summary_json`]).
pub fn job_response(job: &ServiceJob) -> String {
    Json::Object(vec![
        ("ok".to_string(), Json::Bool(true)),
        ("protocol".to_string(), Json::Int(PROTOCOL_VERSION)),
        ("job".to_string(), job_summary_json(job)),
    ])
    .to_text()
}

/// One job summarized as a JSON object (id, tenant, state, attempts,
/// completions, charges, last error).
pub fn job_summary_json(job: &ServiceJob) -> Json {
    Json::Object(vec![
        ("id".to_string(), Json::Str(job.id.clone())),
        ("tenant".to_string(), Json::Str(job.tenant.clone())),
        (
            "state".to_string(),
            Json::Str(job.state.as_str().to_string()),
        ),
        ("attempts".to_string(), Json::Int(u64::from(job.attempts))),
        ("completions".to_string(), Json::Int(job.completions)),
        (
            "charged_conflicts".to_string(),
            Json::Int(job.charged_conflicts),
        ),
        (
            "charged_wall_secs".to_string(),
            Json::Float(job.charged_wall_secs),
        ),
        ("interrupted".to_string(), Json::Bool(job.interrupted)),
        (
            "last_error".to_string(),
            match &job.last_error {
                Some(e) => Json::Str(e.clone()),
                None => Json::Null,
            },
        ),
    ])
}

/// The `list` response line: job summaries (submission order) plus counts.
pub fn list_response(jobs: &[&ServiceJob]) -> String {
    Json::Object(vec![
        ("ok".to_string(), Json::Bool(true)),
        ("protocol".to_string(), Json::Int(PROTOCOL_VERSION)),
        ("count".to_string(), Json::Int(jobs.len() as u64)),
        (
            "jobs".to_string(),
            Json::Array(jobs.iter().map(|j| job_summary_json(j)).collect()),
        ),
    ])
    .to_text()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_round_trips() {
        let requests = vec![
            Request::Submit {
                tenant: "acme".to_string(),
                job: JobSpec::new("j1", "/bin/true")
                    .arg("--fast")
                    .env("K", "v")
                    .timeout_secs(5.0)
                    .max_attempts(3),
            },
            Request::Status {
                job: "j1".to_string(),
            },
            Request::Cancel {
                job: "j1".to_string(),
            },
            Request::List { tenant: None },
            Request::List {
                tenant: Some("acme".to_string()),
            },
            Request::Stream {
                job: "j1".to_string(),
            },
            Request::Health,
        ];
        for r in requests {
            let line = encode_request(&r);
            assert_eq!(parse_request(&line).expect("parse"), r, "line: {line}");
        }
    }

    #[test]
    fn malformed_lines_get_typed_errors() {
        for (line, code) in [
            ("not json at all", "malformed_request"),
            ("[1,2,3]", "malformed_request"),
            ("{\"no\":\"verb\"}", "malformed_request"),
            ("{\"verb\":\"frobnicate\"}", "unknown_verb"),
            ("{\"verb\":\"status\"}", "malformed_request"),
            ("{\"verb\":\"submit\",\"job\":{}}", "malformed_request"),
            (
                "{\"verb\":\"submit\",\"tenant\":\"t\",\"job\":{\"id\":\".bad\",\"program\":\"p\"}}",
                "invalid_job",
            ),
        ] {
            let err = parse_request(line).expect_err(line);
            assert_eq!(err.code, code, "line: {line}");
            // The error envelope itself is valid JSON with the code intact.
            let resp = Json::parse(&err.to_response()).expect("error response parses");
            assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(false));
            assert_eq!(
                resp.get("error")
                    .and_then(|e| e.get("code"))
                    .and_then(Json::as_str),
                Some(code)
            );
        }
    }

    #[test]
    fn error_response_shape_is_stable() {
        let line = ProtocolError::new("unknown_job", "no job \"x\"").to_response();
        let json = Json::parse(&line).expect("parses");
        assert_eq!(
            json.get("protocol").and_then(Json::as_u64),
            Some(PROTOCOL_VERSION)
        );
        assert_eq!(
            json.get("error")
                .and_then(|e| e.get("message"))
                .and_then(Json::as_str),
            Some("no job \"x\"")
        );
    }
}
