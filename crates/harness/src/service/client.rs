//! A blocking client for the `fulllock serve` protocol.
//!
//! Thin by design: one connection per request ([`Client`] reconnects
//! each call), which keeps the client free of connection-state
//! bookkeeping and matches the server's cheap thread-per-connection
//! handlers. The load-test harness opens its own persistent connections
//! when it wants to measure protocol overhead instead.

use std::io;
use std::time::{Duration, Instant};

use crate::json::Json;
use crate::plan::JobSpec;
use crate::service::protocol::{encode_request, Request};
use crate::service::queue::JobState;
use crate::service::server::{one_shot, Endpoint};

/// A typed response: either the parsed `ok` payload or a typed error.
#[derive(Debug, Clone, PartialEq)]
pub enum ServiceReply {
    /// `{"ok": true, ...}` — the full response object.
    Ok(Json),
    /// `{"ok": false, "error": ...}` — stable code + message.
    Err {
        /// Stable machine-readable error code.
        code: String,
        /// Human-readable context.
        message: String,
    },
}

impl ServiceReply {
    /// The job state carried by an `ok` job response, if any.
    pub fn job_state(&self) -> Option<JobState> {
        match self {
            ServiceReply::Ok(json) => json
                .get("job")
                .and_then(|j| j.get("state"))
                .and_then(Json::as_str)
                .and_then(JobState::parse),
            ServiceReply::Err { .. } => None,
        }
    }

    /// The error code, if this is an error reply.
    pub fn error_code(&self) -> Option<&str> {
        match self {
            ServiceReply::Ok(_) => None,
            ServiceReply::Err { code, .. } => Some(code),
        }
    }
}

fn decode_reply(line: &str) -> io::Result<ServiceReply> {
    let json = Json::parse(line)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("bad response: {e}")))?;
    match json.get("ok").and_then(Json::as_bool) {
        Some(true) => Ok(ServiceReply::Ok(json)),
        Some(false) => {
            let code = json
                .get("error")
                .and_then(|e| e.get("code"))
                .and_then(Json::as_str)
                .unwrap_or("internal")
                .to_string();
            let message = json
                .get("error")
                .and_then(|e| e.get("message"))
                .and_then(Json::as_str)
                .unwrap_or("")
                .to_string();
            Ok(ServiceReply::Err { code, message })
        }
        None => Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "response missing \"ok\" field",
        )),
    }
}

/// Blocking client handle (stores the endpoint; connects per request).
#[derive(Debug, Clone)]
pub struct Client {
    endpoint: Endpoint,
}

impl Client {
    /// A client for the given endpoint.
    pub fn new(endpoint: Endpoint) -> Client {
        Client { endpoint }
    }

    /// Sends one request and decodes the (first) response line.
    ///
    /// # Errors
    ///
    /// I/O errors connecting or talking to the server, or a response
    /// that is not valid protocol JSON. Typed protocol errors are *not*
    /// `Err` — they come back as [`ServiceReply::Err`].
    pub fn request(&self, request: &Request) -> io::Result<ServiceReply> {
        decode_reply(&one_shot(&self.endpoint, &encode_request(request))?)
    }

    /// Submits a job for `tenant`.
    ///
    /// # Errors
    ///
    /// See [`request`](Self::request).
    pub fn submit(&self, tenant: &str, job: JobSpec) -> io::Result<ServiceReply> {
        self.request(&Request::Submit {
            tenant: tenant.to_string(),
            job,
        })
    }

    /// One-shot job status.
    ///
    /// # Errors
    ///
    /// See [`request`](Self::request).
    pub fn status(&self, job: &str) -> io::Result<ServiceReply> {
        self.request(&Request::Status {
            job: job.to_string(),
        })
    }

    /// Requests cancellation of a job.
    ///
    /// # Errors
    ///
    /// See [`request`](Self::request).
    pub fn cancel(&self, job: &str) -> io::Result<ServiceReply> {
        self.request(&Request::Cancel {
            job: job.to_string(),
        })
    }

    /// Lists jobs, optionally for one tenant.
    ///
    /// # Errors
    ///
    /// See [`request`](Self::request).
    pub fn list(&self, tenant: Option<&str>) -> io::Result<ServiceReply> {
        self.request(&Request::List {
            tenant: tenant.map(str::to_string),
        })
    }

    /// The server's self-observation snapshot (queue depth, worker
    /// liveness, quota pressure, persist status).
    ///
    /// # Errors
    ///
    /// See [`request`](Self::request).
    pub fn health(&self) -> io::Result<ServiceReply> {
        self.request(&Request::Health)
    }

    /// Polls `status` until the job reaches a terminal state or the
    /// deadline passes. Returns the final reply.
    ///
    /// # Errors
    ///
    /// `TimedOut` when the deadline passes first; otherwise see
    /// [`request`](Self::request).
    pub fn wait(&self, job: &str, timeout: Duration) -> io::Result<ServiceReply> {
        let deadline = Instant::now() + timeout;
        loop {
            let reply = self.status(job)?;
            match reply.job_state() {
                Some(state) if state.is_terminal() => return Ok(reply),
                Some(_) => {}
                // unknown_job and other typed errors end the wait too.
                None => return Ok(reply),
            }
            if Instant::now() >= deadline {
                return Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    format!("job {job:?} not terminal within {timeout:?}"),
                ));
            }
            std::thread::sleep(Duration::from_millis(10));
        }
    }

    /// Whether the server is reachable (an empty probe connection).
    pub fn is_up(&self) -> bool {
        self.list(None).is_ok()
    }
}
