//! Standalone sweep worker for the harness integration tests (the
//! production entry point is `fulllock sweep-worker`, which also knows
//! the CLN hardness-atlas executor).
//!
//! Reads the sealed plan out of `--dir`, runs the claim → steal →
//! speculate loop until every unit of the grid is settled, and prints a
//! one-line summary. Only the synthetic `sat` executor is available
//! here; plans with any other executor are refused.
//!
//! Flags are produced by `WorkerArgs::to_args` — see
//! `fulllock_harness::sweep::worker::WorkerArgs::parse` for the list.

use fulllock_harness::sweep::worker::{run_worker, SatUnitExecutor, WorkerArgs};
use fulllock_harness::sweep::SweepPlan;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let parsed = WorkerArgs::parse(&args).unwrap_or_else(|e| die(&e));
    let (plan, _hash) = SweepPlan::load(&parsed.dir).unwrap_or_else(|e| die(&e.to_string()));
    if plan.executor != "sat" {
        die(&format!(
            "executor {:?} is not available in the harness worker (only \"sat\")",
            plan.executor
        ));
    }
    let config = parsed.to_config();
    let executor = SatUnitExecutor::from_plan(&plan);
    match run_worker(&plan, &config, &executor) {
        Ok(summary) => {
            println!(
                "sweep worker {}: executed={} stolen={} speculative={} wins={} losses={}",
                config.worker,
                summary.executed,
                summary.stolen,
                summary.speculative,
                summary.settle_wins,
                summary.settle_losses
            );
        }
        Err(e) => die(&e.to_string()),
    }
}

fn die(message: &str) -> ! {
    eprintln!("sweep_worker: {message}");
    std::process::exit(64);
}
