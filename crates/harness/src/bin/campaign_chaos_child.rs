//! Chaos child for supervisor tests: a job that panics, hangs, or exits
//! non-zero **on demand**, driven by the workspace's existing failpoint
//! grammar (`FULLLOCK_FAILPOINTS`, see `fulllock_sat::faults`).
//!
//! The armed site is `campaign.child.run` ([`fulllock_harness::CHAOS_CHILD_SITE`]);
//! the context index comes from `--index N` (default 0), so one plan can
//! aim different faults at different jobs. Actions map to child behavior:
//!
//! | action      | behavior                                         |
//! |-------------|--------------------------------------------------|
//! | `panic`     | Rust panic (non-zero exit, backtrace on stderr)  |
//! | `drop`      | silent `exit(1)`                                 |
//! | `corrupt`   | garbage on stdout, then `exit(2)`                |
//! | `trigger`   | hang forever (ignores nothing — SIGTERM works)   |
//! | `delay:MS`  | sleep `MS` milliseconds, then succeed            |
//!
//! With no matching failpoint the child prints a marker line and exits 0.

use std::time::Duration;

use fulllock_harness::CHAOS_CHILD_SITE;
use fulllock_sat::faults::{FaultAction, FaultPlan};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut index = 0usize;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        if arg == "--index" {
            index = iter
                .next()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| die("--index requires an unsigned integer"));
        } else {
            die(&format!("unknown argument {arg:?} (expected --index N)"));
        }
    }

    // Parse the plan directly so the child behaves identically with or
    // without the `failpoints` feature (the grammar is always available).
    let spec = std::env::var("FULLLOCK_FAILPOINTS").unwrap_or_default();
    let plan: FaultPlan = match spec.parse() {
        Ok(plan) => plan,
        Err(e) => die(&format!("invalid FULLLOCK_FAILPOINTS: {e}")),
    };
    let action = plan
        .points()
        .iter()
        .find(|p| p.name == CHAOS_CHILD_SITE && p.index.is_none_or(|i| i == index))
        .map(|p| p.action);

    match action {
        None => {
            println!("chaos child #{index}: ok");
        }
        Some(FaultAction::Panic) => {
            panic!("chaos child #{index}: injected panic");
        }
        Some(FaultAction::Drop) => {
            std::process::exit(1);
        }
        Some(FaultAction::Corrupt) => {
            println!("\u{fffd}\u{fffd} chaos child #{index}: corrupted output \u{fffd}\u{fffd}");
            std::process::exit(2);
        }
        Some(FaultAction::Trigger) => {
            // Deliberate hang: the supervisor must reclaim this job via
            // its SIGTERM -> SIGKILL escalation.
            println!("chaos child #{index}: hanging");
            loop {
                std::thread::sleep(Duration::from_millis(100));
            }
        }
        Some(FaultAction::DelayMs(ms)) => {
            std::thread::sleep(Duration::from_millis(ms));
            println!("chaos child #{index}: ok after {ms}ms");
        }
        // The IO and oracle actions belong to the persist/queue disk-fault
        // and oracle.query sites; a chaos child treats them like a generic
        // injected failure.
        Some(
            FaultAction::Enospc
            | FaultAction::Eio
            | FaultAction::Torn
            | FaultAction::Flip
            | FaultAction::Stuck,
        ) => {
            eprintln!("chaos child #{index}: injected io fault");
            std::process::exit(3);
        }
    }
}

fn die(message: &str) -> ! {
    eprintln!("campaign_chaos_child: {message}");
    std::process::exit(64);
}
