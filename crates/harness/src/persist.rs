//! Corruption-resilient file persistence: checksummed envelopes,
//! generation rotation, and quarantine.
//!
//! The atomic tmp+sync+rename writers elsewhere in the workspace already
//! guarantee that a *crash* leaves a complete old or new file — but they
//! cannot defend against a torn write that the filesystem reports as
//! successful (power loss after a lying fsync, bit rot, an interrupted
//! copy of the output directory). This module layers three defences on
//! top:
//!
//! 1. every payload is wrapped in a [`seal`]ed envelope with an FNV-1a
//!    content checksum;
//! 2. [`save_sealed`] rotates generations — the previous good file
//!    survives one more save as `<path>.1`;
//! 3. [`load_sealed`] verifies the checksum, quarantines a corrupt
//!    primary as `<path>.corrupt` (evidence, not deleted), and falls back
//!    to the newest checksum-valid generation instead of aborting.
//!
//! Unsealed files written by older builds load fine (no checksum to
//! verify), so rolling this out does not invalidate existing campaign
//! directories or checkpoints.
//!
//! # Disk-fault injection
//!
//! With the `failpoints` feature, [`save_sealed`] consults two fault
//! sites so chaos tests can exercise the write path the way a hostile
//! filesystem would:
//!
//! * [`persist.write`](fulllock_sat::faults::site::PERSIST_WRITE) —
//!   `enospc`/`eio` fail the save before any byte lands; `torn` writes a
//!   truncated envelope but reports success (the checksum catches it at
//!   the next load and the previous generation takes over).
//! * [`persist.sync`](fulllock_sat::faults::site::PERSIST_SYNC) —
//!   `enospc`/`eio` fail the durability fsync; `torn` *skips* it while
//!   reporting success (a lying fsync).
//!
//! Both sites also honor `delay:<ms>` and `panic`; the remaining actions
//! have no IO meaning and are ignored. Without the feature the
//! evaluation compiles to a constant `None` — zero cost.

use std::io;
use std::io::Write as _;
use std::path::{Path, PathBuf};

use fulllock_sat::faults::{self, FaultAction};

use crate::json::{seal, unseal};

/// The previous-generation suffix (`file` → `file.1`).
const PREVIOUS_SUFFIX: &str = ".1";
/// Where a checksum-failing primary is moved before falling back.
const QUARANTINE_SUFFIX: &str = ".corrupt";

/// Appends `suffix` to a full file name (`campaign.json` →
/// `campaign.json.1`, not `campaign.1`).
pub(crate) fn with_suffix(path: &Path, suffix: &str) -> PathBuf {
    let mut name = path.as_os_str().to_os_string();
    name.push(suffix);
    PathBuf::from(name)
}

/// Consults an IO fault site: `enospc`/`eio` become errors, `delay`
/// sleeps, `panic` panics, `torn` is returned for the caller to apply,
/// anything else is ignored (no IO meaning). The sweep lease/segment
/// writers share this mapping for their own sites.
pub(crate) fn consult_io_site(site: &'static str, index: usize) -> io::Result<bool> {
    match faults::evaluate(site, index) {
        Some(FaultAction::Enospc) => Err(io::Error::other(format!(
            "injected ENOSPC: no space left on device ({site} failpoint)"
        ))),
        Some(FaultAction::Eio) => Err(io::Error::other(format!(
            "injected EIO: input/output error ({site} failpoint)"
        ))),
        Some(FaultAction::Torn) => Ok(true),
        Some(FaultAction::Panic) => panic!("{site} failpoint: injected panic"),
        Some(delay @ FaultAction::DelayMs(_)) => {
            faults::apply_delay(delay);
            Ok(false)
        }
        _ => Ok(false),
    }
}

/// Writes `payload` sealed into `path`, atomically, keeping the previous
/// generation: serialize to `<path>.tmp`, sync, rotate any existing
/// `path` to `<path>.1`, then rename the temp file into place. After a
/// torn or corrupt write of `path`, `<path>.1` still holds the previous
/// complete, checksum-valid state.
///
/// Under the `failpoints` feature this is also where the
/// `persist.write` and `persist.sync` disk-fault sites fire (see the
/// module docs); an injected `enospc`/`eio` comes back as
/// [`io::ErrorKind::Other`] with the site named in the message.
pub fn save_sealed(path: &Path, payload: &str) -> io::Result<()> {
    let torn_write = consult_io_site(faults::site::PERSIST_WRITE, 0)?;
    save_sealed_raw(path, payload, torn_write)
}

/// The sealed-write machinery with the tear decision already made —
/// `queue.seal=torn` reaches this directly so a shard file can land
/// truncated while the queue reports success.
pub(crate) fn save_sealed_raw(path: &Path, payload: &str, torn: bool) -> io::Result<()> {
    let tmp = with_suffix(path, ".tmp");
    let mut file = std::fs::File::create(&tmp)?;
    let sealed = format!("{}\n", seal(payload));
    let bytes = if torn {
        // Stop mid-envelope: the length the checksum can never excuse.
        &sealed.as_bytes()[..sealed.len() / 2]
    } else {
        sealed.as_bytes()
    };
    file.write_all(bytes)?;
    if !consult_io_site(faults::site::PERSIST_SYNC, 0)? {
        file.sync_all()?;
    }
    drop(file);
    if path.exists() {
        std::fs::rename(path, with_suffix(path, PREVIOUS_SUFFIX))?;
    }
    std::fs::rename(&tmp, path)
}

/// A successfully loaded payload, with provenance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Loaded {
    /// The verified (or legacy unsealed) payload text.
    pub payload: String,
    /// `true` when the payload came from the previous generation
    /// (`<path>.1`) because the primary was missing or corrupt.
    pub from_previous: bool,
    /// Where the corrupt primary was quarantined, if it was.
    pub quarantined: Option<PathBuf>,
}

/// Reads the newest checksum-valid generation of `path`.
///
/// The primary is tried first. If it is unreadable or fails its checksum
/// it is quarantined as `<path>.corrupt` (best-effort) and `<path>.1` is
/// tried instead. Only if *no* generation verifies does the primary's
/// error come back — [`io::ErrorKind::InvalidData`] for a checksum or
/// framing failure, the original kind for filesystem errors.
///
/// Files written before sealing existed carry no envelope; they are
/// returned as-is (their parse-level validation still applies upstream).
pub fn load_sealed(path: &Path) -> io::Result<Loaded> {
    let primary = read_generation(path);
    let primary_err = match primary {
        Ok(payload) => {
            return Ok(Loaded {
                payload,
                from_previous: false,
                quarantined: None,
            })
        }
        Err(e) => e,
    };
    // Quarantine a *corrupt* primary (keep the evidence out of the way of
    // the next save); a merely missing one has nothing to quarantine.
    let quarantined = if primary_err.kind() == io::ErrorKind::InvalidData {
        let target = with_suffix(path, QUARANTINE_SUFFIX);
        std::fs::rename(path, &target).ok().map(|()| target)
    } else {
        None
    };
    match read_generation(&with_suffix(path, PREVIOUS_SUFFIX)) {
        Ok(payload) => Ok(Loaded {
            payload,
            from_previous: true,
            quarantined,
        }),
        Err(_) => Err(primary_err),
    }
}

/// Reads one generation and verifies its envelope, mapping a seal
/// failure to [`io::ErrorKind::InvalidData`].
fn read_generation(path: &Path) -> io::Result<String> {
    let text = std::fs::read_to_string(path)?;
    match unseal(&text) {
        Ok(Some(payload)) => Ok(payload.to_string()),
        Ok(None) => Ok(text),
        Err(message) => Err(io::Error::new(io::ErrorKind::InvalidData, message)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("fulllock-persist-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create scratch dir");
        dir
    }

    #[test]
    fn save_load_round_trips_and_rotates() {
        let dir = scratch("rotate");
        let path = dir.join("state.json");
        save_sealed(&path, "{\"gen\":1}").expect("first save");
        save_sealed(&path, "{\"gen\":2}").expect("second save");
        assert!(
            with_suffix(&path, ".1").exists(),
            "previous generation kept"
        );
        let loaded = load_sealed(&path).expect("load");
        assert_eq!(loaded.payload, "{\"gen\":2}");
        assert!(!loaded.from_previous);
        let previous = load_sealed(&with_suffix(&path, ".1")).expect("load previous");
        assert_eq!(previous.payload, "{\"gen\":1}");
    }

    #[test]
    fn corrupt_primary_falls_back_and_is_quarantined() {
        let dir = scratch("fallback");
        let path = dir.join("state.json");
        save_sealed(&path, "{\"gen\":1}").expect("first save");
        save_sealed(&path, "{\"gen\":2}").expect("second save");
        // Tear the primary mid-file.
        let full = std::fs::read_to_string(&path).expect("read");
        std::fs::write(&path, &full[..full.len() / 2]).expect("tear");
        let loaded = load_sealed(&path).expect("fallback load");
        assert_eq!(loaded.payload, "{\"gen\":1}");
        assert!(loaded.from_previous);
        let quarantine = loaded.quarantined.expect("quarantined");
        assert!(quarantine.ends_with("state.json.corrupt"));
        assert!(quarantine.exists());
        assert!(!path.exists(), "corrupt primary moved aside");
    }

    #[test]
    fn both_generations_corrupt_is_a_typed_error() {
        let dir = scratch("doublefault");
        let path = dir.join("state.json");
        save_sealed(&path, "{\"gen\":1}").expect("first save");
        save_sealed(&path, "{\"gen\":2}").expect("second save");
        let tear = |p: &Path| {
            let full = std::fs::read_to_string(p).expect("read");
            std::fs::write(p, &full[..full.len() - 4]).expect("tear");
        };
        tear(&path);
        tear(&with_suffix(&path, ".1"));
        let err = load_sealed(&path).expect_err("must fail");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn missing_file_keeps_its_io_error_kind() {
        let dir = scratch("missing");
        let err = load_sealed(&dir.join("absent.json")).expect_err("must fail");
        assert_eq!(err.kind(), io::ErrorKind::NotFound);
    }

    #[test]
    fn legacy_unsealed_files_still_load() {
        let dir = scratch("legacy");
        let path = dir.join("state.json");
        std::fs::write(&path, "{\"version\":1}\n").expect("write legacy");
        let loaded = load_sealed(&path).expect("legacy load");
        assert_eq!(loaded.payload, "{\"version\":1}\n");
        assert!(!loaded.from_previous);
    }
}
