//! The campaign supervisor: runs plan jobs as isolated child processes
//! with timeouts, retries, bounded parallelism, and graceful degradation.
//!
//! Per job, the supervisor enforces a wall-clock budget (SIGTERM at the
//! deadline, SIGKILL after a grace period for children that ignore it)
//! and a bounded retry schedule with exponential backoff
//! ([`crate::retry::RetryPolicy`]) for *transient* failures — non-zero
//! exits and signal kills. *Permanent* failures (the program cannot be
//! spawned at all — bad config) are never retried. A job that exhausts
//! its budget is recorded as `failed`/`timed_out` and the campaign moves
//! on; one bad experiment no longer aborts a multi-hour sweep.
//!
//! All scheduling reads a [`Clock`], so retry/backoff logic is testable
//! against a mocked clock; production uses [`SystemClock`]. Child
//! stdout/stderr go to per-attempt files under `<out_dir>/logs/`, and
//! every state transition atomically rewrites
//! `<out_dir>/campaign.json` (see [`crate::manifest`]) so a killed
//! supervisor can `--resume`.

use std::collections::VecDeque;
use std::fs::File;
use std::path::PathBuf;
use std::process::{Child, Command, ExitStatus, Stdio};
use std::time::Duration;

use crate::manifest::{CampaignManifest, JobRecord, JobStatus};
use crate::plan::CampaignPlan;
use crate::retry::{Clock, RetryPolicy, SystemClock};
use crate::{HarnessError, Result};

/// Supervisor knobs. The defaults suit the paper sweep on a laptop.
#[derive(Debug, Clone)]
pub struct SupervisorConfig {
    /// Maximum concurrently running jobs (`--jobs N`).
    pub parallelism: usize,
    /// Wall-clock budget for jobs without a per-job override.
    pub default_timeout: Duration,
    /// After SIGTERM, how long a child may linger before SIGKILL.
    pub grace: Duration,
    /// Retry schedule for transient failures; a job's
    /// [`max_attempts`](crate::plan::JobSpec::max_attempts) overrides the
    /// attempt budget.
    pub retry: RetryPolicy,
    /// Where the manifest (`campaign.json`) and `logs/` land.
    pub out_dir: PathBuf,
    /// Resume from an existing manifest: jobs already `succeeded` with an
    /// unchanged config hash are skipped, everything else re-runs.
    pub resume: bool,
    /// How often running children are polled (reap, RSS sample, deadline
    /// check).
    pub poll_interval: Duration,
    /// Ambient `FULLLOCK_*` fingerprint mixed into every job's config
    /// hash (see [`crate::plan::ambient_fingerprint`]); `None` (the
    /// default) fingerprints this process's actual environment. Because
    /// children inherit that environment, flipping e.g.
    /// `FULLLOCK_CERTIFY` between runs changes every job's effective
    /// config, and `--resume` re-runs them instead of skipping them as
    /// "unchanged". Tests inject a fixed value for determinism.
    pub ambient_hash: Option<u64>,
}

impl Default for SupervisorConfig {
    fn default() -> SupervisorConfig {
        SupervisorConfig {
            parallelism: 1,
            default_timeout: Duration::from_secs(3600),
            grace: Duration::from_secs(2),
            retry: RetryPolicy::default(),
            out_dir: PathBuf::from("campaign"),
            resume: false,
            poll_interval: Duration::from_millis(20),
            ambient_hash: None,
        }
    }
}

/// Aggregate result of a finished campaign. Counts cover the plan's
/// jobs; `skipped` are resume-time skips of previously succeeded jobs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignOutcome {
    /// Jobs in the plan.
    pub total: usize,
    /// Jobs that exited 0 this run.
    pub succeeded: usize,
    /// Jobs that exhausted their attempts (or failed permanently).
    pub failed: usize,
    /// Jobs whose final attempt exceeded its wall-clock budget.
    pub timed_out: usize,
    /// Jobs skipped on resume (already succeeded, config unchanged).
    pub skipped: usize,
    /// Where the manifest was written.
    pub manifest_path: PathBuf,
}

impl CampaignOutcome {
    /// True when every job of the plan ended well (succeeded or skipped).
    pub fn all_succeeded(&self) -> bool {
        self.failed == 0 && self.timed_out == 0
    }

    /// `"success"`, `"partial"` (some jobs failed but others finished),
    /// or `"failed"` (nothing finished).
    pub fn status_word(&self) -> &'static str {
        if self.all_succeeded() {
            "success"
        } else if self.succeeded + self.skipped > 0 {
            "partial"
        } else {
            "failed"
        }
    }
}

/// A queued execution: the job at `idx` in the plan, about to run its
/// `attempt`-th attempt once `eligible_at` passes (backoff).
struct QueuedRun {
    idx: usize,
    attempt: u32,
    eligible_at: Duration,
}

/// A live child process under supervision.
struct RunningJob {
    idx: usize,
    attempt: u32,
    child: Child,
    started: Duration,
    deadline: Duration,
    term_sent: Option<Duration>,
    timed_out: bool,
    peak_rss_kb: Option<u64>,
}

/// Runs the whole plan under the wall clock. See the module docs for
/// the supervision semantics.
///
/// # Errors
///
/// Only supervisor-level problems are errors (invalid plan, unreadable
/// manifest, filesystem failures on the output directory). Job failures
/// are recorded in the manifest and reflected in the
/// [`CampaignOutcome`], not raised.
pub fn run_campaign(plan: &CampaignPlan, config: &SupervisorConfig) -> Result<CampaignOutcome> {
    run_campaign_with_clock(plan, config, &SystemClock::new())
}

/// [`run_campaign`] against an explicit [`Clock`] (tests inject a mock).
pub fn run_campaign_with_clock(
    plan: &CampaignPlan,
    config: &SupervisorConfig,
    clock: &dyn Clock,
) -> Result<CampaignOutcome> {
    plan.validate()?;
    let logs_dir = config.out_dir.join("logs");
    std::fs::create_dir_all(&logs_dir).map_err(|e| HarnessError::Io {
        path: logs_dir.clone(),
        message: format!("create logs directory: {e}"),
    })?;
    let manifest_path = config.out_dir.join("campaign.json");

    // Reconcile a previous manifest (resume) or start fresh.
    let mut manifest = if config.resume && manifest_path.exists() {
        CampaignManifest::load(&manifest_path)?
    } else {
        CampaignManifest::new(&plan.name)
    };
    let ambient = config
        .ambient_hash
        .unwrap_or_else(crate::plan::current_ambient_fingerprint);
    let mut queue: VecDeque<QueuedRun> = VecDeque::new();
    for (idx, job) in plan.jobs.iter().enumerate() {
        let hash = job.config_hash_with(ambient);
        let prior = manifest.job(&job.id);
        let already_done = config.resume
            && prior.is_some_and(|rec| {
                rec.config_hash == hash
                    && matches!(rec.status, JobStatus::Succeeded | JobStatus::Skipped)
            });
        if already_done {
            let rec = manifest
                .job_mut(&job.id)
                .expect("record existence checked above");
            if rec.status != JobStatus::Skipped {
                rec.status = JobStatus::Skipped;
                manifest.push_event(&job.id, 0, JobStatus::Skipped.as_str());
            }
        } else {
            // Fresh record: an interrupted (`running`), failed, timed-out,
            // pending, or config-drifted entry re-runs from scratch.
            manifest.upsert(JobRecord::new(&job.id, hash));
            queue.push_back(QueuedRun {
                idx,
                attempt: 1,
                eligible_at: Duration::ZERO,
            });
        }
    }
    manifest.save(&manifest_path)?;

    let parallelism = config.parallelism.max(1);
    let mut running: Vec<RunningJob> = Vec::new();
    while !queue.is_empty() || !running.is_empty() {
        let now = clock.now();

        // Reap finished children, sample RSS, enforce deadlines. RSS is
        // sampled *before* `try_wait`: reaping collects the zombie and
        // tears down `/proc/<pid>`, so a sample after a successful wait
        // always misses. Together with the spawn-time sample in
        // `start_attempt`, this keeps short-lived jobs from racing the
        // poll and recording no peak at all.
        let mut i = 0;
        while i < running.len() {
            if let Some(rss) = sample_rss_kb(running[i].child.id()) {
                let slot = &mut running[i];
                slot.peak_rss_kb = Some(slot.peak_rss_kb.unwrap_or(0).max(rss));
            }
            match running[i].child.try_wait() {
                Ok(Some(status)) => {
                    let slot = running.swap_remove(i);
                    finish_attempt(
                        plan,
                        config,
                        clock,
                        &mut manifest,
                        &manifest_path,
                        &mut queue,
                        slot,
                        Some(status),
                        None,
                    )?;
                }
                Ok(None) => {
                    let slot = &mut running[i];
                    if now >= slot.deadline {
                        slot.timed_out = true;
                        match slot.term_sent {
                            None => {
                                send_sigterm(&mut slot.child);
                                slot.term_sent = Some(now);
                            }
                            Some(at) if now >= at + config.grace => {
                                // The child ignored SIGTERM: escalate.
                                let _ = slot.child.kill();
                            }
                            Some(_) => {}
                        }
                    }
                    i += 1;
                }
                Err(e) => {
                    let mut slot = running.swap_remove(i);
                    let _ = slot.child.kill();
                    let _ = slot.child.wait();
                    let reason = format!("wait failed: {e}");
                    finish_attempt(
                        plan,
                        config,
                        clock,
                        &mut manifest,
                        &manifest_path,
                        &mut queue,
                        slot,
                        None,
                        Some(reason),
                    )?;
                }
            }
        }

        // Fill free slots with eligible queued runs.
        while running.len() < parallelism {
            let Some(pos) = queue.iter().position(|q| q.eligible_at <= now) else {
                break;
            };
            let queued = queue.remove(pos).expect("position comes from the queue");
            start_attempt(
                plan,
                config,
                clock,
                &mut manifest,
                &manifest_path,
                &mut running,
                queued,
            )?;
        }

        if queue.is_empty() && running.is_empty() {
            break;
        }
        let sleep = if running.is_empty() {
            // Everything left is backing off: sleep straight to the
            // earliest eligibility.
            queue
                .iter()
                .map(|q| q.eligible_at.saturating_sub(now))
                .min()
                .unwrap_or(config.poll_interval)
                .max(Duration::from_millis(1))
        } else {
            config.poll_interval
        };
        clock.sleep(sleep);
    }

    manifest.save(&manifest_path)?;
    Ok(CampaignOutcome {
        total: plan.jobs.len(),
        succeeded: manifest.count(JobStatus::Succeeded),
        failed: manifest.count(JobStatus::Failed),
        timed_out: manifest.count(JobStatus::TimedOut),
        skipped: manifest.count(JobStatus::Skipped),
        manifest_path,
    })
}

/// Spawns one attempt of a queued job, or records a permanent failure if
/// the program cannot be spawned at all (bad config — never retried).
#[allow(clippy::too_many_arguments)]
fn start_attempt(
    plan: &CampaignPlan,
    config: &SupervisorConfig,
    clock: &dyn Clock,
    manifest: &mut CampaignManifest,
    manifest_path: &std::path::Path,
    running: &mut Vec<RunningJob>,
    queued: QueuedRun,
) -> Result<()> {
    let job = &plan.jobs[queued.idx];
    let stdout_rel = format!("logs/{}.attempt{}.stdout.log", job.id, queued.attempt);
    let stderr_rel = format!("logs/{}.attempt{}.stderr.log", job.id, queued.attempt);
    let open = |rel: &str| {
        let path = config.out_dir.join(rel);
        File::create(&path).map_err(|e| HarnessError::Io {
            path,
            message: format!("create log file: {e}"),
        })
    };
    let stdout = open(&stdout_rel)?;
    let stderr = open(&stderr_rel)?;

    let mut cmd = Command::new(&job.program);
    cmd.args(&job.args)
        .stdin(Stdio::null())
        .stdout(Stdio::from(stdout))
        .stderr(Stdio::from(stderr));
    for (k, v) in &job.env {
        cmd.env(k, v);
    }

    let rec = manifest
        .job_mut(&job.id)
        .expect("every plan job was upserted before the loop");
    rec.attempts = queued.attempt;
    rec.stdout_log = Some(stdout_rel);
    rec.stderr_log = Some(stderr_rel);
    match cmd.spawn() {
        Ok(child) => {
            rec.status = JobStatus::Running;
            manifest.push_event(&job.id, queued.attempt, JobStatus::Running.as_str());
            let now = clock.now();
            let timeout = job
                .timeout_secs
                .map(Duration::from_secs_f64)
                .unwrap_or(config.default_timeout);
            // First RSS sample right at spawn: a job that exits within
            // one poll interval becomes an unreadable zombie before the
            // reap loop ever sees it alive, and would otherwise record
            // no peak at all.
            let peak_rss_kb = sample_rss_kb(child.id());
            running.push(RunningJob {
                idx: queued.idx,
                attempt: queued.attempt,
                child,
                started: now,
                deadline: now + timeout,
                term_sent: None,
                timed_out: false,
                peak_rss_kb,
            });
        }
        Err(e) => {
            rec.status = JobStatus::Failed;
            rec.last_error = Some(format!("spawn failed: {e} (permanent, not retried)"));
            manifest.push_event(&job.id, queued.attempt, JobStatus::Failed.as_str());
        }
    }
    manifest.save(manifest_path)
}

/// Records a finished attempt: success, retry with backoff, or final
/// failure/timeout.
#[allow(clippy::too_many_arguments)]
fn finish_attempt(
    plan: &CampaignPlan,
    config: &SupervisorConfig,
    clock: &dyn Clock,
    manifest: &mut CampaignManifest,
    manifest_path: &std::path::Path,
    queue: &mut VecDeque<QueuedRun>,
    slot: RunningJob,
    status: Option<ExitStatus>,
    wait_error: Option<String>,
) -> Result<()> {
    let job = &plan.jobs[slot.idx];
    let now = clock.now();
    let rec = manifest
        .job_mut(&job.id)
        .expect("every plan job was upserted before the loop");
    rec.duration_secs += now.saturating_sub(slot.started).as_secs_f64();
    if let Some(rss) = slot.peak_rss_kb {
        rec.peak_rss_kb = Some(rec.peak_rss_kb.unwrap_or(0).max(rss));
    }
    rec.exit_code = status.and_then(|s| s.code()).map(i64::from);
    rec.signal = exit_signal(status);

    let succeeded = !slot.timed_out && status.is_some_and(|s| s.success());
    if succeeded {
        rec.status = JobStatus::Succeeded;
        rec.last_error = None;
        manifest.push_event(&job.id, slot.attempt, JobStatus::Succeeded.as_str());
        return manifest.save(manifest_path);
    }

    let reason = if slot.timed_out {
        "wall-clock budget exceeded".to_string()
    } else if let Some(message) = wait_error {
        message
    } else {
        match (rec.exit_code, rec.signal) {
            (Some(code), _) => format!("exited with status {code}"),
            (None, Some(sig)) => format!("killed by signal {sig}"),
            (None, None) => "terminated abnormally".to_string(),
        }
    };
    rec.last_error = Some(reason);

    // Transient failure (non-zero exit, signal kill, timeout): retry
    // with exponential backoff while the attempt budget lasts.
    let mut policy = config.retry;
    if let Some(n) = job.max_attempts {
        policy.max_attempts = n;
    }
    if let Some(delay) = policy.delay_after(slot.attempt) {
        rec.status = JobStatus::Pending;
        manifest.push_event(&job.id, slot.attempt, "retrying");
        queue.push_back(QueuedRun {
            idx: slot.idx,
            attempt: slot.attempt + 1,
            eligible_at: now + delay,
        });
    } else {
        let terminal = if slot.timed_out {
            JobStatus::TimedOut
        } else {
            JobStatus::Failed
        };
        rec.status = terminal;
        manifest.push_event(&job.id, slot.attempt, terminal.as_str());
    }
    manifest.save(manifest_path)
}

/// Signal number that terminated the child, if any (Unix only).
#[cfg(unix)]
pub(crate) fn exit_signal(status: Option<ExitStatus>) -> Option<i64> {
    use std::os::unix::process::ExitStatusExt as _;
    status.and_then(|s| s.signal()).map(i64::from)
}

#[cfg(not(unix))]
pub(crate) fn exit_signal(_status: Option<ExitStatus>) -> Option<i64> {
    None
}

/// Asks the child to terminate gracefully. On Unix this delivers
/// SIGTERM via the `kill` utility (std exposes only SIGKILL); elsewhere
/// it goes straight to [`Child::kill`].
#[cfg(unix)]
pub(crate) fn send_sigterm(child: &mut Child) {
    let delivered = Command::new("kill")
        .arg("-TERM")
        .arg(child.id().to_string())
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .status()
        .map(|s| s.success())
        .unwrap_or(false);
    if !delivered {
        // No `kill` utility (or it failed): fall back to a hard kill so
        // the deadline still holds.
        let _ = child.kill();
    }
}

#[cfg(not(unix))]
pub(crate) fn send_sigterm(child: &mut Child) {
    let _ = child.kill();
}

/// Peak resident set size of a live process in kB (Linux `VmHWM`).
#[cfg(target_os = "linux")]
fn sample_rss_kb(pid: u32) -> Option<u64> {
    let text = std::fs::read_to_string(format!("/proc/{pid}/status")).ok()?;
    let line = text.lines().find_map(|l| l.strip_prefix("VmHWM:"))?;
    line.trim().trim_end_matches("kB").trim().parse().ok()
}

#[cfg(not(target_os = "linux"))]
fn sample_rss_kb(_pid: u32) -> Option<u64> {
    None
}
