//! Retry policy (bounded attempts, exponential backoff) and the clock
//! abstraction that makes the schedule unit-testable.

use std::time::{Duration, Instant};

/// A monotonic clock the supervisor schedules against.
///
/// Production uses [`SystemClock`]; tests substitute a mock that advances
/// manually, so backoff schedules are asserted without sleeping.
pub trait Clock {
    /// Monotonic time elapsed since the clock's origin.
    fn now(&self) -> Duration;
    /// Blocks the caller for (up to) `d`.
    fn sleep(&self, d: Duration);
}

/// Wall-clock [`Clock`] anchored at construction time.
#[derive(Debug)]
pub struct SystemClock {
    origin: Instant,
}

impl SystemClock {
    /// A clock whose origin is now.
    pub fn new() -> SystemClock {
        SystemClock {
            origin: Instant::now(),
        }
    }
}

impl Default for SystemClock {
    fn default() -> SystemClock {
        SystemClock::new()
    }
}

impl Clock for SystemClock {
    fn now(&self) -> Duration {
        self.origin.elapsed()
    }

    fn sleep(&self, d: Duration) {
        std::thread::sleep(d);
    }
}

/// Bounded retries with exponential backoff.
///
/// A job gets at most `max_attempts` executions. After the `n`-th failed
/// attempt (1-based), the next attempt becomes eligible after
/// `base_delay * multiplier^(n-1)`, capped at `max_delay`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Total executions allowed per job (1 = no retries).
    pub max_attempts: u32,
    /// Backoff before the first retry.
    pub base_delay: Duration,
    /// Growth factor per subsequent retry.
    pub multiplier: f64,
    /// Upper bound on any single backoff delay.
    pub max_delay: Duration,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 2,
            base_delay: Duration::from_millis(500),
            multiplier: 2.0,
            max_delay: Duration::from_secs(30),
        }
    }
}

impl RetryPolicy {
    /// A policy with no retries at all.
    pub fn none() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 1,
            ..RetryPolicy::default()
        }
    }

    /// Backoff to wait after `failures` failed attempts, or `None` when
    /// the attempt budget is exhausted and the job must be declared
    /// permanently failed.
    pub fn delay_after(&self, failures: u32) -> Option<Duration> {
        if failures == 0 || failures >= self.max_attempts {
            return None;
        }
        let factor = self
            .multiplier
            .max(1.0)
            .powi(failures.saturating_sub(1) as i32);
        let delay = self.base_delay.as_secs_f64() * factor;
        Some(self.max_delay.min(Duration::from_secs_f64(delay)))
    }
}

#[cfg(test)]
pub(crate) mod mock {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    /// Deterministic [`Clock`] for schedule tests: `sleep` advances the
    /// clock instead of blocking.
    #[derive(Debug, Default)]
    pub struct MockClock {
        now_micros: AtomicU64,
    }

    impl MockClock {
        pub fn advance(&self, d: Duration) {
            self.now_micros
                .fetch_add(d.as_micros() as u64, Ordering::SeqCst);
        }
    }

    impl Clock for MockClock {
        fn now(&self) -> Duration {
            Duration::from_micros(self.now_micros.load(Ordering::SeqCst))
        }

        fn sleep(&self, d: Duration) {
            self.advance(d);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::mock::MockClock;
    use super::*;

    #[test]
    fn backoff_schedule_is_exponential_and_capped() {
        let policy = RetryPolicy {
            max_attempts: 5,
            base_delay: Duration::from_millis(100),
            multiplier: 2.0,
            max_delay: Duration::from_millis(350),
        };
        assert_eq!(policy.delay_after(1), Some(Duration::from_millis(100)));
        assert_eq!(policy.delay_after(2), Some(Duration::from_millis(200)));
        // 400ms hits the cap.
        assert_eq!(policy.delay_after(3), Some(Duration::from_millis(350)));
        assert_eq!(policy.delay_after(4), Some(Duration::from_millis(350)));
        // Budget exhausted.
        assert_eq!(policy.delay_after(5), None);
        assert_eq!(policy.delay_after(99), None);
    }

    #[test]
    fn no_retry_policy_never_delays() {
        let policy = RetryPolicy::none();
        assert_eq!(policy.delay_after(1), None);
    }

    #[test]
    fn zero_failures_is_not_a_retry() {
        assert_eq!(RetryPolicy::default().delay_after(0), None);
    }

    /// Drive a retry schedule against a mocked clock, the way the
    /// supervisor does: a failed attempt at time `t` makes the job
    /// eligible again at `t + delay_after(n)`.
    #[test]
    fn schedule_against_mock_clock() {
        let clock = MockClock::default();
        let policy = RetryPolicy {
            max_attempts: 3,
            base_delay: Duration::from_secs(1),
            multiplier: 3.0,
            max_delay: Duration::from_secs(60),
        };
        // First failure at t=10s -> eligible at 11s.
        clock.advance(Duration::from_secs(10));
        let eligible1 = clock.now() + policy.delay_after(1).expect("one retry left");
        assert_eq!(eligible1, Duration::from_secs(11));
        assert!(clock.now() < eligible1, "not yet eligible");
        clock.sleep(eligible1 - clock.now());
        assert!(clock.now() >= eligible1, "sleep reaches eligibility");
        // Second failure immediately -> eligible 3s later.
        let eligible2 = clock.now() + policy.delay_after(2).expect("second retry");
        assert_eq!(eligible2, Duration::from_secs(14));
        // Third failure exhausts the budget.
        assert_eq!(policy.delay_after(3), None);
    }
}
