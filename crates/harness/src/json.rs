//! A minimal JSON value, writer, and recursive-descent parser.
//!
//! The on-disk formats of this workspace — attack checkpoints
//! (`fulllock-attacks`), campaign plans and manifests
//! ([`crate::plan`], [`crate::manifest`]) — need a stable
//! self-describing format, and the workspace deliberately carries no
//! serialization dependency. This module hand-rolls the subset of JSON
//! those schemas use: objects, arrays, strings, booleans, null, and
//! numbers split into unsigned integers (exact, for counters) and floats
//! (for ratios and seconds).

use std::fmt::Write as _;

/// A parsed JSON value. Object keys keep insertion order (no map — the
/// schemas are small and scanned linearly).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// The `null` literal.
    Null,
    /// A boolean.
    Bool(bool),
    /// A number that is a non-negative integer fitting `u64` (counters,
    /// versions). Kept exact — never round-tripped through `f64`.
    Int(u64),
    /// Any other number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object, as ordered key/value members.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on an object; `None` on missing key or non-object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Exact unsigned integer value ([`Json::Int`] only).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(n) => Some(*n),
            _ => None,
        }
    }

    /// Numeric value as `f64` (integers widen).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(n) => Some(*n as f64),
            Json::Float(x) => Some(*x),
            _ => None,
        }
    }

    /// Boolean value ([`Json::Bool`] only).
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// String value ([`Json::Str`] only).
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Array items ([`Json::Array`] only).
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes to compact JSON text.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(n) => {
                let _ = write!(out, "{n}");
            }
            Json::Float(x) => {
                // `f64::to_string` prints the shortest representation that
                // round-trips; non-finite values have no JSON form, so they
                // degrade to null.
                if x.is_finite() {
                    let text = x.to_string();
                    let is_integral = !text.contains(['.', 'e', 'E']);
                    out.push_str(&text);
                    if is_integral {
                        // Keep a float marker so the reader re-parses it as
                        // Float, not Int (e.g. 2.0 -> "2.0", not "2").
                        out.push_str(".0");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_string(out, s),
            Json::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Object(members) => {
                out.push('{');
                for (i, (key, value)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(out, key);
                    out.push(':');
                    value.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses JSON text.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(value)
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect_byte(bytes: &[u8], pos: &mut usize, want: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&want) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {pos}", want as char))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, word: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}"))
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect_byte(bytes, pos, b'{')?;
    let mut members = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Object(members));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect_byte(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        members.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Object(members));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect_byte(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Array(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Array(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}")),
        }
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect_byte(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| "truncated \\u escape".to_string())?;
                        let hex = std::str::from_utf8(hex)
                            .map_err(|_| "invalid \\u escape".to_string())?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| "invalid \\u escape".to_string())?;
                        // Surrogate pairs are not needed by the checkpoint
                        // schema; reject rather than mis-decode.
                        let c = char::from_u32(code)
                            .ok_or_else(|| "unsupported \\u escape (surrogate)".to_string())?;
                        out.push(c);
                        *pos += 4;
                    }
                    _ => return Err(format!("invalid escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Advance one UTF-8 character (the input is a &str, so the
                // byte stream is valid UTF-8).
                let rest = &bytes[*pos..];
                let text = std::str::from_utf8(rest).map_err(|_| "invalid UTF-8".to_string())?;
                match text.chars().next() {
                    Some(c) => {
                        out.push(c);
                        *pos += c.len_utf8();
                    }
                    None => return Err("unterminated string".to_string()),
                }
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    let text =
        std::str::from_utf8(&bytes[start..*pos]).map_err(|_| "invalid number".to_string())?;
    if text.is_empty() {
        return Err(format!("expected a value at byte {start}"));
    }
    // Integers that fit u64 stay exact; everything else becomes f64.
    if !text.contains(['.', 'e', 'E', '-']) {
        if let Ok(n) = text.parse::<u64>() {
            return Ok(Json::Int(n));
        }
    }
    text.parse::<f64>()
        .map(Json::Float)
        .map_err(|_| format!("invalid number {text:?} at byte {start}"))
}

/// FNV-1a 64-bit over raw bytes. Every step xors a byte then multiplies
/// by an odd prime — both bijective on the running state — so any
/// single-byte substitution changes the final hash, which is exactly the
/// torn-write/bit-rot class the sealed envelope defends against. Not
/// cryptographic: it detects corruption, not tampering.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

const SEAL_PREFIX: &str = "{\"checksum\":";
const SEAL_MID: &str = ",\"payload\":";

/// Wraps serialized JSON `payload` in a checksummed envelope:
/// `{"checksum":<fnv1a(payload)>,"payload":<payload>}`. The payload text
/// is spliced verbatim, so [`unseal`] can verify the exact bytes that
/// were sealed. The result is itself valid JSON.
pub fn seal(payload: &str) -> String {
    format!(
        "{SEAL_PREFIX}{}{SEAL_MID}{payload}}}",
        fnv1a(payload.as_bytes())
    )
}

/// Opens a [`seal`]ed envelope.
///
/// * `Ok(Some(payload))` — a well-formed envelope whose checksum matches;
///   `payload` is the exact text that was sealed.
/// * `Ok(None)` — not an envelope (a legacy unsealed file); the caller
///   should parse `text` directly.
/// * `Err(_)` — an envelope that is torn or corrupt (checksum mismatch,
///   mangled frame): the content must not be trusted.
pub fn unseal(text: &str) -> Result<Option<&str>, String> {
    let Some(rest) = text.strip_prefix(SEAL_PREFIX) else {
        return Ok(None);
    };
    let Some(mid) = rest.find(SEAL_MID) else {
        return Err("sealed envelope without a payload member".to_string());
    };
    let stored: u64 = rest[..mid]
        .parse()
        .map_err(|_| format!("invalid envelope checksum {:?}", &rest[..mid]))?;
    let body = &rest[mid + SEAL_MID.len()..];
    let payload = body
        .trim_end_matches(['\n', '\r'])
        .strip_suffix('}')
        .ok_or_else(|| "sealed envelope is truncated".to_string())?;
    let actual = fnv1a(payload.as_bytes());
    if actual != stored {
        return Err(format!(
            "envelope checksum mismatch: stored {stored}, content hashes to {actual}"
        ));
    }
    Ok(Some(payload))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_checkpoint_shaped_values() {
        let value = Json::Object(vec![
            ("version".to_string(), Json::Int(1)),
            ("attack".to_string(), Json::Str("sat".to_string())),
            ("ratio".to_string(), Json::Float(3.25)),
            ("whole_float".to_string(), Json::Float(2.0)),
            (
                "pairs".to_string(),
                Json::Array(vec![Json::Object(vec![
                    ("x".to_string(), Json::Str("0101".to_string())),
                    ("y".to_string(), Json::Str("10".to_string())),
                ])]),
            ),
            ("none".to_string(), Json::Null),
            ("flag".to_string(), Json::Bool(true)),
        ]);
        let text = value.to_text();
        let back = Json::parse(&text).expect("own output must parse");
        assert_eq!(back, value);
        // Whole floats must stay floats across the round trip.
        assert_eq!(back.get("whole_float"), Some(&Json::Float(2.0)));
        assert_eq!(back.get("version"), Some(&Json::Int(1)));
    }

    #[test]
    fn big_counters_stay_exact() {
        let n = u64::MAX - 3;
        let text = Json::Int(n).to_text();
        assert_eq!(Json::parse(&text).expect("parses"), Json::Int(n));
    }

    #[test]
    fn escapes_round_trip() {
        let value = Json::Str("a\"b\\c\nd\te\u{1}".to_string());
        let back = Json::parse(&value.to_text()).expect("parses");
        assert_eq!(back, value);
    }

    #[test]
    fn rejects_garbage() {
        for bad in [
            "", "{", "[1,", "\"open", "{\"a\":}", "1 2", "{'a':1}", "nul",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn seal_round_trips_and_stays_valid_json() {
        let payload = Json::Object(vec![
            ("version".to_string(), Json::Int(3)),
            ("name".to_string(), Json::Str("x\"y".to_string())),
        ])
        .to_text();
        let sealed = seal(&payload);
        assert_eq!(unseal(&sealed), Ok(Some(payload.as_str())));
        // A trailing newline (the atomic writers append one) is tolerated.
        assert_eq!(unseal(&format!("{sealed}\n")), Ok(Some(payload.as_str())));
        // The envelope itself parses as JSON.
        let envelope = Json::parse(&sealed).expect("envelope is JSON");
        assert_eq!(
            envelope.get("checksum").and_then(Json::as_u64),
            Some(fnv1a(payload.as_bytes()))
        );
    }

    #[test]
    fn unseal_passes_legacy_text_through() {
        assert_eq!(unseal("{\"version\":3}"), Ok(None));
        assert_eq!(unseal(""), Ok(None));
    }

    #[test]
    fn unseal_rejects_torn_and_corrupt_envelopes() {
        let sealed = seal("{\"a\":1}");
        // Torn write: the tail is missing.
        assert!(unseal(&sealed[..sealed.len() - 3]).is_err());
        // Flipped payload byte.
        let flipped = sealed.replace("\"a\"", "\"b\"");
        assert!(unseal(&flipped).is_err());
        // Mangled checksum digits.
        assert!(unseal("{\"checksum\":12x4,\"payload\":{}}").is_err());
        assert!(unseal("{\"checksum\":124}").is_err());
    }

    #[test]
    fn fnv1a_detects_any_single_byte_substitution() {
        let base = b"campaign manifest body";
        let h = fnv1a(base);
        for i in 0..base.len() {
            let mut mutated = base.to_vec();
            mutated[i] ^= 0x01;
            assert_ne!(fnv1a(&mutated), h, "byte {i}");
        }
    }

    #[test]
    fn parses_whitespace_and_nesting() {
        let text = " { \"a\" : [ 1 , 2.5 , { \"b\" : null } ] } ";
        let v = Json::parse(text).expect("parses");
        let arr = v.get("a").and_then(Json::as_array).expect("array");
        assert_eq!(arr[0], Json::Int(1));
        assert_eq!(arr[1], Json::Float(2.5));
        assert_eq!(arr[2].get("b"), Some(&Json::Null));
    }
}
