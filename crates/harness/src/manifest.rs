//! The campaign manifest: a versioned, atomically written record of
//! every job's state, keyed by job id + config hash.
//!
//! The supervisor rewrites `campaign.json` on **every** state transition
//! with the same tmp+fsync+rename discipline as the attack checkpoints,
//! so a `kill -9` of the supervisor at any instant leaves a coherent
//! manifest on disk. `--resume` then loads it, keeps every job whose
//! entry says `succeeded` *and* whose config hash still matches the
//! plan, and re-runs only the rest. Besides the per-job aggregate
//! (status, attempts, exit code/signal, duration, peak RSS, log paths),
//! the manifest appends a transition event log — a flight recorder for
//! post-mortems of multi-hour sweeps.

use std::path::{Path, PathBuf};

use crate::json::Json;
use crate::{HarnessError, Result};

/// Version tag written into every manifest; loading any other version
/// fails rather than guessing.
pub const MANIFEST_VERSION: u64 = 1;

/// Lifecycle state of one supervised job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobStatus {
    /// Declared but not started (or waiting out a retry backoff).
    Pending,
    /// A child process is (or was, if the supervisor died) executing it.
    Running,
    /// Exited with status 0.
    Succeeded,
    /// Exhausted its attempt budget without success (or failed
    /// permanently, e.g. the program does not exist).
    Failed,
    /// Last attempt exceeded its wall-clock budget and was killed.
    TimedOut,
    /// Skipped on resume: already succeeded with an identical config.
    Skipped,
}

impl JobStatus {
    /// Stable on-disk name (`snake_case`).
    pub fn as_str(self) -> &'static str {
        match self {
            JobStatus::Pending => "pending",
            JobStatus::Running => "running",
            JobStatus::Succeeded => "succeeded",
            JobStatus::Failed => "failed",
            JobStatus::TimedOut => "timed_out",
            JobStatus::Skipped => "skipped",
        }
    }

    /// Inverse of [`as_str`](Self::as_str); `None` for unknown names.
    pub fn parse(s: &str) -> Option<JobStatus> {
        Some(match s {
            "pending" => JobStatus::Pending,
            "running" => JobStatus::Running,
            "succeeded" => JobStatus::Succeeded,
            "failed" => JobStatus::Failed,
            "timed_out" => JobStatus::TimedOut,
            "skipped" => JobStatus::Skipped,
            _ => return None,
        })
    }

    /// Whether this state is final (the supervisor will not touch the
    /// job again this run).
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            JobStatus::Succeeded | JobStatus::Failed | JobStatus::TimedOut | JobStatus::Skipped
        )
    }
}

/// Aggregate record of one job.
#[derive(Debug, Clone, PartialEq)]
pub struct JobRecord {
    /// Job id (matches [`crate::plan::JobSpec::id`]).
    pub id: String,
    /// Config hash of the spec that produced this record
    /// ([`crate::plan::JobSpec::config_hash`]).
    pub config_hash: u64,
    /// Current lifecycle state.
    pub status: JobStatus,
    /// Executions so far (including the in-flight one while `Running`).
    pub attempts: u32,
    /// Exit code of the last finished attempt, if it exited normally.
    pub exit_code: Option<i64>,
    /// Signal that terminated the last attempt, if killed by one.
    pub signal: Option<i64>,
    /// Wall-clock seconds across all attempts of this run.
    pub duration_secs: f64,
    /// Peak resident set size observed across attempts (kB, Linux only).
    pub peak_rss_kb: Option<u64>,
    /// Captured stdout of the last attempt, relative to the output dir.
    pub stdout_log: Option<String>,
    /// Captured stderr of the last attempt, relative to the output dir.
    pub stderr_log: Option<String>,
    /// Human-readable reason for the last failure, if any.
    pub last_error: Option<String>,
}

impl JobRecord {
    /// A fresh `Pending` record.
    pub fn new(id: impl Into<String>, config_hash: u64) -> JobRecord {
        JobRecord {
            id: id.into(),
            config_hash,
            status: JobStatus::Pending,
            attempts: 0,
            exit_code: None,
            signal: None,
            duration_secs: 0.0,
            peak_rss_kb: None,
            stdout_log: None,
            stderr_log: None,
            last_error: None,
        }
    }
}

/// One entry of the transition event log.
#[derive(Debug, Clone, PartialEq)]
pub struct TransitionEvent {
    /// Job id.
    pub job: String,
    /// Attempt number the transition belongs to (1-based; 0 for
    /// attempt-independent transitions such as `skipped`).
    pub attempt: u32,
    /// The state entered — a [`JobStatus`] name, or `"retrying"` when a
    /// failed attempt was scheduled for another try.
    pub to: String,
}

/// The whole campaign state, as persisted in `campaign.json`.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignManifest {
    /// Schema version ([`MANIFEST_VERSION`]).
    pub version: u64,
    /// Name of the plan that produced this manifest.
    pub plan_name: String,
    /// Per-job aggregate records.
    pub jobs: Vec<JobRecord>,
    /// Append-only transition log.
    pub events: Vec<TransitionEvent>,
}

impl CampaignManifest {
    /// An empty manifest for the named plan.
    pub fn new(plan_name: impl Into<String>) -> CampaignManifest {
        CampaignManifest {
            version: MANIFEST_VERSION,
            plan_name: plan_name.into(),
            jobs: Vec::new(),
            events: Vec::new(),
        }
    }

    /// The record for `id`, if present.
    pub fn job(&self, id: &str) -> Option<&JobRecord> {
        self.jobs.iter().find(|j| j.id == id)
    }

    /// Mutable access to the record for `id`, if present.
    pub fn job_mut(&mut self, id: &str) -> Option<&mut JobRecord> {
        self.jobs.iter_mut().find(|j| j.id == id)
    }

    /// Inserts or replaces the record with `record.id`.
    pub fn upsert(&mut self, record: JobRecord) {
        match self.job_mut(&record.id) {
            Some(existing) => *existing = record,
            None => self.jobs.push(record),
        }
    }

    /// Appends a transition event.
    pub fn push_event(&mut self, job: &str, attempt: u32, to: &str) {
        self.events.push(TransitionEvent {
            job: job.to_string(),
            attempt,
            to: to.to_string(),
        });
    }

    /// Count of jobs currently in `status`.
    pub fn count(&self, status: JobStatus) -> usize {
        self.jobs.iter().filter(|j| j.status == status).count()
    }

    /// Serializes to the versioned JSON manifest format.
    pub fn to_json(&self) -> String {
        let opt_int = |v: Option<u64>| match v {
            Some(n) => Json::Int(n),
            None => Json::Null,
        };
        let opt_signed = |v: Option<i64>| match v {
            Some(n) if n >= 0 => Json::Int(n as u64),
            Some(n) => Json::Float(n as f64),
            None => Json::Null,
        };
        let opt_str = |v: &Option<String>| match v {
            Some(s) => Json::Str(s.clone()),
            None => Json::Null,
        };
        let jobs = Json::Array(
            self.jobs
                .iter()
                .map(|j| {
                    Json::Object(vec![
                        ("id".to_string(), Json::Str(j.id.clone())),
                        ("config_hash".to_string(), Json::Int(j.config_hash)),
                        ("status".to_string(), Json::Str(j.status.as_str().into())),
                        ("attempts".to_string(), Json::Int(u64::from(j.attempts))),
                        ("exit_code".to_string(), opt_signed(j.exit_code)),
                        ("signal".to_string(), opt_signed(j.signal)),
                        ("duration_secs".to_string(), Json::Float(j.duration_secs)),
                        ("peak_rss_kb".to_string(), opt_int(j.peak_rss_kb)),
                        ("stdout_log".to_string(), opt_str(&j.stdout_log)),
                        ("stderr_log".to_string(), opt_str(&j.stderr_log)),
                        ("last_error".to_string(), opt_str(&j.last_error)),
                    ])
                })
                .collect(),
        );
        let events = Json::Array(
            self.events
                .iter()
                .map(|e| {
                    Json::Object(vec![
                        ("job".to_string(), Json::Str(e.job.clone())),
                        ("attempt".to_string(), Json::Int(u64::from(e.attempt))),
                        ("to".to_string(), Json::Str(e.to.clone())),
                    ])
                })
                .collect(),
        );
        Json::Object(vec![
            ("version".to_string(), Json::Int(self.version)),
            ("plan_name".to_string(), Json::Str(self.plan_name.clone())),
            ("jobs".to_string(), jobs),
            ("events".to_string(), events),
        ])
        .to_text()
    }

    /// Parses the JSON manifest format, validating the version tag.
    ///
    /// # Errors
    ///
    /// Returns [`HarnessError::ManifestFormat`] (with an empty path —
    /// [`load`](Self::load) fills it in) on malformed text or an
    /// unsupported version.
    pub fn from_json(text: &str) -> Result<CampaignManifest> {
        parse_manifest(text).map_err(|message| HarnessError::ManifestFormat {
            path: PathBuf::new(),
            message,
        })
    }

    /// Atomically writes the manifest inside a checksummed envelope
    /// (serialize to `<path>.tmp`, sync, rename over `path`), keeping the
    /// previous generation as `<path>.1`. A crash at any point leaves a
    /// complete manifest in place, and even a torn write that the
    /// filesystem fails to report leaves `<path>.1` for
    /// [`load`](Self::load) to fall back to.
    ///
    /// # Errors
    ///
    /// Returns [`HarnessError::Io`] on any filesystem failure.
    pub fn save(&self, path: &Path) -> Result<()> {
        crate::persist::save_sealed(path, &self.to_json()).map_err(|e| HarnessError::Io {
            path: path.to_path_buf(),
            message: format!("save manifest: {e}"),
        })
    }

    /// Loads and parses the newest checksum-valid generation of a
    /// manifest. A corrupt `path` is quarantined as `<path>.corrupt`
    /// (with a warning on stderr) and `<path>.1` is read instead, so a
    /// torn manifest degrades a resume by at most one save instead of
    /// aborting it. Pre-envelope manifests load unchanged.
    ///
    /// # Errors
    ///
    /// Returns [`HarnessError::Io`] if no generation can be read and
    /// [`HarnessError::ManifestFormat`] if the surviving content is
    /// invalid (checksum failure on every generation, bad version, parse
    /// error).
    pub fn load(path: &Path) -> Result<CampaignManifest> {
        let loaded = crate::persist::load_sealed(path).map_err(|e| {
            if e.kind() == std::io::ErrorKind::InvalidData {
                HarnessError::ManifestFormat {
                    path: path.to_path_buf(),
                    message: e.to_string(),
                }
            } else {
                HarnessError::Io {
                    path: path.to_path_buf(),
                    message: format!("read: {e}"),
                }
            }
        })?;
        if loaded.from_previous {
            eprintln!(
                "warning: manifest {} was corrupt{}; resumed from previous generation",
                path.display(),
                loaded
                    .quarantined
                    .as_deref()
                    .map(|q| format!(" (quarantined as {})", q.display()))
                    .unwrap_or_default(),
            );
        }
        CampaignManifest::from_json(&loaded.payload).map_err(|e| match e {
            HarnessError::ManifestFormat { message, .. } => HarnessError::ManifestFormat {
                path: path.to_path_buf(),
                message,
            },
            other => other,
        })
    }
}

fn parse_manifest(text: &str) -> std::result::Result<CampaignManifest, String> {
    let root = Json::parse(text)?;
    let version = root
        .get("version")
        .and_then(Json::as_u64)
        .ok_or("missing unsigned integer field \"version\"")?;
    if version != MANIFEST_VERSION {
        return Err(format!(
            "unsupported manifest version {version} (this build reads version {MANIFEST_VERSION})"
        ));
    }
    let plan_name = root
        .get("plan_name")
        .and_then(Json::as_str)
        .ok_or("missing string field \"plan_name\"")?
        .to_string();

    let jobs_json = root
        .get("jobs")
        .and_then(Json::as_array)
        .ok_or("missing array field \"jobs\"")?;
    let mut jobs = Vec::with_capacity(jobs_json.len());
    for (i, j) in jobs_json.iter().enumerate() {
        let opt_signed = |name: &str| -> std::result::Result<Option<i64>, String> {
            match j.get(name) {
                None | Some(Json::Null) => Ok(None),
                // Non-negative values are written as integers; keep them
                // exact instead of bouncing through f64.
                Some(Json::Int(n)) => i64::try_from(*n)
                    .map(Some)
                    .map_err(|_| format!("job #{i}: field {name:?} overflows i64")),
                Some(Json::Float(x)) => Ok(Some(*x as i64)),
                Some(_) => Err(format!("job #{i}: field {name:?} must be a number or null")),
            }
        };
        let opt_str = |name: &str| -> std::result::Result<Option<String>, String> {
            match j.get(name) {
                None | Some(Json::Null) => Ok(None),
                Some(Json::Str(s)) => Ok(Some(s.clone())),
                Some(_) => Err(format!("job #{i}: field {name:?} must be a string or null")),
            }
        };
        let status_name = j
            .get("status")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("job #{i}: missing string field \"status\""))?;
        let status = JobStatus::parse(status_name)
            .ok_or_else(|| format!("job #{i}: unknown status {status_name:?}"))?;
        jobs.push(JobRecord {
            id: j
                .get("id")
                .and_then(Json::as_str)
                .ok_or_else(|| format!("job #{i}: missing string field \"id\""))?
                .to_string(),
            config_hash: j
                .get("config_hash")
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("job #{i}: missing integer field \"config_hash\""))?,
            status,
            attempts: j
                .get("attempts")
                .and_then(Json::as_u64)
                .and_then(|n| u32::try_from(n).ok())
                .ok_or_else(|| format!("job #{i}: field \"attempts\" must fit u32"))?,
            exit_code: opt_signed("exit_code")?,
            signal: opt_signed("signal")?,
            duration_secs: j
                .get("duration_secs")
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("job #{i}: missing number field \"duration_secs\""))?,
            peak_rss_kb: match j.get("peak_rss_kb") {
                None | Some(Json::Null) => None,
                Some(v) => Some(v.as_u64().ok_or_else(|| {
                    format!("job #{i}: field \"peak_rss_kb\" must be an unsigned integer or null")
                })?),
            },
            stdout_log: opt_str("stdout_log")?,
            stderr_log: opt_str("stderr_log")?,
            last_error: opt_str("last_error")?,
        });
    }

    let events_json = root
        .get("events")
        .and_then(Json::as_array)
        .ok_or("missing array field \"events\"")?;
    let mut events = Vec::with_capacity(events_json.len());
    for (i, e) in events_json.iter().enumerate() {
        let str_field = |name: &str| {
            e.get(name)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("event #{i}: missing string field {name:?}"))
        };
        events.push(TransitionEvent {
            job: str_field("job")?,
            attempt: e
                .get("attempt")
                .and_then(Json::as_u64)
                .and_then(|n| u32::try_from(n).ok())
                .ok_or_else(|| format!("event #{i}: field \"attempt\" must fit u32"))?,
            to: str_field("to")?,
        });
    }

    Ok(CampaignManifest {
        version,
        plan_name,
        jobs,
        events,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CampaignManifest {
        let mut m = CampaignManifest::new("paper");
        let mut a = JobRecord::new("table2_cln_sat", 0xdead_beef);
        a.status = JobStatus::Succeeded;
        a.attempts = 1;
        a.exit_code = Some(0);
        a.duration_secs = 12.5;
        a.peak_rss_kb = Some(40_960);
        a.stdout_log = Some("logs/table2_cln_sat.attempt1.stdout.log".to_string());
        a.stderr_log = Some("logs/table2_cln_sat.attempt1.stderr.log".to_string());
        m.upsert(a);
        let mut b = JobRecord::new("hangy", 7);
        b.status = JobStatus::TimedOut;
        b.attempts = 2;
        b.signal = Some(9);
        b.duration_secs = 4.0;
        b.last_error = Some("wall-clock budget exceeded".to_string());
        m.upsert(b);
        m.push_event("table2_cln_sat", 1, "running");
        m.push_event("table2_cln_sat", 1, "succeeded");
        m.push_event("hangy", 1, "retrying");
        m.push_event("hangy", 2, "timed_out");
        m
    }

    #[test]
    fn manifest_round_trips() {
        let m = sample();
        let back = CampaignManifest::from_json(&m.to_json()).expect("round trip");
        assert_eq!(back, m);
    }

    #[test]
    fn status_names_are_stable() {
        for s in [
            JobStatus::Pending,
            JobStatus::Running,
            JobStatus::Succeeded,
            JobStatus::Failed,
            JobStatus::TimedOut,
            JobStatus::Skipped,
        ] {
            assert_eq!(JobStatus::parse(s.as_str()), Some(s));
        }
        assert_eq!(JobStatus::parse("exploded"), None);
        // The CI smoke grep relies on this exact spelling.
        assert_eq!(JobStatus::TimedOut.as_str(), "timed_out");
    }

    #[test]
    fn negative_exit_codes_survive() {
        let mut m = CampaignManifest::new("p");
        let mut r = JobRecord::new("x", 1);
        r.exit_code = Some(-1);
        m.upsert(r);
        let back = CampaignManifest::from_json(&m.to_json()).expect("round trip");
        assert_eq!(back.job("x").expect("present").exit_code, Some(-1));
    }

    #[test]
    fn save_load_is_atomic() {
        let dir = std::env::temp_dir().join(format!("fulllock-manifest-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("campaign.json");
        let m = sample();
        m.save(&path).expect("save");
        assert!(!dir.join("campaign.json.tmp").exists());
        assert_eq!(CampaignManifest::load(&path).expect("load"), m);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn version_mismatch_and_garbage_are_rejected() {
        let text = sample()
            .to_json()
            .replace("\"version\":1", "\"version\":42");
        assert!(CampaignManifest::from_json(&text).is_err());
        for bad in ["", "{}", "nonsense", "{\"version\":1}"] {
            assert!(CampaignManifest::from_json(bad).is_err(), "{bad:?}");
        }
    }
}
