//! Error type of the campaign harness.

use std::fmt;
use std::path::PathBuf;

/// Anything that can go wrong while planning or supervising a campaign.
///
/// Job *failures* are not errors — they are recorded in the manifest and
/// the campaign continues. `HarnessError` covers supervisor-level
/// problems only: a malformed plan, an unreadable manifest, a filesystem
/// failure on the output directory.
#[derive(Debug)]
pub enum HarnessError {
    /// A campaign plan failed validation or parsing.
    PlanFormat {
        /// Offending file, if the plan came from disk.
        path: Option<PathBuf>,
        /// What was wrong.
        message: String,
    },
    /// A manifest file exists but cannot be parsed (or has an
    /// unsupported version).
    ManifestFormat {
        /// The manifest file.
        path: PathBuf,
        /// What was wrong.
        message: String,
    },
    /// A filesystem operation failed (logs directory, manifest write,
    /// plan read).
    Io {
        /// The path being touched.
        path: PathBuf,
        /// Underlying failure.
        message: String,
    },
}

impl fmt::Display for HarnessError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HarnessError::PlanFormat {
                path: Some(p),
                message,
            } => {
                write!(f, "invalid campaign plan {}: {message}", p.display())
            }
            HarnessError::PlanFormat {
                path: None,
                message,
            } => {
                write!(f, "invalid campaign plan: {message}")
            }
            HarnessError::ManifestFormat { path, message } => {
                write!(f, "invalid campaign manifest {}: {message}", path.display())
            }
            HarnessError::Io { path, message } => {
                write!(f, "campaign io error at {}: {message}", path.display())
            }
        }
    }
}

impl std::error::Error for HarnessError {}
