//! Campaign plans: the declared set of jobs a supervisor runs.
//!
//! A plan is either built programmatically ([`CampaignPlan::new`] +
//! [`CampaignPlan::job`]), loaded from a versioned JSON file
//! ([`CampaignPlan::load`]), or generated from the built-in paper sweep
//! ([`CampaignPlan::builtin_paper`] — one job per experiment binary in
//! [`PAPER_BINS`]).
//!
//! Every job carries a stable identity (`id`) and a *config hash* over
//! everything that affects its execution; the manifest keys resume
//! decisions on both, so editing a job's command line invalidates its
//! previous `succeeded` entry and re-runs it.

use std::path::{Path, PathBuf};

use crate::json::Json;
use crate::{HarnessError, Result};

/// Version tag written into every plan file; loading any other version
/// fails rather than guessing.
pub const PLAN_VERSION: u64 = 1;

/// The experiment binaries of the paper sweep, in presentation order
/// (the registry `scripts/run_all_experiments.sh` used to hand-maintain).
/// `crates/bench/tests/bins_smoke.rs` guards this list against drift from
/// the bench crate's actual `src/bin/` contents.
pub const PAPER_BINS: [&str; 13] = [
    "fig1_dpll_hardness",
    "table1_tseytin",
    "topology_report",
    "table2_cln_sat",
    "table3_cln_ppa",
    "fig5_stt_lut",
    "fig6_insertion_example",
    "table4_fulllock_cycsat",
    "table5_plr_sizing",
    "fig7_clause_var_ratio",
    "removal_study",
    "appsat_study",
    "ablation_study",
];

/// One job of a campaign: a child process to run under supervision.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Stable identity; used as the manifest key and in log file names.
    /// Restricted to `[A-Za-z0-9._-]`, non-empty, no leading dot.
    pub id: String,
    /// Program to execute (absolute, or resolved via `PATH`).
    pub program: String,
    /// Command-line arguments.
    pub args: Vec<String>,
    /// Extra environment variables (on top of the supervisor's own).
    pub env: Vec<(String, String)>,
    /// Per-job wall-clock budget override (seconds); the supervisor's
    /// default applies when `None`.
    pub timeout_secs: Option<f64>,
    /// Per-job attempt budget override; the supervisor's retry policy
    /// default applies when `None`.
    pub max_attempts: Option<u32>,
}

impl JobSpec {
    /// A job with the given identity and program, no arguments.
    pub fn new(id: impl Into<String>, program: impl Into<String>) -> JobSpec {
        JobSpec {
            id: id.into(),
            program: program.into(),
            args: Vec::new(),
            env: Vec::new(),
            timeout_secs: None,
            max_attempts: None,
        }
    }

    /// Appends a command-line argument.
    pub fn arg(mut self, arg: impl Into<String>) -> JobSpec {
        self.args.push(arg.into());
        self
    }

    /// Adds an environment variable for the child.
    pub fn env(mut self, key: impl Into<String>, value: impl Into<String>) -> JobSpec {
        self.env.push((key.into(), value.into()));
        self
    }

    /// Sets the per-job timeout (seconds).
    pub fn timeout_secs(mut self, secs: f64) -> JobSpec {
        self.timeout_secs = Some(secs);
        self
    }

    /// Sets the per-job attempt budget.
    pub fn max_attempts(mut self, attempts: u32) -> JobSpec {
        self.max_attempts = Some(attempts);
        self
    }

    /// [`config_hash`](JobSpec::config_hash) combined with the ambient
    /// `FULLLOCK_*` fingerprint the supervisor runs under (see
    /// [`ambient_fingerprint`]). This is the hash the supervisor actually
    /// keys resume decisions on: flipping `FULLLOCK_CERTIFY` (or any
    /// other ambient knob the children inherit) between runs changes the
    /// effective configuration of *every* job, so previously `succeeded`
    /// entries must re-run instead of being silently skipped as
    /// "unchanged".
    pub fn config_hash_with(&self, ambient: u64) -> u64 {
        let mut h = Fnv::new();
        h.bytes(&self.config_hash().to_le_bytes());
        h.bytes(&ambient.to_le_bytes());
        h.finish()
    }

    /// FNV-1a hash over everything that affects execution (program,
    /// args, env, timeout, attempt budget). A manifest entry only counts
    /// as "already succeeded" on resume if this hash still matches.
    pub fn config_hash(&self) -> u64 {
        let mut h = Fnv::new();
        h.str(&self.id);
        h.str(&self.program);
        for a in &self.args {
            h.str(a);
        }
        for (k, v) in &self.env {
            h.str(k);
            h.str(v);
        }
        match self.timeout_secs {
            Some(s) => h.bytes(&s.to_bits().to_le_bytes()),
            None => h.bytes(&[0xff]),
        }
        match self.max_attempts {
            Some(n) => h.bytes(&u64::from(n).to_le_bytes()),
            None => h.bytes(&[0xfe]),
        }
        h.finish()
    }

    fn validate(&self) -> std::result::Result<(), String> {
        if self.id.is_empty() {
            return Err("job id must be non-empty".to_string());
        }
        if self.id.starts_with('.') {
            return Err(format!("job id {:?} must not start with '.'", self.id));
        }
        if let Some(c) = self
            .id
            .chars()
            .find(|c| !c.is_ascii_alphanumeric() && !matches!(c, '.' | '_' | '-'))
        {
            return Err(format!(
                "job id {:?} contains {c:?}; allowed: [A-Za-z0-9._-]",
                self.id
            ));
        }
        if self.program.is_empty() {
            return Err(format!("job {:?} has an empty program", self.id));
        }
        if let Some(t) = self.timeout_secs {
            if !t.is_finite() || t <= 0.0 {
                return Err(format!("job {:?} has invalid timeout_secs {t}", self.id));
            }
        }
        if self.max_attempts == Some(0) {
            return Err(format!("job {:?} has max_attempts 0", self.id));
        }
        Ok(())
    }
}

/// Fingerprint of the effective `FULLLOCK_*` ambient configuration.
///
/// Children inherit the supervisor's environment, so ambient knobs like
/// `FULLLOCK_CERTIFY`, `FULLLOCK_INPROCESS`, or `FULLLOCK_FAILPOINTS`
/// are part of every job's effective configuration even though they
/// never appear in the plan file. The fingerprint hashes every
/// environment variable whose name starts with `FULLLOCK_`, sorted by
/// name so iteration order cannot matter. Variables a job sets in its
/// own [`JobSpec::env`] are *also* hashed there, so either kind of
/// drift invalidates a previous `succeeded` entry on resume.
pub fn ambient_fingerprint<I>(vars: I) -> u64
where
    I: IntoIterator<Item = (String, String)>,
{
    let mut relevant: Vec<(String, String)> = vars
        .into_iter()
        .filter(|(k, _)| k.starts_with("FULLLOCK_"))
        .collect();
    relevant.sort();
    let mut h = Fnv::new();
    h.bytes(&(relevant.len() as u64).to_le_bytes());
    for (k, v) in &relevant {
        h.str(k);
        h.str(v);
    }
    h.finish()
}

/// [`ambient_fingerprint`] over this process's actual environment.
pub fn current_ambient_fingerprint() -> u64 {
    ambient_fingerprint(std::env::vars())
}

/// FNV-1a 64-bit, with length-prefixed strings so field boundaries can't
/// alias ("ab","c" hashes differently from "a","bc").
pub(crate) struct Fnv(u64);

impl Fnv {
    pub(crate) fn new() -> Fnv {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    pub(crate) fn bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    pub(crate) fn str(&mut self, s: &str) {
        self.bytes(&(s.len() as u64).to_le_bytes());
        self.bytes(s.as_bytes());
    }

    pub(crate) fn finish(&self) -> u64 {
        self.0
    }
}

/// A named, ordered set of [`JobSpec`]s.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignPlan {
    /// Plan name, recorded in the manifest (a resumed manifest warns if
    /// it was written by a differently named plan).
    pub name: String,
    /// The jobs, in scheduling order.
    pub jobs: Vec<JobSpec>,
}

impl CampaignPlan {
    /// An empty plan with the given name.
    pub fn new(name: impl Into<String>) -> CampaignPlan {
        CampaignPlan {
            name: name.into(),
            jobs: Vec::new(),
        }
    }

    /// Appends a job.
    pub fn job(mut self, job: JobSpec) -> CampaignPlan {
        self.jobs.push(job);
        self
    }

    /// The built-in paper sweep: one job per experiment binary
    /// ([`PAPER_BINS`]), resolved inside `bin_dir` (normally the
    /// directory holding the release binaries).
    pub fn builtin_paper(bin_dir: &Path) -> CampaignPlan {
        let mut plan = CampaignPlan::new("paper");
        for bin in PAPER_BINS {
            let program: PathBuf = bin_dir.join(bin);
            plan = plan.job(JobSpec::new(bin, program.to_string_lossy().into_owned()));
        }
        plan
    }

    /// Checks ids are unique and well-formed and every job is runnable.
    ///
    /// # Errors
    ///
    /// Returns [`HarnessError::PlanFormat`] naming the offending job.
    pub fn validate(&self) -> Result<()> {
        let complain = |message: String| {
            Err(HarnessError::PlanFormat {
                path: None,
                message,
            })
        };
        if self.jobs.is_empty() {
            return complain("plan has no jobs".to_string());
        }
        for (i, job) in self.jobs.iter().enumerate() {
            if let Err(message) = job.validate() {
                return complain(format!("job #{i}: {message}"));
            }
            if self.jobs[..i].iter().any(|other| other.id == job.id) {
                return complain(format!("duplicate job id {:?}", job.id));
            }
        }
        Ok(())
    }

    /// Serializes to the versioned JSON plan format.
    pub fn to_json(&self) -> String {
        let jobs = Json::Array(
            self.jobs
                .iter()
                .map(|job| {
                    let mut members = vec![
                        ("id".to_string(), Json::Str(job.id.clone())),
                        ("program".to_string(), Json::Str(job.program.clone())),
                        (
                            "args".to_string(),
                            Json::Array(job.args.iter().cloned().map(Json::Str).collect()),
                        ),
                        (
                            "env".to_string(),
                            Json::Object(
                                job.env
                                    .iter()
                                    .map(|(k, v)| (k.clone(), Json::Str(v.clone())))
                                    .collect(),
                            ),
                        ),
                    ];
                    if let Some(t) = job.timeout_secs {
                        members.push(("timeout_secs".to_string(), Json::Float(t)));
                    }
                    if let Some(n) = job.max_attempts {
                        members.push(("max_attempts".to_string(), Json::Int(u64::from(n))));
                    }
                    Json::Object(members)
                })
                .collect(),
        );
        Json::Object(vec![
            ("version".to_string(), Json::Int(PLAN_VERSION)),
            ("name".to_string(), Json::Str(self.name.clone())),
            ("jobs".to_string(), jobs),
        ])
        .to_text()
    }

    /// Parses and validates the JSON plan format.
    ///
    /// # Errors
    ///
    /// Returns [`HarnessError::PlanFormat`] on malformed text, an
    /// unsupported version, or an invalid job set.
    pub fn from_json(text: &str) -> Result<CampaignPlan> {
        let plan = parse_plan(text).map_err(|message| HarnessError::PlanFormat {
            path: None,
            message,
        })?;
        plan.validate()?;
        Ok(plan)
    }

    /// Loads a plan file.
    ///
    /// # Errors
    ///
    /// [`HarnessError::Io`] if the file cannot be read,
    /// [`HarnessError::PlanFormat`] (with the path filled in) if its
    /// contents are invalid.
    pub fn load(path: &Path) -> Result<CampaignPlan> {
        let text = std::fs::read_to_string(path).map_err(|e| HarnessError::Io {
            path: path.to_path_buf(),
            message: format!("read: {e}"),
        })?;
        CampaignPlan::from_json(&text).map_err(|e| match e {
            HarnessError::PlanFormat { message, .. } => HarnessError::PlanFormat {
                path: Some(path.to_path_buf()),
                message,
            },
            other => other,
        })
    }
}

fn parse_plan(text: &str) -> std::result::Result<CampaignPlan, String> {
    let root = Json::parse(text)?;
    let version = root
        .get("version")
        .and_then(Json::as_u64)
        .ok_or("missing unsigned integer field \"version\"")?;
    if version != PLAN_VERSION {
        return Err(format!(
            "unsupported plan version {version} (this build reads version {PLAN_VERSION})"
        ));
    }
    let name = root
        .get("name")
        .and_then(Json::as_str)
        .ok_or("missing string field \"name\"")?
        .to_string();
    let jobs_json = root
        .get("jobs")
        .and_then(Json::as_array)
        .ok_or("missing array field \"jobs\"")?;
    let mut jobs = Vec::with_capacity(jobs_json.len());
    for (i, job) in jobs_json.iter().enumerate() {
        let str_field = |name: &str| {
            job.get(name)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("job #{i}: missing string field {name:?}"))
        };
        let mut spec = JobSpec::new(str_field("id")?, str_field("program")?);
        if let Some(args) = job.get("args") {
            let args = args
                .as_array()
                .ok_or_else(|| format!("job #{i}: \"args\" must be an array"))?;
            for a in args {
                spec.args.push(
                    a.as_str()
                        .ok_or_else(|| format!("job #{i}: args must be strings"))?
                        .to_string(),
                );
            }
        }
        if let Some(env) = job.get("env") {
            match env {
                Json::Object(members) => {
                    for (k, v) in members {
                        let v = v
                            .as_str()
                            .ok_or_else(|| format!("job #{i}: env values must be strings"))?;
                        spec.env.push((k.clone(), v.to_string()));
                    }
                }
                _ => return Err(format!("job #{i}: \"env\" must be an object")),
            }
        }
        if let Some(t) = job.get("timeout_secs") {
            spec.timeout_secs = Some(
                t.as_f64()
                    .ok_or_else(|| format!("job #{i}: \"timeout_secs\" must be a number"))?,
            );
        }
        if let Some(n) = job.get("max_attempts") {
            spec.max_attempts = Some(
                n.as_u64()
                    .and_then(|n| u32::try_from(n).ok())
                    .ok_or_else(|| format!("job #{i}: \"max_attempts\" must fit u32"))?,
            );
        }
        jobs.push(spec);
    }
    Ok(CampaignPlan { name, jobs })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CampaignPlan {
        CampaignPlan::new("demo")
            .job(
                JobSpec::new("a", "/bin/echo")
                    .arg("hi")
                    .env("K", "v")
                    .timeout_secs(1.5)
                    .max_attempts(3),
            )
            .job(JobSpec::new("b", "/bin/true"))
    }

    #[test]
    fn plan_round_trips() {
        let plan = sample();
        let back = CampaignPlan::from_json(&plan.to_json()).expect("round trip");
        assert_eq!(back, plan);
    }

    #[test]
    fn config_hash_tracks_execution_relevant_fields() {
        let a = JobSpec::new("a", "/bin/echo").arg("hi");
        let mut b = a.clone();
        assert_eq!(a.config_hash(), b.config_hash());
        b.args[0] = "ho".to_string();
        assert_ne!(a.config_hash(), b.config_hash());
        let c = a.clone().timeout_secs(5.0);
        assert_ne!(a.config_hash(), c.config_hash());
        // Field boundaries don't alias.
        let d = JobSpec::new("a", "/bin/echo").arg("h").arg("i");
        assert_ne!(a.config_hash(), d.config_hash());
    }

    #[test]
    fn ambient_fingerprint_tracks_fulllock_vars_only() {
        let vars = |pairs: &[(&str, &str)]| {
            pairs
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect::<Vec<_>>()
        };
        let base = ambient_fingerprint(vars(&[("FULLLOCK_CERTIFY", "proof"), ("PATH", "/bin")]));
        // Unrelated environment noise does not matter.
        assert_eq!(
            base,
            ambient_fingerprint(vars(&[
                ("HOME", "/root"),
                ("FULLLOCK_CERTIFY", "proof"),
                ("TERM", "dumb"),
            ]))
        );
        // Order does not matter.
        assert_eq!(
            ambient_fingerprint(vars(&[("FULLLOCK_A", "1"), ("FULLLOCK_B", "2")])),
            ambient_fingerprint(vars(&[("FULLLOCK_B", "2"), ("FULLLOCK_A", "1")]))
        );
        // Value drift, new knobs, and removed knobs all matter.
        assert_ne!(
            base,
            ambient_fingerprint(vars(&[("FULLLOCK_CERTIFY", "model")]))
        );
        assert_ne!(
            base,
            ambient_fingerprint(vars(&[
                ("FULLLOCK_CERTIFY", "proof"),
                ("FULLLOCK_INPROCESS", "off"),
            ]))
        );
        assert_ne!(base, ambient_fingerprint(vars(&[])));
        // And the combined job hash tracks it.
        let job = JobSpec::new("a", "/bin/echo");
        assert_ne!(job.config_hash_with(base), job.config_hash_with(base ^ 1));
        assert_eq!(job.config_hash_with(base), job.config_hash_with(base));
    }

    #[test]
    fn validation_rejects_bad_plans() {
        assert!(CampaignPlan::new("empty").validate().is_err());
        let dup = CampaignPlan::new("dup")
            .job(JobSpec::new("x", "/bin/true"))
            .job(JobSpec::new("x", "/bin/false"));
        assert!(dup.validate().is_err());
        for bad_id in ["", ".hidden", "sl/ash", "sp ace"] {
            let plan = CampaignPlan::new("p").job(JobSpec::new(bad_id, "/bin/true"));
            assert!(plan.validate().is_err(), "{bad_id:?} must be rejected");
        }
        let bad_timeout =
            CampaignPlan::new("p").job(JobSpec::new("x", "/bin/true").timeout_secs(-1.0));
        assert!(bad_timeout.validate().is_err());
        let zero_attempts =
            CampaignPlan::new("p").job(JobSpec::new("x", "/bin/true").max_attempts(0));
        assert!(zero_attempts.validate().is_err());
    }

    #[test]
    fn version_mismatch_is_rejected() {
        let text = sample().to_json().replace("\"version\":1", "\"version\":9");
        let err = CampaignPlan::from_json(&text).expect_err("must reject");
        assert!(err.to_string().contains("version 9"), "{err}");
    }

    #[test]
    fn builtin_paper_covers_every_bench_binary() {
        let plan = CampaignPlan::builtin_paper(Path::new("/tmp/bins"));
        plan.validate().expect("builtin plan is valid");
        assert_eq!(plan.jobs.len(), PAPER_BINS.len());
        for (job, bin) in plan.jobs.iter().zip(PAPER_BINS) {
            assert_eq!(job.id, bin);
            assert!(job.program.ends_with(bin));
        }
    }
}
