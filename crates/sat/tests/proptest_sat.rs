//! Property-based tests of the SAT kit: solver agreement, DIMACS
//! round-trips, and Tseytin/equivalence coherence.

use fulllock_netlist::random::{generate, RandomCircuitConfig};
use fulllock_sat::backend::BackendSpec;
use fulllock_sat::cdcl::{SolveLimits, SolveResult, Solver, SolverConfig};
use fulllock_sat::random_sat::{self, RandomSatConfig};
use fulllock_sat::{dpll, equiv, CertifyLevel, Cnf, Lit, Var};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// CDCL and the reference DPLL agree on verdicts across the phase
    /// transition, and SAT models check out.
    #[test]
    fn cdcl_agrees_with_dpll(vars in 10usize..28, ratio in 2.0f64..7.0, seed in any::<u64>()) {
        let cnf = random_sat::generate(RandomSatConfig::from_ratio(vars, ratio, 3, seed))
            .expect("valid config");
        let reference = dpll::solve(&cnf, None);
        let mut solver = Solver::from_cnf(&cnf);
        match (reference.result, solver.solve(&[])) {
            (dpll::DpllResult::Sat(_), SolveResult::Sat) => {
                prop_assert!(cnf.is_satisfied_by(solver.model()));
            }
            (dpll::DpllResult::Unsat, SolveResult::Unsat) => {}
            (a, b) => return Err(TestCaseError::fail(format!("disagreement: {a:?} vs {b:?}"))),
        }
    }

    /// Incremental solving under assumptions matches DPLL on the formula
    /// augmented with the assumptions as unit clauses — across several
    /// rounds on the SAME solver, so learnt clauses from one assumption
    /// set must never corrupt verdicts under another.
    #[test]
    fn incremental_assumption_solves_agree_with_dpll(
        vars in 10usize..22,
        ratio in 3.0f64..5.5,
        seed in any::<u64>(),
        picks in any::<u64>(),
    ) {
        let cnf = random_sat::generate(RandomSatConfig::from_ratio(vars, ratio, 3, seed))
            .expect("valid config");
        let mut solver = Solver::from_cnf(&cnf);
        for round in 0..3u32 {
            let mut assumptions: Vec<Lit> = (0..3u32)
                .map(|i| {
                    let bits = picks.rotate_right(round * 17 + i * 5);
                    let v = (bits >> 1) as usize % vars;
                    Lit::with_polarity(Var::new(v), bits & 1 == 1)
                })
                .collect();
            // Two assumptions on one variable may contradict; keep one.
            assumptions.sort_unstable_by_key(|l| l.var().index());
            assumptions.dedup_by_key(|l| l.var().index());
            let got = solver.solve(&assumptions);
            let mut augmented = cnf.clone();
            for &a in &assumptions {
                augmented.add_clause([a]);
            }
            let reference = dpll::solve(&augmented, None);
            match (reference.result, got) {
                (dpll::DpllResult::Sat(_), SolveResult::Sat) => {
                    prop_assert!(
                        augmented.is_satisfied_by(solver.model()),
                        "model violates formula or assumptions (round {round})"
                    );
                }
                (dpll::DpllResult::Unsat, SolveResult::Unsat) => {}
                (a, b) => {
                    return Err(TestCaseError::fail(format!(
                        "round {round} disagreement: {a:?} vs {b:?}"
                    )))
                }
            }
        }
        // Assumptions must not leak: the unconstrained verdict still
        // matches the reference afterwards.
        let reference = dpll::solve(&cnf, None);
        match (reference.result, solver.solve(&[])) {
            (dpll::DpllResult::Sat(_), SolveResult::Sat) => {
                prop_assert!(cnf.is_satisfied_by(solver.model()));
            }
            (dpll::DpllResult::Unsat, SolveResult::Unsat) => {}
            (a, b) => return Err(TestCaseError::fail(format!("final disagreement: {a:?} vs {b:?}"))),
        }
    }

    /// Assumption cores are sound: after an UNSAT answer under
    /// assumptions, [`Solver::final_assumption_core`] returns a subset of
    /// those assumptions that is itself jointly inconsistent with the
    /// formula — re-solving under only the core stays UNSAT, and the
    /// reference DPLL agrees. After a SAT answer the core is empty.
    #[test]
    fn assumption_cores_are_sound(
        vars in 8usize..16,
        ratio in 3.5f64..5.5,
        seed in any::<u64>(),
        picks in any::<u64>(),
    ) {
        let cnf = random_sat::generate(RandomSatConfig::from_ratio(vars, ratio, 3, seed))
            .expect("valid config");
        let mut solver = Solver::from_cnf(&cnf);
        let mut assumptions: Vec<Lit> = (0..6u32)
            .map(|i| {
                let bits = picks.rotate_right(i * 11);
                let v = (bits >> 1) as usize % vars;
                Lit::with_polarity(Var::new(v), bits & 1 == 1)
            })
            .collect();
        assumptions.sort_unstable_by_key(|l| l.var().index());
        assumptions.dedup_by_key(|l| l.var().index());
        match solver.solve(&assumptions) {
            SolveResult::Unsat => {
                let core: Vec<Lit> = solver.final_assumption_core().to_vec();
                for &l in &core {
                    prop_assert!(
                        assumptions.contains(&l),
                        "core literal outside the assumption set"
                    );
                }
                // The core alone reproduces the refutation.
                prop_assert_eq!(solver.solve(&core), SolveResult::Unsat);
                // And it is genuinely inconsistent, by an independent
                // decision procedure.
                let mut augmented = cnf.clone();
                for &a in &core {
                    augmented.add_clause([a]);
                }
                prop_assert!(matches!(
                    dpll::solve(&augmented, None).result,
                    dpll::DpllResult::Unsat
                ));
            }
            SolveResult::Sat => {
                prop_assert!(solver.final_assumption_core().is_empty());
            }
            SolveResult::Unknown => unreachable!("no limits"),
        }
    }

    /// Assumption cores stay sound across inprocessing rounds when the
    /// assumed variables are frozen — the exact shape of the DIP loop's
    /// quarantine machinery: frozen selector literals gating private
    /// contradictions, interleaved with formula growth that re-trips the
    /// simplifier.
    #[test]
    fn cores_survive_inprocessing_with_frozen_selectors(
        vars in 24usize..32,
        seed in any::<u64>(),
    ) {
        let base = random_sat::generate(RandomSatConfig::from_ratio(vars, 3.0, 3, seed))
            .expect("valid config");
        let mut solver = Solver::from_cnf_with_config(
            &base,
            SolverConfig { inprocess: true, ..SolverConfig::default() },
        );
        let mut selectors: Vec<Lit> = Vec::new();
        for round in 0..3u64 {
            // A fresh frozen selector gating a private contradiction
            // (sel → x ∧ ¬x), as the attack layer encodes a quarantinable
            // I/O pair.
            let x = solver.new_var();
            let sel = Lit::positive(solver.new_var());
            solver.freeze_var(sel.var());
            solver.add_clause([!sel, Lit::positive(x)]);
            solver.add_clause([!sel, !Lit::positive(x)]);
            selectors.push(sel);
            // Growth between solves, enough to re-trip inprocessing.
            let extra = random_sat::generate(RandomSatConfig {
                vars,
                clauses: 40,
                clause_len: 3,
                seed: seed.wrapping_add(round + 1),
            }).expect("valid config");
            for clause in extra.clauses() {
                solver.add_clause(clause.iter().copied());
            }
            prop_assert_eq!(
                solver.solve(&selectors),
                SolveResult::Unsat,
                "gated contradiction must refute round {}",
                round
            );
            let core: Vec<Lit> = solver.final_assumption_core().to_vec();
            for &l in &core {
                prop_assert!(selectors.contains(&l), "core leaked a non-assumption");
            }
            prop_assert_eq!(solver.solve(&core), SolveResult::Unsat);
            if core.is_empty() {
                // The grown formula became UNSAT on its own; the core
                // correctly blames no selector, and nothing further can
                // be asserted this run.
                break;
            }
        }
    }

    /// DIMACS round-trips exactly.
    #[test]
    fn dimacs_round_trip(vars in 3usize..20, clauses in 1usize..60, seed in any::<u64>()) {
        let cnf = random_sat::generate(RandomSatConfig {
            vars,
            clauses,
            clause_len: 3,
            seed,
        }).expect("valid config");
        let text = cnf.to_dimacs();
        let back = Cnf::from_dimacs(&text).expect("own output parses");
        prop_assert_eq!(back, cnf);
    }

    /// Parser hardening: a single-character mutation anywhere in a valid
    /// DIMACS file — or an adversarial token spliced into it — is either
    /// still parseable or a typed [`fulllock_sat::SatError::Dimacs`],
    /// never a panic (untrusted benchmark files reach this parser).
    #[test]
    fn mutated_dimacs_never_panics(
        vars in 3usize..12,
        clauses in 1usize..20,
        seed in any::<u64>(),
        pos in any::<usize>(),
        replacement in any::<u8>(),
    ) {
        let cnf = random_sat::generate(RandomSatConfig {
            vars,
            clauses,
            clause_len: 3,
            seed,
        }).expect("valid config");
        let mut bytes = cnf.to_dimacs().into_bytes();
        let at = pos % bytes.len();
        // Stay printable ASCII so the text remains valid UTF-8; the
        // interesting corruption space is token-level, not encoding-level.
        bytes[at] = 0x20 + (replacement % 0x5f);
        let mutated = String::from_utf8(bytes).expect("printable ascii");
        // Ok or Err are both acceptable; only a panic is a bug.
        let _ = Cnf::from_dimacs(&mutated);
    }

    /// Adding the negation of a found model as a clause makes the model
    /// count drop — repeated, the solver enumerates distinct models.
    #[test]
    fn blocking_clauses_enumerate_distinct_models(seed in any::<u64>()) {
        let cnf = random_sat::generate(RandomSatConfig {
            vars: 12,
            clauses: 24, // under-constrained: several models
            clause_len: 3,
            seed,
        }).expect("valid config");
        let mut solver = Solver::from_cnf(&cnf);
        let mut seen: Vec<Vec<bool>> = Vec::new();
        for _ in 0..4 {
            match solver.solve(&[]) {
                SolveResult::Sat => {
                    let model: Vec<bool> = solver.model().to_vec();
                    prop_assert!(!seen.contains(&model), "model repeated");
                    // Block this model.
                    solver.add_clause(model.iter().enumerate().map(|(i, &b)| {
                        fulllock_sat::Lit::with_polarity(fulllock_sat::Var::new(i), !b)
                    }));
                    seen.push(model);
                }
                SolveResult::Unsat => break,
                SolveResult::Unknown => unreachable!("no limits"),
            }
        }
        prop_assert!(!seen.is_empty(), "under-constrained formula must have a model");
    }

    /// Inprocessing is invisible to verdicts: an identical incremental
    /// solve sequence — growing the formula between solves, which is
    /// exactly what the DIP loop does — gives the same answers with
    /// simplification on and off, and every `Sat` model (reconstructed
    /// through eliminated variables) satisfies every clause ever added.
    #[test]
    fn inprocessing_preserves_incremental_verdicts(
        vars in 24usize..40,
        seed in any::<u64>(),
        picks in any::<u64>(),
    ) {
        // Start near the satisfiable side so growth keeps verdicts mixed,
        // and big enough (>100 clauses) to trip the inprocessing trigger.
        let base = random_sat::generate(RandomSatConfig::from_ratio(vars, 3.5, 3, seed))
            .expect("valid config");
        let mut plain = Solver::from_cnf_with_config(
            &base,
            SolverConfig { inprocess: false, ..SolverConfig::default() },
        );
        let mut simplifying = Solver::from_cnf_with_config(
            &base,
            SolverConfig { inprocess: true, ..SolverConfig::default() },
        );
        let mut all_clauses = base.clone();
        for round in 0..3u32 {
            let assumptions: Vec<Lit> = {
                let bits = picks.rotate_right(round * 13);
                let v = (bits >> 1) as usize % vars;
                vec![Lit::with_polarity(Var::new(v), bits & 1 == 1)]
            };
            let want = plain.solve(&assumptions);
            let got = simplifying.solve(&assumptions);
            prop_assert_eq!(want, got, "round {} verdicts diverge", round);
            if got == SolveResult::Sat {
                let mut assumed = all_clauses.clone();
                for &a in &assumptions {
                    assumed.add_clause([a]);
                }
                prop_assert!(
                    assumed.is_satisfied_by(simplifying.model()),
                    "round {}: simplified solver's model violates the formula",
                    round
                );
            }
            // Grow the formula like the DIP loop: enough fresh clauses to
            // re-trip the growth trigger.
            let extra = random_sat::generate(RandomSatConfig {
                vars,
                clauses: 40,
                clause_len: 3,
                seed: seed.wrapping_add(round as u64 + 1),
            }).expect("valid config");
            for clause in extra.clauses() {
                all_clauses.add_clause(clause.iter().copied());
                plain.add_clause(clause.iter().copied());
                simplifying.add_clause(clause.iter().copied());
            }
        }
    }

    /// Inprocessing survives DRAT proof certification: every change it
    /// makes is logged so `CertifyLevel::Proof` keeps accepting UNSAT
    /// answers (and models keep checking) on formulas pushed across the
    /// phase transition.
    #[test]
    fn inprocessing_passes_proof_certification(
        vars in 20usize..32,
        ratio in 3.0f64..6.0,
        seed in any::<u64>(),
    ) {
        let cnf = random_sat::generate(RandomSatConfig::from_ratio(vars, ratio, 3, seed))
            .expect("valid config");
        let mut backend = BackendSpec::Configured(
            SolverConfig { inprocess: true, ..SolverConfig::default() },
        ).create_certified(CertifyLevel::Proof);
        backend.ensure_vars(cnf.num_vars());
        for clause in cnf.clauses() {
            backend.add_clause(clause);
        }
        let verdict = backend.solve_limited(&[], SolveLimits::default());
        prop_assert!(
            backend.certify_failure().is_none(),
            "certification failed: {:?}",
            backend.certify_failure()
        );
        let reference = dpll::solve(&cnf, None);
        match (reference.result, verdict) {
            (dpll::DpllResult::Sat(_), SolveResult::Sat) => {}
            (dpll::DpllResult::Unsat, SolveResult::Unsat) => {}
            (a, b) => return Err(TestCaseError::fail(format!("disagreement: {a:?} vs {b:?}"))),
        }
    }

    /// Every generated circuit is equivalent to its own `.bench`
    /// round-trip (formally, via the CEC).
    #[test]
    fn circuits_equivalent_to_their_roundtrip(seed in any::<u64>()) {
        let nl = generate(RandomCircuitConfig {
            inputs: 8,
            outputs: 4,
            gates: 60,
            max_fanin: 3,
            seed,
        }).expect("valid config");
        let text = fulllock_netlist::bench_io::write(&nl);
        let back = fulllock_netlist::bench_io::parse(&text, "rt").expect("parses");
        prop_assert!(equiv::check(&nl, &back, None).expect("checkable").is_equivalent());
    }

    /// The logic optimizer is semantics-preserving: optimized circuits are
    /// formally equivalent to their originals.
    #[test]
    fn optimizer_is_equivalence_preserving(seed in any::<u64>()) {
        let nl = generate(RandomCircuitConfig {
            inputs: 10,
            outputs: 5,
            gates: 100,
            max_fanin: 4,
            seed,
        }).expect("valid config");
        let optimized = fulllock_netlist::opt::optimize(&nl).expect("acyclic");
        prop_assert!(optimized.netlist.stats().gates <= nl.stats().gates);
        prop_assert!(
            equiv::check(&nl, &optimized.netlist, None)
                .expect("checkable")
                .is_equivalent()
        );
    }

    /// Mutating one gate kind is (almost always) detected by the CEC with
    /// a genuine counterexample.
    #[test]
    fn cec_counterexamples_are_genuine(seed in any::<u64>()) {
        let nl = generate(RandomCircuitConfig {
            inputs: 8,
            outputs: 4,
            gates: 50,
            max_fanin: 3,
            seed,
        }).expect("valid config");
        let mut mutated = nl.clone();
        // Invert the kind of the first invertible live gate.
        let target = mutated
            .gates()
            .find(|&g| mutated.node(g).gate_kind().and_then(|k| k.invert()).is_some());
        let Some(g) = target else { return Ok(()) };
        let inverted = mutated.node(g).gate_kind().unwrap().invert().unwrap();
        mutated.set_gate_kind(g, inverted).unwrap();
        match equiv::check(&nl, &mutated, None).expect("checkable") {
            equiv::EquivResult::Equivalent => {
                // Possible if the mutated gate is masked everywhere; rare
                // but legal.
            }
            equiv::EquivResult::Counterexample(cex) => {
                let sim_a = fulllock_netlist::Simulator::new(&nl).unwrap();
                let sim_b = fulllock_netlist::Simulator::new(&mutated).unwrap();
                prop_assert_ne!(sim_a.run(&cex).unwrap(), sim_b.run(&cex).unwrap());
            }
            equiv::EquivResult::Unknown => unreachable!("no limits"),
        }
    }
}
