//! Chaos tests: inject faults into the portfolio runtime and assert the
//! race degrades gracefully instead of propagating the failure.
//!
//! These tests require the `failpoints` feature:
//!
//! ```text
//! cargo test -p fulllock-sat --features failpoints --test chaos_portfolio
//! ```
//!
//! The fault-plan registry is process-global, so every test that installs
//! a plan serializes on [`chaos_lock`] and clears the plan before
//! releasing it.
#![cfg(feature = "failpoints")]

use std::sync::{Mutex, MutexGuard, PoisonError};

use fulllock_sat::cdcl::{SolveLimits, SolveResult, Solver};
use fulllock_sat::faults::{self, site, Failpoint, FaultAction, FaultPlan};
use fulllock_sat::portfolio::{PortfolioConfig, PortfolioSolver, WorkerFailureReason};
use fulllock_sat::random_sat::{generate, RandomSatConfig};
use fulllock_sat::Cnf;

/// Serializes tests that install a global fault plan; restores the
/// environment fallback on drop via an explicit `faults::clear()` in each
/// test body.
fn chaos_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    // A previous test panicking while holding the lock must not cascade.
    LOCK.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Injected worker panics print their unwind trace through the default
/// hook, which makes a passing chaos run look alarming; silence panics
/// whose message marks them as injected.
fn quiet_injected_panics() {
    use std::sync::Once;
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let default = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<String>()
                .is_some_and(|m| m.contains("injected failpoint"))
                || info
                    .payload()
                    .downcast_ref::<&str>()
                    .is_some_and(|m| m.contains("injected failpoint"));
            if !injected {
                default(info);
            }
        }));
    });
}

fn phase_transition(seed: u64) -> Cnf {
    generate(RandomSatConfig::from_ratio(40, 4.27, 3, seed)).expect("valid config")
}

fn sequential_verdict(cnf: &Cnf) -> SolveResult {
    Solver::from_cnf(cnf).solve(&[])
}

#[test]
fn race_survives_one_worker_panic() {
    let _guard = chaos_lock();
    quiet_injected_panics();
    faults::install(FaultPlan::new().with(Failpoint::new(
        site::WORKER_CHUNK,
        Some(1),
        FaultAction::Panic,
    )));

    let mut survived = 0;
    for seed in 0..6 {
        let cnf = phase_transition(200 + seed);
        let expected = sequential_verdict(&cnf);
        let mut portfolio = PortfolioSolver::from_cnf(&cnf, PortfolioConfig::default());
        let got = portfolio.solve(&[]);
        assert_eq!(got, expected, "seed {seed}");
        if got == SolveResult::Sat {
            assert!(cnf.is_satisfied_by(portfolio.model()), "seed {seed}");
        }
        // Worker 1 is dead; the winner must be a survivor.
        assert_ne!(portfolio.winner(), Some(1), "seed {seed}");
        assert_eq!(portfolio.stats().worker_panics, 1);
        let failures = portfolio.failures();
        assert_eq!(failures.len(), 1);
        assert_eq!(failures[0].worker, 1);
        assert!(
            matches!(failures[0].reason, WorkerFailureReason::Panic(ref m) if m.contains("injected")),
            "seed {seed}: {:?}",
            failures[0].reason
        );
        survived += 1;
    }
    faults::clear();
    assert_eq!(survived, 6);
}

#[test]
fn dead_worker_is_respawned_on_the_next_solve() {
    let _guard = chaos_lock();
    quiet_injected_panics();
    // Kill worker 2 exactly once; the portfolio must rebuild it from the
    // master clause log and use the full width again afterwards.
    faults::install(
        FaultPlan::new()
            .with(Failpoint::new(site::WORKER_CHUNK, Some(2), FaultAction::Panic).times(1)),
    );

    let cnf = phase_transition(300);
    let expected = sequential_verdict(&cnf);
    let mut portfolio = PortfolioSolver::from_cnf(&cnf, PortfolioConfig::default());
    assert_eq!(portfolio.solve(&[]), expected);
    assert_eq!(portfolio.stats().worker_panics, 1);
    assert_eq!(portfolio.worker_respawns(), 0); // respawn happens lazily

    // Second solve: worker 2 is respawned and the (spent) failpoint no
    // longer fires, so all four race and the verdict still matches.
    assert_eq!(portfolio.solve(&[]), expected);
    assert_eq!(portfolio.worker_respawns(), 1);
    assert_eq!(portfolio.stats().worker_panics, 1); // no new panic
    faults::clear();
}

#[test]
fn all_workers_panicking_degrades_to_unknown_with_partial_stats() {
    let _guard = chaos_lock();
    quiet_injected_panics();
    faults::install(FaultPlan::new().with(Failpoint::new(
        site::WORKER_CHUNK,
        None,
        FaultAction::Panic,
    )));

    let cnf = phase_transition(400);
    let mut portfolio = PortfolioSolver::from_cnf(&cnf, PortfolioConfig::default());
    // The panic must never reach us.
    let result = portfolio.solve(&[]);
    assert_eq!(result, SolveResult::Unknown);
    assert_eq!(portfolio.winner(), None);
    let stats = portfolio.stats();
    assert_eq!(stats.worker_panics, 4);
    assert_eq!(portfolio.failures().len(), 4);
    faults::clear();
}

#[test]
fn corrupted_exchange_batches_do_not_change_the_verdict() {
    let _guard = chaos_lock();
    faults::install(FaultPlan::new().with(Failpoint::new(
        site::EXCHANGE_PUBLISH,
        None,
        FaultAction::Corrupt,
    )));

    // Small chunks force many exchange rounds.
    let config = PortfolioConfig {
        chunk_conflicts: 50,
        ..PortfolioConfig::default()
    };
    for seed in 0..4 {
        let cnf = phase_transition(500 + seed);
        let expected = sequential_verdict(&cnf);
        let mut portfolio = PortfolioSolver::from_cnf(&cnf, config);
        let got = portfolio.solve(&[]);
        assert_eq!(got, expected, "seed {seed}");
        if got == SolveResult::Sat {
            assert!(cnf.is_satisfied_by(portfolio.model()), "seed {seed}");
        }
    }
    faults::clear();
}

/// Corruption on the *import* side (after the published batch was intact):
/// import validation must reject every mangled clause — counting each
/// reject — and the verdict must still match the sequential solver, with
/// any claimed model actually satisfying the formula.
#[test]
fn corrupted_imports_are_rejected_and_counted() {
    let _guard = chaos_lock();
    faults::install(FaultPlan::new().with(Failpoint::new(
        site::EXCHANGE_IMPORT,
        None,
        FaultAction::Corrupt,
    )));

    // 40-var instances solve before any glue clause is published, so this
    // test needs instances hard enough to drive real exchange rounds.
    let config = PortfolioConfig {
        chunk_conflicts: 25,
        ..PortfolioConfig::default()
    };
    let mut total_rejects = 0;
    for seed in 0..5 {
        let cnf =
            generate(RandomSatConfig::from_ratio(100, 4.27, 3, 550 + seed)).expect("valid config");
        let expected = sequential_verdict(&cnf);
        let mut portfolio = PortfolioSolver::from_cnf(&cnf, config);
        let got = portfolio.solve(&[]);
        assert_eq!(got, expected, "seed {seed}");
        if got == SolveResult::Sat {
            assert!(cnf.is_satisfied_by(portfolio.model()), "seed {seed}");
        }
        total_rejects += portfolio.stats().exchange_rejects;
    }
    // Every corrupted clause carries a duplicate literal, so any exchange
    // delivery at all must produce rejects across the seeds.
    assert!(
        total_rejects > 0,
        "no corrupt imports were rejected across any seed"
    );
    faults::clear();
}

#[test]
fn dropped_exchange_deliveries_do_not_change_the_verdict() {
    let _guard = chaos_lock();
    faults::install(
        FaultPlan::new()
            .with(Failpoint::new(
                site::EXCHANGE_PUBLISH,
                Some(0),
                FaultAction::Drop,
            ))
            .with(Failpoint::new(
                site::EXCHANGE_IMPORT,
                Some(3),
                FaultAction::Drop,
            )),
    );

    let config = PortfolioConfig {
        chunk_conflicts: 50,
        ..PortfolioConfig::default()
    };
    for seed in 0..4 {
        let cnf = phase_transition(600 + seed);
        let expected = sequential_verdict(&cnf);
        let mut portfolio = PortfolioSolver::from_cnf(&cnf, config);
        assert_eq!(portfolio.solve(&[]), expected, "seed {seed}");
    }
    faults::clear();
}

#[test]
fn spurious_budget_exhaustion_returns_unknown_with_partial_stats() {
    let _guard = chaos_lock();
    // Let each worker do a few budget checks, then trip the shared budget.
    faults::install(
        FaultPlan::new()
            .with(Failpoint::new(site::BUDGET_EXHAUSTED, None, FaultAction::Trigger).after(8)),
    );

    let cnf = phase_transition(700);
    let mut portfolio = PortfolioSolver::from_cnf(
        &cnf,
        PortfolioConfig {
            chunk_conflicts: 10,
            ..PortfolioConfig::default()
        },
    );
    // A hard instance with tiny chunks: the injected exhaustion fires
    // before a genuine verdict on at least some runs; either way the call
    // must return (never hang) and stats must be coherent.
    let result = portfolio.solve_limited(&[], SolveLimits::default());
    if result == SolveResult::Unknown {
        assert_eq!(portfolio.winner(), None);
    }
    assert_eq!(portfolio.stats().worker_panics, 0);
    faults::clear();
}

#[test]
fn delayed_exchange_only_slows_the_race() {
    let _guard = chaos_lock();
    faults::install(
        FaultPlan::new()
            .with(Failpoint::new(site::EXCHANGE_PUBLISH, None, FaultAction::DelayMs(1)).times(20)),
    );

    let cnf = phase_transition(800);
    let expected = sequential_verdict(&cnf);
    let mut portfolio = PortfolioSolver::from_cnf(
        &cnf,
        PortfolioConfig {
            chunk_conflicts: 50,
            ..PortfolioConfig::default()
        },
    );
    assert_eq!(portfolio.solve(&[]), expected);
    faults::clear();
}

/// Run by the CI chaos matrix with `FULLLOCK_FAILPOINTS` set: whatever the
/// ambient environment plan injects, the portfolio must still degrade
/// gracefully — matching the sequential verdict or returning `Unknown`,
/// never panicking, hanging, or reporting an unsatisfied model.
#[test]
fn env_plan_never_escapes_the_portfolio() {
    let _guard = chaos_lock();
    quiet_injected_panics();
    faults::clear(); // fall back to the FULLLOCK_FAILPOINTS plan, if any

    for seed in 0..4 {
        let cnf = phase_transition(900 + seed);
        let expected = sequential_verdict(&cnf);
        let mut portfolio = PortfolioSolver::from_cnf(&cnf, PortfolioConfig::default());
        let got = portfolio.solve(&[]);
        match got {
            SolveResult::Unknown => {} // injected exhaustion / mass stall
            verdict => assert_eq!(verdict, expected, "seed {seed}"),
        }
        if got == SolveResult::Sat {
            assert!(cnf.is_satisfied_by(portfolio.model()), "seed {seed}");
        }
    }
}
