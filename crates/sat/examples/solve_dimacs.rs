//! Standalone DIMACS front end for the CDCL solver: reads a `.cnf` file,
//! prints `SAT` with a model (in DIMACS `v`-line format) or `UNSAT`, plus
//! solver statistics.
//!
//! ```text
//! cargo run --release -p fulllock-sat --example solve_dimacs -- formula.cnf
//! ```
//!
//! With no argument, a built-in phase-transition instance is solved as a
//! demo.

use std::env;
use std::error::Error;
use std::fs;
use std::time::Instant;

use fulllock_sat::cdcl::{SolveResult, Solver};
use fulllock_sat::random_sat::{generate, RandomSatConfig};
use fulllock_sat::Cnf;

fn main() -> Result<(), Box<dyn Error>> {
    let cnf = match env::args().nth(1) {
        Some(path) => {
            let text = fs::read_to_string(&path)?;
            Cnf::from_dimacs(&text)?
        }
        None => {
            eprintln!("no file given; solving a built-in 120-var instance at ratio 4.3");
            generate(RandomSatConfig::from_ratio(120, 4.3, 3, 42))?
        }
    };
    eprintln!(
        "c {} variables, {} clauses (ratio {:.2})",
        cnf.num_vars(),
        cnf.num_clauses(),
        cnf.clause_to_variable_ratio()
    );
    let start = Instant::now();
    let mut solver = Solver::from_cnf(&cnf);
    let result = solver.solve(&[]);
    let elapsed = start.elapsed();
    match result {
        SolveResult::Sat => {
            println!("s SATISFIABLE");
            let mut line = String::from("v");
            for (i, &value) in solver.model().iter().enumerate() {
                let lit = if value {
                    (i + 1) as i64
                } else {
                    -((i + 1) as i64)
                };
                line.push_str(&format!(" {lit}"));
                if line.len() > 72 {
                    println!("{line}");
                    line = String::from("v");
                }
            }
            println!("{line} 0");
        }
        SolveResult::Unsat => println!("s UNSATISFIABLE"),
        SolveResult::Unknown => println!("s UNKNOWN"),
    }
    let stats = solver.stats();
    eprintln!(
        "c {:?} | {} decisions, {} propagations, {} conflicts, {} restarts",
        elapsed, stats.decisions, stats.propagations, stats.conflicts, stats.restarts
    );
    Ok(())
}
