//! Deterministic fault injection ("failpoints") for chaos testing.
//!
//! A production attack run is a long-lived multi-threaded job: portfolio
//! workers race for hours, exchange learnt clauses, and share one budget.
//! The only way to *test* that a worker panic, a lost mailbox delivery, or
//! a spurious budget trip degrades the run gracefully — instead of taking
//! the whole attack down — is to inject those faults on purpose, at named
//! program points, deterministically.
//!
//! This module provides exactly that:
//!
//! * a [`FaultPlan`] — an ordered set of [`Failpoint`]s, built
//!   programmatically or parsed from the `FULLLOCK_FAILPOINTS` environment
//!   variable;
//! * named fault *sites* compiled into the portfolio runtime (see the
//!   [`site`] constants) that call [`evaluate`] with a context index
//!   (usually the worker id);
//! * a process-global plan registry: [`install`] / [`clear`] for tests,
//!   with the environment plan as the fallback.
//!
//! # Zero cost without the feature
//!
//! The plan types and the spec parser are always available (so tooling can
//! validate specs anywhere), but [`evaluate`] only consults the registry
//! when the crate is built with the `failpoints` feature. Without it,
//! `evaluate` is a `const`-foldable `None` and every site disappears from
//! the optimized build.
//!
//! # Spec grammar
//!
//! ```text
//! plan   := point (';' point)*
//! point  := name ['#' index] '=' action ['@' skip] ['x' limit]
//! action := panic | drop | corrupt | trigger | delay:<millis>
//!         | enospc | eio | torn | flip | stuck
//! ```
//!
//! The three IO actions arm the *disk-fault* sites ([`site::PERSIST_WRITE`],
//! [`site::PERSIST_SYNC`], [`site::QUEUE_SEAL`]): `enospc` and `eio` make
//! the write fail with the corresponding errno-flavoured error, `torn`
//! makes it *lie* — the file lands truncated mid-envelope but the call
//! reports success, exactly what a powered-off disk behind a lying fsync
//! produces.
//!
//! The two *oracle* actions arm [`site::ORACLE_QUERY`]: `flip` inverts one
//! output bit of the response (a transient metastability upset — a
//! re-query answers correctly), `stuck` forces one output bit to a
//! constant (a stuck-at fault that answers the same wrong way on every
//! re-query).
//!
//! `#index` restricts the point to one context index (e.g. worker 1);
//! `@skip` ignores the first `skip` matching evaluations; `xlimit` fires at
//! most `limit` times. Example:
//!
//! ```text
//! FULLLOCK_FAILPOINTS="portfolio.worker.panic#1=panic x1"   # (spaces not allowed)
//! FULLLOCK_FAILPOINTS="portfolio.worker.panic#1=panicx1;portfolio.exchange.publish=corrupt@2"
//! ```
//!
//! # Example
//!
//! ```
//! use fulllock_sat::faults::{FaultAction, FaultPlan};
//!
//! let plan: FaultPlan = "portfolio.worker.panic#1=panicx1".parse().unwrap();
//! assert_eq!(plan.points().len(), 1);
//! assert_eq!(plan.points()[0].action, FaultAction::Panic);
//! assert_eq!(plan.points()[0].index, Some(1));
//! assert_eq!(plan.points()[0].limit, Some(1));
//! ```

use std::fmt;
use std::str::FromStr;
use std::sync::atomic::AtomicU64;
#[cfg(feature = "failpoints")]
use std::sync::atomic::Ordering;
#[cfg(feature = "failpoints")]
use std::sync::{Arc, OnceLock, PoisonError, RwLock};

use crate::SatError;

/// The named fault sites compiled into the solver runtime.
pub mod site {
    /// Evaluated at the top of every portfolio worker chunk with the
    /// worker index. `panic` kills the worker; `trigger` makes it stall
    /// (return without a verdict).
    pub const WORKER_CHUNK: &str = "portfolio.worker.panic";
    /// Evaluated when a worker publishes learnt clauses, with the producer
    /// index. `drop` loses the batch, `delay:<ms>` delays it, `corrupt`
    /// mangles every clause (duplicated literals + a tautological pair).
    pub const EXCHANGE_PUBLISH: &str = "portfolio.exchange.publish";
    /// Evaluated when a worker imports foreign clauses, with the reader
    /// index. `drop` discards the delivery (the clauses are lost for this
    /// reader, not retried); `corrupt` mangles it on the import side
    /// (duplicated literals + a tautological pair) so only this reader
    /// sees garbage — import validation must reject it.
    pub const EXCHANGE_IMPORT: &str = "portfolio.exchange.import";
    /// Evaluated inside `AttackCheckpoint::save` with index 0. `corrupt`
    /// truncates the serialized text mid-write (a torn write that the
    /// checksum must catch at load), `delay:<ms>` slows the save down.
    pub const CHECKPOINT_SAVE: &str = "checkpoint.save";
    /// Evaluated inside the shared budget's exhaustion check (context
    /// index 0). `trigger` reports the budget spuriously exhausted, so the
    /// whole race degrades to `Unknown` with partial stats.
    pub const BUDGET_EXHAUSTED: &str = "portfolio.budget.exhausted";
    /// Evaluated by a `fulllock serve` worker just before it launches a
    /// job's child process, with the worker index. `panic` kills the
    /// worker thread (the server must catch it and retry the job on
    /// another worker), `trigger` fails the launch spuriously (exercising
    /// the retry path), `delay:<ms>` slows the worker down.
    pub const SERVICE_WORKER: &str = "service.worker";
    /// Evaluated inside `fulllock_harness::persist::save_sealed` (context
    /// index 0) before the payload is written. `enospc`/`eio` fail the
    /// save with the corresponding error, `torn` writes a truncated
    /// envelope but reports success (the checksum catches it at the next
    /// load), `delay:<ms>` slows the write.
    pub const PERSIST_WRITE: &str = "persist.write";
    /// Evaluated just before the durability `fsync` of a sealed save
    /// (context index 0). `eio`/`enospc` fail the sync, `torn` *skips*
    /// it while reporting success (a lying fsync), `delay:<ms>` slows it.
    pub const PERSIST_SYNC: &str = "persist.sync";
    /// Evaluated by `ShardedQueue` when it seals a shard file, with the
    /// shard index. `enospc`/`eio` fail the shard write (the server must
    /// refuse the request with a typed error and quarantine the shard),
    /// `torn` tears the shard on disk while reporting success (the next
    /// open must fall back to the previous generation).
    pub const QUEUE_SEAL: &str = "queue.seal";
    /// Evaluated by the sweep executor on every lease-file write (claim,
    /// heartbeat renewal, steal), with the worker index. `enospc`/`eio`
    /// fail the write (the worker loses the claim and moves on), `torn`
    /// lands a truncated lease that other workers must treat as expired
    /// and stealable, `delay:<ms>` slows the lease protocol down so
    /// renewal races and steal windows actually open under test.
    pub const SWEEP_LEASE: &str = "sweep.lease";
    /// Evaluated by a sweep worker on every result-segment append, with
    /// the worker index. `enospc`/`eio` fail the append before the record
    /// lands, `torn` writes half a record while reporting success (the
    /// coordinator's fold must truncate the tail and the unit must be
    /// re-executed — a settle marker without a valid record never counts),
    /// `delay:<ms>` slows the append.
    pub const SWEEP_SEGMENT: &str = "sweep.segment";
    /// Evaluated by a sweep worker just before it executes a claimed work
    /// unit, with the *unit* index (not the worker index), so chaos plans
    /// can target one grid point. `delay:<ms>` turns the unit into a
    /// straggler (exercising speculation), `panic` kills the worker while
    /// it holds the lease (exercising steal), `trigger` fails the unit
    /// execution spuriously.
    pub const SWEEP_UNIT: &str = "sweep.unit";
    /// Evaluated by `SimOracle::try_query` on every oracle query, with the
    /// query index. `flip` inverts one output bit of this response only (a
    /// transient upset — re-querying answers correctly), `stuck` forces
    /// one output bit to a constant wrong value (persists across
    /// re-queries), `drop` loses the response (the caller sees a transient
    /// error and must retry), `delay:<ms>` models a slow test harness.
    pub const ORACLE_QUERY: &str = "oracle.query";
}

/// What happens when a failpoint fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Panic at the site (worker sites only — the portfolio must contain
    /// it).
    Panic,
    /// Drop the payload (a clause batch, a delivery).
    Drop,
    /// Corrupt the payload (tautological / duplicated glue clauses).
    Corrupt,
    /// Trip the site's condition spuriously (budget exhaustion, worker
    /// stall).
    Trigger,
    /// Sleep this many milliseconds before proceeding.
    DelayMs(u64),
    /// Fail an IO site as if the disk were full (`ENOSPC`).
    Enospc,
    /// Fail an IO site with a generic IO error (`EIO`).
    Eio,
    /// Tear the write: the file lands truncated mid-payload but the call
    /// reports success (a lying fsync / power-loss torn write).
    Torn,
    /// Flip one output bit of an oracle response (transient upset — only
    /// this response is wrong; a re-query answers correctly).
    Flip,
    /// Force one oracle output bit to a constant wrong value (stuck-at
    /// fault — every re-query answers the same wrong way).
    Stuck,
}

impl fmt::Display for FaultAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultAction::Panic => write!(f, "panic"),
            FaultAction::Drop => write!(f, "drop"),
            FaultAction::Corrupt => write!(f, "corrupt"),
            FaultAction::Trigger => write!(f, "trigger"),
            FaultAction::DelayMs(ms) => write!(f, "delay:{ms}"),
            FaultAction::Enospc => write!(f, "enospc"),
            FaultAction::Eio => write!(f, "eio"),
            FaultAction::Torn => write!(f, "torn"),
            FaultAction::Flip => write!(f, "flip"),
            FaultAction::Stuck => write!(f, "stuck"),
        }
    }
}

/// One armed fault: a site name, an optional context-index filter, an
/// action, and fire-count bookkeeping.
#[derive(Debug)]
pub struct Failpoint {
    /// Site name (one of the [`site`] constants, or any custom name).
    pub name: String,
    /// Restrict to one context index (worker id); `None` matches all.
    pub index: Option<usize>,
    /// What to do when the point fires.
    pub action: FaultAction,
    /// Skip the first `skip` matching evaluations.
    pub skip: u64,
    /// Fire at most this many times; `None` is unlimited.
    pub limit: Option<u64>,
    // Only read by `check`, which is compiled under the feature.
    #[cfg_attr(not(feature = "failpoints"), allow(dead_code))]
    hits: AtomicU64,
}

impl Failpoint {
    /// A failpoint that always fires at `name` (optionally only for one
    /// context index).
    pub fn new(name: impl Into<String>, index: Option<usize>, action: FaultAction) -> Failpoint {
        Failpoint {
            name: name.into(),
            index,
            action,
            skip: 0,
            limit: None,
            hits: AtomicU64::new(0),
        }
    }

    /// Skips the first `skip` matching evaluations before firing.
    pub fn after(mut self, skip: u64) -> Failpoint {
        self.skip = skip;
        self
    }

    /// Fires at most `limit` times.
    pub fn times(mut self, limit: u64) -> Failpoint {
        self.limit = Some(limit);
        self
    }

    #[cfg(feature = "failpoints")]
    fn check(&self, name: &str, index: usize) -> Option<FaultAction> {
        if self.name != name || self.index.is_some_and(|i| i != index) {
            return None;
        }
        let seen = self.hits.fetch_add(1, Ordering::Relaxed);
        if seen < self.skip {
            return None;
        }
        if self.limit.is_some_and(|limit| seen - self.skip >= limit) {
            return None;
        }
        Some(self.action)
    }
}

impl fmt::Display for Failpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name)?;
        if let Some(i) = self.index {
            write!(f, "#{i}")?;
        }
        write!(f, "={}", self.action)?;
        if self.skip > 0 {
            write!(f, "@{}", self.skip)?;
        }
        if let Some(limit) = self.limit {
            write!(f, "x{limit}")?;
        }
        Ok(())
    }
}

/// An ordered set of failpoints; the first matching point wins.
#[derive(Debug, Default)]
pub struct FaultPlan {
    points: Vec<Failpoint>,
}

impl FaultPlan {
    /// An empty plan (injects nothing).
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Adds a failpoint (builder style).
    pub fn with(mut self, point: Failpoint) -> FaultPlan {
        self.points.push(point);
        self
    }

    /// The armed failpoints, in evaluation order.
    pub fn points(&self) -> &[Failpoint] {
        &self.points
    }

    /// Whether the plan arms no failpoints.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    #[cfg(feature = "failpoints")]
    fn evaluate(&self, name: &str, index: usize) -> Option<FaultAction> {
        self.points.iter().find_map(|p| p.check(name, index))
    }
}

impl FromStr for FaultPlan {
    type Err = SatError;

    /// Parses the `FULLLOCK_FAILPOINTS` grammar (see the [module
    /// docs](self)). An empty or all-whitespace spec is an empty plan.
    fn from_str(spec: &str) -> Result<FaultPlan, SatError> {
        let mut plan = FaultPlan::new();
        for raw in spec.split(';') {
            let raw = raw.trim();
            if raw.is_empty() {
                continue;
            }
            plan.points.push(parse_point(raw)?);
        }
        Ok(plan)
    }
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, p) in self.points.iter().enumerate() {
            if i > 0 {
                write!(f, ";")?;
            }
            write!(f, "{p}")?;
        }
        Ok(())
    }
}

fn bad_spec(raw: &str, why: &str) -> SatError {
    SatError::FaultSpec {
        spec: raw.to_string(),
        message: why.to_string(),
    }
}

fn parse_point(raw: &str) -> Result<Failpoint, SatError> {
    let (lhs, rhs) = raw
        .split_once('=')
        .ok_or_else(|| bad_spec(raw, "expected name=action"))?;
    let (name, index) = match lhs.split_once('#') {
        Some((name, idx)) => {
            let index: usize = idx
                .trim()
                .parse()
                .map_err(|_| bad_spec(raw, "index after '#' must be an integer"))?;
            (name.trim(), Some(index))
        }
        None => (lhs.trim(), None),
    };
    if name.is_empty() {
        return Err(bad_spec(raw, "empty failpoint name"));
    }

    // action [@skip] [xlimit], in that order.
    let mut rest = rhs.trim();
    let mut limit = None;
    if let Some(pos) = rest.rfind('x') {
        // Only treat a trailing `xN` as a limit (not the x in an action name
        // — no action contains 'x', but be strict about the digits).
        if rest[pos + 1..].chars().all(|c| c.is_ascii_digit()) && !rest[pos + 1..].is_empty() {
            limit = Some(
                rest[pos + 1..]
                    .parse::<u64>()
                    .map_err(|_| bad_spec(raw, "limit after 'x' out of range"))?,
            );
            rest = rest[..pos].trim();
        }
    }
    let mut skip = 0;
    if let Some((action_str, skip_str)) = rest.split_once('@') {
        skip = skip_str
            .trim()
            .parse::<u64>()
            .map_err(|_| bad_spec(raw, "skip count after '@' must be an integer"))?;
        rest = action_str.trim();
    }
    let action = match rest {
        "panic" => FaultAction::Panic,
        "drop" => FaultAction::Drop,
        "corrupt" => FaultAction::Corrupt,
        "trigger" => FaultAction::Trigger,
        "enospc" => FaultAction::Enospc,
        "eio" => FaultAction::Eio,
        "torn" => FaultAction::Torn,
        "flip" => FaultAction::Flip,
        "stuck" => FaultAction::Stuck,
        other => match other.strip_prefix("delay:") {
            Some(ms) => FaultAction::DelayMs(
                ms.trim()
                    .parse::<u64>()
                    .map_err(|_| bad_spec(raw, "delay milliseconds must be an integer"))?,
            ),
            None => {
                return Err(bad_spec(
                    raw,
                    "unknown action (expected panic|drop|corrupt|trigger|delay:<ms>|\
                     enospc|eio|torn|flip|stuck)",
                ))
            }
        },
    };
    let mut point = Failpoint::new(name, index, action);
    point.skip = skip;
    point.limit = limit;
    Ok(point)
}

/// The environment variable holding the ambient fault plan.
pub const ENV_VAR: &str = "FULLLOCK_FAILPOINTS";

#[cfg(feature = "failpoints")]
fn registry() -> &'static RwLock<Option<Arc<FaultPlan>>> {
    static REGISTRY: OnceLock<RwLock<Option<Arc<FaultPlan>>>> = OnceLock::new();
    REGISTRY.get_or_init(|| RwLock::new(None))
}

#[cfg(feature = "failpoints")]
fn env_plan() -> &'static Option<Arc<FaultPlan>> {
    static ENV_PLAN: OnceLock<Option<Arc<FaultPlan>>> = OnceLock::new();
    ENV_PLAN.get_or_init(|| {
        let spec = std::env::var(ENV_VAR).ok()?;
        match spec.parse::<FaultPlan>() {
            Ok(plan) if !plan.is_empty() => Some(Arc::new(plan)),
            Ok(_) => None,
            Err(e) => {
                eprintln!("warning: ignoring invalid {ENV_VAR}: {e}");
                None
            }
        }
    })
}

/// Installs a plan process-wide, replacing any previously installed plan
/// and shadowing the `FULLLOCK_FAILPOINTS` environment plan until
/// [`clear`] is called. No-op (returning `false`) without the
/// `failpoints` feature.
pub fn install(plan: FaultPlan) -> bool {
    #[cfg(feature = "failpoints")]
    {
        *registry().write().unwrap_or_else(PoisonError::into_inner) = Some(Arc::new(plan));
        true
    }
    #[cfg(not(feature = "failpoints"))]
    {
        let _ = plan;
        false
    }
}

/// Removes the installed plan; evaluation falls back to the environment
/// plan (if any). No-op without the `failpoints` feature.
pub fn clear() {
    #[cfg(feature = "failpoints")]
    {
        *registry().write().unwrap_or_else(PoisonError::into_inner) = None;
    }
}

/// Evaluates the site `name` with context `index` against the active plan
/// (installed plan first, environment plan otherwise). Returns the action
/// to inject, or `None` to proceed normally.
///
/// Without the `failpoints` feature this is a constant `None` and the
/// whole call folds away.
#[cfg(feature = "failpoints")]
pub fn evaluate(name: &str, index: usize) -> Option<FaultAction> {
    let installed = registry()
        .read()
        .unwrap_or_else(PoisonError::into_inner)
        .clone();
    match installed {
        Some(plan) => plan.evaluate(name, index),
        None => env_plan().as_ref().and_then(|p| p.evaluate(name, index)),
    }
}

/// Evaluates the site `name` with context `index` against the active plan.
/// This build has the `failpoints` feature disabled, so the answer is
/// always `None` and the call folds away.
#[cfg(not(feature = "failpoints"))]
#[inline(always)]
pub fn evaluate(_name: &str, _index: usize) -> Option<FaultAction> {
    None
}

/// Sleeps for an injected delay (helper for `DelayMs` sites).
pub fn apply_delay(action: FaultAction) {
    if let FaultAction::DelayMs(ms) = action {
        std::thread::sleep(std::time::Duration::from_millis(ms));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_full_grammar() {
        let plan: FaultPlan =
            "portfolio.worker.panic#1=panic;portfolio.exchange.publish=corrupt@2x3;\
             portfolio.budget.exhausted=trigger;portfolio.exchange.import#0=delay:250"
                .parse()
                .expect("valid spec");
        let pts = plan.points();
        assert_eq!(pts.len(), 4);
        assert_eq!(pts[0].name, site::WORKER_CHUNK);
        assert_eq!(pts[0].index, Some(1));
        assert_eq!(pts[0].action, FaultAction::Panic);
        assert_eq!(pts[1].skip, 2);
        assert_eq!(pts[1].limit, Some(3));
        assert_eq!(pts[1].action, FaultAction::Corrupt);
        assert_eq!(pts[2].index, None);
        assert_eq!(pts[3].action, FaultAction::DelayMs(250));
    }

    #[test]
    fn parses_io_actions_and_sites() {
        let plan: FaultPlan = "persist.write=enospc@2x1;persist.sync=eio;queue.seal#3=torn"
            .parse()
            .expect("valid spec");
        let pts = plan.points();
        assert_eq!(pts.len(), 3);
        assert_eq!(pts[0].name, site::PERSIST_WRITE);
        assert_eq!(pts[0].action, FaultAction::Enospc);
        assert_eq!(pts[0].skip, 2);
        assert_eq!(pts[0].limit, Some(1));
        assert_eq!(pts[1].name, site::PERSIST_SYNC);
        assert_eq!(pts[1].action, FaultAction::Eio);
        assert_eq!(pts[2].name, site::QUEUE_SEAL);
        assert_eq!(pts[2].index, Some(3));
        assert_eq!(pts[2].action, FaultAction::Torn);
    }

    #[test]
    fn parses_sweep_sites() {
        let plan: FaultPlan = "sweep.lease=delay:50;sweep.segment=torn@1x2;sweep.unit#7=delay:3000"
            .parse()
            .expect("valid spec");
        let pts = plan.points();
        assert_eq!(pts.len(), 3);
        assert_eq!(pts[0].name, site::SWEEP_LEASE);
        assert_eq!(pts[0].action, FaultAction::DelayMs(50));
        assert_eq!(pts[1].name, site::SWEEP_SEGMENT);
        assert_eq!(pts[1].action, FaultAction::Torn);
        assert_eq!(pts[1].skip, 1);
        assert_eq!(pts[1].limit, Some(2));
        assert_eq!(pts[2].name, site::SWEEP_UNIT);
        assert_eq!(pts[2].index, Some(7));
    }

    #[test]
    fn parses_oracle_sites() {
        let plan: FaultPlan =
            "oracle.query=flip@10x3;oracle.query#5=stuck;oracle.query=delay:25x10"
                .parse()
                .expect("valid spec");
        let pts = plan.points();
        assert_eq!(pts.len(), 3);
        assert_eq!(pts[0].name, site::ORACLE_QUERY);
        assert_eq!(pts[0].action, FaultAction::Flip);
        assert_eq!(pts[0].skip, 10);
        assert_eq!(pts[0].limit, Some(3));
        assert_eq!(pts[1].action, FaultAction::Stuck);
        assert_eq!(pts[1].index, Some(5));
        assert_eq!(pts[2].action, FaultAction::DelayMs(25));
        assert_eq!(pts[2].limit, Some(10));
    }

    #[test]
    fn empty_and_whitespace_specs_are_empty_plans() {
        assert!("".parse::<FaultPlan>().expect("empty ok").is_empty());
        assert!("  ; ;".parse::<FaultPlan>().expect("semis ok").is_empty());
    }

    #[test]
    fn rejects_malformed_specs() {
        for bad in [
            "justname",
            "site=explode",
            "site#x=panic",
            "site=panic@abc",
            "site=delay:soon",
            "=panic",
        ] {
            let err = bad.parse::<FaultPlan>().expect_err(bad);
            assert!(matches!(err, SatError::FaultSpec { .. }), "{bad}: {err}");
        }
    }

    #[test]
    fn display_round_trips() {
        let spec = "a.b#2=panicx1;c.d=delay:10@3;e.f=enospc;g.h=torn@1;i.j=eiox2";
        let plan: FaultPlan = spec.parse().expect("valid");
        let printed = plan.to_string();
        let back: FaultPlan = printed.parse().expect("round trip");
        assert_eq!(back.to_string(), printed);
        assert_eq!(back.points().len(), 5);
        assert_eq!(back.points()[1].skip, 3);
    }

    #[cfg(feature = "failpoints")]
    #[test]
    fn skip_and_limit_windows() {
        let point = Failpoint::new("s", None, FaultAction::Drop)
            .after(1)
            .times(2);
        assert_eq!(point.check("s", 0), None); // skipped
        assert_eq!(point.check("s", 3), Some(FaultAction::Drop));
        assert_eq!(point.check("s", 0), Some(FaultAction::Drop));
        assert_eq!(point.check("s", 0), None); // limit spent
        assert_eq!(point.check("other", 0), None);
    }
}
