//! Tseytin transformation of netlists into CNF (Table 1 of the paper).
//!
//! Every signal gets one variable; every gate contributes the clauses of its
//! kind. Multi-input symmetric gates use the standard n-ary encodings;
//! multi-input XOR/XNOR are decomposed into 2-input chains with auxiliary
//! variables (keeping all clauses ternary, as a 3-SAT-style instance).
//!
//! Cyclic netlists encode fine: the CNF then asserts the *existence of a
//! consistent assignment* on the loop, which is exactly the semantics
//! CycSAT reasons about.

use fulllock_netlist::{GateKind, Netlist};

use crate::{Cnf, Lit, Var};

/// Result of encoding a netlist: the formula plus the per-signal variable
/// map.
#[derive(Debug, Clone)]
pub struct CircuitCnf {
    /// The Tseytin formula.
    pub cnf: Cnf,
    /// Variable of each signal, indexed by
    /// [`SignalId::index`](fulllock_netlist::SignalId::index).
    pub signal_vars: Vec<Var>,
}

/// Encodes a netlist into a fresh CNF, allocating one variable per signal.
///
/// # Example
///
/// ```
/// use fulllock_netlist::{GateKind, Netlist};
/// use fulllock_sat::tseytin;
///
/// # fn main() -> Result<(), fulllock_netlist::NetlistError> {
/// let mut nl = Netlist::new("t");
/// let a = nl.add_input("a");
/// let b = nl.add_input("b");
/// let g = nl.add_gate(GateKind::Xor, &[a, b])?;
/// nl.mark_output(g);
/// let enc = tseytin::encode(&nl);
/// assert_eq!(enc.cnf.num_vars(), 3);
/// assert_eq!(enc.cnf.num_clauses(), 4); // Table 1: XOR has 4 clauses
/// # Ok(())
/// # }
/// ```
pub fn encode(netlist: &Netlist) -> CircuitCnf {
    let mut cnf = Cnf::new();
    let input_vars: Vec<Var> = netlist.inputs().iter().map(|_| cnf.new_var()).collect();
    let signal_vars = encode_into(netlist, &mut cnf, &input_vars);
    CircuitCnf { cnf, signal_vars }
}

/// Encodes a netlist into an existing CNF, using caller-supplied variables
/// for the primary inputs (in [`Netlist::inputs`] order) and allocating
/// fresh variables for every gate output. Returns the per-signal variable
/// map.
///
/// Sharing input variables between two encodings is how the SAT attack
/// builds its miter: both copies of the locked circuit receive the same `X`
/// variables but distinct key variables.
///
/// # Panics
///
/// Panics if `input_vars.len()` differs from the netlist's input count.
pub fn encode_into(netlist: &Netlist, cnf: &mut Cnf, input_vars: &[Var]) -> Vec<Var> {
    assert_eq!(
        input_vars.len(),
        netlist.inputs().len(),
        "one variable required per primary input"
    );
    let mut signal_vars: Vec<Var> = Vec::with_capacity(netlist.len());
    // Inputs may appear anywhere in the node table; pre-size then fill.
    for _ in 0..netlist.len() {
        signal_vars.push(Var::new(0));
    }
    for (slot, &sig) in netlist.inputs().iter().enumerate() {
        signal_vars[sig.index()] = input_vars[slot];
    }
    for g in netlist.gates() {
        signal_vars[g.index()] = cnf.new_var();
    }
    for g in netlist.gates() {
        let node = netlist.node(g);
        let kind = node.gate_kind().expect("gates() yields only gates");
        let out = signal_vars[g.index()];
        let ins: Vec<Var> = node
            .fanins()
            .iter()
            .map(|f| signal_vars[f.index()])
            .collect();
        encode_gate(cnf, kind, out, &ins);
    }
    signal_vars
}

/// Emits the Tseytin clauses of a single gate `out = kind(ins)`.
///
/// Exposed so the locking schemes can encode ad-hoc constraints (e.g.
/// CycSAT's structural conditions) with the same gate library.
pub fn encode_gate(cnf: &mut Cnf, kind: GateKind, out: Var, ins: &[Var]) {
    let o = Lit::positive(out);
    match kind {
        GateKind::Const0 => cnf.add_clause([!o]),
        GateKind::Const1 => cnf.add_clause([o]),
        GateKind::Buf => {
            let a = Lit::positive(ins[0]);
            cnf.add_clause([a, !o]);
            cnf.add_clause([!a, o]);
        }
        GateKind::Not => {
            let a = Lit::positive(ins[0]);
            cnf.add_clause([!a, !o]);
            cnf.add_clause([a, o]);
        }
        GateKind::And => {
            // (¬A1 ∨ … ∨ ¬An ∨ C) ∧ ∏ (Ai ∨ ¬C)
            let mut long: Vec<Lit> = ins.iter().map(|&v| Lit::negative(v)).collect();
            long.push(o);
            cnf.add_clause(long);
            for &v in ins {
                cnf.add_clause([Lit::positive(v), !o]);
            }
        }
        GateKind::Nand => {
            // (¬A1 ∨ … ∨ ¬An ∨ ¬C) ∧ ∏ (Ai ∨ C)
            let mut long: Vec<Lit> = ins.iter().map(|&v| Lit::negative(v)).collect();
            long.push(!o);
            cnf.add_clause(long);
            for &v in ins {
                cnf.add_clause([Lit::positive(v), o]);
            }
        }
        GateKind::Or => {
            // (A1 ∨ … ∨ An ∨ ¬C) ∧ ∏ (¬Ai ∨ C)
            let mut long: Vec<Lit> = ins.iter().map(|&v| Lit::positive(v)).collect();
            long.push(!o);
            cnf.add_clause(long);
            for &v in ins {
                cnf.add_clause([Lit::negative(v), o]);
            }
        }
        GateKind::Nor => {
            // (A1 ∨ … ∨ An ∨ C) ∧ ∏ (¬Ai ∨ ¬C)
            let mut long: Vec<Lit> = ins.iter().map(|&v| Lit::positive(v)).collect();
            long.push(o);
            cnf.add_clause(long);
            for &v in ins {
                cnf.add_clause([Lit::negative(v), !o]);
            }
        }
        GateKind::Xor | GateKind::Xnor => {
            // Chain 2-input XORs through auxiliary variables, then emit the
            // final (inverted) parity link.
            let mut acc = ins[0];
            for &next in &ins[1..ins.len() - 1] {
                let aux = cnf.new_var();
                encode_xor2(cnf, aux, acc, next, false);
                acc = aux;
            }
            let last = ins[ins.len() - 1];
            encode_xor2(cnf, out, acc, last, kind == GateKind::Xnor);
        }
        GateKind::Mux => {
            // Table 1: C = A·S̄ + B·S with fan-ins [S, A, B].
            let s = Lit::positive(ins[0]);
            let a = Lit::positive(ins[1]);
            let b = Lit::positive(ins[2]);
            cnf.add_clause([s, !a, o]);
            cnf.add_clause([s, a, !o]);
            cnf.add_clause([!s, !b, o]);
            cnf.add_clause([!s, b, !o]);
        }
    }
}

/// `out = a ⊕ b` (or `a ⊙ b` when `inverted`), 4 ternary clauses (Table 1).
fn encode_xor2(cnf: &mut Cnf, out: Var, a: Var, b: Var, inverted: bool) {
    encode_xor2_lits(
        cnf,
        Lit::with_polarity(out, !inverted),
        Lit::positive(a),
        Lit::positive(b),
    );
}

/// `out ↔ a ⊕ b` over literals: the 4 XOR clauses of Table 1, usable when
/// the operands are aliased (possibly negated) literals rather than
/// dedicated signal variables — the cone-reduced encoder's common case.
pub fn encode_xor2_lits(cnf: &mut Cnf, out: Lit, a: Lit, b: Lit) {
    cnf.add_clause([!a, !b, !out]);
    cnf.add_clause([a, b, !out]);
    cnf.add_clause([a, !b, out]);
    cnf.add_clause([!a, b, out]);
}

/// `out ↔ ∧ ins` over literals (n+1 clauses, like Table 1's AND row).
pub fn encode_and_lits(cnf: &mut Cnf, out: Lit, ins: &[Lit]) {
    let mut long: Vec<Lit> = ins.iter().map(|&l| !l).collect();
    long.push(out);
    cnf.add_clause(long);
    for &l in ins {
        cnf.add_clause([l, !out]);
    }
}

/// `out ↔ ∨ ins` over literals (n+1 clauses, like Table 1's OR row).
pub fn encode_or_lits(cnf: &mut Cnf, out: Lit, ins: &[Lit]) {
    let mut long: Vec<Lit> = ins.to_vec();
    long.push(!out);
    cnf.add_clause(long);
    for &l in ins {
        cnf.add_clause([!l, out]);
    }
}

/// `out ↔ (s ? b : a)` over literals: Table 1's MUX clauses with fan-in
/// convention `[S, A, B]`, `S = 1` selecting `B`.
pub fn encode_mux_lits(cnf: &mut Cnf, out: Lit, s: Lit, a: Lit, b: Lit) {
    cnf.add_clause([s, !a, out]);
    cnf.add_clause([s, a, !out]);
    cnf.add_clause([!s, !b, out]);
    cnf.add_clause([!s, b, !out]);
}

/// Redundant (but propagation-strengthening) MUX clauses: whichever input
/// is selected, if both data literals agree the output equals them —
/// `a ∧ b → out` and `¬a ∧ ¬b → ¬out`. Sound for any select value.
pub fn encode_mux_redundant(cnf: &mut Cnf, out: Lit, a: Lit, b: Lit) {
    cnf.add_clause([!a, !b, out]);
    cnf.add_clause([a, b, !out]);
}

/// One flattened MUX-tree path: when every literal of `path` holds, the
/// tree output equals `leaf` — `(¬path ∨ ¬leaf ∨ out) ∧ (¬path ∨ leaf ∨
/// ¬out)`. Emitting one such pair per leaf encodes a whole select tree
/// without auxiliary variables (Sweeney-style structural sharing).
pub fn encode_mux_path(cnf: &mut Cnf, out: Lit, path: &[Lit], leaf: Lit) {
    let negated = || path.iter().map(|&l| !l);
    let mut up: Vec<Lit> = negated().collect();
    up.push(!leaf);
    up.push(out);
    cnf.add_clause(up);
    let mut down: Vec<Lit> = negated().collect();
    down.push(leaf);
    down.push(!out);
    cnf.add_clause(down);
}

/// Linking clauses for a CLN switch-box swap pair: `o1 = (s1 ? b : a)` and
/// `o2 = (s2 ? a : b)` route the same two wires with swapped data order,
/// so whenever the selects differ the outputs pick the *same* source —
/// `s1 ⊕ s2 → o1 = o2` (4 quaternary clauses).
pub fn encode_swap_link(cnf: &mut Cnf, s1: Lit, o1: Lit, s2: Lit, o2: Lit) {
    cnf.add_clause([!s1, s2, !o1, o2]);
    cnf.add_clause([!s1, s2, o1, !o2]);
    cnf.add_clause([s1, !s2, !o1, o2]);
    cnf.add_clause([s1, !s2, o1, !o2]);
}

/// Emits clauses forcing `lit` to hold (a unit clause).
pub fn assert_lit(cnf: &mut Cnf, lit: Lit) {
    cnf.add_clause([lit]);
}

/// Emits clauses asserting `a ↔ b`.
pub fn assert_equal(cnf: &mut Cnf, a: Lit, b: Lit) {
    cnf.add_clause([!a, b]);
    cnf.add_clause([a, !b]);
}

#[cfg(test)]
mod tests {
    use super::*;
    use fulllock_netlist::Simulator;

    /// Exhaustively checks that the Tseytin CNF of a single gate has exactly
    /// the models of its truth table.
    fn check_gate(kind: GateKind, arity: usize) {
        let mut nl = Netlist::new("g");
        let ins: Vec<_> = (0..arity).map(|i| nl.add_input(format!("i{i}"))).collect();
        let g = nl.add_gate(kind, &ins).unwrap();
        nl.mark_output(g);
        let sim = Simulator::new(&nl).unwrap();
        let enc = encode(&nl);
        let n = enc.cnf.num_vars();
        for model in 0..1u64 << n {
            let assignment: Vec<bool> = (0..n).map(|i| model >> i & 1 == 1).collect();
            let in_bits: Vec<bool> = (0..arity)
                .map(|i| assignment[enc.signal_vars[ins[i].index()].index()])
                .collect();
            let out_bit = assignment[enc.signal_vars[g.index()].index()];
            let expect = sim.run(&in_bits).unwrap()[0] == out_bit;
            // Auxiliary XOR-chain variables must also be consistent for the
            // model to satisfy; for arity <= 2 there are none.
            if arity <= 2 || !matches!(kind, GateKind::Xor | GateKind::Xnor) {
                assert_eq!(
                    enc.cnf.is_satisfied_by(&assignment),
                    expect,
                    "kind {kind} model {model:b}"
                );
            } else if enc.cnf.is_satisfied_by(&assignment) {
                assert!(expect, "kind {kind} model {model:b} satisfies but is wrong");
            }
        }
    }

    #[test]
    fn every_gate_kind_is_encoded_correctly() {
        for kind in GateKind::all() {
            let arity = match kind {
                GateKind::Const0 | GateKind::Const1 => 0,
                GateKind::Buf | GateKind::Not => 1,
                GateKind::Mux => 3,
                _ => 2,
            };
            check_gate(kind, arity);
        }
    }

    #[test]
    fn wide_gates_are_encoded_correctly() {
        for kind in [
            GateKind::And,
            GateKind::Nand,
            GateKind::Or,
            GateKind::Nor,
            GateKind::Xor,
            GateKind::Xnor,
        ] {
            check_gate(kind, 3);
            check_gate(kind, 4);
        }
    }

    #[test]
    fn clause_counts_match_table_1() {
        let counts = [
            (GateKind::Buf, 1, 2),
            (GateKind::Not, 1, 2),
            (GateKind::And, 2, 3),
            (GateKind::Nand, 2, 3),
            (GateKind::Or, 2, 3),
            (GateKind::Nor, 2, 3),
            (GateKind::Xor, 2, 4),
            (GateKind::Xnor, 2, 4),
            (GateKind::Mux, 3, 4),
        ];
        for (kind, arity, clauses) in counts {
            let mut nl = Netlist::new("g");
            let ins: Vec<_> = (0..arity).map(|i| nl.add_input(format!("i{i}"))).collect();
            let g = nl.add_gate(kind, &ins).unwrap();
            nl.mark_output(g);
            let enc = encode(&nl);
            assert_eq!(enc.cnf.num_clauses(), clauses, "kind {kind}");
        }
    }

    #[test]
    fn clause_to_variable_ratios_match_paper() {
        // Paper §3.1: MUX ratio is 4/3, XOR ratio is... the paper says the
        // ratio is 1 for MUX (4 clauses / 4 variables) and 4/3 for XOR
        // (4 clauses / 3 variables).
        let mut nl = Netlist::new("m");
        let s = nl.add_input("s");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let m = nl.add_gate(GateKind::Mux, &[s, a, b]).unwrap();
        nl.mark_output(m);
        let enc = encode(&nl);
        assert!((enc.cnf.clause_to_variable_ratio() - 1.0).abs() < 1e-12);

        let mut nl = Netlist::new("x");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let x = nl.add_gate(GateKind::Xor, &[a, b]).unwrap();
        nl.mark_output(x);
        let enc = encode(&nl);
        assert!((enc.cnf.clause_to_variable_ratio() - 4.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn shared_input_vars() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let g = nl.add_gate(GateKind::Not, &[a]).unwrap();
        nl.mark_output(g);
        let mut cnf = Cnf::new();
        let shared = cnf.new_var();
        let vars_a = encode_into(&nl, &mut cnf, &[shared]);
        let vars_b = encode_into(&nl, &mut cnf, &[shared]);
        assert_eq!(vars_a[a.index()], vars_b[a.index()]);
        assert_ne!(vars_a[g.index()], vars_b[g.index()]);
    }

    #[test]
    fn whole_circuit_consistency() {
        // Encode c17 and check: for each input pattern, forcing the input
        // literals makes exactly the simulated output values satisfiable.
        let nl = fulllock_netlist::benchmarks::load("c17").unwrap();
        let sim = Simulator::new(&nl).unwrap();
        let enc = encode(&nl);
        for row in 0..32u32 {
            let bits: Vec<bool> = (0..5).map(|i| row >> i & 1 == 1).collect();
            let all = sim.run_all(&bits).unwrap();
            let assignment: Vec<bool> = {
                let mut a = vec![false; enc.cnf.num_vars()];
                for s in nl.signals() {
                    a[enc.signal_vars[s.index()].index()] = all[s.index()];
                }
                a
            };
            assert!(enc.cnf.is_satisfied_by(&assignment), "row {row}");
        }
    }
}
