//! CNF formulas, their statistics, and DIMACS I/O.

use std::fmt::Write as _;

use crate::{Lit, SatError, Var};

/// A CNF formula: a conjunction of clauses over densely-numbered variables.
///
/// The clause/variable ratio of a formula — central to the paper's
/// SAT-hardness argument (hard instances live at ratios ≈ 3–6, peaking near
/// 4.3) — is exposed via [`Cnf::clause_to_variable_ratio`].
///
/// # Example
///
/// ```
/// use fulllock_sat::{Cnf, Lit};
///
/// let mut cnf = Cnf::new();
/// let a = cnf.new_var();
/// let b = cnf.new_var();
/// cnf.add_clause([Lit::positive(a), Lit::positive(b)]);
/// cnf.add_clause([Lit::negative(a)]);
/// assert_eq!(cnf.num_vars(), 2);
/// assert_eq!(cnf.num_clauses(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Cnf {
    num_vars: usize,
    clauses: Vec<Vec<Lit>>,
}

impl Cnf {
    /// Creates an empty formula with no variables.
    pub fn new() -> Cnf {
        Cnf::default()
    }

    /// Allocates a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let v = Var::new(self.num_vars);
        self.num_vars += 1;
        v
    }

    /// Allocates `n` fresh variables.
    pub fn new_vars(&mut self, n: usize) -> Vec<Var> {
        (0..n).map(|_| self.new_var()).collect()
    }

    /// Ensures at least `n` variables exist (used when importing DIMACS).
    pub fn grow_to(&mut self, n: usize) {
        self.num_vars = self.num_vars.max(n);
    }

    /// Appends a clause. Duplicate literals are kept verbatim (callers that
    /// care can deduplicate); variables referenced beyond the current count
    /// grow the variable space.
    pub fn add_clause(&mut self, lits: impl IntoIterator<Item = Lit>) {
        let clause: Vec<Lit> = lits.into_iter().collect();
        for &l in &clause {
            self.grow_to(l.var().index() + 1);
        }
        self.clauses.push(clause);
    }

    /// Appends every clause of `other`, remapping nothing (both formulas
    /// must share a variable space; used to conjoin constraints built by the
    /// same encoder).
    pub fn extend_clauses(&mut self, other: &Cnf) {
        self.grow_to(other.num_vars);
        self.clauses.extend(other.clauses.iter().cloned());
    }

    /// Prepends `guard` to every clause from index `start` onward — the
    /// selector-literal transform. With `guard = ¬s`, the gated clauses are
    /// active only while `s` is asserted as an assumption, so a caller can
    /// later disable the whole group (and, on UNSAT, learn from the failed
    /// assumptions which group conflicted). Callers record
    /// [`Cnf::num_clauses`] before encoding a group, then gate the range.
    pub fn gate_clauses_from(&mut self, start: usize, guard: Lit) {
        self.grow_to(guard.var().index() + 1);
        for clause in self.clauses.iter_mut().skip(start) {
            clause.insert(0, guard);
        }
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Number of clauses.
    pub fn num_clauses(&self) -> usize {
        self.clauses.len()
    }

    /// The clauses, in insertion order.
    pub fn clauses(&self) -> &[Vec<Lit>] {
        &self.clauses
    }

    /// Clauses per variable — the paper's SAT-hardness metric (Fig 1,
    /// Fig 7). Returns 0.0 for a formula with no variables.
    pub fn clause_to_variable_ratio(&self) -> f64 {
        if self.num_vars == 0 {
            0.0
        } else {
            self.clauses.len() as f64 / self.num_vars as f64
        }
    }

    /// Total number of literal occurrences.
    pub fn num_literals(&self) -> usize {
        self.clauses.iter().map(Vec::len).sum()
    }

    /// Whether an assignment (one value per variable) satisfies every
    /// clause.
    ///
    /// # Panics
    ///
    /// Panics if `assignment.len() < self.num_vars()`.
    pub fn is_satisfied_by(&self, assignment: &[bool]) -> bool {
        assert!(
            assignment.len() >= self.num_vars,
            "assignment covers {} of {} variables",
            assignment.len(),
            self.num_vars
        );
        self.clauses
            .iter()
            .all(|c| c.iter().any(|l| l.apply(assignment[l.var().index()])))
    }

    /// Serializes to DIMACS `cnf` format.
    pub fn to_dimacs(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "p cnf {} {}", self.num_vars, self.clauses.len());
        for clause in &self.clauses {
            for lit in clause {
                let _ = write!(out, "{} ", lit.to_dimacs());
            }
            let _ = writeln!(out, "0");
        }
        out
    }

    /// Parses DIMACS `cnf` text. Comments (`c` lines) are ignored; the
    /// problem line is optional (sizes are inferred when missing).
    ///
    /// # Errors
    ///
    /// Returns [`SatError::Dimacs`] for malformed input.
    pub fn from_dimacs(text: &str) -> Result<Cnf, SatError> {
        let mut cnf = Cnf::new();
        let mut declared_vars = None;
        let mut current: Vec<Lit> = Vec::new();
        for (idx, line) in text.lines().enumerate() {
            let line_no = idx + 1;
            let line = line.trim();
            if line.is_empty() || line.starts_with('c') {
                continue;
            }
            if let Some(rest) = line.strip_prefix('p') {
                let mut parts = rest.split_whitespace();
                if parts.next() != Some("cnf") {
                    return Err(SatError::Dimacs {
                        line: line_no,
                        message: "expected `p cnf <vars> <clauses>`".into(),
                    });
                }
                let vars: usize =
                    parts
                        .next()
                        .and_then(|t| t.parse().ok())
                        .ok_or_else(|| SatError::Dimacs {
                            line: line_no,
                            message: "missing variable count".into(),
                        })?;
                if vars > i32::MAX as usize {
                    return Err(SatError::Dimacs {
                        line: line_no,
                        message: format!("variable count {vars} exceeds the literal space"),
                    });
                }
                declared_vars = Some(vars);
                continue;
            }
            for token in line.split_whitespace() {
                let value: i64 = token.parse().map_err(|_| SatError::Dimacs {
                    line: line_no,
                    message: format!("bad literal {token:?}"),
                })?;
                // A literal packs `2·var + sign` into a u32, so magnitudes
                // beyond i32::MAX are malformed input, not a request for
                // billions of variables.
                if value.unsigned_abs() > i32::MAX as u64 {
                    return Err(SatError::Dimacs {
                        line: line_no,
                        message: format!("literal {value} exceeds the literal space"),
                    });
                }
                if value == 0 {
                    cnf.add_clause(current.drain(..));
                } else {
                    current.push(Lit::from_dimacs(value));
                }
            }
        }
        if !current.is_empty() {
            cnf.add_clause(current.drain(..));
        }
        if let Some(v) = declared_vars {
            cnf.grow_to(v);
        }
        Ok(cnf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(i: i64) -> Lit {
        Lit::from_dimacs(i)
    }

    #[test]
    fn ratio() {
        let mut cnf = Cnf::new();
        cnf.new_vars(10);
        for _ in 0..43 {
            cnf.add_clause([lit(1), lit(-2), lit(3)]);
        }
        assert!((cnf.clause_to_variable_ratio() - 4.3).abs() < 1e-12);
    }

    #[test]
    fn empty_formula_ratio_is_zero() {
        assert_eq!(Cnf::new().clause_to_variable_ratio(), 0.0);
    }

    #[test]
    fn satisfaction_check() {
        let mut cnf = Cnf::new();
        cnf.add_clause([lit(1), lit(2)]);
        cnf.add_clause([lit(-1)]);
        assert!(cnf.is_satisfied_by(&[false, true]));
        assert!(!cnf.is_satisfied_by(&[true, true]));
        assert!(!cnf.is_satisfied_by(&[false, false]));
    }

    #[test]
    fn dimacs_round_trip() {
        let mut cnf = Cnf::new();
        cnf.add_clause([lit(1), lit(-3)]);
        cnf.add_clause([lit(2)]);
        let text = cnf.to_dimacs();
        let back = Cnf::from_dimacs(&text).unwrap();
        assert_eq!(back, cnf);
    }

    #[test]
    fn dimacs_parses_comments_and_header() {
        let text = "c a comment\np cnf 3 2\n1 -2 0\n3 0\n";
        let cnf = Cnf::from_dimacs(text).unwrap();
        assert_eq!(cnf.num_vars(), 3);
        assert_eq!(cnf.num_clauses(), 2);
    }

    #[test]
    fn dimacs_bad_token_errors() {
        assert!(matches!(
            Cnf::from_dimacs("1 banana 0\n"),
            Err(SatError::Dimacs { line: 1, .. })
        ));
    }

    #[test]
    fn dimacs_rejects_literals_beyond_the_u32_variable_space() {
        // Each of these used to panic inside `Var::new` instead of
        // returning the typed parse error.
        for text in [
            "2147483648 0\n",
            "-2147483648 0\n",
            &format!("{} 0\n", i64::MIN),
            "p cnf 2147483648 1\n1 0\n",
        ] {
            let err = Cnf::from_dimacs(text).expect_err("must be rejected");
            assert!(
                matches!(err, SatError::Dimacs { .. }),
                "unexpected error for {text:?}: {err}"
            );
        }
        // The boundary itself is representable (2·var + sign fits a u32).
        let cnf = Cnf::from_dimacs("2147483647 0\n").expect("i32::MAX is a valid literal");
        assert_eq!(cnf.num_vars(), i32::MAX as usize);
    }

    #[test]
    fn gating_prepends_the_guard_to_the_range() {
        let mut cnf = Cnf::new();
        cnf.add_clause([lit(1), lit(2)]);
        let start = cnf.num_clauses();
        cnf.add_clause([lit(-1)]);
        cnf.add_clause([lit(2), lit(3)]);
        cnf.gate_clauses_from(start, lit(-4));
        assert_eq!(cnf.clauses()[0], vec![lit(1), lit(2)]); // untouched
        assert_eq!(cnf.clauses()[1], vec![lit(-4), lit(-1)]);
        assert_eq!(cnf.clauses()[2], vec![lit(-4), lit(2), lit(3)]);
        assert_eq!(cnf.num_vars(), 4);
    }

    #[test]
    fn add_clause_grows_vars() {
        let mut cnf = Cnf::new();
        cnf.add_clause([lit(5)]);
        assert_eq!(cnf.num_vars(), 5);
    }

    #[test]
    fn literal_count() {
        let mut cnf = Cnf::new();
        cnf.add_clause([lit(1), lit(2)]);
        cnf.add_clause([lit(-1)]);
        assert_eq!(cnf.num_literals(), 3);
    }
}
