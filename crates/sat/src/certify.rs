//! Result certification: trust-but-verify for every solver answer.
//!
//! The paper's tables stand or fall on SAT-attack outcomes, so no answer
//! should leave the solving layer unchecked. This module supplies the
//! integrity ladder:
//!
//! * [`CertifyLevel::Model`] — every `Sat` answer is replayed against a
//!   mirror of the *original* clauses via [`Cnf::is_satisfied_by`] before
//!   the caller sees it. A model that fails the check becomes a typed
//!   [`CertifyError`] and the answer degrades to
//!   [`Unknown`](crate::cdcl::SolveResult::Unknown) — never a silent
//!   wrong key.
//! * [`CertifyLevel::Proof`] — additionally, the CDCL core logs every
//!   learnt and deleted clause as a DRAT trace ([`DratTrace`]) and the
//!   built-in forward checker ([`check_unsat_proof`]) validates
//!   assumption-free `Unsat` answers by reverse unit propagation.
//!
//! The [`CertifyingBackend`] wrapper applies the chosen level to any
//! [`SolveBackend`] and is what
//! [`BackendSpec::create_certified`](crate::backend::BackendSpec::create_certified)
//! returns.
//!
//! # Example
//!
//! ```
//! use fulllock_sat::backend::BackendSpec;
//! use fulllock_sat::cdcl::SolveResult;
//! use fulllock_sat::certify::CertifyLevel;
//! use fulllock_sat::Lit;
//!
//! let mut backend = BackendSpec::Single.create_certified(CertifyLevel::Model);
//! let a = Lit::from_dimacs(1);
//! backend.add_clause(&[a]);
//! assert_eq!(backend.solve(&[]), SolveResult::Sat);
//! assert!(backend.certify_failure().is_none());
//! ```

use std::fmt;
use std::io::Write as _;
use std::path::Path;
use std::str::FromStr;

use crate::backend::SolveBackend;
use crate::cdcl::{SolveLimits, SolveResult, SolverStats};
use crate::{Cnf, Lit, Var};

/// Environment variable that selects the default certification level.
pub const CERTIFY_ENV: &str = "FULLLOCK_CERTIFY";

/// How much verification every solver answer receives before it is
/// believed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CertifyLevel {
    /// Trust the solver blindly (the historical behaviour).
    #[default]
    Off,
    /// Check every `Sat` model against the original clauses.
    Model,
    /// `Model`, plus DRAT proof logging and forward-checking of
    /// assumption-free `Unsat` answers (sequential solver only — a
    /// portfolio degrades to `Model`-strength checking).
    Proof,
}

impl CertifyLevel {
    /// The canonical lowercase name (`off` / `model` / `proof`).
    pub fn as_str(self) -> &'static str {
        match self {
            CertifyLevel::Off => "off",
            CertifyLevel::Model => "model",
            CertifyLevel::Proof => "proof",
        }
    }

    /// Reads [`CERTIFY_ENV`]; unset or unrecognized values mean
    /// [`CertifyLevel::Off`] (a typo must never crash a campaign job).
    pub fn from_env() -> CertifyLevel {
        match std::env::var(CERTIFY_ENV) {
            Ok(value) => value.parse().unwrap_or(CertifyLevel::Off),
            Err(_) => CertifyLevel::Off,
        }
    }
}

impl fmt::Display for CertifyLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl FromStr for CertifyLevel {
    type Err = String;

    fn from_str(s: &str) -> Result<CertifyLevel, String> {
        match s.trim().to_ascii_lowercase().as_str() {
            "off" | "none" | "0" => Ok(CertifyLevel::Off),
            "model" | "1" => Ok(CertifyLevel::Model),
            "proof" | "2" => Ok(CertifyLevel::Proof),
            other => Err(format!(
                "unknown certify level {other:?} (expected off, model, or proof)"
            )),
        }
    }
}

/// A certification failure: the solver's answer did not survive
/// verification. Every variant is a *typed* refusal — callers must treat
/// the corresponding answer as `Unknown`, never as a result.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CertifyError {
    /// A `Sat` answer whose model falsifies at least one original clause.
    UnsatisfiedModel {
        /// Variable count of the checked formula.
        num_vars: usize,
        /// The first falsified clause.
        clause: Vec<Lit>,
    },
    /// A `Sat` answer whose model contradicts an assumption literal.
    UnsatisfiedAssumption {
        /// The violated assumption.
        assumption: Lit,
    },
    /// The DRAT trace failed forward checking at `step`.
    ProofRejected {
        /// Zero-based index into the trace's steps.
        step: usize,
        /// Why the step was refused.
        reason: String,
    },
    /// An `Unsat` answer whose trace never derives the empty clause, so
    /// nothing certifies the refutation.
    IncompleteProof,
    /// Two portfolio workers returned contradictory verdicts on the same
    /// query — at least one of them is wrong, so neither is believed.
    SolverDisagreement {
        /// Worker index that answered `Sat`.
        sat_worker: usize,
        /// Worker index that answered `Unsat`.
        unsat_worker: usize,
    },
}

impl fmt::Display for CertifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CertifyError::UnsatisfiedModel { num_vars, clause } => {
                write!(
                    f,
                    "model over {num_vars} vars falsifies clause [{}]",
                    clause
                        .iter()
                        .map(|l| l.to_dimacs().to_string())
                        .collect::<Vec<_>>()
                        .join(" ")
                )
            }
            CertifyError::UnsatisfiedAssumption { assumption } => {
                write!(f, "model contradicts assumption {}", assumption.to_dimacs())
            }
            CertifyError::ProofRejected { step, reason } => {
                write!(f, "DRAT proof rejected at step {step}: {reason}")
            }
            CertifyError::IncompleteProof => {
                write!(
                    f,
                    "UNSAT answer but the proof never derives the empty clause"
                )
            }
            CertifyError::SolverDisagreement {
                sat_worker,
                unsat_worker,
            } => {
                write!(
                    f,
                    "portfolio disagreement: worker {sat_worker} says SAT, \
                     worker {unsat_worker} says UNSAT"
                )
            }
        }
    }
}

impl std::error::Error for CertifyError {}

/// One step of a DRAT trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DratStep {
    /// An input (problem) clause — part of the CNF, added unchecked by the
    /// forward checker.
    Original(Vec<Lit>),
    /// A derived clause; must pass reverse-unit-propagation (RUP) against
    /// everything live before it. The empty clause certifies UNSAT.
    Add(Vec<Lit>),
    /// A clause removed from the database (DRAT `d` line).
    Delete(Vec<Lit>),
}

/// An in-memory DRAT trace: the input clauses followed by every clause the
/// solver learnt or deleted, in order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DratTrace {
    steps: Vec<DratStep>,
}

impl DratTrace {
    /// An empty trace.
    pub fn new() -> DratTrace {
        DratTrace::default()
    }

    /// Records an input clause.
    pub fn push_original(&mut self, lits: Vec<Lit>) {
        self.steps.push(DratStep::Original(lits));
    }

    /// Records a derived (learnt or simplified) clause.
    pub fn push_add(&mut self, lits: Vec<Lit>) {
        self.steps.push(DratStep::Add(lits));
    }

    /// Records a deletion.
    pub fn push_delete(&mut self, lits: Vec<Lit>) {
        self.steps.push(DratStep::Delete(lits));
    }

    /// The recorded steps, in order.
    pub fn steps(&self) -> &[DratStep] {
        &self.steps
    }

    /// Number of recorded steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// The derivation part in standard DRAT text (add and `d` lines;
    /// original clauses belong to the DIMACS file, not the proof).
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for step in &self.steps {
            let lits = match step {
                DratStep::Original(_) => continue,
                DratStep::Add(lits) => lits,
                DratStep::Delete(lits) => {
                    out.push_str("d ");
                    lits
                }
            };
            for l in lits {
                out.push_str(&l.to_dimacs().to_string());
                out.push(' ');
            }
            out.push_str("0\n");
        }
        out
    }

    /// Writes [`DratTrace::to_text`] to `path` (standard DRAT, so external
    /// checkers like `drat-trim` can re-validate against the DIMACS file).
    pub fn write_to(&self, path: &Path) -> std::io::Result<()> {
        let mut file = std::fs::File::create(path)?;
        file.write_all(self.to_text().as_bytes())?;
        file.sync_all()
    }
}

/// Assignment values for the forward checker, indexed by `Lit::code()`.
const CHK_UNDEF: u8 = 0;
const CHK_TRUE: u8 = 1;
const CHK_FALSE: u8 = 2;

/// Forward-checks a DRAT trace as an UNSAT refutation.
///
/// Every [`DratStep::Add`] must be a reverse-unit-propagation (RUP)
/// consequence of the clauses live before it: assuming all its literals
/// false and unit-propagating to fixpoint must yield a conflict. The trace
/// certifies UNSAT only if a verified empty-clause `Add` is reached;
/// otherwise [`CertifyError::IncompleteProof`].
pub fn check_unsat_proof(trace: &DratTrace) -> Result<(), CertifyError> {
    let mut checker = RupChecker::default();
    for (index, step) in trace.steps().iter().enumerate() {
        match step {
            DratStep::Original(lits) => checker.add_unchecked(lits),
            DratStep::Add(lits) => {
                if !checker.is_rup(lits) {
                    return Err(CertifyError::ProofRejected {
                        step: index,
                        reason: format!(
                            "clause [{}] is not a unit-propagation consequence",
                            dimacs_text(lits)
                        ),
                    });
                }
                if lits.is_empty() {
                    return Ok(());
                }
                checker.add_unchecked(lits);
            }
            DratStep::Delete(lits) => {
                if !checker.delete(lits) {
                    return Err(CertifyError::ProofRejected {
                        step: index,
                        reason: format!("deletion of unknown clause [{}]", dimacs_text(lits)),
                    });
                }
            }
        }
    }
    Err(CertifyError::IncompleteProof)
}

fn dimacs_text(lits: &[Lit]) -> String {
    lits.iter()
        .map(|l| l.to_dimacs().to_string())
        .collect::<Vec<_>>()
        .join(" ")
}

/// The naive forward checker's clause store: pass-based unit propagation
/// to fixpoint, no watches. Linear scans keep it obviously correct; proof
/// checking runs off the solving hot path.
#[derive(Debug, Default)]
struct RupChecker {
    clauses: Vec<Vec<Lit>>,
    alive: Vec<bool>,
    num_vars: usize,
}

impl RupChecker {
    fn add_unchecked(&mut self, lits: &[Lit]) {
        for l in lits {
            self.num_vars = self.num_vars.max(l.var().index() + 1);
        }
        self.clauses.push(lits.to_vec());
        self.alive.push(true);
    }

    /// Removes one live clause with exactly these literals (order-
    /// insensitive); `false` if none matches.
    fn delete(&mut self, lits: &[Lit]) -> bool {
        let mut key: Vec<Lit> = lits.to_vec();
        key.sort_unstable();
        for (i, clause) in self.clauses.iter().enumerate() {
            if !self.alive[i] || clause.len() != key.len() {
                continue;
            }
            let mut sorted = clause.clone();
            sorted.sort_unstable();
            if sorted == key {
                self.alive[i] = false;
                return true;
            }
        }
        false
    }

    /// Reverse unit propagation: assume every literal of `lits` false and
    /// propagate over the live clauses to fixpoint; RUP holds iff a
    /// conflict (falsified live clause) appears.
    fn is_rup(&self, lits: &[Lit]) -> bool {
        let mut assign = vec![CHK_UNDEF; 2 * self.num_vars];
        for &l in lits {
            if l.var().index() >= self.num_vars {
                // A literal over a variable no clause mentions can never
                // be propagated against; it cannot make the check fail.
                continue;
            }
            if assign[l.code()] == CHK_TRUE {
                // lits contains both l and ¬l: assuming both false is
                // already contradictory, the clause is a tautology.
                return true;
            }
            assign[l.code()] = CHK_FALSE;
            assign[(!l).code()] = CHK_TRUE;
        }
        loop {
            let mut changed = false;
            for (i, clause) in self.clauses.iter().enumerate() {
                if !self.alive[i] {
                    continue;
                }
                let mut unassigned: Option<Lit> = None;
                let mut satisfied = false;
                let mut open = 0usize;
                for &l in clause {
                    match assign.get(l.code()).copied().unwrap_or(CHK_UNDEF) {
                        CHK_TRUE => {
                            satisfied = true;
                            break;
                        }
                        CHK_FALSE => {}
                        _ => {
                            open += 1;
                            unassigned = Some(l);
                        }
                    }
                }
                if satisfied {
                    continue;
                }
                match (open, unassigned) {
                    (0, _) => return true, // conflict: clause fully falsified
                    (1, Some(unit)) => {
                        assign[unit.code()] = CHK_TRUE;
                        assign[(!unit).code()] = CHK_FALSE;
                        changed = true;
                    }
                    _ => {}
                }
            }
            if !changed {
                return false;
            }
        }
    }
}

/// A [`SolveBackend`] decorator that verifies answers at a
/// [`CertifyLevel`] before handing them to the caller.
///
/// * Keeps a mirror [`Cnf`] of every clause the caller added.
/// * On `Sat` (level ≥ `Model`): the model must satisfy the mirror and
///   every assumption, else the answer becomes `Unknown` and
///   [`CertifyingBackend::certify_failure`] reports why.
/// * On assumption-free `Unsat` (level `Proof`, sequential inner solver):
///   the DRAT trace is forward-checked; a rejected or incomplete proof
///   likewise degrades the answer to `Unknown`.
/// * A portfolio inner backend cannot log a single coherent proof, so
///   `Proof` degrades to model checking there; worker disagreement
///   surfaced by the portfolio is propagated as a certify failure.
pub struct CertifyingBackend {
    inner: Box<dyn SolveBackend>,
    level: CertifyLevel,
    /// Whether the inner backend actually records a DRAT trace.
    proof_active: bool,
    mirror: Cnf,
    failure: Option<CertifyError>,
    certified_models: u64,
}

impl fmt::Debug for CertifyingBackend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CertifyingBackend")
            .field("level", &self.level)
            .field("proof_active", &self.proof_active)
            .field("mirror_clauses", &self.mirror.clauses().len())
            .field("failure", &self.failure)
            .field("certified_models", &self.certified_models)
            .field("inner", &self.inner)
            .finish()
    }
}

impl CertifyingBackend {
    /// Wraps a freshly created backend. Call before adding any clause:
    /// proof logging can only be enabled on an empty solver.
    pub fn new(mut inner: Box<dyn SolveBackend>, level: CertifyLevel) -> CertifyingBackend {
        let proof_active = level == CertifyLevel::Proof && inner.enable_certify_proof();
        CertifyingBackend {
            inner,
            level,
            proof_active,
            mirror: Cnf::new(),
            failure: None,
            certified_models: 0,
        }
    }

    /// The level answers are verified at.
    pub fn level(&self) -> CertifyLevel {
        self.level
    }

    /// Whether the inner backend records a DRAT trace (true only for a
    /// sequential solver at [`CertifyLevel::Proof`]).
    pub fn proof_active(&self) -> bool {
        self.proof_active
    }

    fn check_sat(&mut self, assumptions: &[Lit]) -> Result<(), CertifyError> {
        let assignment: Vec<bool> = (0..self.mirror.num_vars())
            .map(|v| self.inner.model_value(Var::new(v)).unwrap_or(false))
            .collect();
        for &a in assumptions {
            if a.var().index() < assignment.len() && !a.apply(assignment[a.var().index()]) {
                return Err(CertifyError::UnsatisfiedAssumption { assumption: a });
            }
        }
        if !self.mirror.is_satisfied_by(&assignment) {
            let clause = self
                .mirror
                .clauses()
                .iter()
                .find(|c| !c.iter().any(|l| l.apply(assignment[l.var().index()])))
                .cloned()
                .unwrap_or_default();
            return Err(CertifyError::UnsatisfiedModel {
                num_vars: self.mirror.num_vars(),
                clause,
            });
        }
        Ok(())
    }
}

impl SolveBackend for CertifyingBackend {
    fn ensure_vars(&mut self, n: usize) {
        self.mirror.grow_to(n);
        self.inner.ensure_vars(n);
    }

    fn num_vars(&self) -> usize {
        self.inner.num_vars()
    }

    fn add_clause(&mut self, lits: &[Lit]) -> bool {
        self.mirror.add_clause(lits.to_vec());
        self.inner.add_clause(lits)
    }

    fn freeze_var(&mut self, var: Var) {
        self.inner.freeze_var(var);
    }

    fn solve_limited(&mut self, assumptions: &[Lit], limits: SolveLimits) -> SolveResult {
        let result = self.inner.solve_limited(assumptions, limits);
        if let Some(err) = self.inner.certify_failure() {
            // e.g. portfolio worker disagreement — already degraded to
            // Unknown by the inner backend; keep the typed reason.
            self.failure = Some(err);
            return SolveResult::Unknown;
        }
        if self.level == CertifyLevel::Off {
            return result;
        }
        match result {
            SolveResult::Sat => match self.check_sat(assumptions) {
                Ok(()) => {
                    self.certified_models += 1;
                    SolveResult::Sat
                }
                Err(err) => {
                    self.failure = Some(err);
                    SolveResult::Unknown
                }
            },
            SolveResult::Unsat if self.proof_active && assumptions.is_empty() => {
                let verdict = match self.inner.certify_proof() {
                    Some(trace) => check_unsat_proof(trace),
                    None => Err(CertifyError::IncompleteProof),
                };
                match verdict {
                    Ok(()) => SolveResult::Unsat,
                    Err(err) => {
                        self.failure = Some(err);
                        SolveResult::Unknown
                    }
                }
            }
            other => other,
        }
    }

    fn model_value(&self, var: Var) -> Option<bool> {
        self.inner.model_value(var)
    }

    fn final_assumption_core(&self) -> Vec<Lit> {
        self.inner.final_assumption_core()
    }

    fn stats(&self) -> SolverStats {
        let mut stats = self.inner.stats();
        stats.certified_models += self.certified_models;
        stats
    }

    fn num_threads(&self) -> usize {
        self.inner.num_threads()
    }

    fn worker_failures(&self) -> Vec<String> {
        self.inner.worker_failures()
    }

    fn certify_failure(&self) -> Option<CertifyError> {
        self.failure.clone()
    }

    fn certify_proof(&self) -> Option<&DratTrace> {
        self.inner.certify_proof()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::BackendSpec;
    use crate::cdcl::Solver;
    use crate::random_sat::{generate, RandomSatConfig};

    fn lit(d: i64) -> Lit {
        Lit::from_dimacs(d)
    }

    #[test]
    fn level_parses_and_round_trips() {
        for level in [CertifyLevel::Off, CertifyLevel::Model, CertifyLevel::Proof] {
            assert_eq!(level.as_str().parse::<CertifyLevel>(), Ok(level));
            assert_eq!(level.to_string(), level.as_str());
        }
        assert_eq!("MODEL".parse(), Ok(CertifyLevel::Model));
        assert_eq!(" proof ".parse(), Ok(CertifyLevel::Proof));
        assert!("paranoid".parse::<CertifyLevel>().is_err());
        assert_eq!(CertifyLevel::default(), CertifyLevel::Off);
    }

    #[test]
    fn rup_checker_accepts_a_tiny_refutation() {
        // {a∨b, a∨¬b, ¬a∨b, ¬a∨¬b} is UNSAT; the resolution-style DRAT
        // derivation a, then ⊥ is RUP at each step.
        let mut trace = DratTrace::new();
        trace.push_original(vec![lit(1), lit(2)]);
        trace.push_original(vec![lit(1), lit(-2)]);
        trace.push_original(vec![lit(-1), lit(2)]);
        trace.push_original(vec![lit(-1), lit(-2)]);
        trace.push_add(vec![lit(1)]);
        trace.push_add(vec![]);
        assert_eq!(check_unsat_proof(&trace), Ok(()));
    }

    #[test]
    fn rup_checker_rejects_a_non_consequence() {
        let mut trace = DratTrace::new();
        trace.push_original(vec![lit(1), lit(2)]);
        trace.push_add(vec![lit(1)]); // not RUP: ¬1 does not conflict
        trace.push_add(vec![]);
        match check_unsat_proof(&trace) {
            Err(CertifyError::ProofRejected { step: 1, .. }) => {}
            other => panic!("expected rejection at step 1, got {other:?}"),
        }
    }

    #[test]
    fn rup_checker_flags_incomplete_proofs_and_bad_deletions() {
        let mut trace = DratTrace::new();
        trace.push_original(vec![lit(1)]);
        trace.push_original(vec![lit(-1)]);
        assert_eq!(
            check_unsat_proof(&trace),
            Err(CertifyError::IncompleteProof)
        );

        trace.push_delete(vec![lit(7)]);
        match check_unsat_proof(&trace) {
            Err(CertifyError::ProofRejected { step: 2, .. }) => {}
            other => panic!("expected deletion rejection, got {other:?}"),
        }
    }

    #[test]
    fn drat_text_skips_originals_and_marks_deletions() {
        let mut trace = DratTrace::new();
        trace.push_original(vec![lit(1), lit(2)]);
        trace.push_add(vec![lit(-1)]);
        trace.push_delete(vec![lit(1), lit(2)]);
        trace.push_add(vec![]);
        assert_eq!(trace.to_text(), "-1 0\nd 1 2 0\n0\n");
    }

    #[test]
    fn solver_proof_certifies_a_real_unsat_instance() {
        // Over-constrained random 3-SAT: almost surely UNSAT and small
        // enough that the naive checker replays the trace instantly.
        let cnf = generate(RandomSatConfig::from_ratio(18, 8.0, 3, 11)).unwrap();
        let mut solver = Solver::new();
        assert!(solver.enable_proof());
        solver.ensure_vars(cnf.num_vars());
        for clause in cnf.clauses() {
            solver.add_clause(clause.iter().copied());
        }
        assert_eq!(solver.solve(&[]), SolveResult::Unsat);
        let trace = solver.proof().expect("proof was enabled");
        assert!(!trace.is_empty());
        assert_eq!(check_unsat_proof(trace), Ok(()));
    }

    #[test]
    fn certifying_backend_passes_clean_answers_at_each_level() {
        for level in [CertifyLevel::Model, CertifyLevel::Proof] {
            let sat = generate(RandomSatConfig::from_ratio(30, 3.0, 3, 5)).unwrap();
            let mut backend = BackendSpec::Single.create_certified(level);
            backend.ensure_vars(sat.num_vars());
            for clause in sat.clauses() {
                backend.add_clause(clause);
            }
            assert_eq!(backend.solve(&[]), SolveResult::Sat, "{level}");
            assert!(backend.certify_failure().is_none(), "{level}");
            assert!(backend.stats().certified_models > 0, "{level}");

            let unsat = generate(RandomSatConfig::from_ratio(18, 8.0, 3, 11)).unwrap();
            let mut backend = BackendSpec::Single.create_certified(level);
            backend.ensure_vars(unsat.num_vars());
            for clause in unsat.clauses() {
                backend.add_clause(clause);
            }
            assert_eq!(backend.solve(&[]), SolveResult::Unsat, "{level}");
            assert!(backend.certify_failure().is_none(), "{level}");
        }
    }

    #[test]
    fn certifying_backend_respects_assumptions() {
        let mut backend = BackendSpec::Single.create_certified(CertifyLevel::Model);
        backend.ensure_vars(2);
        backend.add_clause(&[lit(1), lit(2)]);
        assert_eq!(backend.solve(&[lit(-1)]), SolveResult::Sat);
        assert_eq!(backend.model_value(Var::new(0)), Some(false));
        assert!(backend.certify_failure().is_none());
        // UNSAT under assumptions carries no empty clause in the trace;
        // proof level must not reject it.
        let mut backend = BackendSpec::Single.create_certified(CertifyLevel::Proof);
        backend.ensure_vars(1);
        backend.add_clause(&[lit(1)]);
        assert_eq!(backend.solve(&[lit(-1)]), SolveResult::Unsat);
        assert!(backend.certify_failure().is_none());
    }

    /// A backend that lies: claims `Sat` with an all-false model that
    /// cannot satisfy a positive unit clause.
    #[derive(Debug)]
    struct LyingBackend {
        vars: usize,
    }

    impl SolveBackend for LyingBackend {
        fn ensure_vars(&mut self, n: usize) {
            self.vars = self.vars.max(n);
        }
        fn num_vars(&self) -> usize {
            self.vars
        }
        fn add_clause(&mut self, _lits: &[Lit]) -> bool {
            true
        }
        fn solve_limited(&mut self, _a: &[Lit], _l: SolveLimits) -> SolveResult {
            SolveResult::Sat
        }
        fn model_value(&self, _var: Var) -> Option<bool> {
            Some(false)
        }
        fn stats(&self) -> SolverStats {
            SolverStats::default()
        }
    }

    #[test]
    fn a_lying_sat_answer_is_caught_and_degraded_to_unknown() {
        let mut backend =
            CertifyingBackend::new(Box::new(LyingBackend { vars: 0 }), CertifyLevel::Model);
        backend.ensure_vars(1);
        backend.add_clause(&[lit(1)]);
        assert_eq!(backend.solve(&[]), SolveResult::Unknown);
        match backend.certify_failure() {
            Some(CertifyError::UnsatisfiedModel { clause, .. }) => {
                assert_eq!(clause, vec![lit(1)]);
            }
            other => panic!("expected UnsatisfiedModel, got {other:?}"),
        }
        // A contradicted assumption is also caught.
        let mut backend =
            CertifyingBackend::new(Box::new(LyingBackend { vars: 0 }), CertifyLevel::Model);
        backend.ensure_vars(1);
        backend.add_clause(&[lit(1), lit(-1)]);
        assert_eq!(backend.solve(&[lit(1)]), SolveResult::Unknown);
        assert!(matches!(
            backend.certify_failure(),
            Some(CertifyError::UnsatisfiedAssumption { .. })
        ));
    }

    #[test]
    fn certify_errors_display_useful_text() {
        let err = CertifyError::SolverDisagreement {
            sat_worker: 0,
            unsat_worker: 3,
        };
        let text = err.to_string();
        assert!(text.contains("worker 0"), "{text}");
        assert!(text.contains("worker 3"), "{text}");
        assert!(CertifyError::IncompleteProof
            .to_string()
            .contains("empty clause"));
    }
}
