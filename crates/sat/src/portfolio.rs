//! A racing portfolio of diversified CDCL solvers under one shared budget.
//!
//! Hard locked-miter instances have heavy-tailed runtime distributions:
//! the same formula that takes one solver configuration minutes may fall
//! in seconds to another decay rate, restart schedule, or initial polarity
//! assignment. A [`PortfolioSolver`] exploits that by running N diversified
//! [`Solver`] instances on `std::thread` workers:
//!
//! * **first finisher wins** — the first worker to reach SAT/UNSAT raises
//!   a shared cancel flag ([`Budget`]) that every other worker polls
//!   inside its CDCL search loop and stops on;
//! * **glue-clause exchange** — workers periodically publish their learnt
//!   units and glue (LBD ≤ 2) clauses to a lock-free-ish [`ExchangePool`]
//!   (per-producer slots, `try_lock` on the consumer side — a contended
//!   slot is simply skipped, never waited on) and import what the others
//!   found;
//! * **hard budgets** — one [`SolveLimits`] governs the whole race: the
//!   wall-clock deadline and learnt-arena memory cap apply per worker, the
//!   conflict cap applies to the *sum* of conflicts across workers, and
//!   budget exhaustion degrades gracefully to [`SolveResult::Unknown`]
//!   with per-worker partial statistics intact.
//!
//! The portfolio is incremental like the underlying solver: clauses can be
//! added between `solve` calls, and every worker sees them.
//!
//! # Example
//!
//! ```
//! use fulllock_sat::cdcl::SolveResult;
//! use fulllock_sat::portfolio::{PortfolioConfig, PortfolioSolver};
//! use fulllock_sat::random_sat::{generate, RandomSatConfig};
//!
//! # fn main() -> Result<(), fulllock_sat::SatError> {
//! let cnf = generate(RandomSatConfig::from_ratio(60, 4.0, 3, 7))?;
//! let mut portfolio = PortfolioSolver::from_cnf(&cnf, PortfolioConfig::default());
//! if portfolio.solve(&[]) == SolveResult::Sat {
//!     assert!(cnf.is_satisfied_by(portfolio.model()));
//! }
//! # Ok(())
//! # }
//! ```

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::cdcl::{SolveLimits, SolveResult, Solver, SolverConfig, SolverStats};
use crate::{Cnf, Lit, Var};

/// Configuration of a [`PortfolioSolver`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PortfolioConfig {
    /// Number of racing workers (clamped to at least 1). Worker 0 always
    /// runs the default [`SolverConfig`], so a 1-thread portfolio behaves
    /// exactly like the sequential solver.
    pub threads: usize,
    /// Conflicts each worker searches between budget checks and clause
    /// exchanges.
    pub chunk_conflicts: u64,
    /// Exchange learnt units and glue clauses between workers.
    pub exchange_glue: bool,
    /// Seed for the diversified worker configurations.
    pub seed: u64,
}

impl Default for PortfolioConfig {
    fn default() -> Self {
        PortfolioConfig {
            threads: 4,
            chunk_conflicts: 2000,
            exchange_glue: true,
            seed: 0,
        }
    }
}

impl PortfolioConfig {
    /// A portfolio with `threads` workers and defaults otherwise.
    pub fn with_threads(threads: usize) -> PortfolioConfig {
        PortfolioConfig {
            threads,
            ..PortfolioConfig::default()
        }
    }
}

/// The shared budget of one portfolio race: an atomic cancel flag, a
/// global (summed across workers) conflict counter, plus the wall-clock
/// deadline and per-worker learnt-memory cap taken from the caller's
/// [`SolveLimits`].
#[derive(Debug)]
pub struct Budget {
    deadline: Option<Instant>,
    max_conflicts: Option<u64>,
    max_learnt_bytes: Option<usize>,
    cancel: Arc<AtomicBool>,
    conflicts: AtomicU64,
}

impl Budget {
    /// Derives a race budget from one caller-facing limit set. If the
    /// limits already carry an interrupt flag it is reused, so an external
    /// controller can cancel the whole race.
    pub fn from_limits(limits: &SolveLimits) -> Budget {
        Budget {
            deadline: limits.deadline(),
            max_conflicts: limits.max_conflicts(),
            max_learnt_bytes: limits.max_learnt_bytes(),
            cancel: limits
                .interrupt_flag()
                .cloned()
                .unwrap_or_else(|| Arc::new(AtomicBool::new(false))),
            conflicts: AtomicU64::new(0),
        }
    }

    /// Raises the cancel flag: every worker stops at its next poll.
    pub fn cancel_now(&self) {
        self.cancel.store(true, Ordering::Relaxed);
    }

    /// Whether the race has been cancelled (first finisher or external
    /// interrupt).
    pub fn cancelled(&self) -> bool {
        self.cancel.load(Ordering::Relaxed)
    }

    /// Adds a worker's chunk of conflicts to the global counter and
    /// returns the new total.
    pub fn charge_conflicts(&self, n: u64) -> u64 {
        self.conflicts.fetch_add(n, Ordering::Relaxed) + n
    }

    /// Total conflicts charged so far across all workers.
    pub fn conflicts(&self) -> u64 {
        self.conflicts.load(Ordering::Relaxed)
    }

    /// Whether the deadline has passed or the summed conflict cap is
    /// spent.
    pub fn exhausted(&self) -> bool {
        if self.deadline.is_some_and(|d| Instant::now() >= d) {
            return true;
        }
        self.max_conflicts
            .is_some_and(|max| self.conflicts() >= max)
    }

    /// The per-chunk limit set a worker hands to `Solver::solve_limited`,
    /// clamped so no single chunk can overrun the summed conflict cap.
    fn chunk_limits(&self, chunk_conflicts: u64) -> SolveLimits {
        let chunk = match self.max_conflicts {
            Some(max) => chunk_conflicts.min(max.saturating_sub(self.conflicts())),
            None => chunk_conflicts,
        };
        let mut builder = SolveLimits::builder()
            .max_conflicts(chunk)
            .interrupt(self.cancel.clone());
        if let Some(d) = self.deadline {
            builder = builder.deadline(d);
        }
        if let Some(b) = self.max_learnt_bytes {
            builder = builder.max_learnt_bytes(b);
        }
        builder.build()
    }
}

/// The glue-clause exchange buffer: one append-only slot per producer.
///
/// Writers lock only their own slot (uncontended unless a reader is
/// scanning it at that instant); readers `try_lock` the other slots and
/// skip — never block on — any slot that is busy, remembering a cursor per
/// producer so each clause is imported at most once.
#[derive(Debug)]
pub struct ExchangePool {
    slots: Vec<Mutex<Vec<Arc<Vec<Lit>>>>>,
}

impl ExchangePool {
    /// An empty pool with one slot per worker.
    pub fn new(workers: usize) -> ExchangePool {
        ExchangePool {
            slots: (0..workers).map(|_| Mutex::new(Vec::new())).collect(),
        }
    }

    /// Publishes a batch of clauses from worker `from`.
    pub fn publish(&self, from: usize, clauses: Vec<Vec<Lit>>) {
        if clauses.is_empty() {
            return;
        }
        if let Ok(mut slot) = self.slots[from].lock() {
            slot.extend(clauses.into_iter().map(Arc::new));
        }
    }

    /// Collects clauses worker `reader` has not seen yet. `cursors` is the
    /// reader's per-producer progress (length = number of workers). Slots
    /// currently locked by their producer are skipped and retried at the
    /// next exchange.
    pub fn collect(&self, reader: usize, cursors: &mut [usize]) -> Vec<Arc<Vec<Lit>>> {
        let mut fresh = Vec::new();
        for (producer, slot) in self.slots.iter().enumerate() {
            if producer == reader {
                continue;
            }
            if let Ok(slot) = slot.try_lock() {
                if cursors[producer] < slot.len() {
                    fresh.extend(slot[cursors[producer]..].iter().cloned());
                    cursors[producer] = slot.len();
                }
            }
        }
        fresh
    }
}

/// N diversified CDCL solvers racing on threads; see the [module
/// docs](self).
#[derive(Debug)]
pub struct PortfolioSolver {
    workers: Vec<Solver>,
    config: PortfolioConfig,
    model: Vec<bool>,
    winner: Option<usize>,
}

impl PortfolioSolver {
    /// Creates an empty portfolio.
    pub fn new(config: PortfolioConfig) -> PortfolioSolver {
        let threads = config.threads.max(1);
        let workers = (0..threads)
            .map(|i| {
                let mut cfg = SolverConfig::diversified(i, config.seed);
                cfg.share_glue = config.exchange_glue && threads > 1;
                Solver::with_config(cfg)
            })
            .collect();
        PortfolioSolver {
            workers,
            config,
            model: Vec::new(),
            winner: None,
        }
    }

    /// Builds a portfolio pre-loaded with a formula.
    pub fn from_cnf(cnf: &Cnf, config: PortfolioConfig) -> PortfolioSolver {
        let mut portfolio = PortfolioSolver::new(config);
        portfolio.ensure_vars(cnf.num_vars());
        for clause in cnf.clauses() {
            portfolio.add_clause(clause.iter().copied());
        }
        portfolio
    }

    /// The portfolio's configuration.
    pub fn config(&self) -> &PortfolioConfig {
        &self.config
    }

    /// Number of racing workers.
    pub fn num_workers(&self) -> usize {
        self.workers.len()
    }

    /// Ensures at least `n` variables exist in every worker.
    pub fn ensure_vars(&mut self, n: usize) {
        for worker in &mut self.workers {
            worker.ensure_vars(n);
        }
    }

    /// Number of variables (identical across workers).
    pub fn num_vars(&self) -> usize {
        self.workers[0].num_vars()
    }

    /// Adds a clause to every worker. Returns `false` if the formula is
    /// now trivially unsatisfiable.
    pub fn add_clause(&mut self, lits: impl IntoIterator<Item = Lit>) -> bool {
        let clause: Vec<Lit> = lits.into_iter().collect();
        let mut ok = true;
        for worker in &mut self.workers {
            ok &= worker.add_clause(clause.iter().copied());
        }
        ok
    }

    /// Races the workers with no resource limits (first finisher still
    /// cancels the rest).
    pub fn solve(&mut self, assumptions: &[Lit]) -> SolveResult {
        self.solve_limited(assumptions, SolveLimits::default())
    }

    /// Races the workers under a shared budget. The deadline and
    /// learnt-memory cap apply to each worker; the conflict cap applies to
    /// the sum of conflicts across workers. Returns
    /// [`SolveResult::Unknown`] with partial per-worker statistics when
    /// the budget is exhausted first.
    pub fn solve_limited(&mut self, assumptions: &[Lit], limits: SolveLimits) -> SolveResult {
        self.winner = None;
        let budget = Budget::from_limits(&limits);
        let n = self.workers.len();
        let pool = ExchangePool::new(n);
        let chunk = self.config.chunk_conflicts.max(1);
        let exchange = self.config.exchange_glue && n > 1;
        let verdict: Mutex<Option<(usize, SolveResult)>> = Mutex::new(None);

        let budget_ref = &budget;
        let pool_ref = &pool;
        let verdict_ref = &verdict;
        std::thread::scope(|scope| {
            for (index, worker) in self.workers.iter_mut().enumerate() {
                scope.spawn(move || {
                    let mut cursors = vec![0usize; n];
                    loop {
                        if budget_ref.cancelled() || budget_ref.exhausted() {
                            return;
                        }
                        let before = worker.stats().conflicts;
                        let result =
                            worker.solve_limited(assumptions, budget_ref.chunk_limits(chunk));
                        budget_ref.charge_conflicts(worker.stats().conflicts - before);
                        match result {
                            SolveResult::Unknown => {
                                // Memory-capped out (still over the cap right
                                // after a forced reduction): this worker
                                // cannot continue, but the others may.
                                if budget_ref
                                    .max_learnt_bytes
                                    .is_some_and(|cap| worker.learnt_arena_bytes() > cap)
                                {
                                    return;
                                }
                                if exchange {
                                    pool_ref.publish(index, worker.take_shared_clauses());
                                    for clause in pool_ref.collect(index, &mut cursors) {
                                        worker.add_clause(clause.iter().copied());
                                    }
                                }
                            }
                            SolveResult::Sat | SolveResult::Unsat => {
                                let mut slot =
                                    verdict_ref.lock().expect("verdict mutex never poisoned");
                                if slot.is_none() {
                                    *slot = Some((index, result));
                                }
                                budget_ref.cancel_now();
                                return;
                            }
                        }
                    }
                });
            }
        });

        match verdict.into_inner().expect("verdict mutex never poisoned") {
            Some((index, result)) => {
                self.winner = Some(index);
                if result == SolveResult::Sat {
                    self.model = self.workers[index].model().to_vec();
                }
                result
            }
            None => SolveResult::Unknown,
        }
    }

    /// Index of the worker that decided the last solve (`None` after a
    /// budget exhaustion).
    pub fn winner(&self) -> Option<usize> {
        self.winner
    }

    /// The last model's value for a variable (only meaningful right after
    /// a [`SolveResult::Sat`]).
    pub fn model_value(&self, var: Var) -> Option<bool> {
        self.model.get(var.index()).copied()
    }

    /// The last model as a dense vector (empty before the first SAT).
    pub fn model(&self) -> &[bool] {
        &self.model
    }

    /// Lifetime statistics [`merge`](SolverStats::merge)d across workers.
    pub fn stats(&self) -> SolverStats {
        let mut total = SolverStats::default();
        for worker in &self.workers {
            total.merge(worker.stats());
        }
        total
    }

    /// Per-worker lifetime statistics, in worker order.
    pub fn worker_stats(&self) -> Vec<SolverStats> {
        self.workers.iter().map(|w| *w.stats()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random_sat::{self, RandomSatConfig};
    use std::time::Duration;

    fn phase_transition(seed: u64) -> Cnf {
        random_sat::generate(RandomSatConfig::from_ratio(40, 4.27, 3, seed)).unwrap()
    }

    #[test]
    fn one_thread_portfolio_matches_sequential_verdicts() {
        for seed in 0..15 {
            let cnf = phase_transition(seed);
            let mut sequential = Solver::from_cnf(&cnf);
            let mut portfolio = PortfolioSolver::from_cnf(
                &cnf,
                PortfolioConfig {
                    threads: 1,
                    ..PortfolioConfig::default()
                },
            );
            let expected = sequential.solve(&[]);
            let got = portfolio.solve(&[]);
            assert_eq!(got, expected, "seed {seed}");
            if got == SolveResult::Sat {
                assert!(cnf.is_satisfied_by(portfolio.model()), "seed {seed}");
            }
            assert_eq!(portfolio.winner(), Some(0));
        }
    }

    #[test]
    fn four_thread_portfolio_agrees_with_sequential() {
        for seed in 0..8 {
            let cnf = phase_transition(100 + seed);
            let mut sequential = Solver::from_cnf(&cnf);
            let mut portfolio = PortfolioSolver::from_cnf(&cnf, PortfolioConfig::default());
            let expected = sequential.solve(&[]);
            let got = portfolio.solve(&[]);
            assert_eq!(got, expected, "seed {seed}");
            if got == SolveResult::Sat {
                assert!(cnf.is_satisfied_by(portfolio.model()), "seed {seed}");
            }
            assert!(portfolio.winner().is_some());
        }
    }

    #[test]
    fn portfolio_is_incremental_with_assumptions() {
        let mut portfolio = PortfolioSolver::new(PortfolioConfig::with_threads(2));
        portfolio.ensure_vars(2);
        let a = Lit::from_dimacs(1);
        let b = Lit::from_dimacs(2);
        assert!(portfolio.add_clause([a, b]));
        assert_eq!(portfolio.solve(&[!a]), SolveResult::Sat);
        assert_eq!(portfolio.model_value(b.var()), Some(true));
        assert_eq!(portfolio.solve(&[!a, !b]), SolveResult::Unsat);
        assert!(portfolio.add_clause([!b]));
        assert_eq!(portfolio.solve(&[!a]), SolveResult::Unsat);
        assert_eq!(portfolio.solve(&[]), SolveResult::Sat);
    }

    #[test]
    fn summed_conflict_cap_returns_unknown() {
        // A hard UNSAT-leaning instance with a 1-conflict budget cannot be
        // decided (pigeonhole would also do).
        let cnf = phase_transition(3);
        let mut portfolio = PortfolioSolver::from_cnf(&cnf, PortfolioConfig::default());
        let result = portfolio.solve_limited(&[], SolveLimits::builder().max_conflicts(1).build());
        assert_ne!(result, SolveResult::Unsat);
        let _ = result; // Sat is possible if a worker gets lucky pre-conflict
    }

    #[test]
    fn external_interrupt_cancels_the_race() {
        let cnf = phase_transition(5);
        let mut portfolio = PortfolioSolver::from_cnf(&cnf, PortfolioConfig::default());
        let flag = Arc::new(AtomicBool::new(true)); // already raised
        let result = portfolio.solve_limited(
            &[],
            SolveLimits::builder()
                .interrupt(flag)
                .timeout(Duration::from_secs(30))
                .build(),
        );
        assert_eq!(result, SolveResult::Unknown);
        assert_eq!(portfolio.winner(), None);
    }

    #[test]
    fn merged_stats_sum_worker_counters() {
        let cnf = phase_transition(8);
        let mut portfolio = PortfolioSolver::from_cnf(&cnf, PortfolioConfig::default());
        let _ = portfolio.solve(&[]);
        let merged = portfolio.stats();
        let per_worker = portfolio.worker_stats();
        assert_eq!(per_worker.len(), 4);
        assert_eq!(
            merged.conflicts,
            per_worker.iter().map(|s| s.conflicts).sum::<u64>()
        );
        assert_eq!(
            merged.propagations,
            per_worker.iter().map(|s| s.propagations).sum::<u64>()
        );
    }
}
