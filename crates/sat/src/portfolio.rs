//! A racing portfolio of diversified CDCL solvers under one shared budget.
//!
//! Hard locked-miter instances have heavy-tailed runtime distributions:
//! the same formula that takes one solver configuration minutes may fall
//! in seconds to another decay rate, restart schedule, or initial polarity
//! assignment. A [`PortfolioSolver`] exploits that by running N diversified
//! [`Solver`] instances on `std::thread` workers:
//!
//! * **first finisher wins** — the first worker to reach SAT/UNSAT raises
//!   a shared cancel flag ([`Budget`]) that every other worker polls
//!   inside its CDCL search loop and stops on;
//! * **glue-clause exchange** — workers periodically publish their learnt
//!   units and glue (LBD ≤ 2) clauses to a lock-free-ish [`ExchangePool`]
//!   (per-producer slots, `try_lock` on the consumer side — a contended
//!   slot is simply skipped, never waited on) and import what the others
//!   found;
//! * **hard budgets** — one [`SolveLimits`] governs the whole race: the
//!   wall-clock deadline and learnt-arena memory cap apply per worker, the
//!   conflict cap applies to the *sum* of conflicts across workers, and
//!   budget exhaustion degrades gracefully to [`SolveResult::Unknown`]
//!   with per-worker partial statistics intact.
//!
//! # Fault tolerance
//!
//! Attack runs are long-lived jobs, so a single worker fault must never
//! take the race down. Every worker body runs under
//! [`std::panic::catch_unwind`]: a panicking worker is recorded as a
//! [`WorkerFailure`] (and in [`SolverStats::worker_panics`]) while the
//! race continues on the survivors — degrading all the way to a single
//! worker, and to [`SolveResult::Unknown`] with partial statistics if
//! every worker dies. Dead workers are respawned from the portfolio's
//! master clause log at the next `solve` call, and the verdict mutex
//! recovers from poisoning via [`PoisonError::into_inner`], so a panic can
//! never wedge a verdict that was already reached. The fault sites named
//! in [`crate::faults::site`] allow chaos tests to inject
//! worker panics, lost or corrupted clause exchanges, and spurious budget
//! exhaustion (build with the `failpoints` feature).
//!
//! The portfolio is incremental like the underlying solver: clauses can be
//! added between `solve` calls, and every worker sees them.
//!
//! # Example
//!
//! ```
//! use fulllock_sat::cdcl::SolveResult;
//! use fulllock_sat::portfolio::{PortfolioConfig, PortfolioSolver};
//! use fulllock_sat::random_sat::{generate, RandomSatConfig};
//!
//! # fn main() -> Result<(), fulllock_sat::SatError> {
//! let cnf = generate(RandomSatConfig::from_ratio(60, 4.0, 3, 7))?;
//! let mut portfolio = PortfolioSolver::from_cnf(&cnf, PortfolioConfig::default());
//! if portfolio.solve(&[]) == SolveResult::Sat {
//!     assert!(cnf.is_satisfied_by(portfolio.model()));
//! }
//! # Ok(())
//! # }
//! ```

use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Instant;

use crate::cdcl::{SolveLimits, SolveResult, Solver, SolverConfig, SolverStats};
use crate::faults::{self, FaultAction};
use crate::{Cnf, Lit, Var};

/// Configuration of a [`PortfolioSolver`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PortfolioConfig {
    /// Number of racing workers (clamped to at least 1). Worker 0 always
    /// runs the default [`SolverConfig`], so a 1-thread portfolio behaves
    /// exactly like the sequential solver.
    pub threads: usize,
    /// Conflicts each worker searches between budget checks and clause
    /// exchanges.
    pub chunk_conflicts: u64,
    /// Exchange learnt units and glue clauses between workers.
    pub exchange_glue: bool,
    /// Seed for the diversified worker configurations.
    pub seed: u64,
}

impl Default for PortfolioConfig {
    fn default() -> Self {
        PortfolioConfig {
            threads: 4,
            chunk_conflicts: 2000,
            exchange_glue: true,
            seed: 0,
        }
    }
}

impl PortfolioConfig {
    /// A portfolio with `threads` workers and defaults otherwise.
    pub fn with_threads(threads: usize) -> PortfolioConfig {
        PortfolioConfig {
            threads,
            ..PortfolioConfig::default()
        }
    }
}

/// The shared budget of one portfolio race: an atomic cancel flag, a
/// global (summed across workers) conflict counter, plus the wall-clock
/// deadline and per-worker learnt-memory cap taken from the caller's
/// [`SolveLimits`].
#[derive(Debug)]
pub struct Budget {
    deadline: Option<Instant>,
    max_conflicts: Option<u64>,
    max_learnt_bytes: Option<usize>,
    cancel: Arc<AtomicBool>,
    conflicts: AtomicU64,
}

impl Budget {
    /// Derives a race budget from one caller-facing limit set. If the
    /// limits already carry an interrupt flag it is reused, so an external
    /// controller can cancel the whole race.
    pub fn from_limits(limits: &SolveLimits) -> Budget {
        Budget {
            deadline: limits.deadline(),
            max_conflicts: limits.max_conflicts(),
            max_learnt_bytes: limits.max_learnt_bytes(),
            cancel: limits
                .interrupt_flag()
                .cloned()
                .unwrap_or_else(|| Arc::new(AtomicBool::new(false))),
            conflicts: AtomicU64::new(0),
        }
    }

    /// Raises the cancel flag: every worker stops at its next poll.
    pub fn cancel_now(&self) {
        self.cancel.store(true, Ordering::Relaxed);
    }

    /// Whether the race has been cancelled (first finisher or external
    /// interrupt).
    pub fn cancelled(&self) -> bool {
        self.cancel.load(Ordering::Relaxed)
    }

    /// Adds a worker's chunk of conflicts to the global counter and
    /// returns the new total.
    pub fn charge_conflicts(&self, n: u64) -> u64 {
        self.conflicts.fetch_add(n, Ordering::Relaxed) + n
    }

    /// Total conflicts charged so far across all workers.
    pub fn conflicts(&self) -> u64 {
        self.conflicts.load(Ordering::Relaxed)
    }

    /// Whether the deadline has passed or the summed conflict cap is
    /// spent. The [`faults::site::BUDGET_EXHAUSTED`] failpoint can trip
    /// this spuriously in chaos builds.
    pub fn exhausted(&self) -> bool {
        if faults::evaluate(faults::site::BUDGET_EXHAUSTED, 0) == Some(FaultAction::Trigger) {
            return true;
        }
        if self.deadline.is_some_and(|d| Instant::now() >= d) {
            return true;
        }
        self.max_conflicts
            .is_some_and(|max| self.conflicts() >= max)
    }

    /// The per-chunk limit set a worker hands to `Solver::solve_limited`,
    /// clamped so no single chunk can overrun the summed conflict cap.
    fn chunk_limits(&self, chunk_conflicts: u64) -> SolveLimits {
        let chunk = match self.max_conflicts {
            Some(max) => chunk_conflicts.min(max.saturating_sub(self.conflicts())),
            None => chunk_conflicts,
        };
        let mut builder = SolveLimits::builder()
            .max_conflicts(chunk)
            .interrupt(self.cancel.clone());
        if let Some(d) = self.deadline {
            builder = builder.deadline(d);
        }
        if let Some(b) = self.max_learnt_bytes {
            builder = builder.max_learnt_bytes(b);
        }
        builder.build()
    }
}

/// The glue-clause exchange buffer: one append-only slot per producer.
///
/// Writers lock only their own slot (uncontended unless a reader is
/// scanning it at that instant); readers `try_lock` the other slots and
/// skip — never block on — any slot that is busy, remembering a cursor per
/// producer so each clause is imported at most once. A poisoned slot (a
/// reader or writer panicked mid-access) is recovered, not propagated:
/// the clause exchange is an optimization, never a correctness dependency.
#[derive(Debug)]
pub struct ExchangePool {
    slots: Vec<Mutex<Vec<Arc<Vec<Lit>>>>>,
}

impl ExchangePool {
    /// An empty pool with one slot per worker.
    pub fn new(workers: usize) -> ExchangePool {
        ExchangePool {
            slots: (0..workers).map(|_| Mutex::new(Vec::new())).collect(),
        }
    }

    /// Publishes a batch of clauses from worker `from`. Chaos builds can
    /// drop, delay, or corrupt the batch via
    /// [`faults::site::EXCHANGE_PUBLISH`]; importers must therefore treat
    /// every delivery as untrusted (the solver's `add_clause` root-level
    /// simplification drops duplicated literals and tautologies).
    pub fn publish(&self, from: usize, mut clauses: Vec<Vec<Lit>>) {
        if clauses.is_empty() {
            return;
        }
        match faults::evaluate(faults::site::EXCHANGE_PUBLISH, from) {
            Some(FaultAction::Drop) => return,
            Some(FaultAction::Corrupt) => corrupt_clauses(&mut clauses),
            Some(delay @ FaultAction::DelayMs(_)) => faults::apply_delay(delay),
            _ => {}
        }
        let mut slot = self.slots[from]
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        slot.extend(clauses.into_iter().map(Arc::new));
    }

    /// Collects clauses worker `reader` has not seen yet. `cursors` is the
    /// reader's per-producer progress (length = number of workers). Slots
    /// currently locked by their producer are skipped and retried at the
    /// next exchange.
    pub fn collect(&self, reader: usize, cursors: &mut [usize]) -> Vec<Arc<Vec<Lit>>> {
        let injected = faults::evaluate(faults::site::EXCHANGE_IMPORT, reader);
        if let Some(delay @ FaultAction::DelayMs(_)) = injected {
            faults::apply_delay(delay);
        }
        let mut fresh = Vec::new();
        for (producer, slot) in self.slots.iter().enumerate() {
            if producer == reader {
                continue;
            }
            if let Ok(slot) = slot.try_lock() {
                if cursors[producer] < slot.len() {
                    fresh.extend(slot[cursors[producer]..].iter().cloned());
                    cursors[producer] = slot.len();
                }
            }
        }
        if injected == Some(FaultAction::Drop) {
            // The delivery is lost for this reader (cursors already
            // advanced): dropped, not merely delayed.
            fresh.clear();
        }
        if injected == Some(FaultAction::Corrupt) {
            // Mangle the delivery on the import side (the producer's copy
            // stays intact — only this reader sees garbage).
            let mut mangled: Vec<Vec<Lit>> = fresh.iter().map(|clause| clause.to_vec()).collect();
            corrupt_clauses(&mut mangled);
            fresh = mangled.into_iter().map(Arc::new).collect();
        }
        fresh
    }
}

/// Mangles a clause batch the way a buggy producer would: duplicated
/// literals in every clause, and a tautological pair in every other one.
/// Injected by the [`faults::site::EXCHANGE_PUBLISH`] `corrupt` action.
fn corrupt_clauses(clauses: &mut [Vec<Lit>]) {
    for (i, clause) in clauses.iter_mut().enumerate() {
        if let Some(&first) = clause.first() {
            clause.push(first);
            if i % 2 == 1 {
                clause.push(!first);
            }
        }
    }
}

/// Validates a clause delivered over the exchange before it may touch a
/// worker's database: every variable must already exist, no literal may
/// repeat, and the clause must not be a tautology. Anything else is the
/// product of a corrupt producer (or an injected fault) and is rejected,
/// counted in [`SolverStats::exchange_rejects`].
fn valid_import(clause: &[Lit], num_vars: usize) -> bool {
    if clause.is_empty() || clause.iter().any(|l| l.var().index() >= num_vars) {
        return false;
    }
    let mut sorted: Vec<Lit> = clause.to_vec();
    sorted.sort_unstable();
    // Lit codes pack `2·var + sign`, so a duplicate or complementary pair
    // is adjacent after sorting.
    sorted
        .windows(2)
        .all(|pair| pair[0] != pair[1] && pair[0] != !pair[1])
}

/// Why a portfolio worker dropped out of a race.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorkerFailureReason {
    /// The worker panicked; the payload message is preserved.
    Panic(String),
    /// The worker stalled and retired without a verdict (injected via the
    /// [`faults::site::WORKER_CHUNK`] `trigger` action in chaos builds).
    Stalled,
    /// The worker hit the per-worker learnt-memory cap and retired.
    MemoryCap,
}

impl fmt::Display for WorkerFailureReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkerFailureReason::Panic(msg) => write!(f, "panicked: {msg}"),
            WorkerFailureReason::Stalled => write!(f, "stalled"),
            WorkerFailureReason::MemoryCap => write!(f, "learnt-memory cap"),
        }
    }
}

/// One worker dropping out of a race, recorded by the portfolio.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerFailure {
    /// Index of the worker that failed.
    pub worker: usize,
    /// Why it dropped out.
    pub reason: WorkerFailureReason,
}

/// Per-worker events of one race, gathered behind a poison-recovering
/// mutex (a panicking worker must still be able to report its neighbours'
/// failures).
#[derive(Debug, Default)]
struct RaceLog {
    failures: Vec<WorkerFailure>,
}

/// N diversified CDCL solvers racing on threads; see the [module
/// docs](self).
#[derive(Debug)]
pub struct PortfolioSolver {
    workers: Vec<Solver>,
    /// Workers whose solver state may be inconsistent after a panic; they
    /// are respawned from the master clause log at the next solve.
    dead: Vec<bool>,
    config: PortfolioConfig,
    model: Vec<bool>,
    winner: Option<usize>,
    /// Master copy of the formula: every clause ever added, used to
    /// respawn dead workers with a consistent database.
    master: Vec<Vec<Lit>>,
    /// Interface variables frozen against inprocessing, replayed to
    /// respawned workers alongside the master clause log.
    frozen: Vec<Var>,
    vars: usize,
    /// Lifetime stats of workers that were respawned (their old counters
    /// would otherwise be lost with the replaced solver).
    retired_stats: SolverStats,
    failures: Vec<WorkerFailure>,
    worker_panics: u64,
    worker_respawns: u64,
    /// `(sat_worker, unsat_worker)` of the last race, when two workers
    /// returned contradictory verdicts on the same query.
    last_disagreement: Option<(usize, usize)>,
}

impl PortfolioSolver {
    /// Creates an empty portfolio.
    pub fn new(config: PortfolioConfig) -> PortfolioSolver {
        let threads = config.threads.max(1);
        let workers = (0..threads).map(|i| spawn_worker(i, &config)).collect();
        PortfolioSolver {
            workers,
            dead: vec![false; threads],
            config,
            model: Vec::new(),
            winner: None,
            master: Vec::new(),
            frozen: Vec::new(),
            vars: 0,
            retired_stats: SolverStats::default(),
            failures: Vec::new(),
            worker_panics: 0,
            worker_respawns: 0,
            last_disagreement: None,
        }
    }

    /// Builds a portfolio pre-loaded with a formula.
    pub fn from_cnf(cnf: &Cnf, config: PortfolioConfig) -> PortfolioSolver {
        let mut portfolio = PortfolioSolver::new(config);
        portfolio.ensure_vars(cnf.num_vars());
        for clause in cnf.clauses() {
            portfolio.add_clause(clause.iter().copied());
        }
        portfolio
    }

    /// The portfolio's configuration.
    pub fn config(&self) -> &PortfolioConfig {
        &self.config
    }

    /// Number of racing workers.
    pub fn num_workers(&self) -> usize {
        self.workers.len()
    }

    /// Ensures at least `n` variables exist in every worker.
    pub fn ensure_vars(&mut self, n: usize) {
        self.vars = self.vars.max(n);
        for (worker, &dead) in self.workers.iter_mut().zip(&self.dead) {
            if !dead {
                worker.ensure_vars(n);
            }
        }
    }

    /// Number of variables (identical across workers).
    pub fn num_vars(&self) -> usize {
        self.vars
    }

    /// Adds a clause to every worker. Returns `false` if the formula is
    /// now trivially unsatisfiable.
    pub fn add_clause(&mut self, lits: impl IntoIterator<Item = Lit>) -> bool {
        let clause: Vec<Lit> = lits.into_iter().collect();
        for &l in &clause {
            self.vars = self.vars.max(l.var().index() + 1);
        }
        let mut ok = true;
        for (worker, &dead) in self.workers.iter_mut().zip(&self.dead) {
            if !dead {
                ok &= worker.add_clause(clause.iter().copied());
            }
        }
        self.master.push(clause);
        ok
    }

    /// Freezes `var` against inprocessing in every worker (current and
    /// respawned): see [`Solver::freeze_var`].
    pub fn freeze_var(&mut self, var: Var) {
        self.vars = self.vars.max(var.index() + 1);
        for (worker, &dead) in self.workers.iter_mut().zip(&self.dead) {
            if !dead {
                worker.freeze_var(var);
            }
        }
        self.frozen.push(var);
    }

    /// Replaces every dead worker with a fresh solver rebuilt from the
    /// master clause log, preserving the dead worker's lifetime counters
    /// in `retired_stats`.
    fn respawn_dead_workers(&mut self) {
        for index in 0..self.workers.len() {
            if !self.dead[index] {
                continue;
            }
            self.retired_stats.merge(self.workers[index].stats());
            let mut fresh = spawn_worker(index, &self.config);
            fresh.ensure_vars(self.vars);
            for &var in &self.frozen {
                fresh.freeze_var(var);
            }
            for clause in &self.master {
                fresh.add_clause(clause.iter().copied());
            }
            self.workers[index] = fresh;
            self.dead[index] = false;
            self.worker_respawns += 1;
        }
    }

    /// Races the workers with no resource limits (first finisher still
    /// cancels the rest).
    pub fn solve(&mut self, assumptions: &[Lit]) -> SolveResult {
        self.solve_limited(assumptions, SolveLimits::default())
    }

    /// Races the workers under a shared budget. The deadline and
    /// learnt-memory cap apply to each worker; the conflict cap applies to
    /// the sum of conflicts across workers. Returns
    /// [`SolveResult::Unknown`] with partial per-worker statistics when
    /// the budget is exhausted first.
    ///
    /// A worker that panics or stalls is recorded in [`failures`]
    /// (and [`SolverStats::worker_panics`]) and the race continues on the
    /// survivors; if every worker dies the result degrades to
    /// [`SolveResult::Unknown`] with partial statistics — a panic is never
    /// propagated to the caller.
    ///
    /// [`failures`]: PortfolioSolver::failures
    pub fn solve_limited(&mut self, assumptions: &[Lit], limits: SolveLimits) -> SolveResult {
        self.winner = None;
        self.last_disagreement = None;
        self.respawn_dead_workers();
        let budget = Budget::from_limits(&limits);
        let n = self.workers.len();
        let pool = ExchangePool::new(n);
        let chunk = self.config.chunk_conflicts.max(1);
        let exchange = self.config.exchange_glue && n > 1;
        let verdict: Mutex<Option<(usize, SolveResult)>> = Mutex::new(None);
        let disagreement: Mutex<Option<(usize, usize)>> = Mutex::new(None);
        let log: Mutex<RaceLog> = Mutex::new(RaceLog::default());

        let budget_ref = &budget;
        let pool_ref = &pool;
        let verdict_ref = &verdict;
        let disagreement_ref = &disagreement;
        let log_ref = &log;
        std::thread::scope(|scope| {
            for (index, worker) in self.workers.iter_mut().enumerate() {
                scope.spawn(move || {
                    let outcome = catch_unwind(AssertUnwindSafe(|| {
                        run_worker(
                            index,
                            worker,
                            assumptions,
                            budget_ref,
                            pool_ref,
                            verdict_ref,
                            disagreement_ref,
                            chunk,
                            exchange,
                            n,
                        )
                    }));
                    let reason = match outcome {
                        Ok(WorkerExit::Finished) => return,
                        Ok(WorkerExit::Stalled) => WorkerFailureReason::Stalled,
                        Ok(WorkerExit::MemoryCapped) => WorkerFailureReason::MemoryCap,
                        // `&*payload` reaches the payload itself — a bare
                        // `&payload` would unsize the Box into the trait
                        // object and the downcasts would always miss.
                        Err(payload) => WorkerFailureReason::Panic(panic_message(&*payload)),
                    };
                    log_ref
                        .lock()
                        .unwrap_or_else(PoisonError::into_inner)
                        .failures
                        .push(WorkerFailure {
                            worker: index,
                            reason,
                        });
                });
            }
        });

        let race_log = log.into_inner().unwrap_or_else(PoisonError::into_inner);
        for failure in race_log.failures {
            if matches!(failure.reason, WorkerFailureReason::Panic(_)) {
                self.worker_panics += 1;
                self.dead[failure.worker] = true;
            }
            self.failures.push(failure);
        }

        if let Some(clash) = disagreement
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
        {
            // Contradictory verdicts: at least one worker is wrong, so no
            // answer is believed. The caller reads the typed reason via
            // `disagreement()` / `SolveBackend::certify_failure`.
            self.last_disagreement = Some(clash);
            return SolveResult::Unknown;
        }
        match verdict.into_inner().unwrap_or_else(PoisonError::into_inner) {
            Some((index, result)) => {
                self.winner = Some(index);
                if result == SolveResult::Sat {
                    self.model = self.workers[index].model().to_vec();
                }
                result
            }
            None => SolveResult::Unknown,
        }
    }

    /// `(sat_worker, unsat_worker)` when the last race ended with two
    /// workers contradicting each other (the solve returned
    /// [`SolveResult::Unknown`] instead of trusting either).
    pub fn disagreement(&self) -> Option<(usize, usize)> {
        self.last_disagreement
    }

    /// Index of the worker that decided the last solve (`None` after a
    /// budget exhaustion).
    pub fn winner(&self) -> Option<usize> {
        self.winner
    }

    /// The winning worker's conflicting-assumption subset from the last
    /// race (see [`Solver::final_assumption_core`]); empty unless the
    /// last solve ended [`SolveResult::Unsat`] on conflicting assumptions.
    pub fn final_assumption_core(&self) -> Vec<Lit> {
        match self.winner {
            Some(w) => self.workers[w].final_assumption_core().to_vec(),
            None => Vec::new(),
        }
    }

    /// Every worker drop-out recorded over the portfolio's lifetime
    /// (panics, stalls, memory-cap retirements), in observation order.
    pub fn failures(&self) -> &[WorkerFailure] {
        &self.failures
    }

    /// How many times a dead worker was rebuilt from the master clause
    /// log.
    pub fn worker_respawns(&self) -> u64 {
        self.worker_respawns
    }

    /// The last model's value for a variable (only meaningful right after
    /// a [`SolveResult::Sat`]).
    pub fn model_value(&self, var: Var) -> Option<bool> {
        self.model.get(var.index()).copied()
    }

    /// The last model as a dense vector (empty before the first SAT).
    pub fn model(&self) -> &[bool] {
        &self.model
    }

    /// Lifetime statistics [`merge`](SolverStats::merge)d across workers
    /// (including workers that died and were respawned), with
    /// [`SolverStats::worker_panics`] carrying the portfolio's panic
    /// count.
    pub fn stats(&self) -> SolverStats {
        let mut total = self.retired_stats;
        for worker in &self.workers {
            total.merge(worker.stats());
        }
        total.worker_panics = self.worker_panics;
        total
    }

    /// Per-worker lifetime statistics, in worker order.
    pub fn worker_stats(&self) -> Vec<SolverStats> {
        self.workers.iter().map(|w| *w.stats()).collect()
    }
}

/// Builds the diversified solver for worker slot `index`.
fn spawn_worker(index: usize, config: &PortfolioConfig) -> Solver {
    let threads = config.threads.max(1);
    let mut cfg = SolverConfig::diversified(index, config.seed);
    cfg.share_glue = config.exchange_glue && threads > 1;
    Solver::with_config(cfg)
}

/// How a worker's chunk loop ended (panics unwind past this and are caught
/// by the spawn wrapper).
enum WorkerExit {
    /// Reached a verdict, was cancelled, or the budget ran out — the
    /// normal ways out of a race.
    Finished,
    /// Injected stall: the worker retired without a verdict.
    Stalled,
    /// The per-worker learnt-memory cap was hit; the worker retired while
    /// the others race on.
    MemoryCapped,
}

#[allow(clippy::too_many_arguments)]
fn run_worker(
    index: usize,
    worker: &mut Solver,
    assumptions: &[Lit],
    budget: &Budget,
    pool: &ExchangePool,
    verdict: &Mutex<Option<(usize, SolveResult)>>,
    disagreement: &Mutex<Option<(usize, usize)>>,
    chunk: u64,
    exchange: bool,
    workers: usize,
) -> WorkerExit {
    let mut cursors = vec![0usize; workers];
    loop {
        match faults::evaluate(faults::site::WORKER_CHUNK, index) {
            Some(FaultAction::Panic) => {
                panic!(
                    "injected failpoint: {} worker {index}",
                    faults::site::WORKER_CHUNK
                )
            }
            Some(FaultAction::Trigger) => return WorkerExit::Stalled,
            Some(delay @ FaultAction::DelayMs(_)) => faults::apply_delay(delay),
            _ => {}
        }
        if budget.cancelled() || budget.exhausted() {
            return WorkerExit::Finished;
        }
        let before = worker.stats().conflicts;
        let result = worker.solve_limited(assumptions, budget.chunk_limits(chunk));
        budget.charge_conflicts(worker.stats().conflicts - before);
        match result {
            SolveResult::Unknown => {
                // Memory-capped out (still over the cap right after a
                // forced reduction): this worker cannot continue, but the
                // others may.
                if budget
                    .max_learnt_bytes
                    .is_some_and(|cap| worker.learnt_arena_bytes() > cap)
                {
                    return WorkerExit::MemoryCapped;
                }
                if exchange {
                    pool.publish(index, worker.take_shared_clauses());
                    for clause in pool.collect(index, &mut cursors) {
                        // Deliveries are untrusted (chaos builds corrupt
                        // them): reject anything that is not a clean
                        // clause over known variables instead of letting
                        // it near the clause database.
                        if valid_import(&clause, worker.num_vars()) {
                            worker.add_clause(clause.iter().copied());
                        } else {
                            worker.bump_exchange_rejects();
                        }
                    }
                }
            }
            SolveResult::Sat | SolveResult::Unsat => {
                let mut slot = verdict.lock().unwrap_or_else(PoisonError::into_inner);
                match *slot {
                    None => *slot = Some((index, result)),
                    Some((first, prior)) if prior != result => {
                        // Sat vs Unsat on the same query: escalate instead
                        // of letting the first finisher win.
                        let clash = if result == SolveResult::Sat {
                            (index, first)
                        } else {
                            (first, index)
                        };
                        let mut flag = disagreement.lock().unwrap_or_else(PoisonError::into_inner);
                        flag.get_or_insert(clash);
                    }
                    Some(_) => {}
                }
                budget.cancel_now();
                return WorkerExit::Finished;
            }
        }
    }
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random_sat::{self, RandomSatConfig};
    use std::time::Duration;

    fn phase_transition(seed: u64) -> Cnf {
        random_sat::generate(RandomSatConfig::from_ratio(40, 4.27, 3, seed)).unwrap()
    }

    #[test]
    fn one_thread_portfolio_matches_sequential_verdicts() {
        for seed in 0..15 {
            let cnf = phase_transition(seed);
            let mut sequential = Solver::from_cnf(&cnf);
            let mut portfolio = PortfolioSolver::from_cnf(
                &cnf,
                PortfolioConfig {
                    threads: 1,
                    ..PortfolioConfig::default()
                },
            );
            let expected = sequential.solve(&[]);
            let got = portfolio.solve(&[]);
            assert_eq!(got, expected, "seed {seed}");
            if got == SolveResult::Sat {
                assert!(cnf.is_satisfied_by(portfolio.model()), "seed {seed}");
            }
            assert_eq!(portfolio.winner(), Some(0));
        }
    }

    #[test]
    fn four_thread_portfolio_agrees_with_sequential() {
        for seed in 0..8 {
            let cnf = phase_transition(100 + seed);
            let mut sequential = Solver::from_cnf(&cnf);
            let mut portfolio = PortfolioSolver::from_cnf(&cnf, PortfolioConfig::default());
            let expected = sequential.solve(&[]);
            let got = portfolio.solve(&[]);
            assert_eq!(got, expected, "seed {seed}");
            if got == SolveResult::Sat {
                assert!(cnf.is_satisfied_by(portfolio.model()), "seed {seed}");
            }
            assert!(portfolio.winner().is_some());
        }
    }

    #[test]
    fn portfolio_is_incremental_with_assumptions() {
        let mut portfolio = PortfolioSolver::new(PortfolioConfig::with_threads(2));
        portfolio.ensure_vars(2);
        let a = Lit::from_dimacs(1);
        let b = Lit::from_dimacs(2);
        assert!(portfolio.add_clause([a, b]));
        assert_eq!(portfolio.solve(&[!a]), SolveResult::Sat);
        assert_eq!(portfolio.model_value(b.var()), Some(true));
        assert_eq!(portfolio.solve(&[!a, !b]), SolveResult::Unsat);
        assert!(portfolio.add_clause([!b]));
        assert_eq!(portfolio.solve(&[!a]), SolveResult::Unsat);
        assert_eq!(portfolio.solve(&[]), SolveResult::Sat);
    }

    #[test]
    fn summed_conflict_cap_returns_unknown() {
        // A hard UNSAT-leaning instance with a 1-conflict budget cannot be
        // decided (pigeonhole would also do).
        let cnf = phase_transition(3);
        let mut portfolio = PortfolioSolver::from_cnf(&cnf, PortfolioConfig::default());
        let result = portfolio.solve_limited(&[], SolveLimits::builder().max_conflicts(1).build());
        assert_ne!(result, SolveResult::Unsat);
        let _ = result; // Sat is possible if a worker gets lucky pre-conflict
    }

    #[test]
    fn external_interrupt_cancels_the_race() {
        let cnf = phase_transition(5);
        let mut portfolio = PortfolioSolver::from_cnf(&cnf, PortfolioConfig::default());
        let flag = Arc::new(AtomicBool::new(true)); // already raised
        let result = portfolio.solve_limited(
            &[],
            SolveLimits::builder()
                .interrupt(flag)
                .timeout(Duration::from_secs(30))
                .build(),
        );
        assert_eq!(result, SolveResult::Unknown);
        assert_eq!(portfolio.winner(), None);
    }

    #[test]
    fn merged_stats_sum_worker_counters() {
        let cnf = phase_transition(8);
        let mut portfolio = PortfolioSolver::from_cnf(&cnf, PortfolioConfig::default());
        let _ = portfolio.solve(&[]);
        let merged = portfolio.stats();
        let per_worker = portfolio.worker_stats();
        assert_eq!(per_worker.len(), 4);
        assert_eq!(
            merged.conflicts,
            per_worker.iter().map(|s| s.conflicts).sum::<u64>()
        );
        assert_eq!(
            merged.propagations,
            per_worker.iter().map(|s| s.propagations).sum::<u64>()
        );
        assert_eq!(merged.worker_panics, 0);
        assert!(portfolio.failures().is_empty());
    }

    #[test]
    fn corrupted_deliveries_are_sanitized_by_add_clause() {
        // The import path's safety boundary: a duplicated-literal or
        // tautological clause must not break the solver (chaos builds
        // inject these through the exchange).
        let mut clauses = vec![
            vec![Lit::from_dimacs(1), Lit::from_dimacs(2)],
            vec![Lit::from_dimacs(-2), Lit::from_dimacs(3)],
        ];
        corrupt_clauses(&mut clauses);
        assert_eq!(clauses[0].len(), 3); // duplicated first literal
        assert_eq!(clauses[1].len(), 4); // duplicate + tautological pair
        let mut solver = Solver::new();
        for clause in &clauses {
            assert!(solver.add_clause(clause.iter().copied()));
        }
        assert_eq!(solver.solve(&[]), SolveResult::Sat);
    }
}
