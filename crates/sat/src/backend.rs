//! The [`SolveBackend`] abstraction: one interface over the sequential
//! [`Solver`] and the racing [`PortfolioSolver`].
//!
//! Attack engines (the DIP loop in `fulllock-attacks`) talk to a
//! `Box<dyn SolveBackend>` and never care whether one CDCL instance or a
//! diversified portfolio answers each query. Callers pick the engine with
//! a [`BackendSpec`], which is `Copy` and serialises naturally into
//! configuration structs.
//!
//! # Example
//!
//! ```
//! use fulllock_sat::backend::{BackendSpec, SolveBackend};
//! use fulllock_sat::cdcl::SolveResult;
//! use fulllock_sat::portfolio::PortfolioConfig;
//! use fulllock_sat::Lit;
//!
//! let spec = BackendSpec::Portfolio(PortfolioConfig::with_threads(2));
//! let mut backend = spec.create();
//! backend.ensure_vars(2);
//! let a = Lit::from_dimacs(1);
//! let b = Lit::from_dimacs(2);
//! backend.add_clause(&[a, b]);
//! backend.add_clause(&[!a]);
//! assert_eq!(backend.solve(&[]), SolveResult::Sat);
//! assert_eq!(backend.model_value(b.var()), Some(true));
//! ```

use crate::cdcl::{SolveLimits, SolveResult, Solver, SolverConfig, SolverStats};
use crate::certify::{CertifyError, CertifyLevel, CertifyingBackend, DratTrace};
use crate::portfolio::{PortfolioConfig, PortfolioSolver};
use crate::{Lit, Var};

/// An incremental SAT engine: the sequential [`Solver`], the racing
/// [`PortfolioSolver`], or anything else that can answer clause/assume
/// queries.
///
/// Object-safe by design — attack engines hold a `Box<dyn SolveBackend>`.
pub trait SolveBackend: std::fmt::Debug + Send {
    /// Ensures at least `n` variables exist.
    fn ensure_vars(&mut self, n: usize);

    /// Number of variables known to the backend.
    fn num_vars(&self) -> usize;

    /// Adds a clause. Returns `false` if the formula is now trivially
    /// unsatisfiable.
    fn add_clause(&mut self, lits: &[Lit]) -> bool;

    /// Declares `var` an interface variable: inprocessing must never
    /// eliminate it (clauses and assumptions will keep mentioning it
    /// between solves). A no-op for backends without inprocessing.
    fn freeze_var(&mut self, _var: Var) {}

    /// Solves under assumptions with a resource budget; budget exhaustion
    /// returns [`SolveResult::Unknown`].
    fn solve_limited(&mut self, assumptions: &[Lit], limits: SolveLimits) -> SolveResult;

    /// Solves under assumptions with no resource limits.
    fn solve(&mut self, assumptions: &[Lit]) -> SolveResult {
        self.solve_limited(assumptions, SolveLimits::default())
    }

    /// The last model's value for `var` (meaningful only right after a
    /// [`SolveResult::Sat`]).
    fn model_value(&self, var: Var) -> Option<bool>;

    /// The subset of the last solve call's assumptions proven jointly
    /// unsatisfiable (see [`Solver::final_assumption_core`]). Meaningful
    /// only right after a [`SolveResult::Unsat`]; empty when the formula
    /// is UNSAT regardless of assumptions, or for backends that do not
    /// track cores.
    fn final_assumption_core(&self) -> Vec<Lit> {
        Vec::new()
    }

    /// Lifetime statistics — for a portfolio, the counters are
    /// [`merge`](SolverStats::merge)d across workers (rates must be
    /// derived *after* merging, see
    /// [`props_per_cpu_sec`](SolverStats::props_per_cpu_sec)).
    fn stats(&self) -> SolverStats;

    /// How many solver instances work on each query (1 unless this is a
    /// portfolio).
    fn num_threads(&self) -> usize {
        1
    }

    /// Human-readable records of workers that dropped out of solves
    /// (panicked, stalled, retired on a memory cap). Empty for a
    /// sequential solver and for an undisturbed portfolio.
    fn worker_failures(&self) -> Vec<String> {
        Vec::new()
    }

    /// Why the most recent answer failed certification, if it did — set by
    /// a [`CertifyingBackend`] wrapper (failed model/proof check) or by a
    /// portfolio that caught its workers disagreeing.
    fn certify_failure(&self) -> Option<CertifyError> {
        None
    }

    /// Asks the backend to record a DRAT trace of its derivation. Returns
    /// `false` if it cannot (portfolio, or clauses already added) — the
    /// caller should degrade to model-level checking.
    fn enable_certify_proof(&mut self) -> bool {
        false
    }

    /// The recorded DRAT trace, when
    /// [`enable_certify_proof`](Self::enable_certify_proof) succeeded
    /// earlier.
    fn certify_proof(&self) -> Option<&DratTrace> {
        None
    }
}

impl SolveBackend for Solver {
    fn ensure_vars(&mut self, n: usize) {
        Solver::ensure_vars(self, n);
    }

    fn num_vars(&self) -> usize {
        Solver::num_vars(self)
    }

    fn add_clause(&mut self, lits: &[Lit]) -> bool {
        Solver::add_clause(self, lits.iter().copied())
    }

    fn freeze_var(&mut self, var: Var) {
        Solver::freeze_var(self, var);
    }

    fn solve_limited(&mut self, assumptions: &[Lit], limits: SolveLimits) -> SolveResult {
        Solver::solve_limited(self, assumptions, limits)
    }

    fn model_value(&self, var: Var) -> Option<bool> {
        Solver::model_value(self, var)
    }

    fn final_assumption_core(&self) -> Vec<Lit> {
        Solver::final_assumption_core(self).to_vec()
    }

    fn stats(&self) -> SolverStats {
        *Solver::stats(self)
    }

    fn enable_certify_proof(&mut self) -> bool {
        Solver::enable_proof(self)
    }

    fn certify_proof(&self) -> Option<&DratTrace> {
        Solver::proof(self)
    }
}

impl SolveBackend for PortfolioSolver {
    fn ensure_vars(&mut self, n: usize) {
        PortfolioSolver::ensure_vars(self, n);
    }

    fn num_vars(&self) -> usize {
        PortfolioSolver::num_vars(self)
    }

    fn add_clause(&mut self, lits: &[Lit]) -> bool {
        PortfolioSolver::add_clause(self, lits.iter().copied())
    }

    fn freeze_var(&mut self, var: Var) {
        PortfolioSolver::freeze_var(self, var);
    }

    fn solve_limited(&mut self, assumptions: &[Lit], limits: SolveLimits) -> SolveResult {
        PortfolioSolver::solve_limited(self, assumptions, limits)
    }

    fn model_value(&self, var: Var) -> Option<bool> {
        PortfolioSolver::model_value(self, var)
    }

    fn final_assumption_core(&self) -> Vec<Lit> {
        PortfolioSolver::final_assumption_core(self)
    }

    fn stats(&self) -> SolverStats {
        PortfolioSolver::stats(self)
    }

    fn num_threads(&self) -> usize {
        self.num_workers()
    }

    fn worker_failures(&self) -> Vec<String> {
        self.failures()
            .iter()
            .map(|f| format!("worker {} {}", f.worker, f.reason))
            .collect()
    }

    fn certify_failure(&self) -> Option<CertifyError> {
        self.disagreement().map(
            |(sat_worker, unsat_worker)| CertifyError::SolverDisagreement {
                sat_worker,
                unsat_worker,
            },
        )
    }
}

/// Which solving engine to instantiate — the `Copy` handle that attack and
/// bench configuration structs carry.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum BackendSpec {
    /// One sequential CDCL [`Solver`] with the default configuration.
    #[default]
    Single,
    /// One sequential CDCL [`Solver`] with explicit search parameters —
    /// how benches and experiments toggle e.g.
    /// [`SolverConfig::inprocess`](crate::cdcl::SolverConfig::inprocess).
    Configured(SolverConfig),
    /// A racing [`PortfolioSolver`].
    Portfolio(PortfolioConfig),
}

impl BackendSpec {
    /// A portfolio spec with `threads` workers and default dynamics.
    pub fn portfolio(threads: usize) -> BackendSpec {
        BackendSpec::Portfolio(PortfolioConfig::with_threads(threads))
    }

    /// Instantiates an empty backend.
    pub fn create(self) -> Box<dyn SolveBackend> {
        match self {
            BackendSpec::Single => Box::new(Solver::new()),
            BackendSpec::Configured(config) => Box::new(Solver::with_config(config)),
            BackendSpec::Portfolio(config) => Box::new(PortfolioSolver::new(config)),
        }
    }

    /// Instantiates an empty backend whose answers are verified at
    /// `level` (see [`CertifyingBackend`]); [`CertifyLevel::Off`] returns
    /// the bare backend unchanged.
    pub fn create_certified(self, level: CertifyLevel) -> Box<dyn SolveBackend> {
        if level == CertifyLevel::Off {
            self.create()
        } else {
            Box::new(CertifyingBackend::new(self.create(), level))
        }
    }

    /// How many solver instances the backend will race.
    pub fn num_threads(self) -> usize {
        match self {
            BackendSpec::Single | BackendSpec::Configured(_) => 1,
            BackendSpec::Portfolio(config) => config.threads.max(1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random_sat::{generate, RandomSatConfig};

    fn solve_via(spec: BackendSpec, seed: u64) -> (SolveResult, SolverStats) {
        let cnf = generate(RandomSatConfig::from_ratio(30, 4.2, 3, seed)).unwrap();
        let mut backend = spec.create();
        backend.ensure_vars(cnf.num_vars());
        for clause in cnf.clauses() {
            backend.add_clause(clause);
        }
        (backend.solve(&[]), backend.stats())
    }

    #[test]
    fn single_and_portfolio_backends_agree() {
        for seed in 0..6 {
            let (single, _) = solve_via(BackendSpec::Single, seed);
            let (portfolio, stats) = solve_via(BackendSpec::portfolio(2), seed);
            assert_eq!(single, portfolio, "seed {seed}");
            // Inprocessing can decide small instances with zero search
            // decisions, so count solve calls instead.
            assert!(stats.solves > 0);
        }
    }

    #[test]
    fn spec_reports_thread_counts() {
        assert_eq!(BackendSpec::Single.num_threads(), 1);
        assert_eq!(BackendSpec::portfolio(4).num_threads(), 4);
        assert_eq!(BackendSpec::default(), BackendSpec::Single);
        assert_eq!(BackendSpec::Single.create().num_threads(), 1);
        assert_eq!(BackendSpec::portfolio(3).create().num_threads(), 3);
    }
}
